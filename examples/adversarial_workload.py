#!/usr/bin/env python3
"""Adversarial workloads and keyed checksums (§4.3).

In an open system, a rogue user can *choose* the items that enter a
victim's set.  If the checksum hash is public, the attacker can mine an
item whose checksum collides with a target item and corrupt decoding for
everyone.  With a keyed hash (SipHash under a secret per-session key) the
attacker cannot aim, and the same mined pair is harmless.

The demo mines a real collision against a truncated *public* hash (16
bits, so mining takes milliseconds), shows decoding break, then shows the
keyed defence.

Run:  python examples/adversarial_workload.py
"""

import os
import random

from repro.core.session import ReconciliationSession
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import SipHasher

ITEM = 16
PUBLIC_KEY = bytes(16)  # "public" = known to the attacker


def mine_collision(codec, target_item):
    """Find a different item whose (truncated) checksum equals target's."""
    target_sum = codec.checksum_data(target_item)
    attempt = 0
    while True:
        candidate = attempt.to_bytes(ITEM, "little")
        if candidate != target_item and codec.checksum_data(candidate) == target_sum:
            return candidate
        attempt += 1


def run_session(codec, alice_items, bob_items, budget):
    session = ReconciliationSession(alice_items, bob_items, codec)
    try:
        outcome = session.run(max_symbols=budget)
        return True, outcome
    except RuntimeError:
        return False, None


def main() -> None:
    rng = random.Random(5)
    shared = {rng.randbytes(ITEM) for _ in range(500)}
    target = rng.randbytes(ITEM)  # an item only Alice has

    # 16-bit public checksum: weak enough to mine a collision quickly.
    public_codec = SymbolCodec(ITEM, SipHasher(PUBLIC_KEY), checksum_size=2)
    evil = mine_collision(public_codec, target)
    print(f"attacker mined a colliding item after knowing the public key:")
    print(f"  target   checksum: {public_codec.checksum_data(target):#06x}")
    print(f"  injected checksum: {public_codec.checksum_data(evil):#06x}")

    alice = shared | {target}
    bob = shared | {evil}  # attacker injected the collision into Bob

    ok, _ = run_session(public_codec, alice, bob, budget=2_000)
    print(f"\npublic 16-bit checksum: reconciliation "
          f"{'completed (lucky)' if ok else 'FAILED to terminate (attack works)'}")

    # Same sets, but the checksum is keyed with a secret session key.
    secret_codec = SymbolCodec(ITEM, SipHasher(os.urandom(16)), checksum_size=8)
    ok, outcome = run_session(secret_codec, alice, bob, budget=2_000)
    assert ok
    print(f"keyed 64-bit checksum : reconciliation completed in "
          f"{outcome.symbols_used} symbols; recovered "
          f"{outcome.difference_size} true differences")
    assert target in outcome.only_in_a and evil in outcome.only_in_b
    print("\nthe mined pair decodes as two ordinary differences under the "
          "secret key — the attacker cannot target what it cannot compute")


if __name__ == "__main__":
    main()
