#!/usr/bin/env python3
"""Erlay-style transaction relay, scheme-pluggable (§1, §2 motivation).

Bitcoin's Erlay replaced flood-relay with set reconciliation to cut
bandwidth.  This demo builds a small gossip network whose mempools have
drifted apart, then runs periodic pairwise reconciliation rounds until
every node holds every transaction — once per scheme, through the
unified ``repro.api`` registry, so the paper's "rateless wins on gossip
workloads" claim is a table instead of an assertion.

Transactions are identified by 32-byte ids (txids), the exact workload
shape of Fig 7; the scheme list holds the schemes whose fields can
represent 32-byte items (PinSketch tops out at GF(2^64), CPI at 56-bit
items).

Run:  python examples/transaction_relay.py
"""

import random

from repro.api import reconcile

TXID_BYTES = 32
NODES = 8
TOTAL_TXS = 3_000
SCHEMES = ("riblt", "met_iblt", "regular_iblt+strata", "merkle")


def build_mempools(rng: random.Random) -> tuple[list[set[bytes]], set[bytes]]:
    """Every node saw most transactions, missed a random 3%."""
    all_txs = [rng.randbytes(TXID_BYTES) for _ in range(TOTAL_TXS)]
    mempools = []
    for _ in range(NODES):
        missed = set(rng.sample(all_txs, int(0.03 * TOTAL_TXS)))
        mempools.append(set(all_txs) - missed)
    return mempools, set().union(*mempools)


def gossip_until_converged(scheme: str, seed: int) -> tuple[int, int, int]:
    """(rounds, total bytes, total coded units) to full convergence."""
    rng = random.Random(seed)
    mempools, union = build_mempools(rng)
    total_bytes = 0
    total_symbols = 0
    rounds = 0
    while any(pool != union for pool in mempools):
        rounds += 1
        for node in range(NODES):
            peer = rng.choice([p for p in range(NODES) if p != node])
            outcome = reconcile(mempools[peer], mempools[node], scheme=scheme)
            mempools[node] |= outcome.only_in_a
            mempools[peer] |= outcome.only_in_b
            total_bytes += outcome.bytes_on_wire
            total_symbols += outcome.symbols_used
    assert all(pool == union for pool in mempools)
    return rounds, total_bytes, total_symbols


def main() -> None:
    naive_exchange = NODES * TOTAL_TXS * TXID_BYTES  # every sync ships every txid
    print(f"{NODES} nodes, {TOTAL_TXS} transactions, 3% missed per node\n")
    print(f"{'scheme':22s} {'rounds':>6} {'traffic':>12} {'coded units':>12}")
    for scheme in SCHEMES:
        rounds, total_bytes, total_symbols = gossip_until_converged(scheme, seed=17)
        print(f"{scheme:22s} {rounds:>6} {total_bytes / 1e3:>10,.1f} KB "
              f"{total_symbols:>12,}")
    print(f"\ntxid-exchange baseline : {naive_exchange / 1e3:,.1f} KB per round "
          "(each sync ships every txid)")
    print("rateless streams stop at exactly the difference; fixed sketches "
          "pay the estimator every sync")


if __name__ == "__main__":
    main()
