#!/usr/bin/env python3
"""Erlay-style transaction relay with Rateless IBLT (§1, §2 motivation).

Bitcoin's Erlay replaced flood-relay with set reconciliation to cut
bandwidth.  This demo builds a small gossip network whose mempools have
drifted apart, then runs periodic pairwise reconciliation rounds until
every node holds every transaction — counting what flooding would have
cost instead.

Transactions are identified by 32-byte ids (txids), the exact workload
shape of Fig 7.

Run:  python examples/transaction_relay.py
"""

import random

from repro.core.session import ReconciliationSession
from repro.core.symbols import SymbolCodec

TXID_BYTES = 32
NODES = 8
TOTAL_TXS = 3_000
RECONCILIATIONS_PER_ROUND = NODES  # each node syncs one random peer


def main() -> None:
    rng = random.Random(17)
    codec = SymbolCodec(TXID_BYTES)
    all_txs = [rng.randbytes(TXID_BYTES) for _ in range(TOTAL_TXS)]

    # every node saw most transactions, missed a random 3%
    mempools = []
    for _ in range(NODES):
        missed = set(rng.sample(all_txs, int(0.03 * TOTAL_TXS)))
        mempools.append(set(all_txs) - missed)
    union = set().union(*mempools)

    total_bytes = 0
    total_symbols = 0
    rounds = 0
    while any(pool != union for pool in mempools):
        rounds += 1
        for node in range(NODES):
            peer = rng.choice([p for p in range(NODES) if p != node])
            session = ReconciliationSession(mempools[peer], mempools[node], codec)
            outcome = session.run()
            mempools[node] |= outcome.only_in_a
            mempools[peer] |= outcome.only_in_b
            total_bytes += outcome.bytes_on_wire
            total_symbols += outcome.symbols_used
        print(f"round {rounds}: "
              + ", ".join(f"n{i}:{len(union) - len(p):>3} missing"
                          for i, p in enumerate(mempools)))

    flood_bytes = NODES * rounds * int(0.03 * TOTAL_TXS) * TXID_BYTES * (NODES - 1)
    naive_exchange = NODES * rounds * TOTAL_TXS * TXID_BYTES
    print(f"\nconverged in {rounds} gossip rounds")
    print(f"reconciliation traffic : {total_bytes / 1e3:,.1f} KB "
          f"({total_symbols} coded symbols)")
    print(f"txid-exchange baseline : {naive_exchange / 1e3:,.1f} KB "
          "(each sync ships every txid)")
    print(f"saving                 : {naive_exchange / total_bytes:,.0f}x")
    assert all(pool == union for pool in mempools)


if __name__ == "__main__":
    main()
