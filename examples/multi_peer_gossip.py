#!/usr/bin/env python3
"""An anti-entropy gossip mesh: N nodes converging by rateless repair.

The paper's headline deployments (§1, §7: block and transaction relay)
are not two-party syncs — they are meshes, where every node repeatedly
reconciles against a changing neighbourhood until everyone holds the
same set.  ``repro.gossip`` builds that out of the existing engine:

* each node's set lives in the same warm per-shard encoder bank the
  asyncio service serves (one continuously patched universal stream);
* a round resolves every selected pair at the cheapest sufficient
  tier — a zero-byte *clock skip* when version clocks prove nothing
  changed, a ~14-byte *digest exchange* when the sets are already
  equal, and a full rateless session only on a real difference;
* the full sessions are the exact sans-io InitiatorMachine /
  ResponderMachine pair every transport in this repo drives.

The demo mesh converges in a handful of rounds for a tiny fraction of
what naive full-set flooding would move, then keeps running to show the
steady-state rounds costing (almost) nothing.

Run:  python examples/multi_peer_gossip.py
"""

import random

from repro.gossip import GossipConfig, GossipMesh, make_nodes, simulate_flooding
from repro.gossip.mesh import select_pairs

ITEM_BYTES = 32
BASE_ITEMS = 240
NODES = 12
PER_NODE_DIFF = 4


def build_node_sets(rng: random.Random) -> list[list[bytes]]:
    """A shared base set, each node missing a few items and owning a few."""
    base = sorted({rng.randbytes(ITEM_BYTES) for _ in range(BASE_ITEMS)})
    node_sets = []
    for _ in range(NODES):
        missing = set(rng.sample(base, PER_NODE_DIFF))
        own = [rng.randbytes(ITEM_BYTES) for _ in range(PER_NODE_DIFF)]
        node_sets.append([item for item in base if item not in missing] + own)
    return node_sets


def main() -> None:
    rng = random.Random(42)
    node_sets = build_node_sets(rng)
    mesh = GossipMesh(
        make_nodes(node_sets),
        topology="random",
        degree=4,
        fanout=2,
        seed=7,
        config=GossipConfig(transport="memory"),
    )
    print(f"{NODES} nodes, random topology, ~{2 * PER_NODE_DIFF} diff items each\n")

    report = mesh.run_until_converged(max_rounds=16)
    assert report.converged, "mesh failed to converge"
    for stats in report.per_round:
        print(f"round {stats.round_no}: {stats.full_syncs} full sessions, "
              f"{stats.digest_skips} digest skips, {stats.clock_skips} clock "
              f"skips, {stats.wire_bytes} bytes, {stats.items_moved} items moved")

    # Every node now holds the identical union set.
    union = set().union(*(set(s) for s in node_sets))
    for node in mesh.nodes:
        assert set(node.backend.sharded) == union
    print(f"\nconverged in {report.rounds} rounds; every node holds "
          f"all {len(union)} items")

    # The baseline: same topology, same schedule, but each exchange
    # ships both full sets instead of a rateless diff.
    flooding = simulate_flooding(
        node_sets,
        ITEM_BYTES,
        lambda round_no, frng: select_pairs(mesh.neighbors, 2, frng),
        random.Random(7),
        max_rounds=16,
    )
    ratio = report.wire_bytes / flooding.total_bytes
    print(f"gossip moved {report.wire_bytes} bytes; flooding would move "
          f"{flooding.total_bytes} ({ratio:.1%} of flooding)")
    assert ratio < 0.5, "gossip should beat flooding by at least 2x"

    # Steady state: a converged mesh round is digest frames and clock
    # skips — no coded symbol moves.
    steady = mesh.run_round()
    assert steady.full_syncs == 0
    print(f"steady-state round: {steady.wire_bytes} bytes "
          f"({steady.digest_skips} digest exchanges, "
          f"{steady.clock_skips} clock skips, 0 full sessions)")


if __name__ == "__main__":
    main()
