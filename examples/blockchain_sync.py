#!/usr/bin/env python3
"""Blockchain state sync: Rateless IBLT vs Merkle-trie state heal (§7.3).

Builds a synthetic Ethereum-like ledger, lets Bob fall 10 minutes behind,
then synchronises him with Alice two ways over a simulated 20 Mbps /
50 ms link:

1. streaming Rateless IBLT coded symbols (this paper);
2. Geth-style state heal over the Merkle trie (production baseline).

Run:  python examples/blockchain_sync.py
"""

from repro.baselines.merkle import Trie, state_heal
from repro.ledger import Chain, build_scenario
from repro.ledger.workload import measure_riblt_plan
from repro.net.protocols import simulate_riblt_sync, simulate_state_heal

BANDWIDTH = 20e6  # 20 Mbps
DELAY = 0.05  # 50 ms one-way


def main() -> None:
    print("building ledger: 20,000 accounts, 50 blocks of churn ...")
    chain = Chain(num_accounts=20_000, seed=7, updates_per_block=24)
    chain.advance(50)

    scenario = build_scenario(chain, staleness_blocks=50)  # 10 minutes
    print(f"Bob is {scenario.staleness_seconds // 60} minutes stale; "
          f"|A triangle B| = {scenario.difference_size} items of 92 bytes")

    # --- Rateless IBLT -----------------------------------------------------
    plan = measure_riblt_plan(scenario, calibrated_line_rate_bps=170e6)
    riblt = simulate_riblt_sync(plan, BANDWIDTH, DELAY)
    print("\nRateless IBLT:")
    print(f"  coded symbols needed : {plan.symbols_needed} "
          f"({plan.symbols_needed / scenario.difference_size:.2f} per diff)")
    print(f"  completion time      : {riblt.completion_time:.3f} s")
    print(f"  data transferred     : {riblt.bytes_down_total / 1e6:.3f} MB")

    # --- state heal ---------------------------------------------------------
    store = scenario.bob_store.copy()
    report = state_heal(store, scenario.alice_trie)
    heal = simulate_state_heal(report, BANDWIDTH, DELAY)
    healed = Trie(store, scenario.alice_trie.root_hash)
    assert dict(healed.items()) == dict(scenario.alice_trie.items())
    print("\nMerkle-trie state heal (Geth baseline):")
    print(f"  lock-step rounds     : {heal.round_trips}")
    print(f"  trie nodes fetched   : {heal.nodes_fetched} "
          f"(only {report.leaves_fetched} are account leaves)")
    print(f"  completion time      : {heal.completion_time:.3f} s")
    print(f"  data transferred     : {heal.bytes_down / 1e6:.3f} MB")

    print(f"\nRateless IBLT is {heal.completion_time / riblt.completion_time:.1f}x "
          "faster on this link (paper: 4.8-13.6x at mainnet scale)")


if __name__ == "__main__":
    main()
