"""One protocol engine, three transports — the sans-io payoff.

The same reconciliation (same scheme, same sets, same frames) runs

* in memory, through the lock-step pump behind ``repro.api.reconcile``;
* over a simulated 20 Mbps / 50 ms link with 5% frame loss;
* over real asyncio TCP, against a live ``ReconciliationServer``;

and recovers the identical difference each time, because every
transport drives the same ``repro.protocol.ReconcilerMachine`` pair.

Run:  PYTHONPATH=src python examples/transport_matrix.py
"""

import asyncio
import random

from repro.api import reconcile
from repro.net.protocols import simulate_machine_sync
from repro.service import ReconciliationServer, sync

rng = random.Random(0xE14)
shared = [rng.randbytes(16) for _ in range(400)]
only_server = [rng.randbytes(16) for _ in range(9)]
only_client = [rng.randbytes(16) for _ in range(5)]
server_items = shared + only_server
client_items = shared + only_client
want_missing, want_extra = set(only_server), set(only_client)


def show(transport: str, missing: set, extra: set, detail: str) -> None:
    assert missing == want_missing, transport
    assert extra == want_extra, transport
    print(f"{transport:8s} recovered 9 missing + 5 extra   ({detail})")


# 1. memory: the in-process pump
result = reconcile(server_items, client_items, scheme="riblt")
show("memory", result.only_in_a, result.only_in_b,
     f"{result.bytes_on_wire} B on the wire")

# 2. sim: same machine, now through a lossy bandwidth/latency link
outcome = simulate_machine_sync(
    server_items, client_items, "riblt",
    bandwidth_bps=20e6, delay_s=0.05, loss_rate=0.05, seed=11,
)
show("sim", outcome.result.only_in_a, outcome.result.only_in_b,
     f"{outcome.completion_time * 1e3:.0f} ms over 20 Mbps/50 ms, 5% loss")


# 3. tcp: same machine again, shuttled by the asyncio service adapters
async def over_tcp():
    async with ReconciliationServer(server_items, num_shards=2) as server:
        host, port = server.address
        return await sync(host, port, client_items)

tcp = asyncio.run(over_tcp())
show("tcp", tcp.only_in_server, tcp.only_in_client,
     f"{tcp.num_shards} shards, {tcp.bytes_received} B received")

print("one ReconcilerMachine, three transports, identical difference.")
