#!/usr/bin/env python3
"""A reconciliation service under concurrent load (§1, §7.3, served).

One hub node exposes its transaction set over TCP with 4 hash-sharded
warm encoder banks.  Six edge nodes at different staleness levels sync
concurrently — every one of them reads prefixes of the *same* cached
per-shard streams, so the hub never re-encodes for a new peer.  One
edge then pushes its local-only items back; the hub's warm banks are
patched in place (linearity) and the next sync proves it.

Run:  python examples/multi_peer_service.py
"""

import asyncio
import random

from repro.service import ServiceNode

TX_BYTES = 16
SET_SIZE = 2_000
SHARDS = 4


async def main() -> None:
    rng = random.Random(2024)
    txs = sorted({rng.randbytes(TX_BYTES) for _ in range(SET_SIZE)})

    hub = ServiceNode(txs, num_shards=SHARDS)
    host, port = await hub.start()
    print(f"hub: {len(txs)} txs in {SHARDS} shards on {host}:{port}")

    # Six followers: increasingly stale, one with its own local txs.
    edges = [
        ServiceNode(txs[staleness:], num_shards=SHARDS)
        for staleness in (2, 5, 10, 20, 40)
    ]
    own = sorted(rng.randbytes(TX_BYTES) for _ in range(8))
    edges.append(ServiceNode(txs[15:] + own, num_shards=SHARDS))

    results = await asyncio.gather(
        *(edge.sync_with(host, port) for edge in edges)
    )
    for i, (edge, result) in enumerate(zip(edges, results)):
        print(
            f"edge {i}: fetched {len(result.only_in_server):>2} txs in "
            f"{result.symbols:>4} coded symbols "
            f"({result.bytes_received} bytes over {result.num_shards} shards)"
        )
        assert edge.items >= set(txs), "edge failed to converge on hub's set"

    stats = hub.server.stats
    print(
        f"\nhub served {stats.sessions_completed} concurrent sessions: "
        f"{stats.symbols_sent} symbols / {stats.bytes_sent} bytes"
    )
    warm = [hub.server.backend.cached_symbols(s) for s in range(SHARDS)]
    print(f"warm banks hold {warm} cached cells — shared by all sessions")

    # The diverged edge pushes its own txs; the hub's banks are patched,
    # not rebuilt, and a fresh sync sees the new txs immediately.
    pushed = await edges[-1].sync_with(host, port, push=True)
    print(f"\nedge 5 pushed {pushed.pushed} local txs back to the hub")
    assert all(tx in hub.server for tx in own)

    late = ServiceNode(txs, num_shards=SHARDS)
    result = await late.sync_with(host, port)
    assert set(own) <= result.only_in_server
    print(
        f"late joiner fetched the pushed txs from the warm banks "
        f"({len(result.only_in_server)} txs, {result.symbols} symbols)"
    )
    await hub.stop()


if __name__ == "__main__":
    asyncio.run(main())
