#!/usr/bin/env python3
"""Quickstart: reconcile two sets with Rateless IBLT in a dozen lines.

Alice and Bob each hold ~10,000 32-byte items that differ in 40 places.
Neither knows the difference size; Alice just streams coded symbols and
Bob stops her the moment he has peeled out the whole symmetric
difference.

Run:  python examples/quickstart.py
"""

import random

from repro import reconcile


def main() -> None:
    rng = random.Random(1)
    shared = [rng.randbytes(32) for _ in range(10_000)]
    alice = set(shared) | {rng.randbytes(32) for _ in range(20)}
    bob = set(shared) | {rng.randbytes(32) for _ in range(20)}

    outcome = reconcile(alice, bob, symbol_size=32)

    assert outcome.only_in_a == alice - bob
    assert outcome.only_in_b == bob - alice
    print(f"set sizes        : |A| = {len(alice)}, |B| = {len(bob)}")
    print(f"difference       : {outcome.difference_size} items")
    print(f"coded symbols    : {outcome.symbols_used}")
    print(f"overhead         : {outcome.overhead:.2f} symbols/difference "
          "(paper: 1.35-1.72)")
    print(f"bytes on wire    : {outcome.bytes_on_wire:,} "
          f"(vs {len(alice) * 32:,} to send the whole set)")
    saving = len(alice) * 32 / outcome.bytes_on_wire
    print(f"saving           : {saving:,.0f}x less traffic than a full transfer")


if __name__ == "__main__":
    main()
