#!/usr/bin/env python3
"""Quickstart: reconcile two sets — with any scheme — in a dozen lines.

Alice and Bob each hold ~10,000 32-byte items that differ in 40 places.
Neither knows the difference size.  The unified API runs the paper's
Rateless IBLT by default; the same call, pointed at any registry entry,
runs the baselines it is compared against.

Run:  python examples/quickstart.py
"""

import random

from repro.api import available_schemes, reconcile


def main() -> None:
    rng = random.Random(1)
    shared = [rng.randbytes(32) for _ in range(10_000)]
    alice = set(shared) | {rng.randbytes(32) for _ in range(20)}
    bob = set(shared) | {rng.randbytes(32) for _ in range(20)}

    outcome = reconcile(alice, bob)  # scheme="riblt" is the default

    assert outcome.only_in_a == alice - bob
    assert outcome.only_in_b == bob - alice
    print(f"set sizes        : |A| = {len(alice)}, |B| = {len(bob)}")
    print(f"difference       : {outcome.difference_size} items")
    print(f"coded symbols    : {outcome.symbols_used}")
    print(f"overhead         : {outcome.overhead:.2f} symbols/difference "
          "(paper: 1.35-1.72)")
    print(f"bytes on wire    : {outcome.bytes_on_wire:,} "
          f"(vs {len(alice) * 32:,} to send the whole set)")
    saving = len(alice) * 32 / outcome.bytes_on_wire
    print(f"saving           : {saving:,.0f}x less traffic than a full transfer")

    # Same workload shape, every baseline the paper compares against
    # (Fig 7).  7-byte items: CPI's field holds at most 56-bit items and
    # PinSketch's largest built-in field is GF(2^64), so that width is
    # the one every scheme can represent.
    small_shared = [rng.randbytes(7) for _ in range(2_000)]
    small_a = set(small_shared) | {rng.randbytes(7) for _ in range(20)}
    small_b = set(small_shared) | {rng.randbytes(7) for _ in range(20)}
    print("\nsame 40-item difference, every registered scheme:")
    for scheme in available_schemes():
        result = reconcile(small_a, small_b, scheme=scheme)
        assert result.only_in_a == small_a - small_b
        assert result.only_in_b == small_b - small_a
        print(f"  {scheme:22s} {result.bytes_on_wire:>9,} bytes "
              f"({result.rounds} round{'s' if result.rounds > 1 else ''})")


if __name__ == "__main__":
    main()
