#!/usr/bin/env python3
"""Universality demo: one coded-symbol stream serves every peer (§1, §4.1).

A social-media server (Alice) holds the canonical post set and keeps one
*universal* cached prefix of coded symbols.  Three followers with
different staleness reconcile off byte-identical prefixes of that one
stream — Alice never re-encodes per peer.  When new posts arrive she
patches the cached prefix incrementally (linearity) instead of
rebuilding it.

Run:  python examples/multi_peer_gossip.py
"""

import random
import time

from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec

POST_BYTES = 64


def reconcile_from_stream(codec, alice_prefix, bob_items):
    """Bob decodes against a prefix of Alice's universal stream."""
    bob = RatelessEncoder(codec, bob_items)
    decoder = RatelessDecoder(codec)
    for remote in alice_prefix:
        decoder.add_subtracted(remote, bob.produce_next())
        if decoder.decoded:
            break
    return decoder


def main() -> None:
    rng = random.Random(99)
    codec = SymbolCodec(POST_BYTES)
    posts = [rng.randbytes(POST_BYTES) for _ in range(5_000)]

    alice = RatelessEncoder(codec, posts)
    # Alice materialises one universal prefix, usable by everyone.
    prefix = [cell.copy() for cell in alice.produce(600)]
    print(f"Alice cached {len(prefix)} coded symbols for {len(posts)} posts\n")

    followers = {
        "fresh follower (5 missing)": set(posts[5:]),
        "stale follower (40 missing)": set(posts[40:]),
        "diverged follower (30 missing, 10 own)": set(posts[30:])
        | {rng.randbytes(POST_BYTES) for _ in range(10)},
    }
    for name, items in followers.items():
        decoder = reconcile_from_stream(codec, prefix, items)
        assert decoder.decoded
        missing = set(decoder.remote_items())
        extra = set(decoder.local_items())
        print(f"{name}")
        print(f"  symbols consumed : {decoder.symbols_received} "
              f"(same universal stream, overhead "
              f"{decoder.symbols_received / max(1, len(missing) + len(extra)):.2f})")
        print(f"  posts to fetch   : {len(missing)}, posts to push: {len(extra)}\n")

    # --- incremental maintenance (the §7.3 '11 ms per block' trick) --------
    new_posts = [rng.randbytes(POST_BYTES) for _ in range(25)]
    start = time.perf_counter()
    for post in new_posts:
        alice.add_item(post)
    patch_ms = (time.perf_counter() - start) * 1e3
    fresh = RatelessEncoder(codec, posts + new_posts)
    assert [alice.cached(i) for i in range(600)] == fresh.produce(600)
    print(f"added {len(new_posts)} posts: cached prefix patched in "
          f"{patch_ms:.2f} ms without re-encoding {len(posts)} posts")


if __name__ == "__main__":
    main()
