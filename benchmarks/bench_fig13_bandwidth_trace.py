"""Figure 13: bandwidth-vs-time trace when syncing 1 block of staleness.

Paper: Rateless IBLT's first coded symbol lands 1 RTT after the socket
opens and the stream runs at line rate immediately; state heal idles the
link for ~11 lock-step RTTs before any useful leaf arrives.
"""

from bench_util import by_scale
from bench_util import report_table
from repro.baselines.merkle import state_heal
from repro.ledger import Chain, build_scenario
from repro.ledger.workload import measure_riblt_plan
from repro.net.protocols import simulate_riblt_sync, simulate_state_heal

BANDWIDTH = 20e6
DELAY = 0.05
ACCOUNTS = by_scale(2_000, 20_000, 60_000)


def test_fig13_bandwidth_timeseries(benchmark):
    state = {}

    def run():
        chain = Chain(num_accounts=ACCOUNTS, seed=13, updates_per_block=40)
        chain.advance(1)
        scenario = build_scenario(chain, staleness_blocks=1)
        plan = measure_riblt_plan(scenario, calibrated_line_rate_bps=170e6)
        plan.chunk_symbols = 32  # finer chunks for a smoother trace
        riblt = simulate_riblt_sync(plan, BANDWIDTH, DELAY, trace_bin_seconds=0.05)
        report = state_heal(scenario.bob_store.copy(), scenario.alice_trie)
        heal = simulate_state_heal(report, BANDWIDTH, DELAY, trace_bin_seconds=0.05)
        state.update(riblt=riblt, heal=heal, d=scenario.difference_size)
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)
    riblt, heal = state["riblt"], state["heal"]
    horizon = max(heal.completion_time, riblt.completion_time) + 0.1
    riblt_series = dict(riblt.trace.series(until_s=horizon))
    heal_series = dict(heal.trace.series(until_s=horizon))
    lines = [f"{'t (s)':>6} {'riblt Mbps':>11} {'heal Mbps':>10}"]
    t = 0.0
    while t <= min(horizon, 2.5):
        lines.append(
            f"{t:>6.2f} {riblt_series.get(round(t, 2), 0.0):>11.2f} "
            f"{heal_series.get(round(t, 2), 0.0):>10.2f}"
        )
        t = round(t + 0.05, 2)
    lines.append(
        f"d={state['d']}; riblt done at {riblt.completion_time:.3f}s, "
        f"heal at {heal.completion_time:.3f}s over {heal.round_trips} RTT-rounds "
        "(paper: riblt starts at 1 RTT and is 8.2x faster at 1-block staleness)"
    )
    report_table("Fig 13 — bandwidth usage, 1-block staleness", lines)

    # riblt data starts arriving at ~1 RTT (0.1 s) and not before
    first_riblt = min(t for t, mbps in riblt_series.items() if mbps > 0)
    assert 0.05 <= first_riblt <= 0.2
    # heal trickles over many rounds: its completion takes several RTTs
    assert heal.completion_time > 4 * (2 * DELAY)
    assert riblt.completion_time < heal.completion_time / 3
