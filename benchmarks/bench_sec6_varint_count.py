"""§6 claim: the delta-compressed count field costs ≈1.05 bytes/symbol.

Paper: "the count field takes only 1.05 bytes per coded symbol on average
when encoding a set of 10^6 items into 10^4 coded symbols" — versus the
8 fixed bytes regular IBLT ships per cell.
"""

import random

from bench_util import by_scale, make_items
from bench_util import report_table
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.core.wire import SymbolStreamWriter

CASES = by_scale(
    [(10_000, 100)],
    [(100_000, 1_000), (100_000, 10_000), (10_000, 1_000)],
    [(1_000_000, 10_000), (100_000, 10_000), (100_000, 1_000)],
)


def test_sec6_count_field_compression(benchmark):
    rows = []

    def run():
        for n, symbols in CASES:
            rng = random.Random(n ^ symbols)
            items = make_items(rng, n, 8)
            codec = SymbolCodec(8)
            encoder = RatelessEncoder(codec, items)
            writer = SymbolStreamWriter(codec, set_size=n)
            writer.header()
            for _ in range(symbols):
                writer.write(encoder.produce_next())
            rows.append((n, symbols, writer.mean_count_bytes))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'set size':>9} {'symbols':>8} {'count bytes/symbol':>19}"]
    lines += [f"{n:>9} {m:>8} {b:>19.3f}" for n, m, b in rows]
    lines.append(
        "paper: 1.05 bytes average (10^6 items -> 10^4 symbols); fixed-width: 8"
    )
    report_table("§6 — var-int count compression", lines)
    for n, m, mean_bytes in rows:
        assert mean_bytes < 2.0, f"count compression ineffective: {mean_bytes}"
