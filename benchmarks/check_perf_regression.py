#!/usr/bin/env python3
"""Gate: compare fresh ``BENCH_*.json`` records against the committed ones.

CI's perf-smoke job runs the throughput benches at ``REPRO_SCALE=quick``
(which writes ``BENCH_<name>.quick.json`` beside the committed
default-scale ``BENCH_<name>.json``) and then calls this script.  Rows
are matched on their workload key (``d`` / ``set_size`` / ``clients``)
and compared on their throughput-style metric; a row that fell below
``1/THRESHOLD`` of the committed value fails the job.

Differences in workload *scale* between profiles only ever make the
fresh quick run faster (smaller sets, same d), so the gate can miss a
regression hidden by scale but cannot fabricate one.  Unmatched rows
and missing fresh records are reported and skipped — not every bench
runs in CI.

Usage::

    python benchmarks/check_perf_regression.py --scale quick [name ...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Throughput regression tolerated before the gate trips: CI runners are
# slower and noisier than the machines that wrote the committed records.
THRESHOLD = 3.0

# (key field, metric field, higher_is_better) probed in order.
_METRICS = (
    ("throughput_per_s", True),
    ("symbols_per_s", True),
    ("seconds", False),
)
_KEYS = ("d", "set_size", "clients")


def _row_key(row: dict):
    for key in _KEYS:
        if key in row:
            return key, row[key]
    return None


def _metric(row: dict):
    for name, higher_better in _METRICS:
        if name in row:
            return name, float(row[name]), higher_better
    return None


def compare_records(committed: dict, fresh: dict) -> list[str]:
    """Human-readable failures (empty = this record passes)."""
    failures = []
    fresh_rows = {}
    for row in fresh.get("rows", []):
        key = _row_key(row)
        if key is not None:
            fresh_rows[key] = row
    compared = 0
    for row in committed.get("rows", []):
        key = _row_key(row)
        if key is None or key not in fresh_rows:
            continue
        baseline = _metric(row)
        current = _metric(fresh_rows[key])
        if baseline is None or current is None or baseline[0] != current[0]:
            continue
        name, base_value, higher_better = baseline
        _, new_value, _ = current
        if base_value <= 0 or new_value <= 0:
            continue
        compared += 1
        ratio = new_value / base_value if higher_better else base_value / new_value
        marker = "ok" if ratio * THRESHOLD >= 1.0 else "REGRESSION"
        print(
            f"  {key[0]}={key[1]:<10} {name}: committed {base_value:.4g}, "
            f"fresh {new_value:.4g}  ({ratio:.2f}x)  {marker}"
        )
        if ratio * THRESHOLD < 1.0:
            failures.append(
                f"{committed['bench']}: {key[0]}={key[1]} {name} fell to "
                f"{ratio:.2f}x of the committed record (threshold 1/{THRESHOLD:g})"
            )
    if compared == 0:
        print("  (no comparable rows)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick", help="fresh records' REPRO_SCALE")
    parser.add_argument(
        "names", nargs="*", help="bench names (default: every committed BENCH_*.json)"
    )
    args = parser.parse_args(argv)

    if args.names:
        committed_paths = [REPO_ROOT / f"BENCH_{name}.json" for name in args.names]
    else:
        committed_paths = sorted(
            path
            for path in REPO_ROOT.glob("BENCH_*.json")
            if path.suffixes == [".json"]  # skip BENCH_<name>.<scale>.json
        )
    failures: list[str] = []
    for committed_path in committed_paths:
        if not committed_path.exists():
            print(f"{committed_path.name}: missing committed record", file=sys.stderr)
            return 2
        name = committed_path.stem.removeprefix("BENCH_")
        suffix = "" if args.scale == "default" else f".{args.scale}"
        fresh_path = REPO_ROOT / f"BENCH_{name}{suffix}.json"
        print(f"{name}:")
        if not fresh_path.exists():
            print(f"  (no fresh {fresh_path.name}; skipped)")
            continue
        committed = json.loads(committed_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        failures.extend(compare_records(committed, fresh))
    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
