"""Subprocess sync client for the multi-worker throughput bench.

The workers row of ``bench_service_throughput.py`` measures whether a
``repro.cluster`` pool actually uses more than one core — which a
client running *inside* the bench process would mask: its decode work
competes with nothing and the GIL serialises whatever shares its
interpreter.  So each concurrent client is this script in its own
process.  It regenerates its workload deterministically from
``(seed, index)`` (no item bytes cross the pipe), reports ``READY``,
blocks until the parent broadcasts ``GO`` (so all clients start
together), syncs once, and prints one ``DONE`` line::

    DONE <symbols> <payload_bytes> <seconds>

Underscore-prefixed so pytest never collects it as a bench.
"""

import asyncio
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_util import make_items  # noqa: E402

from repro.service.client import sync  # noqa: E402


def client_workload(seed, index, set_size, difference, item_size):
    """Client ``index``'s item list — identical to what the in-process
    sweep in ``bench_service_throughput.py`` derives for client ``i``."""
    rng = random.Random(seed)
    base = make_items(rng, set_size + difference, item_size)
    server_items = base[:set_size]
    fresh = base[set_size:]
    half = difference // 2
    lo = (index * 7) % half
    missing = set(server_items[lo : lo + half])
    extras = fresh[(index * half) % len(fresh) :][:half]
    return [x for x in server_items if x not in missing] + extras


def main(argv):
    host, port, seed, index, set_size, difference, item_size = argv
    items = client_workload(
        int(seed), int(index), int(set_size), int(difference), int(item_size)
    )
    print("READY", flush=True)
    if sys.stdin.readline().strip() != "GO":
        return 1
    t0 = time.perf_counter()
    result = asyncio.run(sync(host, int(port), items))
    elapsed = time.perf_counter() - t0
    assert result.difference_size > 0
    print(f"DONE {result.symbols} {result.bytes_received} {elapsed:.6f}",
          flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
