"""Figure 14: completion time vs link bandwidth (fixed staleness).

Paper: state heal stops improving past ~20 Mbps — Bob's CPU cannot
process trie nodes any faster (compute-bound plateau) — while Rateless
IBLT keeps scaling until ~170 Mbps (one-core line rate), winning 4.8× at
10 Mbps and 16× at 100 Mbps.
"""

from bench_util import by_scale
from bench_util import report_table
from repro.baselines.merkle import state_heal
from repro.ledger import Chain, build_scenario
from repro.ledger.workload import measure_riblt_plan
from repro.net.protocols import simulate_riblt_sync, simulate_state_heal

DELAY = 0.05
ACCOUNTS = by_scale(3_000, 30_000, 120_000)
STALENESS = by_scale(20, 100, 400)
BANDWIDTHS = by_scale(
    [10e6, 100e6],
    [10e6, 20e6, 30e6, 50e6, 70e6, 100e6, float("inf")],
    [10e6, 20e6, 30e6, 40e6, 50e6, 70e6, 100e6, float("inf")],
)


def test_fig14_completion_vs_bandwidth(benchmark):
    rows = []

    def run():
        chain = Chain(num_accounts=ACCOUNTS, seed=14, updates_per_block=12)
        chain.advance(STALENESS)
        scenario = build_scenario(chain, STALENESS)
        plan = measure_riblt_plan(scenario, calibrated_line_rate_bps=170e6)
        report = state_heal(scenario.bob_store.copy(), scenario.alice_trie)
        for bandwidth in BANDWIDTHS:
            riblt = simulate_riblt_sync(plan, bandwidth, DELAY)
            heal = simulate_state_heal(report, bandwidth, DELAY)
            rows.append((bandwidth, riblt.completion_time, heal.completion_time))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'Mbps':>6} {'riblt (s)':>10} {'heal (s)':>10} {'speedup':>8}"]
    for bandwidth, rt, ht in rows:
        label = "inf" if bandwidth == float("inf") else f"{bandwidth / 1e6:.0f}"
        lines.append(f"{label:>6} {rt:>10.3f} {ht:>10.3f} {ht / rt:>8.1f}")
    lines.append(
        "paper: heal plateaus past ~20 Mbps (compute-bound); riblt keeps"
        " scaling; speedup grows 4.8x -> 16x"
    )
    report_table(
        f"Fig 14 — completion vs bandwidth ({STALENESS} blocks stale)", lines
    )

    by_bw = {bw: (rt, ht) for bw, rt, ht in rows}
    bws = sorted(b for b in by_bw if b != float("inf"))
    lo, hi = bws[0], bws[-1]
    # riblt keeps scaling: big gain from lo to hi bandwidth (the quick
    # profile's tiny difference is latency-bound, so the bar is lower)
    assert by_bw[hi][0] < by_bw[lo][0] * by_scale(0.9, 0.55, 0.55)
    # heal plateaus: small gain over the same range
    heal_gain = by_bw[lo][1] / by_bw[hi][1]
    riblt_gain = by_bw[lo][0] / by_bw[hi][0]
    assert heal_gain < riblt_gain
    # speedup grows with bandwidth
    assert by_bw[hi][1] / by_bw[hi][0] > by_bw[lo][1] / by_bw[lo][0]
