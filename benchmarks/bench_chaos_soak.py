"""Chaos soak: a client fleet through fault proxies must complete 100%.

The robustness claim of the service layer, stated as a benchmark: with
the default fault schedule (latency, jitter, partial writes, mid-frame
resets), per-worker admission caps small enough to force BUSY sheds,
and one worker SIGKILLed mid-run, every client sync still completes
with an exactly correct difference — the typed-error + retry machinery
absorbs all of it.  ``completion_rate`` below 1.0 is a test failure,
not a data point; CI's chaos-smoke job runs the quick profile of this
file and gates on exactly that assertion.

Results land in ``BENCH_chaos_soak.json``: wall-clock, completed
syncs/sec, and the fault ledger (BUSY waits, retries, proxy resets,
worker restarts) that proves the run actually hurt.
"""

import asyncio
import json
import random
import time

from bench_json import write_bench_json
from bench_util import by_scale, make_items, report_table
from repro.chaos import ChaosOrchestrator, default_schedule
from repro.cluster import ClusterConfig
from repro.service import RetryPolicy, sync

ITEM = 16
SET_SIZE = by_scale(400, 4_000, 12_000)
DIFFERENCE = by_scale(24, 128, 512)
CLIENTS = by_scale(8, 24, 48)
NUM_WORKERS = 2
NUM_SHARDS = 4
SCHEDULE_SEED = 0xC405
WORKLOAD_SEED = 0x50A4
MAX_CONCURRENT = 3  # per worker: low enough that the fleet gets shed
BUSY_RETRY_AFTER = 0.05
KILL_AFTER = 1 / 3  # SIGKILL worker 1 once this fraction has completed
CLIENT_IDLE_TIMEOUT = 5.0
RETRY_ATTEMPTS = 40


def _client_sets(server_items, fresh, k):
    """K client sets, each missing ``half`` server items and owning
    ``half`` extras, rotated so no two clients share a difference."""
    half = DIFFERENCE // 2
    sets = []
    for i in range(k):
        lo = (i * 7) % max(1, len(server_items) - half)
        missing = set(server_items[lo : lo + half])
        extras = fresh[(i * half) % max(1, len(fresh) - half) :][:half]
        client_items = [x for x in server_items if x not in missing] + extras
        sets.append((client_items, missing))
    return sets


async def _soak(server_items, fresh):
    schedule = default_schedule(SCHEDULE_SEED)
    config = ClusterConfig(
        num_workers=NUM_WORKERS,
        fsync=False,
        restart_backoff=0.05,
        max_concurrent_sessions=MAX_CONCURRENT,
        busy_retry_after=BUSY_RETRY_AFTER,
    )
    clients = _client_sets(server_items, fresh, CLIENTS)
    completed = 0
    killed = {"pid": None}

    async with ChaosOrchestrator(
        server_items, schedule=schedule, config=config, num_shards=NUM_SHARDS
    ) as orch:
        host, port = orch.entry_address

        async def one_client(k, items):
            nonlocal completed
            retry = RetryPolicy(
                attempts=RETRY_ATTEMPTS,
                base_delay=0.05,
                max_delay=0.5,
                seed=1_000 + k,
                retry_frame_errors=True,
            )
            result = await sync(
                host,
                port,
                items,
                retry=retry,
                idle_timeout=CLIENT_IDLE_TIMEOUT,
                max_symbols=1 << 14,
            )
            completed += 1
            if killed["pid"] is None and completed >= max(1, int(CLIENTS * KILL_AFTER)):
                # One worker SIGKILL mid-run, composed with the wire
                # faults: the supervisor restarts it behind the same
                # proxy port and later clients route through as usual.
                killed["pid"] = orch.kill_worker(1)
            return result

        start = time.perf_counter()
        results = await asyncio.gather(
            *(one_client(k, items) for k, (items, _) in enumerate(clients)),
            return_exceptions=True,
        )
        elapsed = time.perf_counter() - start

        failures = [r for r in results if isinstance(r, BaseException)]
        ok = [r for r in results if not isinstance(r, BaseException)]
        correct = sum(
            1
            for r, (_, missing) in zip(results, clients)
            if not isinstance(r, BaseException) and r.only_in_server == missing
        )
        ledger = {
            "completed": len(ok),
            "correct": correct,
            "failures": [repr(f) for f in failures[:5]],
            "busy_waits": sum(r.busy_waits for r in ok),
            "retries": sum(r.attempts - 1 for r in ok),
            "proxy": orch.proxy_stats(),
            "restarts": list(orch.restart_counts),
            "worker_killed": killed["pid"] is not None,
        }
    return elapsed, ledger


def test_chaos_soak(benchmark):
    rng = random.Random(WORKLOAD_SEED)
    base = make_items(rng, SET_SIZE + CLIENTS * DIFFERENCE, ITEM)
    server_items = base[:SET_SIZE]
    fresh = base[SET_SIZE:]
    rows = []

    def run():
        elapsed, ledger = asyncio.run(_soak(server_items, fresh))
        rows.append(
            {
                "d": "soak",
                "set_size": SET_SIZE,
                "clients": CLIENTS,
                "seconds": elapsed,
                "throughput_per_s": ledger["completed"] / elapsed,
                "completion_rate": ledger["completed"] / CLIENTS,
                "busy_waits": ledger["busy_waits"],
                "retries": ledger["retries"],
                "proxy_resets": ledger["proxy"].get("resets", 0),
                "proxy_connections": ledger["proxy"].get("connections", 0),
                "worker_restarts": sum(ledger["restarts"]),
            }
        )
        return ledger

    ledger = benchmark.pedantic(run, rounds=1, iterations=1)
    row = rows[0]
    report_table(
        f"Chaos soak — {CLIENTS} clients through fault proxies "
        f"(N={SET_SIZE}, d={DIFFERENCE}, {NUM_WORKERS} workers, "
        f"cap {MAX_CONCURRENT}/worker, 1 SIGKILL)",
        [
            f"{'completed':>12} {'seconds':>9} {'syncs/s':>9} "
            f"{'busy':>6} {'retries':>8} {'resets':>7} {'restarts':>9}",
            f"{ledger['completed']:>9}/{CLIENTS:<2} {row['seconds']:>9.2f} "
            f"{row['throughput_per_s']:>9.2f} {row['busy_waits']:>6} "
            f"{row['retries']:>8} {row['proxy_resets']:>7} "
            f"{row['worker_restarts']:>9}",
        ],
    )
    write_bench_json(
        "chaos_soak",
        rows=rows,
        meta={
            "set_size": SET_SIZE,
            "difference": DIFFERENCE,
            "clients": CLIENTS,
            "num_workers": NUM_WORKERS,
            "num_shards": NUM_SHARDS,
            "max_concurrent_sessions": MAX_CONCURRENT,
            "busy_retry_after": BUSY_RETRY_AFTER,
            "retry_attempts": RETRY_ATTEMPTS,
            "schedule": json.loads(default_schedule(SCHEDULE_SEED).to_json()),
        },
    )
    # The gate: 100% completion, every diff exactly right, and the run
    # must actually have been hostile (faults observed, worker killed).
    assert ledger["failures"] == [], ledger["failures"]
    assert ledger["completed"] == CLIENTS
    assert ledger["correct"] == CLIENTS
    assert ledger["worker_killed"]
    assert row["proxy_resets"] > 0, "fault schedule never fired a reset"
    assert row["busy_waits"] > 0, "admission cap never shed anyone"
