"""Figure 4: communication overhead η* versus the mapping parameter α.

Paper: the density-evolution curve has a shallow minimum at α ≈ 0.64
(η* = 1.31); α = 0.5 costs 1.35 (within 3%); Monte Carlo points converge
to the DE curve as d grows, slowest for large α.
"""

import numpy as np

from bench_util import by_scale
from bench_util import report_table
from repro.analysis.density_evolution import eta_star
from repro.analysis.montecarlo import overhead_stats

ALPHAS = by_scale(
    [0.3, 0.5, 0.8],
    [0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.64, 0.7, 0.8, 0.9, 0.95],
    list(np.round(np.arange(0.05, 1.0, 0.05), 2)),
)
MC_ALPHAS = by_scale([0.5], [0.3, 0.5, 0.7, 0.95], [0.2, 0.35, 0.5, 0.64, 0.8, 0.95])
MC_SIZES = by_scale(
    [(100, 5)], [(100, 20), (1000, 8)], [(100, 100), (1000, 30), (10000, 10)]
)


def test_fig04_density_evolution_curve(benchmark):
    rows = {}

    def run():
        for alpha in ALPHAS:
            rows[alpha] = eta_star(alpha)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'alpha':>8} {'eta* (DE)':>10}"]
    lines += [f"{alpha:8.2f} {eta:10.4f}" for alpha, eta in sorted(rows.items())]
    best = min(rows, key=rows.get)
    lines.append(
        f"min at alpha={best:.2f} (eta*={rows[best]:.4f}); "
        f"paper: optimum 0.64 -> 1.31, chosen 0.5 -> 1.35"
    )
    report_table("Fig 4 — DE overhead vs alpha", lines)
    assert abs(rows.get(0.5, eta_star(0.5)) - 1.35) < 0.01


def test_fig04_monte_carlo_points(benchmark):
    results = {}

    def run():
        for alpha in MC_ALPHAS:
            for d, runs in MC_SIZES:
                stats = overhead_stats(d, runs=runs, alpha=alpha, seed=4)
                results[(alpha, d)] = stats.mean
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'alpha':>8} {'d':>8} {'sim mean':>10} {'DE':>8} {'sim/DE':>8}"]
    for (alpha, d), mean in sorted(results.items()):
        de = eta_star(alpha)
        lines.append(f"{alpha:8.2f} {d:8d} {mean:10.3f} {de:8.3f} {mean / de:8.2f}")
    report_table("Fig 4 — Monte Carlo vs DE", lines)
    # paper: for alpha <= 0.55 simulations sit within ~10% of DE already
    # at moderate d; large alpha converges more slowly.
    for (alpha, d), mean in results.items():
        if alpha <= 0.55 and d >= 100:
            assert mean < 1.25 * eta_star(alpha)
