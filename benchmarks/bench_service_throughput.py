"""Service throughput: coded symbols/sec served to K concurrent clients.

The serving claim behind the service subsystem: one warm encoder bank
per shard amortises encoding across every client, so aggregate
symbols/sec *grows* with concurrency until the event loop saturates —
clients beyond the first mostly re-read cached cells.

Results land in ``BENCH_service_throughput.json``.
"""

import asyncio
import random
import time

from bench_json import write_bench_json
from bench_util import by_scale, make_items, report_table
from repro.service.client import sync
from repro.service.server import ReconciliationServer, ServerConfig

ITEM = 8
SET_SIZE = by_scale(2_000, 20_000, 50_000)
DIFFERENCE = by_scale(64, 512, 2_048)
CLIENT_COUNTS = by_scale([1, 4], [1, 4, 8, 16], [1, 8, 16, 32])
NUM_SHARDS = 4


def _workload(rng):
    base = make_items(rng, SET_SIZE + DIFFERENCE, ITEM)
    server_items = base[:SET_SIZE]
    fresh = base[SET_SIZE:]
    return server_items, fresh


async def _serve_k_clients(server_items, fresh, k):
    """One server, k concurrent clients with distinct differences."""
    config = ServerConfig(block_size=128, max_symbols_per_shard=None)
    server = ReconciliationServer(server_items, num_shards=NUM_SHARDS, config=config)
    host, port = await server.start()
    half = DIFFERENCE // 2
    clients = []
    for i in range(k):
        # Each client misses `half` server items and owns `half` extras,
        # rotated so no two clients share the exact difference.
        lo = (i * 7) % half
        missing = server_items[lo : lo + half]
        extras = fresh[(i * half) % len(fresh) :][:half]
        client_items = [x for x in server_items if x not in set(missing)] + extras
        clients.append(client_items)
    start = time.perf_counter()
    results = await asyncio.gather(
        *(sync(host, port, items) for items in clients)
    )
    elapsed = time.perf_counter() - start
    symbols = sum(r.symbols for r in results)
    payload_bytes = sum(r.bytes_received for r in results)
    await server.close()
    for r in results:
        assert r.difference_size > 0
    return symbols, payload_bytes, elapsed


def test_service_throughput_vs_clients(benchmark):
    rng = random.Random(0x5E51CE)
    server_items, fresh = _workload(rng)
    rows = []

    def run():
        for k in CLIENT_COUNTS:
            symbols, payload_bytes, elapsed = asyncio.run(
                _serve_k_clients(server_items, fresh, k)
            )
            rows.append(
                {
                    "clients": k,
                    "symbols_absorbed": symbols,
                    "payload_bytes": payload_bytes,
                    "seconds": elapsed,
                    "symbols_per_s": symbols / elapsed,
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'clients':>8} {'symbols':>10} {'seconds':>9} {'symbols/s':>12}"]
    lines += [
        f"{r['clients']:>8} {r['symbols_absorbed']:>10} "
        f"{r['seconds']:>9.3f} {r['symbols_per_s']:>12.0f}"
        for r in rows
    ]
    report_table(
        f"Service — symbols/sec vs concurrent clients "
        f"(N={SET_SIZE}, d={DIFFERENCE}, {NUM_SHARDS} shards)",
        lines,
    )
    write_bench_json(
        "service_throughput",
        rows=rows,
        meta={
            "set_size": SET_SIZE,
            "difference": DIFFERENCE,
            "num_shards": NUM_SHARDS,
        },
    )
    assert all(r["symbols_per_s"] > 0 for r in rows)
