"""Service throughput: coded symbols/sec served to K concurrent clients.

The serving claim behind the service subsystem: one warm encoder bank
per shard amortises encoding across every client, so aggregate
symbols/sec *grows* with concurrency until the event loop saturates —
clients beyond the first mostly re-read cached cells.

The restart bench pins the durability story's perf half: a warm
restart (``repro.durable`` snapshot restore — pure parsing, no hashing,
no walking) must be at least 5x faster than cold re-ingest at serving
its first coded-symbol block, and bit-identical on the wire.

Results land in ``BENCH_service_throughput.json`` and
``BENCH_service_restart.json``.
"""

import asyncio
import os
import random
import sys
import time
from pathlib import Path

from bench_json import write_bench_json
from bench_util import SCALE, by_scale, make_items, report_table
from repro.service.client import sync
from repro.service.defaults import SERVICE_HASHER
from repro.service.server import ReconciliationServer, ServerConfig

ITEM = 8
SET_SIZE = by_scale(2_000, 20_000, 50_000)
DIFFERENCE = by_scale(64, 512, 2_048)
CLIENT_COUNTS = by_scale([1, 4], [1, 4, 8, 16], [1, 8, 16, 32])
NUM_SHARDS = 4
RESTART_CELLS = 256  # first-block depth each restart flavour must serve
WARM_SPEEDUP_FLOOR = 5.0

WORKLOAD_SEED = 0x5E51CE
WORKER_COUNTS = by_scale([1, 2], [1, 2, 4], [1, 2, 4, 8])
WORKER_CLIENTS = by_scale(2, 8, 16)
POOL_SHARDS = 8  # constant across worker counts: only the pool size varies
WORKER_SPEEDUP_FLOOR = 1.8
_SYNC_WORKER = Path(__file__).resolve().parent / "_bench_sync_worker.py"


def _workload(rng):
    base = make_items(rng, SET_SIZE + DIFFERENCE, ITEM)
    server_items = base[:SET_SIZE]
    fresh = base[SET_SIZE:]
    return server_items, fresh


async def _serve_k_clients(server_items, fresh, k):
    """One server, k concurrent clients with distinct differences."""
    config = ServerConfig(block_size=128, max_symbols_per_shard=None)
    server = ReconciliationServer(server_items, num_shards=NUM_SHARDS, config=config)
    host, port = await server.start()
    half = DIFFERENCE // 2
    clients = []
    for i in range(k):
        # Each client misses `half` server items and owns `half` extras,
        # rotated so no two clients share the exact difference.
        lo = (i * 7) % half
        missing = set(server_items[lo : lo + half])
        extras = fresh[(i * half) % len(fresh) :][:half]
        client_items = [x for x in server_items if x not in missing] + extras
        clients.append(client_items)
    start = time.perf_counter()
    results = await asyncio.gather(
        *(sync(host, port, items) for items in clients)
    )
    elapsed = time.perf_counter() - start
    symbols = sum(r.symbols for r in results)
    payload_bytes = sum(r.bytes_received for r in results)
    await server.close()
    for r in results:
        assert r.difference_size > 0
    return symbols, payload_bytes, elapsed


async def _pool_k_clients(server_items, num_workers, k):
    """A ``repro.cluster`` pool of ``num_workers`` processes serving
    ``k`` *subprocess* clients (see ``_bench_sync_worker.py``) — both
    sides of the socket get their own cores, so the aggregate rate
    reflects real parallelism, not GIL interleaving."""
    from repro.cluster import ClusterConfig, ClusterSupervisor

    config = ClusterConfig(
        num_workers=num_workers,
        fsync=False,
        block_size=128,
        max_symbols_per_shard=None,
    )
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    async with ClusterSupervisor(
        server_items, num_shards=POOL_SHARDS, config=config
    ) as sup:
        host, port = sup.entry_address
        clients = [
            await asyncio.create_subprocess_exec(
                sys.executable,
                str(_SYNC_WORKER),
                host,
                str(port),
                str(WORKLOAD_SEED),
                str(i),
                str(SET_SIZE),
                str(DIFFERENCE),
                str(ITEM),
                stdin=asyncio.subprocess.PIPE,
                stdout=asyncio.subprocess.PIPE,
                env=env,
            )
            for i in range(k)
        ]
        for proc in clients:
            ready = (await proc.stdout.readline()).decode().strip()
            assert ready == "READY", ready
        # Workload generation is done everywhere; the timed window is
        # GO-broadcast to last DONE.
        start = time.perf_counter()
        for proc in clients:
            proc.stdin.write(b"GO\n")
            await proc.stdin.drain()
        symbols = payload_bytes = 0
        for proc in clients:
            done = (await proc.stdout.readline()).decode().split()
            assert done and done[0] == "DONE", done
            symbols += int(done[1])
            payload_bytes += int(done[2])
        elapsed = time.perf_counter() - start
        for proc in clients:
            proc.stdin.close()
            await proc.wait()
    return symbols, payload_bytes, elapsed


def test_service_throughput_vs_clients(benchmark):
    rng = random.Random(WORKLOAD_SEED)
    server_items, fresh = _workload(rng)
    rows = []

    def run():
        for k in CLIENT_COUNTS:
            symbols, payload_bytes, elapsed = asyncio.run(
                _serve_k_clients(server_items, fresh, k)
            )
            rows.append(
                {
                    "clients": k,
                    "symbols_absorbed": symbols,
                    "payload_bytes": payload_bytes,
                    "seconds": elapsed,
                    "symbols_per_s": symbols / elapsed,
                }
            )
        for w in WORKER_COUNTS:
            symbols, payload_bytes, elapsed = asyncio.run(
                _pool_k_clients(server_items, w, WORKER_CLIENTS)
            )
            rows.append(
                {
                    "d": f"workers-{w}",
                    "clients": WORKER_CLIENTS,
                    "set_size": SET_SIZE,
                    "symbols_absorbed": symbols,
                    "payload_bytes": payload_bytes,
                    "seconds": elapsed,
                    "symbols_per_s": symbols / elapsed,
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    client_rows = [r for r in rows if "d" not in r]
    worker_rows = [r for r in rows if "d" in r]
    lines = [f"{'clients':>8} {'symbols':>10} {'seconds':>9} {'symbols/s':>12}"]
    lines += [
        f"{r['clients']:>8} {r['symbols_absorbed']:>10} "
        f"{r['seconds']:>9.3f} {r['symbols_per_s']:>12.0f}"
        for r in client_rows
    ]
    report_table(
        f"Service — symbols/sec vs concurrent clients "
        f"(N={SET_SIZE}, d={DIFFERENCE}, {NUM_SHARDS} shards)",
        lines,
    )
    lines = [f"{'workers':>8} {'symbols':>10} {'seconds':>9} {'symbols/s':>12}"]
    lines += [
        f"{r['d'].removeprefix('workers-'):>8} {r['symbols_absorbed']:>10} "
        f"{r['seconds']:>9.3f} {r['symbols_per_s']:>12.0f}"
        for r in worker_rows
    ]
    report_table(
        f"Cluster — aggregate symbols/sec vs worker processes "
        f"(N={SET_SIZE}, d={DIFFERENCE}, {POOL_SHARDS} shards, "
        f"{WORKER_CLIENTS} subprocess clients)",
        lines,
    )
    write_bench_json(
        "service_throughput",
        rows=rows,
        meta={
            "set_size": SET_SIZE,
            "difference": DIFFERENCE,
            "num_shards": NUM_SHARDS,
            "pool_shards": POOL_SHARDS,
            "pool_clients": WORKER_CLIENTS,
            "hasher": SERVICE_HASHER,
        },
    )
    assert all(r["symbols_per_s"] > 0 for r in rows)
    # The scaling claim needs cores to scale onto: a 1-core runner
    # serialises the workers and measures only process overhead, so the
    # floor is asserted where the parallelism physically exists.
    if SCALE == "default" and (os.cpu_count() or 1) >= 4 and len(worker_rows) > 1:
        base = worker_rows[0]["symbols_per_s"]
        best = max(r["symbols_per_s"] for r in worker_rows[1:])
        assert best >= WORKER_SPEEDUP_FLOOR * base, (
            f"pool only {best / base:.2f}x over one worker "
            f"(floor {WORKER_SPEEDUP_FLOOR}x)"
        )


def test_service_restart_cold_vs_warm(benchmark, tmp_path):
    """Cold re-ingest vs durable warm restore, to first served block."""
    from repro.api.registry import get_scheme
    from repro.durable import open_durable
    from repro.protocol.machine import codec_of, hash64_of
    from repro.service.backends import WarmRibltBackend
    from repro.service.shard import ShardedSet

    rng = random.Random(0xD07A81)
    items = make_items(rng, SET_SIZE, ITEM)
    data_dir = tmp_path / "restart"

    # Checkpoint once so the snapshot holds the served cell prefix.
    seeded = open_durable(data_dir, items, num_shards=NUM_SHARDS)
    for shard in range(NUM_SHARDS):
        seeded.open_stream(shard).next_block(RESTART_CELLS)
    seeded.checkpoint()
    seeded.close()

    def first_blocks(backend):
        return [
            backend.open_stream(shard).next_block(RESTART_CELLS)
            for shard in range(NUM_SHARDS)
        ]

    def cold_start():
        handle = get_scheme("riblt", symbol_size=ITEM)
        codec = codec_of(handle)
        sharded = ShardedSet(hash64_of(handle, codec), NUM_SHARDS, items)
        backend = WarmRibltBackend(handle, sharded, codec)
        return first_blocks(backend)

    def warm_start():
        backend = open_durable(data_dir)
        blocks = first_blocks(backend)
        backend.close()
        return blocks

    rows = []

    def run():
        cold = warm = None
        for flavour, start in (("restart-cold", cold_start),
                               ("restart-warm", warm_start)):
            best = float("inf")
            blocks = None
            for _ in range(3):
                t0 = time.perf_counter()
                blocks = start()
                best = min(best, time.perf_counter() - t0)
            rows.append(
                {
                    "d": flavour,
                    "set_size": SET_SIZE,
                    "seconds": best,
                    "throughput_per_s": SET_SIZE / best,
                }
            )
            if flavour == "restart-cold":
                cold = blocks
            else:
                warm = blocks
        # Untimed: the warm restore is the same stream, bit for bit.
        assert warm == cold
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = rows[0]["seconds"] / rows[1]["seconds"]
    lines = [f"{'flavour':>14} {'seconds':>9} {'items/s':>12}"]
    lines += [
        f"{r['d']:>14} {r['seconds']:>9.4f} {r['throughput_per_s']:>12.0f}"
        for r in rows
    ]
    lines.append(f"{'speedup':>14} {speedup:>9.1f}x")
    report_table(
        f"Service restart — cold re-ingest vs durable warm restore "
        f"(N={SET_SIZE}, {NUM_SHARDS} shards, {RESTART_CELLS} cells/shard)",
        lines,
    )
    write_bench_json(
        "service_restart",
        rows=rows,
        meta={
            "set_size": SET_SIZE,
            "num_shards": NUM_SHARDS,
            "cells_per_shard": RESTART_CELLS,
            "warm_speedup": speedup,
        },
    )
    # The committed claim is pinned at the committed scale only: quick
    # runs amortise the fixed open() cost over too few items.
    if SCALE == "default":
        assert speedup >= WARM_SPEEDUP_FLOOR, (
            f"warm restart only {speedup:.1f}x faster than cold "
            f"(floor {WARM_SPEEDUP_FLOOR}x)"
        )
