"""Figure 11: slowdown when encoding items of growing size ℓ.

Paper: sublinear at first (mapping costs amortise: <4× slowdown from 8 B
to 128 B), then linear beyond ~2 KB where XOR dominates — i.e. the data
rate in MB/s becomes constant (124.8 MB/s for their Go encoder; ours is
interpreter-speed, the *shape* is what reproduces).
"""

import random
import time

from bench_util import by_scale, make_items
from bench_util import report_table
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec

SIZES = by_scale(
    [8, 128, 2048],
    [8, 32, 128, 512, 2048, 8192, 32768],
    [8, 32, 128, 512, 2048, 8192, 32768],
)
N = by_scale(200, 1_000, 2_000)
D = by_scale(100, 1000, 1000)


def encode_seconds(rng, item_size):
    items = make_items(rng, N, item_size)
    encoder = RatelessEncoder(SymbolCodec(item_size), items)
    symbols = int(1.4 * D)
    start = time.perf_counter()
    for _ in range(symbols):
        encoder.produce_next()
    return time.perf_counter() - start


def test_fig11_item_size_slowdown(benchmark):
    rng = random.Random(110)
    rows = []

    def run():
        base = None
        for item_size in SIZES:
            elapsed = encode_seconds(rng, item_size)
            if base is None:
                base = elapsed
            data_rate = N * item_size / elapsed / 1e6
            rows.append((item_size, elapsed, elapsed / base, data_rate))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'item bytes':>10} {'time (s)':>10} {'slowdown':>9} {'MB/s':>9}"]
    lines += [
        f"{size:>10} {t:>10.4f} {slow:>9.2f} {rate:>9.1f}"
        for size, t, slow, rate in rows
    ]
    lines.append(
        "paper: slowdown sublinear below ~2KB, then linear (constant MB/s);"
        " 124.8 MB/s on their 2016 CPU for the Go encoder"
    )
    report_table("Fig 11 — slowdown vs item size (d=1000)", lines)

    by_size = {size: slow for size, _, slow, _ in rows}
    if 128 in by_size:
        # 16x more bytes should cost well below 16x more time
        assert by_size[128] < 8.0
    if 2048 in by_size and 32768 in by_size:
        # approaching the linear regime: growing cost, but still well
        # under byte-proportional (our knee sits later than the paper's
        # 2 KB because interpreter overhead dwarfs the XOR; see
        # EXPERIMENTS.md)
        ratio = by_size[32768] / by_size[2048]
        assert 2.0 < ratio < 80.0
        assert by_size[32768] > by_size[512]
