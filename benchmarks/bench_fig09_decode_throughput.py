"""Figure 9: decoding throughput and time vs set difference.

Paper (8-byte items): Rateless IBLT decodes in O(m log m) — throughput
drops only ~2× while d grows 10^4×; PinSketch decoding is quadratic, so
its throughput collapses (10-10^7× slower).  The decoder does not depend
on the set size, only on d.

The rateless sweep ingests the precomputed stream through the block
fast path (``RatelessDecoder.add_coded_block`` with its default
early-stop chunking, ``decoder.DEFAULT_STOP_CHUNK`` cells); the
reference per-cell path is timed alongside for the recorded speedup.
Results land in ``BENCH_fig09_riblt_decode.json``.
"""

import random
import time

from bench_json import write_bench_json
from bench_util import by_scale, make_items
from bench_util import report_table
from repro.baselines.pinsketch import GF2m, PinSketch
from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import make_hasher

ITEM = 8

# The paper's SipHash checksum, like the service layer: batched decode
# verification rides its uint64-lane engine (see repro.service.defaults).
HASHER = "siphash"
RIBLT_DIFFS = by_scale(
    [10, 100], [1, 10, 100, 1000, 10000], [1, 10, 100, 1000, 10000, 100000]
)
PIN_DIFFS = by_scale([1, 4], [1, 4, 16, 64, 128], [1, 4, 16, 64, 128, 256])


def riblt_decode_stream(rng, d):
    """Precompute the subtracted stream of a d-item difference."""
    codec = SymbolCodec(ITEM, hasher=make_hasher(HASHER))
    items = make_items(rng, d, ITEM)
    encoder = RatelessEncoder(codec, items)
    return codec, encoder.produce_block(int(2.2 * d) + 8)


def riblt_decode_time(rng, d):
    """Time to peel a d-item difference via the block fast path."""
    codec, bank = riblt_decode_stream(rng, d)
    decoder = RatelessDecoder(codec)
    start = time.perf_counter()
    decoder.add_coded_block(bank, stop_when_decoded=True)
    elapsed = time.perf_counter() - start
    assert decoder.decoded
    return elapsed


def riblt_decode_time_reference(rng, d):
    """Same workload through the reference per-cell path."""
    codec, bank = riblt_decode_stream(rng, d)
    decoder = RatelessDecoder(codec)
    cells = bank.cells()
    start = time.perf_counter()
    for cell in cells:
        decoder.add_coded_symbol(cell)
        if decoder.decoded:
            break
    elapsed = time.perf_counter() - start
    assert decoder.decoded
    return elapsed


def pinsketch_decode_time(rng, field, d):
    elements = set()
    while len(elements) < d:
        value = rng.getrandbits(64)
        if value:
            elements.add(value)
    sketch = PinSketch.from_items(elements, field, capacity=max(1, int(1.0 * d)))
    start = time.perf_counter()
    decoded = sketch.decode()
    elapsed = time.perf_counter() - start
    assert sorted(decoded) == sorted(elements)
    return elapsed


def test_fig09_riblt_decode(benchmark):
    rng = random.Random(91)
    rows = []
    riblt_decode_time(rng, 64)  # warm the NumPy lane outside the sweep
    riblt_decode_time_reference(rng, 64)

    def run():
        for d in RIBLT_DIFFS:
            elapsed = riblt_decode_time(rng, d)
            rows.append((d, elapsed, d / elapsed))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Reference per-cell path at the largest d, for the recorded speedup.
    reference_elapsed = riblt_decode_time_reference(rng, RIBLT_DIFFS[-1])
    fast_elapsed = rows[-1][1]
    speedup = reference_elapsed / fast_elapsed

    lines = [f"{'d':>7} {'decode time (s)':>16} {'throughput (1/s)':>17}"]
    lines += [f"{d:>7} {t:>16.5f} {tp:>17.1f}" for d, t, tp in rows]
    lines.append("paper: throughput drops only ~2x over 4 decades of d")
    lines.append(
        f"block path {fast_elapsed:.4f}s vs reference {reference_elapsed:.4f}s "
        f"at d={RIBLT_DIFFS[-1]} -> {speedup:.1f}x"
    )
    report_table("Fig 9 — Rateless IBLT decoding", lines)
    write_bench_json(
        "fig09_riblt_decode",
        rows=[
            {"d": d, "seconds": t, "throughput_per_s": tp} for d, t, tp in rows
        ],
        meta={
            "hasher": HASHER,
            "fast_seconds_at_max_d": fast_elapsed,
            "reference_seconds_at_max_d": reference_elapsed,
            "fast_over_reference_speedup": speedup,
        },
    )
    throughputs = [tp for _, _, tp in rows if _ >= 10 or True][1:]
    if len(throughputs) >= 2:
        assert max(throughputs) / min(throughputs) < 25  # near-linear decode


def test_fig09_pinsketch_decode(benchmark):
    rng = random.Random(92)
    field = GF2m(64)
    rows = []

    def run():
        for d in PIN_DIFFS:
            elapsed = pinsketch_decode_time(rng, field, d)
            rows.append((d, elapsed, d / elapsed))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'d':>7} {'decode time (s)':>16} {'throughput (1/s)':>17}"]
    lines += [f"{d:>7} {t:>16.5f} {tp:>17.1f}" for d, t, tp in rows]
    lines.append("paper: quadratic decode — throughput collapses with d")
    report_table("Fig 9 — PinSketch decoding", lines)
    # superlinear blowup: time grows faster than d
    first_d, first_t, _ = rows[0]
    last_d, last_t, _ = rows[-1]
    assert last_t / first_t > (last_d / first_d) * 2


def test_fig09_crosscheck(benchmark):
    """Rateless decodes orders of magnitude faster at the same d."""
    rng = random.Random(93)
    field = GF2m(64)
    d = by_scale(16, 128, 256)

    def measure():
        riblt = riblt_decode_time(rng, d)
        pin = pinsketch_decode_time(rng, field, d)
        return riblt, pin

    riblt_time, pin_time = benchmark.pedantic(measure, rounds=1, iterations=1)
    report_table(
        "Fig 9 — decode crosscheck",
        [
            f"d={d}: rateless {riblt_time:.4f}s, pinsketch {pin_time:.3f}s, "
            f"speedup {pin_time / riblt_time:.0f}x (paper: 10-10^7x)"
        ],
    )
    assert pin_time / riblt_time > 10
