"""Figure 8: encoding throughput and time vs set difference.

Paper (8-byte items): (a) Rateless IBLT with N = 10^6 — encoding time
grows ~6× while d grows 50 000× (cost is per-item, amortised over d);
(b) PinSketch with N = 10^4 — encoding time grows linearly in d, so
throughput flattens to a constant.  Rateless is 2-2000× faster.

The rateless sweep runs the bank-backed batch path
(``RatelessEncoder.produce_block``), with the reference per-cell path
timed once at the largest d for the recorded fast/reference speedup.
Both emit bit-identical streams (golden-equivalence suite).  Results
land in ``BENCH_fig08a_riblt_encode.json``.

We scale N down (DESIGN.md): absolute numbers are interpreter-speed, the
*scaling shapes* are asserted.
"""

import random
import time

from bench_json import write_bench_json
from bench_util import by_scale, make_items
from bench_util import report_table
from repro.baselines.pinsketch import GF2m, PinSketch
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec

ITEM = 8
RIBLT_N = by_scale(5_000, 100_000, 300_000)
RIBLT_DIFFS = by_scale(
    [10, 100], [1, 10, 100, 1000, 10000], [1, 10, 100, 1000, 10000, 30000]
)
PIN_N = by_scale(1_000, 10_000, 10_000)
PIN_DIFFS = by_scale([1, 4], [1, 4, 16, 64, 256], [1, 4, 16, 64, 256, 512])

# Rateless IBLT sends ≈1.4d coded symbols to reconcile d differences.
SYMBOLS_PER_DIFF = 1.4


def test_fig08a_riblt_encode(benchmark):
    rng = random.Random(88)
    items = make_items(rng, RIBLT_N, ITEM)
    rows = []
    # Warm the NumPy lane outside the sweep.
    RatelessEncoder(SymbolCodec(ITEM), items[:256]).produce_block(64)

    def run():
        encoder = RatelessEncoder(SymbolCodec(ITEM), items)
        start = time.perf_counter()
        produced = 0
        for d in RIBLT_DIFFS:
            target = max(1, int(SYMBOLS_PER_DIFF * d))
            if target > produced:
                encoder.produce_block(target - produced)
                produced = target
            elapsed = time.perf_counter() - start
            rows.append((d, elapsed, d / elapsed))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Reference per-cell path at the largest d, for the recorded speedup.
    max_target = max(1, int(SYMBOLS_PER_DIFF * RIBLT_DIFFS[-1]))
    start = time.perf_counter()
    reference = RatelessEncoder(SymbolCodec(ITEM), items)
    for _ in range(max_target):
        reference.produce_next()
    reference_elapsed = time.perf_counter() - start
    fast_elapsed = rows[-1][1]
    speedup = reference_elapsed / fast_elapsed

    lines = [f"{'d':>7} {'encode time (s)':>16} {'throughput (1/s)':>17}"]
    lines += [f"{d:>7} {t:>16.4f} {tp:>17.1f}" for d, t, tp in rows]
    lines.append(
        f"N = {RIBLT_N}; paper: time grows ~6x while d grows 5e4x "
        "(throughput rises almost linearly in d)"
    )
    lines.append(
        f"batch path {fast_elapsed:.3f}s vs reference {reference_elapsed:.3f}s "
        f"at d={RIBLT_DIFFS[-1]} -> {speedup:.1f}x"
    )
    report_table("Fig 8a — Rateless IBLT encoding", lines)
    write_bench_json(
        "fig08a_riblt_encode",
        rows=[
            {"d": d, "seconds": t, "throughput_per_s": tp} for d, t, tp in rows
        ],
        meta={
            "set_size": RIBLT_N,
            "symbols_at_max_d": max_target,
            "fast_seconds_at_max_d": fast_elapsed,
            "reference_seconds_at_max_d": reference_elapsed,
            "fast_over_reference_speedup": speedup,
        },
    )
    first_d, first_t, _ = rows[0]
    last_d, last_t, _ = rows[-1]
    growth = last_t / first_t
    span = last_d / first_d
    # paper: 6x time growth over a 5e4x d span; the bound only bites once
    # the sweep spans decades (the quick profile spans one).
    assert growth < max(3.0, span / 10), (
        f"encode time should grow far slower than d: {growth:.1f}x vs {span}x"
    )


def test_fig08b_pinsketch_encode(benchmark):
    rng = random.Random(89)
    field = GF2m(64)
    elements = set()
    while len(elements) < PIN_N:
        value = rng.getrandbits(64)
        if value:
            elements.add(value)
    elements = list(elements)
    rows = []

    def run():
        for d in PIN_DIFFS:
            start = time.perf_counter()
            PinSketch.from_items(elements, field, capacity=d)
            elapsed = time.perf_counter() - start
            rows.append((d, elapsed, d / elapsed))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'d':>7} {'encode time (s)':>16} {'throughput (1/s)':>17}"]
    lines += [f"{d:>7} {t:>16.4f} {tp:>17.1f}" for d, t, tp in rows]
    lines.append(
        f"N = {PIN_N}; paper: time linear in d, throughput converges to a"
        " constant (evaluating the full characteristic polynomial)"
    )
    report_table("Fig 8b — PinSketch encoding", lines)
    # linear growth: time ratio tracks d ratio within a small factor
    first_d, first_t, _ = rows[0]
    last_d, last_t, _ = rows[-1]
    assert last_t / first_t > (last_d / first_d) / 6


def test_fig08_crosscheck_riblt_vs_pinsketch(benchmark):
    """The headline: at equal N and d, Rateless IBLT encodes much faster
    once the sketch capacity is nontrivial."""
    rng = random.Random(90)
    field = GF2m(64)
    values = [v for v in (rng.getrandbits(63) | 1 for _ in range(PIN_N))]
    items = [v.to_bytes(8, "little") for v in values]
    d = by_scale(16, 256, 512)

    def riblt():
        encoder = RatelessEncoder(SymbolCodec(ITEM), items)
        encoder.produce_block(int(SYMBOLS_PER_DIFF * d))

    def pinsketch():
        PinSketch.from_items(values, field, capacity=d)

    t0 = time.perf_counter()
    riblt()
    riblt_time = time.perf_counter() - t0
    pin_time = benchmark.pedantic(
        lambda: (pinsketch(), None)[1], rounds=1, iterations=1
    )
    t0 = time.perf_counter()
    pinsketch()
    pin_time = time.perf_counter() - t0
    report_table(
        "Fig 8 — encode crosscheck",
        [
            f"N={PIN_N}, d={d}: rateless {riblt_time:.3f}s, pinsketch {pin_time:.3f}s,"
            f" speedup {pin_time / riblt_time:.1f}x (paper: 2-2000x)"
        ],
    )
    assert pin_time > riblt_time, "rateless should encode faster"
