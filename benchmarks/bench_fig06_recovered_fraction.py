"""Figure 6: fraction of source symbols recovered vs symbols received.

Paper: simulations for d ∈ {500, 2000, 10000} track the density-evolution
fixed points closely, with the characteristic sharp jump to full recovery
just before η ≈ 1.35.
"""

from bench_util import by_scale
from bench_util import report_table
from repro.analysis.density_evolution import recovered_fraction_curve
from repro.analysis.montecarlo import recovered_fraction_sim

ETAS = [0.2, 0.4, 0.6, 0.8, 1.0, 1.1, 1.2, 1.3, 1.35, 1.4, 1.5, 1.7, 2.0]
SIM_SIZES = by_scale(
    [(500, 3)], [(500, 10), (2000, 5)], [(500, 30), (2000, 10), (10000, 5)]
)


def test_fig06_recovered_fraction(benchmark):
    sims = {}

    def run():
        for d, runs in SIM_SIZES:
            sims[d] = dict(recovered_fraction_sim(d, ETAS, runs=runs, seed=6))
        return sims

    benchmark.pedantic(run, rounds=1, iterations=1)
    de = dict(recovered_fraction_curve(ETAS))
    header = f"{'eta':>6} {'DE':>8}" + "".join(
        f" {'sim d=' + str(d):>12}" for d, _ in SIM_SIZES
    )
    lines = [header]
    for eta in ETAS:
        row = f"{eta:6.2f} {de[eta]:8.3f}"
        for d, _ in SIM_SIZES:
            row += f" {sims[d][eta]:12.3f}"
        lines.append(row)
    lines.append("paper: sims match DE; sharp rise to 1.0 near eta=1.35")
    report_table("Fig 6 — recovered fraction vs symbols received", lines)

    # shape assertions: monotone, partial at 1.0, complete at 2.0
    for d, _ in SIM_SIZES:
        values = [sims[d][eta] for eta in ETAS]
        assert values[-1] >= 0.999
        assert 0.03 < sims[d][1.0] < 0.4
        assert abs(sims[d][1.0] - de[1.0]) < 0.12
