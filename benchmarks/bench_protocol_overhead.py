"""Engine overhead: the sans-io protocol machines vs the raw core session.

The protocol engine frames every block (length prefix + type byte +
shard varint) and routes it through ``FrameDecoder``; the raw
``repro.core.session.ReconciliationSession`` moves coded symbols with
zero framing.  This bench measures what that generality costs on the
streaming hot path, per block size — the number the perf-smoke gate
(``check_perf_regression.py``, which auto-discovers every committed
``BENCH_*.json``) holds future engine changes to.

Rows are keyed ``d = "block<k>"`` (scale-independent, so the quick CI
profile matches the committed default-scale record); ``symbols_per_s`` is the gated metric (the engine path),
with the core fast path and the overhead ratio alongside for context.

Results land in ``BENCH_protocol_overhead.json``.
"""

import random

from bench_json import write_bench_json
from bench_util import by_scale, report_table, sets_with_difference, timed

from repro.api import Session
from repro.core.session import ReconciliationSession
from repro.core.symbols import SymbolCodec

ITEM = 8
SET_SIZE = by_scale(1_000, 8_000, 30_000)
DIFFERENCE = by_scale(64, 256, 1_024)
BLOCK_SIZES = by_scale([1, 64], [1, 16, 64], [1, 16, 64, 256])
REPEATS = 3


def _core_run(a, b, block_size):
    session = ReconciliationSession(a, b, SymbolCodec(ITEM))
    outcome = session.run(block_size=block_size)
    return session.symbols_sent, outcome


def _engine_run(a, b, block_size):
    session = Session(a, b, "riblt", symbol_size=ITEM)
    result = session.run(block_size=block_size)
    return session.steps, result


def test_protocol_engine_overhead(benchmark):
    rng = random.Random(0x0E17)
    a, b = sets_with_difference(rng, SET_SIZE, DIFFERENCE, ITEM)
    rows = []

    def run():
        for block_size in BLOCK_SIZES:
            core_best = engine_best = float("inf")
            core_symbols = engine_symbols = 0
            for _ in range(REPEATS):
                (symbols, _), seconds = timed(
                    lambda: _core_run(a, b, block_size)
                )
                core_best, core_symbols = min(core_best, seconds), symbols
                (symbols, result), seconds = timed(
                    lambda: _engine_run(a, b, block_size)
                )
                engine_best, engine_symbols = min(engine_best, seconds), symbols
                assert result.difference_size == DIFFERENCE
            rows.append(
                {
                    "d": f"block{block_size}",  # scale-independent gate key
                    "difference": DIFFERENCE,
                    "block_size": block_size,
                    "symbols_per_s": engine_symbols / engine_best,
                    "core_symbols_per_s": core_symbols / core_best,
                    "overhead_x": (engine_best / engine_symbols)
                    / (core_best / core_symbols),
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'block':>6} {'engine sym/s':>13} {'core sym/s':>12} {'overhead':>9}"
    ]
    lines += [
        f"{r['block_size']:>6} {r['symbols_per_s']:>13.0f} "
        f"{r['core_symbols_per_s']:>12.0f} {r['overhead_x']:>8.2f}x"
        for r in rows
    ]
    report_table(
        f"Protocol engine vs core session (N={SET_SIZE}, d={DIFFERENCE})",
        lines,
    )
    write_bench_json(
        "protocol_overhead",
        rows=rows,
        meta={"set_size": SET_SIZE, "difference": DIFFERENCE, "item": ITEM},
    )
    assert all(r["symbols_per_s"] > 0 for r in rows)
