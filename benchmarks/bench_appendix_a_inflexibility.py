"""Appendix A: why regular IBLTs cannot be rateless.

Theorem A.1 — an undersized table (n > m) recovers ~nothing: the chance
any cell is pure decays exponentially in n/m.
Theorem A.2 — decoding a *truncated prefix* of a correctly-sized table
fails with probability → 1 as the dropped fraction grows (every item must
land in the kept prefix with all k hashes).
Fig 3 contrast — a Rateless IBLT prefix of the right length decodes.
"""

import random

from bench_util import by_scale, make_items
from bench_util import report_table
from repro.baselines.regular_iblt import RegularIBLT, recommended_cells
from repro.core.sketch import RatelessSketch
from repro.core.symbols import SymbolCodec

TRIALS = by_scale(5, 25, 100)
N = by_scale(60, 120, 240)


def test_appendix_a1_undersized_recovery(benchmark):
    codec = SymbolCodec(8)
    rows = []

    def run():
        rng = random.Random(0xA1)
        for ratio in (0.5, 1.0, 1.5, 2.0, 3.0):
            m = max(3, int(N / ratio))
            recovered = 0
            for _ in range(TRIALS):
                items = make_items(rng, N, 8)
                table = RegularIBLT.from_items(items, m, codec)
                recovered += table.decode().difference_size
            rows.append((ratio, m, recovered / (TRIALS * N)))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'n/m':>6} {'cells':>6} {'fraction recovered':>19}"]
    lines += [f"{r:>6.1f} {m:>6} {f:>19.3f}" for r, m, f in rows]
    lines.append("Thm A.1: recovery collapses exponentially once n/m > 1")
    report_table("Appendix A.1 — undersized regular IBLT", lines)
    by_ratio = {r: f for r, _, f in rows}
    assert by_ratio[3.0] < 0.02
    assert by_ratio[2.0] < by_ratio[1.0]


def test_appendix_a2_truncated_prefix(benchmark):
    codec = SymbolCodec(8)
    rows = []

    def run():
        rng = random.Random(0xA2)
        m = recommended_cells(N)
        for kept_fraction in (1.0, 0.9, 0.75, 0.5):
            successes = 0
            for _ in range(TRIALS):
                items = make_items(rng, N, 8)
                table = RegularIBLT.from_items(items, m, codec)
                prefix = int(m * kept_fraction)
                if table.decode(prefix_cells=prefix).success:
                    successes += 1
            rows.append((kept_fraction, successes / TRIALS))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'kept fraction':>13} {'success rate':>13}"]
    lines += [f"{kf:>13.2f} {sr:>13.2f}" for kf, sr in rows]
    lines.append("Thm A.2: success decays exponentially in the dropped fraction")
    report_table("Appendix A.2 — truncated regular IBLT", lines)
    by_kept = dict(rows)
    assert by_kept[1.0] >= 0.9
    assert by_kept[0.5] == 0.0


def test_appendix_a_fig3_rateless_contrast(benchmark):
    """The same 'use fewer cells' move is *free* for Rateless IBLT: any
    sufficiently long prefix of the one universal sequence decodes."""
    codec = SymbolCodec(8)
    outcome = {}

    def run():
        rng = random.Random(0xA3)
        successes = 0
        for _ in range(TRIALS):
            items = make_items(rng, N, 8)
            sketch = RatelessSketch.from_items(items, 4 * N, codec)
            if sketch.truncated(2 * N).decode().success:
                successes += 1
        outcome["rate"] = successes / TRIALS
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(
        "Appendix A — rateless contrast",
        [
            f"rateless prefix (2n of a 4n sketch) success rate: {outcome['rate']:.2f}"
            " (regular IBLT at half size: 0.00)"
        ],
    )
    assert outcome["rate"] >= 0.95
