"""Figure 15: Irregular Rateless IBLT overhead vs the regular design.

Paper (§8): with c = 3 subsets, w = (0.18, 0.56, 0.26) and
α = (0.11, 0.68, 0.82), the overhead converges to ≈1.10 — 19% below the
regular 1.35 and 10% above the information-theoretic bound — at ~1.9×
the mapping cost.
"""

import time

from bench_util import by_scale
from bench_util import report_table
from repro.analysis.montecarlo import IntSymbolCodec, overhead_stats
from repro.core.encoder import RatelessEncoder
from repro.core.irregular import PAPER_IRREGULAR

GRID = by_scale(
    [(32, 10), (512, 4)],
    [(2, 100), (8, 60), (32, 40), (128, 20), (512, 12), (2048, 8), (8192, 4)],
    [
        (2, 200),
        (8, 100),
        (32, 60),
        (128, 40),
        (512, 20),
        (2048, 12),
        (8192, 8),
        (32768, 4),
    ],
)


def test_fig15_irregular_vs_regular(benchmark):
    rows = []

    def run():
        for d, runs in GRID:
            regular = overhead_stats(d, runs=runs, seed=15)
            irregular = overhead_stats(
                d, runs=runs, irregular=PAPER_IRREGULAR, seed=15
            )
            rows.append((d, regular.mean, irregular.mean))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'d':>7} {'regular':>9} {'irregular':>10} {'gain':>7}"]
    for d, reg, irr in rows:
        lines.append(f"{d:>7} {reg:>9.3f} {irr:>10.3f} {(1 - irr / reg) * 100:>6.1f}%")
    lines.append("paper: irregular -> 1.10 vs regular -> 1.35 (19% lower)")
    report_table("Fig 15 — Irregular Rateless IBLT overhead", lines)

    large = [row for row in rows if row[0] >= 512]
    for d, reg, irr in large:
        assert irr < reg, f"irregular should win at d={d}"
        assert irr < 1.32
    assert large[-1][2] < 1.22  # approaching 1.10


def test_fig15_irregular_mapping_cost(benchmark):
    """§8: encoding/decoding ≈1.9× slower — generic-α sampling needs a
    non-integer power instead of one square root."""
    n = by_scale(500, 4000, 10000)
    symbols = by_scale(700, 5600, 14000)
    import random

    rng = random.Random(155)
    values = [rng.getrandbits(64) | 1 for _ in range(n)]

    def encode(codec):
        encoder = RatelessEncoder(codec)
        for value in values:
            encoder.add_value(value)
        for _ in range(symbols):
            encoder.produce_next()

    start = time.perf_counter()
    encode(IntSymbolCodec())
    regular_time = time.perf_counter() - start

    def irregular():
        encode(IntSymbolCodec(irregular=PAPER_IRREGULAR))

    benchmark.pedantic(irregular, rounds=1, iterations=1)
    start = time.perf_counter()
    irregular()
    irregular_time = time.perf_counter() - start
    ratio = irregular_time / regular_time
    report_table(
        "Fig 15 — irregular mapping cost",
        [
            f"regular encode {regular_time:.3f}s, irregular {irregular_time:.3f}s,"
            f" slowdown {ratio:.2f}x (paper: 1.88x)"
        ],
    )
    assert ratio > 0.9  # never faster; interpreter noise tolerated
