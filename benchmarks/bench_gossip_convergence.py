"""Gossip mesh convergence: rounds and bytes to heal an N-node mesh.

The deployment claim behind ``repro.gossip``: an epidemic mesh whose
full sessions are rateless reconciliations (and whose non-sessions are
clock/digest skips) converges in O(log N) rounds while moving a small
fraction of what naive full-set flooding would — flooding is charged
*conservatively* (it stops paying at its own convergence), so the
reported ratio understates the win.

Asserted invariants (the ISSUE's acceptance bounds):

* every mesh converges within ``ceil(log2(N)) + 2`` rounds;
* total gossip bytes stay under half the flooding baseline.

Results land in ``BENCH_gossip_convergence.json``; rows are keyed by
``clients`` (the node count — scale profiles vary the *set* size, so
quick-scale CI rows still match the committed default-scale record).
"""

import math
import random
import time

from bench_json import write_bench_json
from bench_util import by_scale, make_items, report_table
from repro.gossip import GossipMesh, make_nodes, simulate_flooding
from repro.gossip.mesh import select_pairs

ITEM = 32
NODE_COUNTS = by_scale([16, 64], [16, 64], [16, 64, 128])
SET_SIZE = by_scale(128, 512, 1_024)
DIFF_FRACTION = 0.01
TOPOLOGY = "random"
DEGREE = 6
FANOUT = 2
MAX_ROUNDS = 32
SEED = 0x605517


def _node_sets(rng, n_nodes):
    """A shared base set; every node misses and owns ~1% of it."""
    base = make_items(rng, SET_SIZE, ITEM)
    per_node = max(1, round(DIFF_FRACTION * SET_SIZE))
    sets = []
    for _ in range(n_nodes):
        missing = set(rng.sample(base, per_node))
        own = [rng.randbytes(ITEM) for _ in range(per_node)]
        sets.append([x for x in base if x not in missing] + own)
    return sets


def _converge(n_nodes):
    rng = random.Random(SEED ^ n_nodes)
    node_sets = _node_sets(rng, n_nodes)
    mesh = GossipMesh(
        make_nodes(node_sets),
        topology=TOPOLOGY,
        degree=DEGREE,
        fanout=FANOUT,
        seed=SEED,
    )
    start = time.perf_counter()
    report = mesh.run_until_converged(max_rounds=MAX_ROUNDS)
    elapsed = time.perf_counter() - start
    flooding = simulate_flooding(
        node_sets,
        ITEM,
        lambda round_no, frng: select_pairs(mesh.neighbors, FANOUT, frng),
        random.Random(SEED),
        max_rounds=MAX_ROUNDS,
    )
    return report, flooding, elapsed


def test_gossip_convergence_vs_mesh_size(benchmark):
    rows = []

    def run():
        for n_nodes in NODE_COUNTS:
            report, flooding, elapsed = _converge(n_nodes)
            bound = math.ceil(math.log2(n_nodes)) + 2
            assert report.converged, f"{n_nodes}-node mesh did not converge"
            assert report.rounds <= bound, (
                f"{n_nodes} nodes: {report.rounds} rounds > bound {bound}"
            )
            assert report.wire_bytes < 0.5 * flooding.total_bytes, (
                f"{n_nodes} nodes: gossip moved {report.wire_bytes} bytes, "
                f"flooding only {flooding.total_bytes}"
            )
            rows.append(
                {
                    "clients": n_nodes,
                    "rounds": report.rounds,
                    "round_bound": bound,
                    "wire_bytes": report.wire_bytes,
                    "digest_bytes": report.digest_bytes,
                    "symbols": report.symbols,
                    "full_syncs": report.full_syncs,
                    "digest_skips": report.digest_skips,
                    "clock_skips": report.clock_skips,
                    "flooding_bytes": flooding.total_bytes,
                    "flooding_ratio": report.wire_bytes / flooding.total_bytes,
                    "seconds": elapsed,
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'nodes':>6} {'rounds':>7} {'bound':>6} {'bytes':>10} "
        f"{'flooding':>11} {'ratio':>7} {'seconds':>8}"
    ]
    lines += [
        f"{r['clients']:>6} {r['rounds']:>7} {r['round_bound']:>6} "
        f"{r['wire_bytes']:>10} {r['flooding_bytes']:>11} "
        f"{r['flooding_ratio']:>7.4f} {r['seconds']:>8.3f}"
        for r in rows
    ]
    report_table(
        f"Gossip — convergence vs mesh size (|set|={SET_SIZE}, "
        f"{DIFF_FRACTION:.0%} diff/node, {TOPOLOGY} deg {DEGREE}, "
        f"fanout {FANOUT})",
        lines,
    )
    write_bench_json(
        "gossip_convergence",
        rows=rows,
        meta={
            "set_size": SET_SIZE,
            "item_size": ITEM,
            "diff_fraction": DIFF_FRACTION,
            "topology": TOPOLOGY,
            "degree": DEGREE,
            "fanout": FANOUT,
        },
    )
