"""§2's multi-peer argument quantified: one universal stream, many peers.

With a non-rateless scheme Alice re-encodes per peer (each wants a
different table size); with Rateless IBLT she materialises one prefix and
serves byte-identical chunks of it to everyone, patching it incrementally
as her set churns.  This bench measures the encoder-side cost of serving
k peers both ways.
"""

import random
import time

from bench_util import by_scale, make_items
from bench_util import report_table
from repro.baselines.regular_iblt import RegularIBLT, recommended_cells
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec

N = by_scale(1_000, 10_000, 50_000)
PEERS = by_scale([1, 4], [1, 2, 4, 8, 16], [1, 4, 16, 64])
PEER_DIFFS = by_scale([10, 40], [10, 25, 50, 100, 200], [10, 50, 200, 800])


def test_universality_amortization(benchmark):
    rng = random.Random(0xAAA)
    codec = SymbolCodec(8)
    items = make_items(rng, N, 8)
    rows = []

    def run():
        for peers in PEERS:
            diffs = [PEER_DIFFS[i % len(PEER_DIFFS)] for i in range(peers)]
            # Rateless: one encoder; the longest prefix any peer needs.
            start = time.perf_counter()
            encoder = RatelessEncoder(codec, items)
            for _ in range(int(1.5 * max(diffs))):
                encoder.produce_next()
            rateless_time = time.perf_counter() - start
            # Regular IBLT: a fresh, difference-sized table per peer.
            start = time.perf_counter()
            for d in diffs:
                RegularIBLT.from_items(items, recommended_cells(d), codec)
            regular_time = time.perf_counter() - start
            rows.append((peers, rateless_time, regular_time))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'peers':>6} {'rateless (s)':>13} {'regular (s)':>12} {'ratio':>7}"]
    for peers, rateless_time, regular_time in rows:
        lines.append(
            f"{peers:>6} {rateless_time:>13.3f} {regular_time:>12.3f} "
            f"{regular_time / rateless_time:>7.1f}"
        )
    lines.append(
        "§2: regular IBLT encodes per peer (cost linear in k); the"
        " universal stream is encoded once"
    )
    report_table("Universality — encoder cost for k peers", lines)

    first = rows[0]
    last = rows[-1]
    # regular scales linearly with peers; rateless stays ~flat
    assert last[2] / first[2] > (last[0] / first[0]) / 3
    assert last[1] / first[1] < 3.0
