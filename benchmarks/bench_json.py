"""Machine-readable benchmark records: ``BENCH_<name>.json`` at repo root.

Throughput benches (figs 8–10) call :func:`write_bench_json` so every
run leaves a structured artifact next to the human-readable table —
the perf trajectory future PRs regress against.  CI's perf-smoke job
uploads these files; locally just re-run the bench::

    REPRO_SCALE=default PYTHONPATH=src python -m pytest \\
        benchmarks/bench_fig08_encode_throughput.py -q

Record layout::

    {
      "bench": "fig08a_riblt_encode",
      "scale": "default",            # REPRO_SCALE profile
      "unix_time": 1753500000.0,
      "python": "3.11.7",
      "rows": [...],                 # bench-specific series
      "meta": {...}                  # bench-specific scalars (speedups &c.)
                                     # + "env": numpy/cpu_count/platform
    }

Rows and meta are intentionally free-form per bench; the stable keys
are the envelope above plus ``meta.env`` (:func:`environment_meta`).
No thresholds are enforced here — trend tracking only.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Optional

from bench_util import SCALE

REPO_ROOT = Path(__file__).resolve().parent.parent


def environment_meta() -> dict[str, Any]:
    """Hardware/software context for a perf record.

    Folded into every record's ``meta`` block so numbers written on
    different machines (laptop vs CI runner vs a future box) are
    comparable at a glance: NumPy version (or ``None`` for the scalar
    engine), CPU count, and platform triple.
    """
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:  # pragma: no cover - the no-numpy CI leg
        numpy_version = None
    if os.environ.get("REPRO_NO_NUMPY", "") == "1":
        numpy_version = None  # installed but disabled: records scalar-engine
    return {
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def bench_json_path(name: str) -> Path:
    """Where ``write_bench_json(name, ...)`` lands.

    Default-scale runs own the bare ``BENCH_<name>.json`` (the committed
    trajectory records); other profiles write ``BENCH_<name>.<scale>.json``
    so a quick smoke run never clobbers them.
    """
    if SCALE == "default":
        return REPO_ROOT / f"BENCH_{name}.json"
    return REPO_ROOT / f"BENCH_{name}.{SCALE}.json"


def write_bench_json(
    name: str,
    rows: list[Any],
    meta: Optional[dict[str, Any]] = None,
) -> Path:
    """Write one benchmark record; returns the path written."""
    record = {
        "bench": name,
        "scale": SCALE,
        "unix_time": time.time(),
        "python": platform.python_version(),
        "rows": rows,
        "meta": {**(meta or {}), "env": environment_meta()},
    }
    path = bench_json_path(name)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path
