"""Figure 7: communication overhead of every scheme vs set difference.

Paper setup: 32-byte items, |A| = 10^6 (only the Merkle trie depends on
it; we scale that down), d from 1 to 400.  Expected ordering:

    PinSketch (1.0)  <  Rateless IBLT (1.35-1.72 × cell factor)
                     <  MET-IBLT / Regular IBLT (4-10× at small d)
                     <  Regular IBLT + 15 KB estimator
                     <<  Merkle trie (> 40)

Overhead is bytes transmitted / (d × 32).
"""

import random

from bench_util import by_scale, sets_with_difference
from bench_util import report_table
from repro.api import get_scheme, reconcile
from repro.baselines.strata import StrataEstimator

ITEM = 32
DIFFS = by_scale(
    [1, 10, 100],
    [1, 2, 5, 10, 20, 50, 100, 200, 400],
    [1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 400],
)
RUNS = by_scale(3, 12, 50)
SET_SIZE = by_scale(300, 1200, 4000)
MET_RUNS = by_scale(2, 6, 20)
# Merkle-trie sub-experiment (the one cost that depends on |A|)
TRIE_ACCOUNTS = by_scale(2000, 20000, 100000)
TRIE_DIFFS = by_scale([10], [10, 50, 200], [10, 50, 200, 400])

CELL_BYTES_REGULAR = ITEM + 16  # 8 B checksum + 8 B count (paper's setup)


def scheme_overhead(rng, d, scheme):
    """Wire bytes per difference byte, through the unified registry API."""
    a, b = sets_with_difference(rng, SET_SIZE, d, ITEM)
    outcome = reconcile(a, b, scheme=scheme)
    assert outcome.difference_size == d
    return outcome.bytes_on_wire / (d * ITEM)


def regular_overhead(d):
    """Deterministic: table size from the calibrated provisioning rule,
    read back out of the registry's sizing hook."""
    sized = get_scheme("regular_iblt", symbol_size=ITEM).sized_for(d)
    return sized.params.num_cells * CELL_BYTES_REGULAR / (d * ITEM)


def estimator_surcharge(d):
    return StrataEstimator().wire_size() / (d * ITEM)


def merkle_overhead(rng, d):
    """Bytes a state-heal run moves for a d-item difference, via real tries."""
    from repro.baselines.merkle.heal import state_heal
    from repro.baselines.merkle.trie import NodeStore, Trie

    kv = {}
    while len(kv) < TRIE_ACCOUNTS:
        kv[rng.randbytes(20)] = rng.randbytes(12)  # 32-byte leaf payloads
    store = NodeStore()
    bob = Trie.from_items(kv.items(), store)
    alice = bob
    for key in rng.sample(list(kv), d // 2 + d % 2):
        alice = alice.update(key, rng.randbytes(12))
    report = state_heal(bob.reachable_store(), alice)
    return report.total_bytes / (d * ITEM)


def test_fig07_communication_overhead(benchmark):
    rows = []

    def run():
        for d in DIFFS:
            rng = random.Random(700 + d)
            riblt = sum(scheme_overhead(rng, d, "riblt") for _ in range(RUNS)) / RUNS
            met = sum(
                scheme_overhead(rng, d, "met_iblt") for _ in range(MET_RUNS)
            ) / MET_RUNS
            regular = regular_overhead(d)
            with_estimator = regular + estimator_surcharge(d)
            rows.append((d, riblt, met, regular, with_estimator))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'d':>5} {'Rateless':>9} {'MET':>7} {'Regular':>8} "
        f"{'Reg+Est':>9} {'PinSketch':>9}"
    ]
    for d, riblt, met, regular, with_est in rows:
        lines.append(
            f"{d:>5} {riblt:>9.2f} {met:>7.2f} {regular:>8.2f} "
            f"{with_est:>9.2f} {1.0:>9.2f}"
        )
    lines.append(
        "paper: Rateless 2-4x below Regular/MET at small d; PinSketch = 1;"
        " Merkle trie > 40 (below)"
    )
    report_table("Fig 7 — communication overhead vs set difference", lines)

    for d, riblt, met, regular, with_est in rows:
        assert riblt < regular, f"rateless should beat regular at d={d}"
        assert riblt < with_est
        if d <= 50:
            assert regular / riblt > 1.5  # the 2-4x small-d gap
        assert riblt > 1.0  # PinSketch's lower bound stands


def test_fig07_merkle_trie_overhead(benchmark):
    rows = []

    def run():
        for d in TRIE_DIFFS:
            rng = random.Random(770 + d)
            rows.append((d, merkle_overhead(rng, d)))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'d':>5} {'Merkle trie overhead':>22}"]
    lines += [f"{d:>5} {oh:>22.1f}" for d, oh in rows]
    lines.append(
        f"paper: > 40 across all d (at |A| = 10^6; here |A| = {TRIE_ACCOUNTS})"
    )
    report_table("Fig 7 — Merkle trie line", lines)
    for d, overhead in rows:
        assert overhead > 10, f"trie overhead suspiciously low at d={d}"
