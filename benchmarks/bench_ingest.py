"""Set ingestion: raw items → populated coded-symbol bank, batch vs scalar.

The §4.3/§7 workloads are dominated by ingestion at n = 10^5–10^6: keyed
hashing of every item, the §4.2 mapping walk, and the scatter into the
bank's lanes.  The vectorised pipeline batches all three stages (lane-
parallel SipHash, batched splitmix64 + inverse-CDF sampling, one fused
scatter); the per-item reference engine (``REPRO_NO_NUMPY=1``) is the
bit-identical baseline it is measured against.

Rows (gate-comparable, see ``check_perf_regression.py``):

* ``set_size`` rows — full pipeline throughput (items/s) building the
  first ``SYMBOLS`` cells from n items through the batch engine;
* the ``d`` row — warm-bank churn: patching a produced prefix with a
  batched add+remove cycle of ``CHURN`` items (ops/s).

Scalar-engine numbers and the batch/scalar speedups land in ``meta``;
results in ``BENCH_ingest.json``.
"""

import random
import time

import pytest

from bench_json import write_bench_json
from bench_util import by_scale, make_items, report_table
from repro.core import cellbank
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.hashing import siphash
from repro.hashing.keyed import SipHasher

ITEM = 8
D = 1000
SYMBOLS = int(1.4 * D)
SIZES = by_scale(
    [1_000, 10_000], [1_000, 10_000, 100_000], [1_000, 10_000, 100_000, 1_000_000]
)
# The scalar reference sweep is interpreter-speed; cap its largest n so
# the quick profile stays CI-sized (the speedup meta always compares at
# the largest *common* n).
SCALAR_MAX_N = by_scale(10_000, 100_000, 100_000)
CHURN = 1_000


def ingest_time(items: list[bytes], hasher=None) -> float:
    """Seconds for the full pipeline: add_items + first SYMBOLS cells."""
    codec = SymbolCodec(ITEM) if hasher is None else SymbolCodec(ITEM, hasher=hasher)
    start = time.perf_counter()
    encoder = RatelessEncoder(codec, items)
    encoder.produce_block(SYMBOLS)
    return time.perf_counter() - start


def churn_time(encoder: RatelessEncoder, fresh: list[bytes], stale: list[bytes]):
    """Seconds to patch the produced prefix with one add+remove batch."""
    start = time.perf_counter()
    encoder.add_items(fresh)
    encoder.remove_items(stale)
    return time.perf_counter() - start


# Initial engine flags, restored after the sweep — under REPRO_NO_NUMPY
# they start False and must stay False for whatever runs next.
_INITIAL_LANES = (cellbank.NUMPY_LANE, siphash.NUMPY_LANE)


def scalar_engine(enabled: bool) -> None:
    if enabled:
        cellbank.NUMPY_LANE = False
        siphash.NUMPY_LANE = False
    else:
        cellbank.NUMPY_LANE, siphash.NUMPY_LANE = _INITIAL_LANES


def test_ingest_throughput(benchmark):
    if not (cellbank.NUMPY_LANE and siphash.NUMPY_LANE):
        pytest.skip("batch-over-scalar comparison needs the NumPy lanes")
    rng = random.Random(105)
    rows = []
    meta = {}

    def run():
        all_items = make_items(rng, max(SIZES) + 2 * CHURN, ITEM)
        scalar_seconds = {}
        try:
            for n in SIZES:
                items = all_items[:n]
                seconds = ingest_time(items)
                rows.append(
                    {
                        "set_size": n,
                        "seconds": seconds,
                        "throughput_per_s": n / seconds,
                    }
                )
                if n <= SCALAR_MAX_N:
                    scalar_engine(True)
                    scalar_seconds[n] = ingest_time(items)
                    scalar_engine(False)
            # Warm-bank churn: one batched add+remove cycle of CHURN items
            # against a produced prefix (the §7.3 universal-stream patch).
            base = all_items[: max(SIZES)]
            fresh = all_items[max(SIZES) : max(SIZES) + CHURN]
            encoder = RatelessEncoder(SymbolCodec(ITEM), base)
            encoder.produce_block(SYMBOLS)
            churn_seconds = churn_time(encoder, fresh, fresh)
            rows.append(
                {
                    "d": CHURN,
                    "op": "churn_patch",
                    "seconds": churn_seconds,
                    "throughput_per_s": 2 * CHURN / churn_seconds,
                }
            )
            scalar_engine(True)
            encoder = RatelessEncoder(SymbolCodec(ITEM), base)
            encoder.produce_block(SYMBOLS)
            scalar_churn = churn_time(encoder, fresh, fresh)
            scalar_engine(False)
            # Hashing stage in isolation: lane-parallel vs pure-Python
            # SipHash-2-4 (the keyed hash the paper specifies).
            sip_n = min(10_000, max(SIZES))
            sip_items = all_items[:sip_n]
            start = time.perf_counter()
            SipHasher().hash64_batch(sip_items)
            sip_batch = time.perf_counter() - start
            scalar_engine(True)
            start = time.perf_counter()
            SipHasher().hash64_batch(sip_items)
            sip_scalar = time.perf_counter() - start
            scalar_engine(False)
        finally:
            scalar_engine(False)
        largest = max(n for n in scalar_seconds)
        batch_seconds = next(
            row["seconds"] for row in rows if row.get("set_size") == largest
        )
        meta.update(
            {
                "symbols": SYMBOLS,
                "churn_items": CHURN,
                "scalar_seconds": {str(n): t for n, t in scalar_seconds.items()},
                "batch_over_scalar_speedup": scalar_seconds[largest] / batch_seconds,
                "speedup_at_n": largest,
                "churn_seconds": churn_seconds,
                "scalar_churn_seconds": scalar_churn,
                "churn_speedup": scalar_churn / churn_seconds,
                "siphash_batch_seconds": sip_batch,
                "siphash_scalar_seconds": sip_scalar,
                "siphash_speedup": sip_scalar / sip_batch,
                "siphash_items": sip_n,
            }
        )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'n':>9} {'ingest (s)':>11} {'items/s':>12} {'scalar (s)':>11}"]
    for row in rows:
        if "set_size" not in row:
            continue
        n = row["set_size"]
        scalar = meta["scalar_seconds"].get(str(n))
        tail = f"{scalar:>11.4f}" if scalar is not None else f"{'-':>11}"
        lines.append(
            f"{n:>9} {row['seconds']:>11.4f} {row['throughput_per_s']:>12.0f} {tail}"
        )
    lines.append(
        f"batch/scalar at n={meta['speedup_at_n']}: "
        f"{meta['batch_over_scalar_speedup']:.1f}x; churn patch "
        f"{meta['churn_speedup']:.1f}x; SipHash lanes {meta['siphash_speedup']:.0f}x"
    )
    report_table("Ingestion — items/s into the first 1.4d cells", lines)
    write_bench_json("ingest", rows=rows, meta=meta)

    # The acceptance bar: vectorised ingestion ≥3x the scalar engine.
    assert meta["batch_over_scalar_speedup"] >= 3.0
