"""Figure 10: encoding time of 1000 differences vs set size N.

Paper: encoding cost is linear in N (every item is mapped to the same
expected number of the first m cells), e.g. 2.9 ms at N = 10^4 vs 294 ms
at N = 10^6 — exactly 100×.

Measured through the bank-backed batch path; results land in
``BENCH_fig10_encode_vs_setsize.json``.
"""

import random
import time

from bench_json import write_bench_json
from bench_util import by_scale, make_items
from bench_util import report_table
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec

ITEM = 8
D = 1000
SYMBOLS = int(1.4 * D)
SIZES = by_scale(
    [1_000, 10_000], [1_000, 10_000, 100_000], [1_000, 10_000, 100_000, 1_000_000]
)


def encode_time(items):
    encoder = RatelessEncoder(SymbolCodec(ITEM), items)
    start = time.perf_counter()
    encoder.produce_block(SYMBOLS)
    return time.perf_counter() - start


def test_fig10_encode_time_vs_set_size(benchmark):
    rng = random.Random(100)
    rows = []

    def run():
        for n in SIZES:
            items = make_items(rng, n, ITEM)
            rows.append((n, encode_time(items)))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'N':>9} {'encode time (s)':>16} {'time/N (us)':>12}"]
    lines += [f"{n:>9} {t:>16.4f} {t / n * 1e6:>12.2f}" for n, t in rows]
    lines.append("paper: linear in N (100x items -> 100x time)")
    report_table("Fig 10 — encoding time of 1000 diffs vs set size", lines)
    write_bench_json(
        "fig10_encode_vs_setsize",
        rows=[{"set_size": n, "seconds": t} for n, t in rows],
        meta={"symbols": SYMBOLS, "difference": D},
    )

    # linearity: per-item cost roughly constant across two decades
    per_item = [t / n for n, t in rows]
    assert max(per_item) / min(per_item) < 4.0
