"""Ablations of the paper's §4-§6 design choices.

1. **Checksum width** (§7.1): 4-byte checksums shave wire bytes and still
   reconcile tens of thousands of differences; we sweep 2/4/8 bytes.
2. **Count field** (§6 vs §7.1): var-int delta-compressed counts vs
   dropping the field entirely (membership probes decide sides).
3. **α = 0.5 vs optimal α = 0.64** (§4.2): the paper accepts 3% more
   communication for sqrt-only sampling; we measure both sides of that
   trade (overhead and mapping speed).
4. **Heap encoder vs direct walk** (§6): the heap pays off for streaming;
   a known-length sketch is cheaper to build by walking each symbol.
"""

import random
import time

from bench_util import by_scale, sets_with_difference
from bench_util import report_table
from repro.analysis.montecarlo import IntSymbolCodec, overhead_stats
from repro.core.countless import countless_cell_bytes, reconcile_countless
from repro.core.encoder import RatelessEncoder
from repro.core.session import ReconciliationSession
from repro.core.sketch import RatelessSketch
from repro.core.symbols import SymbolCodec

D = by_scale(20, 100, 400)
SET_SIZE = by_scale(200, 1500, 5000)
RUNS = by_scale(2, 8, 20)


def test_ablation_checksum_width(benchmark):
    rows = []

    def run():
        for checksum_size in (2, 4, 8):
            codec = SymbolCodec(8, checksum_size=checksum_size)
            rng = random.Random(checksum_size)
            successes = 0
            total_bytes = 0
            for _ in range(RUNS):
                a, b = sets_with_difference(rng, SET_SIZE, D, 8)
                session = ReconciliationSession(a, b, codec)
                try:
                    outcome = session.run(max_symbols=20 * D)
                except RuntimeError:
                    continue
                if (
                    outcome.only_in_a == a - b
                    and outcome.only_in_b == b - a
                ):
                    successes += 1
                    total_bytes += outcome.bytes_on_wire
            mean_bytes = total_bytes / max(1, successes)
            rows.append((checksum_size, successes / RUNS, mean_bytes))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'checksum B':>10} {'success':>8} {'wire bytes':>11}"]
    lines += [f"{c:>10} {s:>8.2f} {b:>11.0f}" for c, s, b in rows]
    lines.append(
        "§7.1: 4-byte checksums reliably reconcile tens of thousands of"
        " diffs while saving 4 B/cell; 2 bytes is the collision cliff"
    )
    report_table("Ablation — checksum width", lines)
    by_width = {c: (s, b) for c, s, b in rows}
    assert by_width[8][0] == 1.0
    assert by_width[4][0] == 1.0
    assert by_width[4][1] < by_width[8][1]  # real wire saving


def test_ablation_count_field(benchmark):
    rows = []

    def run():
        codec = SymbolCodec(8)
        rng = random.Random(42)
        a, b = sets_with_difference(rng, SET_SIZE, D, 8)
        session = ReconciliationSession(a, b, codec)
        with_count = session.run()
        countless = reconcile_countless(a, b, codec)
        assert countless.success
        countless_bytes = countless.symbols_used * countless_cell_bytes(codec)
        rows.append(
            ("varint count", with_count.symbols_used, with_count.bytes_on_wire)
        )
        rows.append(("no count", countless.symbols_used, countless_bytes))
        rows.append(
            ("8B fixed count", with_count.symbols_used,
             with_count.symbols_used * (8 + 8 + 8))
        )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'variant':>15} {'symbols':>8} {'wire bytes':>11}"]
    lines += [f"{name:>15} {s:>8} {b:>11}" for name, s, b in rows]
    lines.append("§6's varint ≈ no-count + 1 byte/cell; both beat fixed 8 B")
    report_table("Ablation — count field encoding", lines)
    by_name = {name: bytes_ for name, _, bytes_ in rows}
    assert by_name["no count"] < by_name["varint count"] < by_name["8B fixed count"]


def test_ablation_alpha_tradeoff(benchmark):
    rows = []

    def run():
        for alpha in (0.5, 0.64):
            stats = overhead_stats(D * 4, runs=max(3, RUNS // 2), alpha=alpha, seed=9)
            codec = IntSymbolCodec(alpha=alpha)
            rng = random.Random(7)
            values = [rng.getrandbits(64) | 1 for _ in range(SET_SIZE)]
            encoder = RatelessEncoder(codec)
            for value in values:
                encoder.add_value(value)
            start = time.perf_counter()
            for _ in range(4 * D):
                encoder.produce_next()
            elapsed = time.perf_counter() - start
            rows.append((alpha, stats.mean, elapsed))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'alpha':>6} {'overhead':>9} {'encode s':>9}"]
    lines += [f"{a:>6.2f} {o:>9.3f} {t:>9.4f}" for a, o, t in rows]
    lines.append(
        "§4.2 trade: alpha=0.64 saves ~3% communication but needs a"
        " non-integer power per mapping step (sqrt suffices at 0.5)"
    )
    report_table("Ablation — alpha choice", lines)
    by_alpha = {a: o for a, o, _ in rows}
    assert by_alpha[0.64] < by_alpha[0.5] + 0.03


def test_ablation_heap_vs_direct_walk(benchmark):
    rows = []

    def run():
        rng = random.Random(13)
        codec = SymbolCodec(8)
        items = set()
        while len(items) < SET_SIZE:
            items.add(rng.randbytes(8))
        size = 4 * D
        start = time.perf_counter()
        direct = RatelessSketch.from_items(items, size, codec)
        direct_time = time.perf_counter() - start
        start = time.perf_counter()
        encoder = RatelessEncoder(codec, items)
        heap_cells = encoder.produce(size)
        heap_time = time.perf_counter() - start
        assert heap_cells == list(direct.cells)
        rows.append(("direct walk", direct_time))
        rows.append(("heap encoder", heap_time))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'builder':>13} {'seconds':>9}"]
    lines += [f"{name:>13} {t:>9.4f}" for name, t in rows]
    lines.append(
        "identical output; the heap's log-factor buys incremental"
        " production (unknown prefix length), the §6 requirement"
    )
    report_table("Ablation — sketch construction strategy", lines)
