"""Shared helpers for the figure benchmarks.

``REPRO_SCALE`` selects the sweep sizes:

* ``quick``   — smoke-test scale (CI);
* ``default`` — laptop scale, minutes (what EXPERIMENTS.md reports);
* ``paper``   — closest to the paper's grids that pure Python tolerates.
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable

SCALE = os.environ.get("REPRO_SCALE", "default")
if SCALE not in ("quick", "default", "paper"):
    raise ValueError(f"REPRO_SCALE must be quick|default|paper, not {SCALE!r}")


def by_scale(quick, default, paper):
    """Pick a parameter by the active profile."""
    return {"quick": quick, "default": default, "paper": paper}[SCALE]


def make_items(rng: random.Random, count: int, size: int) -> list[bytes]:
    """``count`` distinct random items of ``size`` bytes.

    Sorted so workloads are identical across processes (``list(set)``
    order depends on the interpreter's randomised string hashing).
    """
    items: set[bytes] = set()
    while len(items) < count:
        items.add(rng.randbytes(size))
    return sorted(items)


def sets_with_difference(
    rng: random.Random, set_size: int, d: int, item_size: int
) -> tuple[set[bytes], set[bytes]]:
    """|A| = |B| = set_size with |A △ B| = d (d/2 exclusive each side,
    rounding to Alice when odd)."""
    only_a = d - d // 2
    only_b = d // 2
    shared = set_size - only_a
    items = make_items(rng, shared + only_a + only_b, item_size)
    a = set(items[: shared + only_a])
    b = set(items[:shared]) | set(items[shared + only_a :])
    return a, b


# --- result tables ------------------------------------------------------------
#
# Benches queue paper-style series here; the ``pytest_terminal_summary``
# hook in benchmarks/conftest.py prints them after the run.  The helper
# lives in this module (not conftest.py) so bench files never import
# from a module named ``conftest``, which collides with other
# directories' conftests on ``sys.path``.

_TABLES: list[tuple[str, list[str]]] = []


def report_table(title: str, lines: list[str]) -> None:
    """Queue a results table for the end-of-run summary."""
    _TABLES.append((title, list(lines)))


def queued_tables() -> list[tuple[str, list[str]]]:
    """Everything queued so far (consumed by the terminal-summary hook)."""
    return list(_TABLES)


def timed(fn: Callable[[], object]) -> tuple[object, float]:
    """(result, wall seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def fmt_row(*cells: object, widths: tuple[int, ...] = ()) -> str:
    """Fixed-width table row."""
    if not widths:
        widths = tuple(12 for _ in cells)
    return "  ".join(str(c)[:w].rjust(w) for c, w in zip(cells, widths))
