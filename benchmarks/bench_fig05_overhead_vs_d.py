"""Figure 5: overhead of Rateless IBLT versus the difference size d.

Paper: the average overhead peaks at 1.72 when d = 4 and converges to
1.35 (the DE prediction) once d reaches the low hundreds; for all d > 128
it stays below 1.40.
"""

from bench_util import by_scale
from bench_util import report_table
from repro.analysis.montecarlo import overhead_stats

GRID = by_scale(
    [(4, 20), (64, 10), (512, 5)],
    [
        (1, 200), (2, 200), (4, 200), (8, 100), (16, 100), (32, 60),
        (64, 60), (128, 40), (256, 30), (512, 20), (1024, 15),
        (2048, 10), (4096, 8), (8192, 5),
    ],
    [
        (1, 500), (2, 400), (4, 400), (8, 200), (16, 200), (32, 100),
        (64, 100), (128, 100), (256, 60), (512, 40), (1024, 30),
        (2048, 20), (4096, 15), (8192, 10), (16384, 8), (65536, 3),
    ],
)


def test_fig05_overhead_vs_difference(benchmark):
    results = []

    def run():
        for d, runs in GRID:
            results.append(overhead_stats(d, runs=runs, seed=5))
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'d':>8} {'runs':>6} {'overhead':>10} {'stddev':>8}"]
    for stats in results:
        lines.append(
            f"{stats.difference_size:>8} {stats.runs:>6} "
            f"{stats.mean:>10.3f} {stats.std:>8.3f}"
        )
    lines.append("paper: peak 1.72 at d=4; <=1.40 for d>128; -> 1.35 asymptote")
    report_table("Fig 5 — overhead vs set difference (alpha=0.5)", lines)

    by_d = {s.difference_size: s.mean for s in results}
    if 4 in by_d:
        assert 1.4 <= by_d[4] <= 2.1  # the small-d peak
    for d, mean in by_d.items():
        if d > 128:
            assert mean < 1.50
