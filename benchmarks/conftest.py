"""Benchmark infrastructure: result tables that survive pytest's capture.

Each bench registers the paper-style series it measured via
``bench_util.report_table``; the hook below prints every table after the
run (the terminal reporter is not captured, so the tables land in
``bench_output.txt`` when the run is tee'd).  This conftest holds *only*
pytest hooks — shared helpers live in ``bench_util.py`` so bench modules
never import from a module named ``conftest``.
"""

from __future__ import annotations

from bench_util import queued_tables


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = queued_tables()
    if not tables:
        return
    tr = terminalreporter
    tr.write_sep("=", "reproduction results (paper-style series)")
    for title, lines in tables:
        tr.write_line("")
        tr.write_line(f"--- {title} ---")
        for line in lines:
            tr.write_line(line)
    tr.write_line("")
