"""Benchmark infrastructure: result tables that survive pytest's capture.

Each bench registers the paper-style series it measured via
:func:`report_table`; a ``pytest_terminal_summary`` hook prints every table
after the run (the terminal reporter is not captured, so the tables land
in ``bench_output.txt`` when the run is tee'd).
"""

from __future__ import annotations

_TABLES: list[tuple[str, list[str]]] = []


def report_table(title: str, lines: list[str]) -> None:
    """Queue a results table for the end-of-run summary."""
    _TABLES.append((title, list(lines)))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    tr = terminalreporter
    tr.write_sep("=", "reproduction results (paper-style series)")
    for title, lines in _TABLES:
        tr.write_line("")
        tr.write_line(f"--- {title} ---")
        for line in lines:
            tr.write_line(line)
    tr.write_line("")
