"""Figure 12: Ethereum state sync — completion time and bytes vs staleness.

Paper: 20 Mbps / 50 ms link.  Both schemes grow linearly in staleness;
Rateless IBLT completes 4.8-13.6× faster and moves 4.4-8.6× less data
than Geth's state heal.  Our ledger is the synthetic scaled-down
substrate (DESIGN.md); per-difference behaviour carries over.
"""

from bench_util import by_scale
from bench_util import report_table
from repro.baselines.merkle import state_heal
from repro.ledger import Chain, build_scenario
from repro.ledger.workload import measure_riblt_plan
from repro.net.protocols import simulate_riblt_sync, simulate_state_heal

BANDWIDTH = 20e6
DELAY = 0.05
ACCOUNTS = by_scale(3_000, 30_000, 120_000)
UPDATES_PER_BLOCK = by_scale(6, 12, 40)
STALENESS_BLOCKS = by_scale(
    [5, 25], [5, 25, 50, 100, 150], [5, 25, 50, 100, 200, 400, 800]
)
LINE_RATE = 170e6  # §7.3: one core saturates ≈170 Mbps in the Go implementation


def build_chain():
    chain = Chain(
        num_accounts=ACCOUNTS,
        seed=12,
        updates_per_block=UPDATES_PER_BLOCK,
        creates_per_block=max(1, UPDATES_PER_BLOCK // 10),
    )
    chain.advance(max(STALENESS_BLOCKS))
    return chain


def test_fig12_completion_and_bytes_vs_staleness(benchmark):
    rows = []

    def run():
        chain = build_chain()
        for staleness in STALENESS_BLOCKS:
            scenario = build_scenario(chain, staleness)
            plan = measure_riblt_plan(scenario, calibrated_line_rate_bps=LINE_RATE)
            riblt = simulate_riblt_sync(plan, BANDWIDTH, DELAY)
            report = state_heal(scenario.bob_store.copy(), scenario.alice_trie)
            heal = simulate_state_heal(report, BANDWIDTH, DELAY)
            rows.append(
                (
                    staleness,
                    scenario.difference_size,
                    riblt.completion_time,
                    riblt.bytes_down_total / 1e6,
                    heal.completion_time,
                    heal.bytes_down / 1e6,
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'blocks':>7} {'minutes':>8} {'d':>7} {'riblt s':>8} {'riblt MB':>9} "
        f"{'heal s':>8} {'heal MB':>8} {'time x':>7} {'data x':>7}"
    ]
    for staleness, d, rt, rmb, ht, hmb in rows:
        lines.append(
            f"{staleness:>7} {staleness * 12 / 60:>8.1f} {d:>7} {rt:>8.3f} "
            f"{rmb:>9.3f} {ht:>8.3f} {hmb:>8.3f} {ht / rt:>7.1f} {hmb / rmb:>7.2f}"
        )
    lines.append(
        "paper: riblt 4.8-13.6x faster, 4.4-8.6x less data (at N = 230M;"
        f" here N = {ACCOUNTS}, so trie-depth amplification is smaller)"
    )
    report_table("Fig 12 — Ethereum sync vs staleness (20 Mbps, 50 ms)", lines)

    for staleness, d, rt, rmb, ht, hmb in rows:
        assert rt < ht, f"riblt must finish first at staleness={staleness}"
    # linear growth in staleness for both schemes
    d_values = [row[1] for row in rows]
    assert all(a < b for a, b in zip(d_values, d_values[1:]))
