"""The vectorised set-ingestion pipeline: pool mechanics, batch faces,
and the service's bulk churn — engine-agnostic behaviour (the
bit-identity of the two engines lives in test_batch_equivalence.py)."""

import pytest

from repro.core import cellbank
from repro.core.encoder import RatelessEncoder
from repro.core.mapping import IndexGenerator
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import Blake2bHasher, SipHasher
from repro.hashing.prng import mix64, mix64_lanes
from repro.service.shard import ShardedSet

from helpers import make_items


# -- codec batch faces ------------------------------------------------------


def test_checksum_batch_matches_singles(rng):
    for hasher in (Blake2bHasher(), SipHasher()):
        for checksum_size in (8, 4):
            codec = SymbolCodec(8, hasher=hasher, checksum_size=checksum_size)
            items = make_items(rng, 50)
            assert codec.checksum_batch(items) == [
                codec.checksum_data(item) for item in items
            ]


def test_checksum_batch_falls_back_without_batch_face(rng):
    class LegacyHasher:
        """A pre-batch custom hasher: only the hash64 face."""

        key = b"\x00" * 16

        def hash64(self, data: bytes) -> int:
            return int.from_bytes(data[:8].ljust(8, b"\x00"), "little")

    codec = SymbolCodec(8, hasher=LegacyHasher())
    items = make_items(rng, 20)
    assert codec.checksum_batch(items) == [
        codec.checksum_data(item) for item in items
    ]


def test_to_int_batch_matches_singles_and_validates(rng):
    codec = SymbolCodec(8)
    items = make_items(rng, 30)
    assert codec.to_int_batch(items) == [codec.to_int(item) for item in items]
    with pytest.raises(ValueError):
        codec.to_int_batch([b"12345678", b"short"])


def test_mix64_lanes_matches_scalar(rng):
    np = pytest.importorskip("numpy")
    values = [rng.getrandbits(64) for _ in range(500)]
    lanes = mix64_lanes(np.array(values, dtype=np.uint64))
    assert lanes.tolist() == [mix64(v) for v in values]


def test_index_generator_restore_round_trip():
    gen = IndexGenerator(seed=0xDEADBEEF)
    for _ in range(5):
        gen.next_index()
    parked = IndexGenerator.restore(gen.state, gen.current, gen.alpha)
    assert parked.next_index() == gen.next_index()


# -- encoder pool mechanics -------------------------------------------------


def test_bulk_encoder_membership_and_size(rng):
    items = make_items(rng, 64)
    enc = RatelessEncoder(SymbolCodec(8), items[:60])
    assert len(enc) == enc.set_size == 60
    assert items[0] in enc
    assert items[63] not in enc
    enc.add_items(items[60:])
    assert len(enc) == 64
    enc.remove_items(items[:8])
    assert len(enc) == 56
    assert items[0] not in enc


def test_bulk_duplicate_rejected_atomically(rng):
    items = make_items(rng, 40)
    enc = RatelessEncoder(SymbolCodec(8), items[:20])
    with pytest.raises(KeyError):
        enc.add_items(items[20:] + [items[0]])  # dup against the set
    assert len(enc) == 20
    assert items[20] not in enc  # nothing from the failed batch landed
    with pytest.raises(KeyError):
        enc.add_items([items[30], items[30]])  # dup inside the batch
    assert len(enc) == 20


def test_bulk_remove_missing_rejected_atomically(rng):
    items = make_items(rng, 30)
    enc = RatelessEncoder(SymbolCodec(8), items[:20])
    with pytest.raises(KeyError):
        enc.remove_items([items[0], items[25]])  # second one absent
    assert items[0] in enc
    with pytest.raises(KeyError):
        enc.remove_items([items[1], items[1]])  # named twice
    assert items[1] in enc


def test_single_add_sees_pooled_duplicates(rng):
    items = make_items(rng, 32)
    enc = RatelessEncoder(SymbolCodec(8), items)  # staged in the pool
    with pytest.raises(KeyError):
        enc.add_item(items[5])
    enc.remove_item(items[5])  # single removal of a pooled row
    assert items[5] not in enc
    enc.add_item(items[5])  # and back in, as a heap entry
    assert items[5] in enc
    assert len(enc) == 32


def test_pool_survives_numpy_lane_loss(rng):
    """Bulk-staged symbols keep streaming when the NumPy lane is turned
    off mid-life (pool materialises into the reference engine)."""
    if cellbank._np is None:
        pytest.skip("NumPy not available")
    items = make_items(rng, 100)
    saved = cellbank.NUMPY_LANE
    cellbank.NUMPY_LANE = True
    try:
        enc = RatelessEncoder(SymbolCodec(8), items)
        head = enc.produce_block(50).cells()
        cellbank.NUMPY_LANE = False
        tail = enc.produce_block(50).cells()
    finally:
        cellbank.NUMPY_LANE = saved
    reference = RatelessEncoder(SymbolCodec(8), items)
    assert head + tail == reference.produce_block(100).cells()


def test_empty_batches_are_noops(rng):
    enc = RatelessEncoder(SymbolCodec(8), make_items(rng, 10))
    enc.add_items([])
    enc.remove_items([])
    assert len(enc) == 10


# -- sharded bulk churn -----------------------------------------------------


def _hash64(data: bytes) -> int:
    return Blake2bHasher().hash64(data)


def test_sharded_add_many_matches_singles(rng):
    items = make_items(rng, 200)
    one = ShardedSet(_hash64, 4)
    for item in items:
        one.add(item)
    many = ShardedSet(_hash64, 4)
    placed = many.add_many(items)
    assert placed == [one.shard_of(item) for item in items]
    assert [sorted(s) for s in many.shards] == [sorted(s) for s in one.shards]
    # one version bump per touched shard, not per item
    assert all(v <= 1 for v in many.versions)
    removed = many.remove_many(items[:50])
    assert removed == placed[:50]
    assert len(many) == 150


def test_sharded_add_many_atomic(rng):
    items = make_items(rng, 20)
    sharded = ShardedSet(_hash64, 2, items[:10])
    versions = list(sharded.versions)
    with pytest.raises(KeyError):
        sharded.add_many(items[10:] + [items[0]])
    assert len(sharded) == 10
    assert sharded.versions == versions  # nothing bumped
    with pytest.raises(KeyError):
        sharded.remove_many([items[0], items[15]])
    assert len(sharded) == 10


def test_warm_backend_bulk_churn_matches_rebuild(rng):
    from repro.api.registry import get_scheme
    from repro.service.backends import WarmRibltBackend

    items = make_items(rng, 240)
    base, fresh = items[:200], items[200:]
    codec = SymbolCodec(8)
    sharded = ShardedSet(_hash64, 3, base)
    backend = WarmRibltBackend(get_scheme("riblt"), sharded, codec)
    # produce some cells on every shard, then churn in one batch
    for shard in range(3):
        backend.encoders[shard].produce_block(64)
    versions = list(sharded.versions)
    backend.add_many(fresh)
    backend.remove_many(base[:40])
    assert [v > old for v, old in zip(sharded.versions, versions)]
    survivors = base[40:] + fresh
    rebuilt = ShardedSet(_hash64, 3, survivors)
    for shard in range(3):
        expected = RatelessEncoder(codec, sorted(rebuilt.shards[shard]))
        warm = backend.encoders[shard]
        produced = warm.produced_count
        assert expected.produce_block(produced).cells() == [
            warm.cached(i) for i in range(produced)
        ]
        assert warm.set_size == len(rebuilt.shards[shard])


def test_server_bulk_mutation_api(rng):
    from repro.service.server import ReconciliationServer

    items = make_items(rng, 60)
    server = ReconciliationServer(items[:40], num_shards=2)
    server.add_items(items[40:])
    assert len(server) == 60
    server.remove_items(items[:10])
    assert len(server) == 50
    assert items[0] not in server
    assert items[59] in server
    with pytest.raises(KeyError):
        server.add_items([items[59]])
