"""Simulated sync protocols: timing structure of Figs 12-14."""

import pytest

from repro.baselines.merkle.heal import HealReport, HealRound
from repro.net.protocols.heal_sync import simulate_state_heal
from repro.net.protocols.riblt_sync import SyncPlan, simulate_riblt_sync


def make_plan(symbols=1000, bytes_per_symbol=100.0, decode_us=1.0):
    return SyncPlan(
        symbols_needed=symbols,
        bytes_per_symbol=bytes_per_symbol,
        decode_seconds_per_symbol=decode_us * 1e-6,
        chunk_symbols=100,
    )


def make_heal_report(rounds=5, nodes_per_round=100, response_bytes=20_000):
    report = HealReport()
    for _ in range(rounds):
        rnd = HealRound(
            requested_hashes=nodes_per_round,
            request_bytes=64 + 32 * nodes_per_round,
            response_bytes=response_bytes,
            nodes_delivered=nodes_per_round,
            leaves_delivered=nodes_per_round // 2,
        )
        report.rounds.append(rnd)
        report.nodes_fetched += rnd.nodes_delivered
        report.leaves_fetched += rnd.leaves_delivered
        report.bytes_up += rnd.request_bytes
        report.bytes_down += rnd.response_bytes
    return report


def test_riblt_completion_at_least_one_rtt():
    """Request (0.5 RTT) + first data (0.5 RTT): nothing beats 1 RTT."""
    out = simulate_riblt_sync(make_plan(symbols=10), 100e6, delay_s=0.05)
    assert out.completion_time >= 0.1


def test_riblt_throughput_bound():
    """Large transfers take ≈ bytes/bandwidth extra."""
    plan = make_plan(symbols=100_000, bytes_per_symbol=100.0)
    out = simulate_riblt_sync(plan, 20e6, delay_s=0.05)
    serialisation = 100_000 * 100 * 8 / 20e6
    assert out.completion_time == pytest.approx(0.1 + serialisation, rel=0.1)


def test_riblt_scales_with_bandwidth():
    plan = make_plan(symbols=50_000)
    slow = simulate_riblt_sync(plan, 10e6, delay_s=0.05)
    fast = simulate_riblt_sync(plan, 100e6, delay_s=0.05)
    assert fast.completion_time < slow.completion_time / 3


def test_riblt_overshoot_bounded():
    """Alice overshoots by ≈ 1 RTT of line rate, no more (stop works)."""
    plan = make_plan(symbols=10_000)
    out = simulate_riblt_sync(plan, 20e6, delay_s=0.05)
    overshoot = out.bytes_down_total - out.bytes_down_at_decode
    line_rate_rtt = 20e6 / 8 * 0.1
    assert overshoot <= 2.5 * line_rate_rtt + 10_000


def test_riblt_compute_bound_when_decode_slow():
    """With a slow decoder, extra bandwidth stops helping (the inverse of
    Fig 14's plateau, applied to riblt)."""
    plan = make_plan(symbols=50_000, decode_us=50.0)
    medium = simulate_riblt_sync(plan, 100e6, delay_s=0.05)
    fast = simulate_riblt_sync(plan, 1000e6, delay_s=0.05)
    assert fast.completion_time > 0.9 * medium.completion_time


def test_riblt_trace_records_bytes():
    plan = make_plan(symbols=5_000)
    out = simulate_riblt_sync(plan, 20e6, delay_s=0.05)
    assert out.trace.total_bytes == out.bytes_down_total


def test_riblt_rejects_empty_plan():
    with pytest.raises(ValueError):
        simulate_riblt_sync(make_plan(symbols=0), 20e6, 0.05)


def test_heal_lock_step_rounds():
    """Completion ≥ rounds × RTT: the lock-step descent cost."""
    report = make_heal_report(rounds=11, response_bytes=1000)
    out = simulate_state_heal(report, 1e9, delay_s=0.05)
    assert out.completion_time >= 11 * 0.1
    assert out.round_trips == 11


def test_heal_compute_plateau():
    """Beyond some bandwidth the per-node CPU dominates: Fig 14."""
    report = make_heal_report(rounds=8, nodes_per_round=5000, response_bytes=1_500_000)
    t20 = simulate_state_heal(report, 20e6, 0.05, node_process_seconds=8e-5)
    t100 = simulate_state_heal(report, 100e6, 0.05, node_process_seconds=8e-5)
    t_inf = simulate_state_heal(report, float("inf"), 0.05, node_process_seconds=8e-5)
    assert t100.completion_time < t20.completion_time
    compute_floor = 8 * 5000 * 8e-5
    assert t_inf.completion_time >= compute_floor
    # the plateau: 100 Mbps → ∞ saves little
    assert t_inf.completion_time > 0.65 * t100.completion_time


def test_heal_bytes_accounting():
    report = make_heal_report()
    out = simulate_state_heal(report, 20e6, 0.05)
    assert out.bytes_down == report.bytes_down
    assert out.bytes_up == report.bytes_up
    assert out.nodes_fetched == report.nodes_fetched


def test_heal_empty_report():
    out = simulate_state_heal(HealReport(), 20e6, 0.05)
    assert out.completion_time == 0.0
    assert out.round_trips == 0


def test_riblt_beats_heal_on_latency_small_diff():
    """Fig 13: half a round of interactivity vs ≥11 lock-step rounds."""
    plan = make_plan(symbols=200, bytes_per_symbol=100.0)
    riblt = simulate_riblt_sync(plan, 20e6, 0.05)
    heal = simulate_state_heal(
        make_heal_report(rounds=11, response_bytes=2_000), 20e6, 0.05
    )
    assert riblt.completion_time < heal.completion_time / 3
