"""Fault-tolerance behaviours: idle deadlines, reconnects, degradation.

Acceptance anchors:

* a stalled session is closed with a typed ``ERROR(IDLE)`` frame — the
  client can tell "you were too slow" from a crash or a protocol bug;
* :class:`RetryPolicy` reconnects survive a server that comes up late,
  with a schedule that is exactly reproducible under a seed;
* a gossip peer whose sessions die is marked suspect and backed off,
  and one successful contact restores the normal cadence;
* a durable server restarted from its data dir serves the same set.
"""

import asyncio
import random

import pytest

from repro.api import SymbolBudgetExceeded
from repro.gossip import GossipConfig, GossipNode, run_round
from repro.service import (
    IdleTimeout,
    ReconciliationServer,
    RetryPolicy,
    ServerConfig,
    ServiceNode,
    sync,
)
from repro.service.framing import ErrorCode, FrameDecoder, FrameType

SYNC_TIMEOUT = 120.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=SYNC_TIMEOUT))


def items_range(lo, hi):
    return [b"%08d" % i for i in range(lo, hi)]


# -- idle deadline -----------------------------------------------------------


def test_idle_session_closed_with_typed_error_frame():
    """A client that connects and stalls gets ERROR(IDLE), then EOF."""

    async def scenario():
        config = ServerConfig(idle_timeout=0.2)
        async with ReconciliationServer(
            items_range(0, 50), num_shards=2, config=config
        ) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                # Say nothing.  The server must not hold the socket
                # forever waiting for a HELLO that never comes.
                data = await asyncio.wait_for(reader.read(1 << 16), timeout=5.0)
                frames = FrameDecoder().feed(data)
                assert frames, "expected an ERROR frame before close"
                ftype, body = frames[-1]
                assert ftype == FrameType.ERROR
                assert body[0] == ErrorCode.IDLE
                # The server then drops the connection entirely.
                tail = await asyncio.wait_for(reader.read(1 << 16), timeout=5.0)
                assert tail == b""
            finally:
                writer.close()
                await writer.wait_closed()

    run(scenario())


def test_idle_error_surfaces_as_typed_exception_client_side():
    """The machine maps ERROR(IDLE) to IdleTimeout, not a generic fail."""
    import repro.protocol.machine as protocol_machine
    from repro.api.registry import get_scheme

    async def scenario():
        config = ServerConfig(idle_timeout=0.2)
        async with ReconciliationServer(
            items_range(0, 50), num_shards=2, config=config
        ) as server:
            host, port = server.address
            handle = get_scheme("riblt", symbol_size=8)
            machine = protocol_machine.InitiatorMachine(
                handle, items_range(0, 50), num_shards=0
            )
            machine.start()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                # Swallow the machine's opening bytes instead of sending
                # them: a connected-but-silent client.
                machine.take_output()
                while not machine.finished:
                    data = await asyncio.wait_for(
                        reader.read(1 << 16), timeout=5.0
                    )
                    if not data:
                        machine.peer_closed()
                    else:
                        machine.bytes_received(data)
                assert isinstance(machine.failed, IdleTimeout)
            finally:
                writer.close()
                await writer.wait_closed()

    run(scenario())


def test_active_session_unaffected_by_idle_deadline():
    """A normally-paced sync never trips a short-but-sane deadline."""

    async def scenario():
        config = ServerConfig(idle_timeout=5.0)
        async with ReconciliationServer(
            items_range(0, 500), num_shards=4, config=config
        ) as server:
            host, port = server.address
            result = await sync(host, port, items_range(10, 510))
            assert result.only_in_server == set(items_range(0, 10))

    run(scenario())


def test_idle_timeout_none_disables_deadline():
    async def scenario():
        config = ServerConfig(idle_timeout=None)
        async with ReconciliationServer(
            items_range(0, 50), num_shards=2, config=config
        ) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                # No deadline: half a second of silence produces nothing.
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(reader.read(1), timeout=0.5)
            finally:
                writer.close()
                await writer.wait_closed()

    run(scenario())


# -- bounded reconnect -------------------------------------------------------


def test_retry_policy_is_deterministic_under_seed():
    a = list(RetryPolicy(attempts=6, seed=42).delays())
    b = list(RetryPolicy(attempts=6, seed=42).delays())
    c = list(RetryPolicy(attempts=6, seed=43).delays())
    assert a == b
    assert a != c
    assert len(a) == 5


def test_retry_policy_backoff_envelope():
    policy = RetryPolicy(
        attempts=8, base_delay=0.1, max_delay=1.0, multiplier=2.0,
        jitter=0.5, seed=7,
    )
    delays = list(policy.delays())
    for k, delay in enumerate(delays):
        nominal = min(0.1 * 2.0**k, 1.0)
        assert 0.5 * nominal <= delay <= 1.5 * nominal
    # The cap binds: late retries stop growing.
    assert max(delays) <= 1.5


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    assert list(RetryPolicy(attempts=1).delays()) == []


def test_sync_reconnects_until_server_appears():
    """The server comes up after the first attempts fail: retry wins."""

    async def scenario():
        # Reserve a port, then race the server against the client's
        # retry schedule.
        probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()

        server = ReconciliationServer(items_range(0, 100), num_shards=2)

        async def late_start():
            await asyncio.sleep(0.3)
            await server.start("127.0.0.1", port)

        starter = asyncio.ensure_future(late_start())
        try:
            result = await sync(
                "127.0.0.1",
                port,
                items_range(5, 105),
                retry=RetryPolicy(
                    attempts=20, base_delay=0.05, max_delay=0.2, seed=3
                ),
            )
            assert result.only_in_server == set(items_range(0, 5))
        finally:
            await starter
            await server.close()

    run(scenario())


def test_sync_gives_up_after_attempts_exhausted():
    async def scenario():
        probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()
        with pytest.raises(OSError):
            await sync(
                "127.0.0.1",
                port,
                items_range(0, 10),
                retry=RetryPolicy(attempts=3, base_delay=0.01, seed=1),
            )

    run(scenario())


def test_protocol_failures_are_not_retried():
    """Budget exhaustion is a disagreement, not an outage: no retry."""

    async def scenario():
        async with ReconciliationServer(
            items_range(0, 400), num_shards=1
        ) as server:
            host, port = server.address
            before = server.stats.sessions_started
            with pytest.raises(SymbolBudgetExceeded):
                await sync(
                    host,
                    port,
                    items_range(200, 600),
                    max_symbols=4,
                    retry=RetryPolicy(attempts=5, base_delay=0.01, seed=1),
                )
            # Exactly one session ran: the typed failure propagated
            # without burning the retry schedule.
            assert server.stats.sessions_started == before + 1

    run(scenario())


# -- gossip degradation ------------------------------------------------------


def gossip_pair(diff=40):
    shared = [b"%08d" % i for i in range(200)]
    a_only = [b"%08d" % i for i in range(1000, 1000 + diff)]
    x = GossipNode(0, shared + a_only, num_shards=1)
    y = GossipNode(1, shared, num_shards=1)
    return x, y


def test_failed_round_marks_suspect_and_backs_off():
    x, y = gossip_pair()
    config = GossipConfig(max_symbols=1)  # guarantees a blown budget
    outcome = run_round(x, y, 1, config)
    assert outcome.tier == "failed"
    assert outcome.error and "SymbolBudgetExceeded" in outcome.error
    view = x.view_of(1)
    assert view.suspect
    assert view.failures == 1
    assert view.next_contact_round == 1 + 2  # 1 << 1

    # Within the backoff window the peer is not contacted at all.
    outcome = run_round(x, y, 2, config)
    assert outcome.tier == "backoff"
    assert outcome.wire_bytes == 0

    # Consecutive failures double the interval, capped.
    outcome = run_round(x, y, 3, config)
    assert outcome.tier == "failed"
    assert x.view_of(1).failures == 2
    assert x.view_of(1).next_contact_round == 3 + 4
    for round_no in range(4, 20):
        if not x.in_backoff(1, round_no):
            run_round(x, y, round_no, config)
    assert x.view_of(1).next_contact_round <= round_no + GossipNode.MAX_BACKOFF_ROUNDS


def test_first_success_clears_suspicion_fully():
    x, y = gossip_pair()
    run_round(x, y, 1, GossipConfig(max_symbols=1))
    assert x.view_of(1).suspect

    # The budget pressure lifts; the next allowed contact succeeds.
    round_no = x.view_of(1).next_contact_round
    outcome = run_round(x, y, round_no, GossipConfig())
    assert outcome.tier == "full"
    view = x.view_of(1)
    assert not view.suspect
    assert view.failures == 0
    assert view.next_contact_round == 0
    assert sorted(y.items()) == sorted(x.items())


def test_tolerate_failures_false_raises_through():
    x, y = gossip_pair()
    config = GossipConfig(max_symbols=1, tolerate_failures=False)
    with pytest.raises(SymbolBudgetExceeded):
        run_round(x, y, 1, config)
    # The peer is still marked suspect before the raise: a caller that
    # catches the exception keeps the degradation bookkeeping.
    assert x.view_of(1).suspect


def test_mesh_sim_round_tolerates_budget_failures():
    from repro.gossip import GossipMesh, make_nodes

    rng = random.Random(11)
    universe = [b"%08d" % i for i in range(300)]
    node_sets = [
        set(rng.sample(universe, 250)) for _ in range(4)
    ]
    nodes = make_nodes(node_sets)
    mesh = GossipMesh(
        nodes,
        topology="full",
        fanout=1,
        seed=5,
        config=GossipConfig(transport="sim", max_symbols=1),
    )
    stats = mesh.run_round()
    assert stats.failed_syncs > 0  # budget=1 kills every full session
    suspects = sum(
        1 for node in nodes for view in node.views.values() if view.suspect
    )
    assert suspects >= stats.failed_syncs


# -- warm restart of the served state ---------------------------------------


def test_service_node_warm_restart_serves_recovered_set(tmp_path):
    async def scenario():
        node = ServiceNode(
            items_range(0, 150), num_shards=2, data_dir=tmp_path
        )
        await node.start()
        node.add_items(items_range(500, 520))
        node.remove_items(items_range(0, 5))
        expected = set(items_range(5, 150)) | set(items_range(500, 520))
        await node.stop()

        # A new process: no items given, everything comes off disk.
        reborn = ServiceNode(data_dir=tmp_path)
        host, port = await reborn.start()
        assert reborn.items == expected
        result = await sync(host, port, sorted(expected))
        assert result.difference_size == 0
        await reborn.stop()

    run(scenario())


def test_gossip_digest_version_survives_restart(tmp_path):
    """A restarted durable peer digest-skips instead of re-syncing."""
    from repro.durable import open_durable

    items = [b"%08d" % i for i in range(120)]
    backend = open_durable(tmp_path, items, num_shards=1)
    x = GossipNode(0, backend=backend)
    y = GossipNode(1, items, num_shards=1)
    outcome = run_round(x, y, 1, GossipConfig())
    assert outcome.tier == "digest-skip"  # equal sets confirm cheaply
    y_view_version = y.view_of(0).peer_version
    backend.close()

    # Restart: the version clock comes back from disk, so the digest y
    # already holds is not "stale reordered information".
    reborn = GossipNode(0, backend=open_durable(tmp_path))
    assert reborn.version == y_view_version
    outcome = run_round(reborn, y, 2, GossipConfig())
    assert outcome.tier in ("clock-skip", "digest-skip")
    reborn.backend.close()
