"""CodedSymbolBank: lane semantics, wire pack/unpack, batch scatter."""

import pytest

from repro.core import cellbank
from repro.core.cellbank import (
    CodedSymbolBank,
    scatter_walk_numpy,
    scatter_walk_scalar,
)
from repro.core.coded import CodedSymbol
from repro.core.mapping import IndexGenerator
from repro.core.params import DEFAULT_ALPHA
from repro.core.symbols import SymbolCodec


def bank_of(triples):
    bank = CodedSymbolBank()
    for s, k, c in triples:
        bank.append(s, k, c)
    return bank


def test_from_cells_round_trip():
    cells = [CodedSymbol(1, 2, 3), CodedSymbol(0xFF, 0xAB, -1)]
    bank = CodedSymbolBank.from_cells(cells)
    assert len(bank) == 2
    assert bank.cells() == cells
    assert bank.cell_at(1) == cells[1]
    assert list(bank) == cells


def test_lane_length_mismatch_rejected():
    with pytest.raises(ValueError):
        CodedSymbolBank([1], [], [])


def test_zeros_and_is_all_zero():
    bank = CodedSymbolBank.zeros(4)
    assert len(bank) == 4
    assert bank.is_all_zero()
    bank.counts[2] = 1
    assert not bank.is_all_zero()


def test_copy_and_slice_are_value_copies():
    bank = bank_of([(1, 2, 3), (4, 5, 6), (7, 8, 9)])
    dup = bank.copy()
    cut = bank.slice(1, 3)
    bank.sums[1] = 99
    assert dup.sums[1] == 4
    assert cut.sums == [4, 7]


def test_subtract_matches_cell_subtract():
    a = bank_of([(0b1100, 7, 2), (5, 5, 1)])
    b = bank_of([(0b1010, 3, 1), (5, 5, 1)])
    diff = a.subtract(b)
    expected = [x.subtract(y) for x, y in zip(a.cells(), b.cells())]
    assert diff.cells() == expected
    a.subtract_in_place(b)
    assert a.cells() == expected


def test_subtract_size_mismatch_rejected():
    with pytest.raises(ValueError):
        CodedSymbolBank.zeros(2).subtract(CodedSymbolBank.zeros(3))
    with pytest.raises(ValueError):
        CodedSymbolBank.zeros(2).subtract_in_place(CodedSymbolBank.zeros(3))


def test_apply_batch_matches_per_cell_apply():
    bank = CodedSymbolBank.zeros(8)
    cells = [CodedSymbol() for _ in range(8)]
    for idx in (0, 3, 5):
        cells[idx].apply(0xDEAD, 0xBEEF, 1)
    bank.apply_batch(0xDEAD, 0xBEEF, 1, [0, 3, 5])
    assert bank.cells() == cells
    bank.apply_batch(0xDEAD, 0xBEEF, -1, [0, 3, 5])
    assert bank.is_all_zero()


def test_extend_and_append():
    bank = bank_of([(1, 1, 1)])
    bank.extend(bank_of([(2, 2, 2)]))
    bank.append_cell(CodedSymbol(3, 3, 3))
    bank.extend_zeros(1)
    assert bank.sums == [1, 2, 3, 0]
    assert bank.counts == [1, 2, 3, 0]


@pytest.mark.parametrize("symbol_size,checksum_size", [(8, 8), (16, 4), (3, 8)])
def test_pack_unpack_round_trip(rng, symbol_size, checksum_size):
    codec = SymbolCodec(symbol_size, checksum_size=checksum_size)
    bank = CodedSymbolBank()
    for _ in range(17):
        bank.append(
            int.from_bytes(rng.randbytes(symbol_size), "little"),
            int.from_bytes(rng.randbytes(checksum_size), "little"),
            rng.randint(-5, 5),
        )
    blob = bank.pack(codec)
    stride = symbol_size + checksum_size + CodedSymbolBank.COUNT_BYTES
    assert len(blob) == 17 * stride
    assert CodedSymbolBank.unpack(blob, codec) == bank


def test_unpack_rejects_ragged_blob():
    codec = SymbolCodec(8)
    with pytest.raises(ValueError):
        CodedSymbolBank.unpack(b"\x00" * 25, codec)


def test_bank_equality():
    a = bank_of([(1, 2, 3)])
    assert a == bank_of([(1, 2, 3)])
    assert a != bank_of([(1, 2, 4)])
    assert a.__eq__(object()) is NotImplemented


# -- scatter-walk engines --------------------------------------------------


def reference_walk(seeds, alphas, hi):
    """Per-symbol IndexGenerator walks — the ground truth."""
    cells = [CodedSymbol() for _ in range(hi)]
    ends = []
    for (value, checksum), alpha in zip(seeds, alphas):
        gen = IndexGenerator(checksum, alpha)
        for idx in gen.indices_below(hi):
            cells[idx].apply(value, checksum, 1)
        ends.append((gen.current, gen.state))
    return cells, ends


def walk_jobs(seeds):
    indices = [0] * len(seeds)
    states = [checksum for _, checksum in seeds]
    values = [value for value, _ in seeds]
    checksums = [checksum for _, checksum in seeds]
    directions = [1] * len(seeds)
    return indices, states, values, checksums, directions


@pytest.mark.parametrize("alpha", [DEFAULT_ALPHA, 0.11, 0.82])
def test_scatter_walk_scalar_matches_index_generator(rng, alpha):
    hi = 96
    seeds = [
        (int.from_bytes(rng.randbytes(8), "little"), rng.getrandbits(64))
        for _ in range(40)
    ]
    expected_cells, expected_ends = reference_walk(seeds, [alpha] * 40, hi)
    bank = CodedSymbolBank.zeros(hi)
    indices, states, values, checksums, directions = walk_jobs(seeds)
    touched: list[int] = []
    scatter_walk_scalar(
        bank.sums,
        bank.checksums,
        bank.counts,
        indices,
        states,
        values,
        checksums,
        directions,
        [alpha] * 40,
        hi,
        touched=touched,
    )
    assert bank.cells() == expected_cells
    assert list(zip(indices, states)) == expected_ends
    assert len(touched) == sum(c.count for c in expected_cells)
    assert all(i < hi for i in touched)


def test_scatter_walk_numpy_matches_scalar(rng):
    np = pytest.importorskip("numpy")
    hi = 128
    seeds = [
        (int.from_bytes(rng.randbytes(8), "little"), rng.getrandbits(64))
        for _ in range(64)
    ]
    expected_cells, expected_ends = reference_walk(seeds, [DEFAULT_ALPHA] * 64, hi)
    sums = np.zeros(hi, dtype=np.uint64)
    checksums = np.zeros(hi, dtype=np.uint64)
    counts = np.zeros(hi, dtype=np.int64)
    indices, states, values, symbol_checksums, directions = walk_jobs(seeds)
    touched: list = []
    scatter_walk_numpy(
        sums,
        checksums,
        counts,
        indices,
        states,
        values,
        symbol_checksums,
        directions,
        hi,
        touched=touched,
    )
    got = [
        CodedSymbol(int(s), int(k), int(c))
        for s, k, c in zip(sums.tolist(), checksums.tolist(), counts.tolist())
    ]
    assert got == expected_cells
    assert list(zip(indices, states)) == expected_ends
    flat = np.concatenate(touched)
    assert len(flat) == sum(c.count for c in expected_cells)


def test_scatter_walk_numpy_base_offset(rng):
    """Scatters land relative to ``base`` when lanes cover a suffix region."""
    np = pytest.importorskip("numpy")
    hi = 64
    base = 40
    seeds = [
        (int.from_bytes(rng.randbytes(8), "little"), rng.getrandbits(64))
        for _ in range(16)
    ]
    # Reference: full-range walk, then keep only [base, hi).
    expected_cells, _ = reference_walk(seeds, [DEFAULT_ALPHA] * 16, hi)
    # Advance each job to its first index >= base first.
    indices, states, values, checksums, directions = walk_jobs(seeds)
    scratch = CodedSymbolBank.zeros(base)
    scatter_walk_scalar(
        scratch.sums,
        scratch.checksums,
        scratch.counts,
        indices,
        states,
        values,
        checksums,
        directions,
        [DEFAULT_ALPHA] * 16,
        base,
    )
    sums = np.zeros(hi - base, dtype=np.uint64)
    cks = np.zeros(hi - base, dtype=np.uint64)
    counts = np.zeros(hi - base, dtype=np.int64)
    scatter_walk_numpy(
        sums, cks, counts, indices, states, values, checksums, directions, hi,
        base=base,
    )
    got = [
        CodedSymbol(int(s), int(k), int(c))
        for s, k, c in zip(sums.tolist(), cks.tolist(), counts.tolist())
    ]
    assert got == expected_cells[base:]


def test_numpy_lane_eligibility(monkeypatch):
    from repro.core.irregular import PAPER_IRREGULAR

    if cellbank._np is None:
        assert not cellbank.numpy_lane_eligible(SymbolCodec(8))
        return
    monkeypatch.setattr(cellbank, "NUMPY_LANE", True)
    assert cellbank.numpy_lane_eligible(SymbolCodec(8))
    assert not cellbank.numpy_lane_eligible(SymbolCodec(16))  # >64-bit sums
    assert not cellbank.numpy_lane_eligible(
        SymbolCodec(8, irregular=PAPER_IRREGULAR)
    )
    monkeypatch.setattr(cellbank, "NUMPY_LANE", False)
    assert not cellbank.numpy_lane_eligible(SymbolCodec(8))
