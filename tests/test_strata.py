"""Strata estimator: accuracy bands and the ≈15 KB wire size."""

import random

import pytest

from repro.baselines.strata import StrataEstimator

from helpers import split_sets


def build_pair(rng, shared, d_a, d_b, **kwargs):
    a, b = split_sets(rng, shared=shared, only_a=d_a, only_b=d_b)
    ea = StrataEstimator(**kwargs)
    eb = StrataEstimator(**kwargs)
    for item in a:
        ea.insert(item)
    for item in b:
        eb.insert(item)
    return ea, eb


def test_identical_sets_estimate_zero(rng):
    ea, eb = build_pair(rng, shared=500, d_a=0, d_b=0)
    assert ea.estimate(eb) == 0


@pytest.mark.parametrize("d", [8, 64, 256])
def test_estimate_within_factor_two(d):
    """The estimator guides provisioning; factor-2 accuracy suffices
    (deployments overprovision on top of it, §2)."""
    rng = random.Random(d)
    ea, eb = build_pair(rng, shared=2000, d_a=d // 2, d_b=d - d // 2)
    estimate = ea.estimate(eb)
    assert d / 2.2 <= estimate <= d * 2.2, f"d={d} estimate={estimate}"


def test_estimate_symmetry_rough(rng):
    ea, eb = build_pair(rng, shared=800, d_a=30, d_b=30)
    forward = ea.estimate(eb)
    backward = eb.estimate(ea)
    assert forward > 0 and backward > 0
    # decode(x−y) and decode(y−x) see mirrored counts: same magnitude
    assert forward == backward


def test_wire_size_about_15kb():
    """The Fig 7 '+ Estimator' surcharge: ≈15 KB (the cited setup)."""
    estimator = StrataEstimator()
    assert 14_000 <= estimator.wire_size() <= 16_500


def test_geometry_mismatch_rejected(rng):
    ea = StrataEstimator(strata=16)
    eb = StrataEstimator(strata=8)
    with pytest.raises(ValueError):
        ea.estimate(eb)


def test_requires_two_strata():
    with pytest.raises(ValueError):
        StrataEstimator(strata=1)


def test_stratum_assignment_distribution(rng):
    """Stratum i holds ≈ 2^-(i+1) of items (trailing-zeros law)."""
    estimator = StrataEstimator()
    counts = [0] * estimator.strata
    for _ in range(8000):
        item_hash = rng.getrandbits(64)
        counts[estimator._stratum_of(item_hash)] += 1
    assert abs(counts[0] / 8000 - 0.5) < 0.03
    assert abs(counts[1] / 8000 - 0.25) < 0.03
    assert abs(counts[2] / 8000 - 0.125) < 0.02


def test_large_difference_estimate_scales():
    rng = random.Random(5)
    ea, eb = build_pair(rng, shared=500, d_a=600, d_b=600)
    estimate = ea.estimate(eb)
    assert 500 <= estimate <= 2800
