"""The reference docs cannot drift from the code they specify.

``docs/*.md`` quote module paths, frame-type values, error codes, magic
strings, and format constants.  Prose is not executable, so this suite
re-derives every such claim from the source of truth and fails when the
two disagree — a renamed module, a renumbered frame, or a changed magic
must touch the docs in the same commit.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

from repro.core.cellbank import PACK_MIN_CELLS, CodedSymbolBank
from repro.durable import faults, journal, snapshot
from repro.durable.store import JOURNAL_NAME, MANIFEST_FORMAT, MANIFEST_NAME
from repro.gossip.rounds import DIGEST_TAG
from repro.service.framing import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    FrameType,
    SyncMode,
)

DOCS = Path(__file__).resolve().parent.parent / "docs"


def doc_text(name: str) -> str:
    path = DOCS / name
    assert path.is_file(), f"{path} is missing"
    return path.read_text(encoding="utf-8")


def all_docs() -> list[Path]:
    pages = sorted(DOCS.glob("*.md"))
    assert pages, f"no markdown files under {DOCS}"
    return pages


def section(text: str, heading: str) -> str:
    """The body of one ``#``-heading, up to the next heading of any level."""
    match = re.search(
        rf"^#+\s+{re.escape(heading)}.*?$(.*?)(?=^#)", text, re.MULTILINE | re.DOTALL
    )
    assert match, f"doc is missing the {heading!r} section"
    return match.group(1)


def table_constants(text: str, names: list[str]) -> dict[str, int]:
    """Extract ``| `NAME` | `0xNN` |`` / ``| `NAME` | N |`` table rows."""
    out: dict[str, int] = {}
    for name in names:
        match = re.search(
            rf"^\|\s*`{re.escape(name)}`\s*\|\s*`?(0x[0-9A-Fa-f]+|\d+)`?\s*\|",
            text,
            re.MULTILINE,
        )
        assert match, f"doc table is missing a row for {name!r}"
        out[name] = int(match.group(1), 0)
    return out


# -- module references resolve ------------------------------------------------


@pytest.mark.parametrize("page", all_docs(), ids=lambda p: p.name)
def test_doc_module_references_import(page):
    """Every backticked dotted ``repro.*`` path must import (modules) or
    resolve as an attribute of its parent module (classes/functions)."""
    text = page.read_text(encoding="utf-8")
    refs = sorted(set(re.findall(r"`(repro(?:\.\w+)+)", text)))
    assert refs, f"{page.name} references no repro modules"
    for ref in refs:
        parts = ref.split(".")
        obj = None
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
                break
            except ImportError:
                continue
        assert obj is not None, f"{page.name}: no importable prefix of {ref!r}"
        for attr in parts[cut:]:
            assert hasattr(obj, attr), f"{page.name}: stale reference {ref!r}"
            obj = getattr(obj, attr)


@pytest.mark.parametrize("page", all_docs(), ids=lambda p: p.name)
def test_doc_internal_links_resolve(page):
    text = page.read_text(encoding="utf-8")
    for target in re.findall(r"\]\(([\w./-]+\.md)(?:#[\w-]+)?\)", text):
        assert (DOCS / target).is_file(), f"{page.name}: broken link {target}"


def test_readme_links_docs():
    readme = (DOCS.parent / "README.md").read_text(encoding="utf-8")
    for name in (
        "architecture.md",
        "wire-format.md",
        "durable-format.md",
        "operations.md",
    ):
        assert f"docs/{name}" in readme, f"README does not link docs/{name}"


# -- wire-format.md ----------------------------------------------------------


def test_frame_catalogue_matches_framing():
    body = section(doc_text("wire-format.md"), "Frame types")
    documented = table_constants(body, [ft.name for ft in FrameType])
    assert documented == {ft.name: int(ft) for ft in FrameType}


def test_error_codes_match_framing():
    body = section(doc_text("wire-format.md"), "Error codes")
    documented = table_constants(body, [code.name for code in ErrorCode])
    assert documented == {code.name: int(code) for code in ErrorCode}


def test_sync_modes_match_framing():
    body = section(doc_text("wire-format.md"), "Sync modes")
    documented = table_constants(body, [mode.name for mode in SyncMode])
    assert documented == {mode.name: int(mode) for mode in SyncMode}


def test_frame_layer_constants():
    text = doc_text("wire-format.md")
    assert f"`PROTOCOL_VERSION = {PROTOCOL_VERSION}`" in text
    assert f"`MAX_FRAME_BYTES = {MAX_FRAME_BYTES >> 20} MiB` ({MAX_FRAME_BYTES} bytes)" in text


def test_stream_magic_and_digest_tag():
    from repro.core.wire import MAGIC as STREAM_MAGIC

    text = doc_text("wire-format.md")
    assert f'magic "{STREAM_MAGIC.decode()}"' in text
    assert f"`DIGEST_TAG = 0x{DIGEST_TAG:02X}`" in text
    assert f"tag 0x{DIGEST_TAG:02X}" in text


def test_packed_bank_constants():
    text = doc_text("wire-format.md")
    assert f"`PACK_MIN_CELLS = {PACK_MIN_CELLS}`" in text
    # the documented stride formula quotes the 8-byte signed count field
    assert CodedSymbolBank.COUNT_BYTES == 8
    assert "ℓ + checksum_size + 8" in text


def test_busy_body_layout_documented():
    """wire-format.md must spell out BUSY's structured ERROR body, and
    the documented layout must be the one ``pack_busy_body`` emits."""
    from repro.service.framing import BodyReader, pack_busy_body

    text = doc_text("wire-format.md")
    assert "`uvarint retry_after_ms`" in text
    assert "`pack_busy_body`" in text
    reader = BodyReader(pack_busy_body(0.25, "busy"))
    assert reader.uvarint() == int(ErrorCode.BUSY)
    assert reader.uvarint() == 250  # milliseconds, as documented
    assert reader.rest() == b"busy"


# -- operations.md -----------------------------------------------------------


def test_operations_overload_knobs_match_server_config():
    """Every documented admission knob is a real ``ServerConfig`` field,
    and every admission field the config grows must be documented."""
    import dataclasses

    from repro.service.server import ServerConfig

    body = section(doc_text("operations.md"), "Overload control")
    knobs = (
        "max_concurrent_sessions",
        "per_peer_rate",
        "per_peer_burst",
        "max_session_bytes",
        "busy_retry_after",
    )
    fields = {f.name for f in dataclasses.fields(ServerConfig)}
    for knob in knobs:
        assert knob in fields, f"documented knob {knob!r} not on ServerConfig"
        assert f"`{knob}`" in body, f"ServerConfig.{knob} undocumented"


def test_operations_busy_default_and_shed_reasons():
    import inspect

    from repro.service import server
    from repro.service.defaults import DEFAULT_BUSY_RETRY_AFTER

    text = doc_text("operations.md")
    assert f"`DEFAULT_BUSY_RETRY_AFTER = {DEFAULT_BUSY_RETRY_AFTER}`" in text
    # The documented reason strings are the ones the server counts.
    source = inspect.getsource(server)
    for reason in ("session limit", "peer rate limit", "session bytes"):
        assert f'"{reason}"' in text, f"shed reason {reason!r} undocumented"
        assert f'"{reason}"' in source, f"doc invents shed reason {reason!r}"


def test_operations_cluster_limit_fields_exist():
    import dataclasses

    from repro.cluster import ClusterConfig

    body = section(doc_text("operations.md"), "Cluster limits")
    fields = {f.name for f in dataclasses.fields(ClusterConfig)}
    for name in (
        "max_concurrent_sessions",
        "per_peer_rate",
        "per_peer_burst",
        "max_session_bytes",
        "busy_retry_after",
        "advertise_ports",
    ):
        assert name in fields, f"documented field {name!r} not on ClusterConfig"
        assert f"`{name}`" in body, f"ClusterConfig.{name} undocumented"


def test_operations_chaos_schedule_fields_match_spec():
    """The schedule-JSON table documents exactly the ``FaultSpec``
    fields — no stale rows, no undocumented faults — and the documented
    round-trip actually holds."""
    import dataclasses

    from repro.chaos import FaultSchedule, FaultSpec, default_schedule

    body = section(doc_text("operations.md"), "Chaos schedule JSON")
    documented = set(re.findall(r"^\|\s*`(\w+)`\s*\|", body, re.MULTILINE))
    documented.discard("field")  # the table header row
    assert documented == {f.name for f in dataclasses.fields(FaultSpec)}
    assert '`{"seed": N, "specs": [...]}`' in body
    schedule = default_schedule(7)
    assert FaultSchedule.from_json(schedule.to_json()) == schedule


def test_operations_cli_chaos_documented():
    from repro import cli

    text = doc_text("operations.md")
    assert "`repro chaos`" in text
    assert "`repro serve --max-clients`" in text
    helps = cli.build_parser().format_help()
    assert "chaos" in helps and "serve" in helps


# -- durable-format.md -------------------------------------------------------


def test_durable_file_names_and_magics():
    text = doc_text("durable-format.md")
    assert MANIFEST_NAME in text
    assert JOURNAL_NAME in text
    assert f"currently `{MANIFEST_FORMAT}`" in text
    for magic in (snapshot.MAGIC, journal.MAGIC):
        quoted = magic.decode().replace("\n", "\\n")
        assert f'"{quoted}"' in text, f"doc is missing magic {quoted!r}"


def test_durable_crash_points_all_documented():
    text = doc_text("durable-format.md")
    for point in faults.CRASH_POINTS:
        assert point in text, f"crash point {point!r} undocumented"
    assert faults.ENV_CRASH_POINT in text


def test_snapshot_name_pattern_matches_store():
    from repro.durable.store import _snap_name

    text = doc_text("durable-format.md")
    # the documented printf-style pattern must agree with the code
    assert "shard-%04d.g<gen>.snap" in text
    assert _snap_name(3, 7) == "shard-0003.g7.snap"


def test_journal_segment_naming_matches_store():
    from repro.durable.store import (
        JOURNAL_SEGMENT_GLOB,
        _segment_worker,
        journal_segment_name,
    )

    text = doc_text("durable-format.md")
    body = section(
        text, "journal.&lt;worker&gt;.log — per-worker journal segments"
    )
    # the documented examples and glob must agree with the code
    for worker in (0, 1):
        assert journal_segment_name(worker) in body
    assert journal_segment_name(3) == "journal.3.log"
    assert _segment_worker("journal.3.log") == 3
    assert _segment_worker(JOURNAL_NAME) is None  # base journal never folds
    assert JOURNAL_SEGMENT_GLOB in body
    assert "journal_segment_name" in body
    # the fold's documented merge order is the implemented one
    assert "(seq, worker)" in body


def test_cluster_docs_match_code():
    from repro.cluster import worker_shards

    arch = doc_text("architecture.md")
    body = section(arch, "cluster — shards across cores")
    assert "ClusterSupervisor" in body
    assert "repro.cluster.worker" in body
    # the documented striping rule is the implemented one
    assert "{g : g % N == w}" in body
    assert list(worker_shards(8, 4, 1)) == [1, 5]


def test_readme_documents_workers_flag():
    readme = (DOCS.parent / "README.md").read_text(encoding="utf-8")
    body = section(readme, "Scaling across cores")
    assert "--workers" in body
    assert "journal.<worker>.log" in body
    assert "WorkerUnavailable" in body
    assert "SO_REUSEPORT" in body
