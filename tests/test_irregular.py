"""Irregular Rateless IBLT (§8): config validation and decode behaviour."""

import pytest

from repro.core.irregular import PAPER_IRREGULAR, IrregularConfig
from repro.core.session import reconcile
from repro.core.symbols import SymbolCodec

from helpers import split_sets


def test_paper_config_values():
    assert PAPER_IRREGULAR.subsets == 3
    assert PAPER_IRREGULAR.weights == (0.18, 0.56, 0.26)
    assert PAPER_IRREGULAR.alphas == (0.11, 0.68, 0.82)


def test_weights_must_sum_to_one():
    with pytest.raises(ValueError):
        IrregularConfig(weights=(0.5, 0.4), alphas=(0.5, 0.5))


def test_lengths_must_match():
    with pytest.raises(ValueError):
        IrregularConfig(weights=(1.0,), alphas=(0.5, 0.5))


def test_positive_parameters():
    with pytest.raises(ValueError):
        IrregularConfig(weights=(1.0,), alphas=(0.0,))
    with pytest.raises(ValueError):
        IrregularConfig(weights=(-1.0, 2.0), alphas=(0.5, 0.5))


def test_subset_boundaries():
    config = IrregularConfig(weights=(0.25, 0.75), alphas=(0.3, 0.7))
    assert config.subset_for(0.0) == 0
    assert config.subset_for(0.249) == 0
    assert config.subset_for(0.25) == 1
    assert config.subset_for(0.999999) == 1
    assert config.alpha_for(0.1) == 0.3


def test_mean_rho_at_zero_is_one():
    """Every subset has ρ_j(0) = 1, so the weighted mean is 1: the first
    coded symbol still contains every source symbol."""
    assert PAPER_IRREGULAR.mean_rho(0) == pytest.approx(1.0)


def test_mean_rho_decreasing():
    values = [PAPER_IRREGULAR.mean_rho(i) for i in range(64)]
    assert all(a > b for a, b in zip(values, values[1:]))


def test_irregular_reconciliation_roundtrip(rng):
    codec = SymbolCodec(8, irregular=PAPER_IRREGULAR)
    a, b = split_sets(rng, shared=300, only_a=30, only_b=30)
    out = reconcile(a, b, symbol_size=8, codec=codec)
    assert out.only_in_a == a - b
    assert out.only_in_b == b - a


def test_irregular_overhead_beats_regular_at_scale(rng):
    """§8's headline: irregular ≈1.10 vs regular ≈1.35 for large d.

    A single moderate-d run has noise, so compare averages of a few runs
    and require a clear ordering rather than the exact constants.
    """
    from repro.analysis.montecarlo import overhead_stats

    regular = overhead_stats(1500, runs=6, seed=1)
    irregular = overhead_stats(1500, runs=6, irregular=PAPER_IRREGULAR, seed=1)
    assert irregular.mean < regular.mean - 0.08
    assert irregular.mean < 1.30


def test_single_subset_equals_regular():
    """c = 1 with α = 0.5 must be byte-identical to the regular codec."""
    config = IrregularConfig(weights=(1.0,), alphas=(0.5,))
    regular = SymbolCodec(8)
    degenerate = SymbolCodec(8, irregular=config)
    item = b"ABCDEFGH"
    checksum = regular.checksum_data(item)
    gen_a = regular.new_mapping(checksum)
    gen_b = degenerate.new_mapping(checksum)
    assert [gen_a.next_index() for _ in range(64)] == [
        gen_b.next_index() for _ in range(64)
    ]
