"""The asyncio reconciliation service: concurrency, warmth, budgets.

Acceptance anchors:

* one server reconciles 8+ concurrent clients across 4 shards;
* a warm second round (after server-set mutations) is bit-identical on
  the wire to a cold re-encode of the mutated set (linearity, §4.1);
* budget exhaustion surfaces as the typed ``SymbolBudgetExceeded`` on
  both sides of the socket.
"""

import asyncio

import pytest

from repro.api import ReconcileError, SymbolBudgetExceeded
from repro.core.session import SymbolBudgetExceeded as CoreSymbolBudgetExceeded
from repro.service import (
    ReconciliationServer,
    SchemeMismatch,
    ServerConfig,
    ServiceNode,
    StaleStream,
    sync,
)
from repro.service.framing import SyncMode

from helpers import make_items

SYNC_TIMEOUT = 120.0


def run(coro):
    """Drive one test coroutine (no pytest-asyncio dependency)."""
    return asyncio.run(asyncio.wait_for(coro, timeout=SYNC_TIMEOUT))


def items_range(lo, hi):
    return [b"%08d" % i for i in range(lo, hi)]


async def settle(server, attr, value, timeout=5.0):
    """Wait for a server stats counter: session teardown bookkeeping runs
    a tick after the client's coroutine resumes."""
    deadline = asyncio.get_running_loop().time() + timeout
    while getattr(server.stats, attr) < value:
        if asyncio.get_running_loop().time() > deadline:
            break
        await asyncio.sleep(0.01)
    assert getattr(server.stats, attr) == value


def test_single_client_roundtrip():
    async def scenario():
        async with ReconciliationServer(items_range(0, 500), num_shards=4) as server:
            host, port = server.address
            result = await sync(host, port, items_range(6, 506))
            assert result.mode == SyncMode.STREAM
            assert result.num_shards == 4
            assert result.only_in_server == set(items_range(0, 6))
            assert result.only_in_client == set(items_range(500, 506))
            assert result.bytes_received > 0
            assert len(result.per_shard) == 4
            await settle(server, "sessions_completed", 1)
        return result

    run(scenario())


def test_equal_sets_terminate_immediately():
    async def scenario():
        async with ReconciliationServer(items_range(0, 200), num_shards=2) as server:
            host, port = server.address
            result = await sync(host, port, items_range(0, 200))
            assert result.difference_size == 0
            # §4.1: one zero cell per shard is the termination signal.
            assert result.symbols >= server.num_shards

    run(scenario())


def test_eight_concurrent_clients_four_shards(rng):
    """The acceptance bar: >= 8 concurrent clients, >= 4 shards, one server."""
    base = make_items(rng, 600)

    async def scenario():
        async with ReconciliationServer(base, num_shards=4) as server:
            host, port = server.address
            expectations = []
            syncs = []
            for k in range(1, 9):
                only_client = make_items(rng, k, size=8)
                client_items = base[k:] + [
                    item for item in only_client if item not in base
                ]
                expectations.append((set(base[:k]), set(client_items) - set(base)))
                syncs.append(sync(host, port, client_items))
            results = await asyncio.gather(*syncs)
            for (want_server, want_client), result in zip(expectations, results):
                assert result.only_in_server == want_server
                assert result.only_in_client == want_client
            await settle(server, "sessions_completed", 8)
            assert server.stats.sessions_dropped == 0
        return results

    run(scenario())


def test_warm_second_round_bit_identical_to_cold():
    """Golden: after add/remove churn, the warm banks serve byte-for-byte
    what a cold re-encode of the mutated set would serve."""
    base = items_range(0, 800)
    client_items = items_range(10, 810)
    added = items_range(900, 907)
    removed = items_range(20, 25)
    mutated = sorted((set(base) | set(added)) - set(removed))

    async def scenario():
        async with ReconciliationServer(base, num_shards=4) as warm:
            host, port = warm.address
            await sync(host, port, client_items)  # round 1 populates the banks
            for item in added:
                warm.add_item(item)
            for item in removed:
                warm.remove_item(item)
            warm_result = await sync(host, port, client_items, capture_payloads=True)
        async with ReconciliationServer(mutated, num_shards=4) as cold:
            host, port = cold.address
            cold_result = await sync(host, port, client_items, capture_payloads=True)
        return warm_result, cold_result

    warm_result, cold_result = run(scenario())
    assert warm_result.only_in_server == cold_result.only_in_server
    assert warm_result.only_in_client == cold_result.only_in_client
    for shard in range(4):
        warm_bytes = bytes(warm_result.payloads[shard])
        cold_bytes = bytes(cold_result.payloads[shard])
        # Lengths may differ by look-ahead blocks past the decode point;
        # the streams themselves must be identical cell for cell.
        common = min(len(warm_bytes), len(cold_bytes))
        assert common > 0
        assert warm_bytes[:common] == cold_bytes[:common]


def test_warm_banks_are_reused_not_reencoded():
    """Serving a second client must not grow the cached prefix beyond
    what the longest stream so far pulled."""

    async def scenario():
        async with ReconciliationServer(items_range(0, 400), num_shards=2) as server:
            host, port = server.address
            await sync(host, port, items_range(2, 402))
            produced_after_first = [
                server.backend.cached_symbols(s) for s in range(2)
            ]
            await sync(host, port, items_range(3, 403))
            produced_after_second = [
                server.backend.cached_symbols(s) for s in range(2)
            ]
            # Similar-difficulty syncs pull similar prefix lengths; the
            # bank only extends, never rebuilds.
            for first, second in zip(produced_after_first, produced_after_second):
                assert second <= first * 4 + 256

    run(scenario())


def test_push_updates_server_and_next_client():
    async def scenario():
        async with ReconciliationServer(items_range(0, 300), num_shards=4) as server:
            host, port = server.address
            pusher = items_range(0, 300) + items_range(500, 503)
            result = await sync(host, port, pusher, push=True)
            assert result.pushed == 3
            for item in items_range(500, 503):
                assert item in server
            # A fresh client holding the original set now sees the pushes.
            follow_up = await sync(host, port, items_range(0, 300))
            assert follow_up.only_in_server == set(items_range(500, 503))
            await settle(server, "items_pushed", 3)

    run(scenario())


def test_budget_exhaustion_is_typed_and_server_survives():
    config = ServerConfig(max_symbols_per_shard=16)

    async def scenario():
        async with ReconciliationServer(
            items_range(0, 1500), num_shards=2, config=config
        ) as server:
            host, port = server.address
            with pytest.raises(SymbolBudgetExceeded):
                await sync(host, port, [b"X%07d" % i for i in range(1500)])
            # One typed family across layers: servers written against the
            # core session type catch the same exception.
            with pytest.raises(CoreSymbolBudgetExceeded):
                await sync(host, port, [b"X%07d" % i for i in range(1500)])
            await settle(server, "sessions_dropped", 2)
            # The server keeps serving after dropping runaway sessions.
            ok = await sync(host, port, items_range(1, 1501))
            assert ok.only_in_server == {b"%08d" % 0}
            assert ok.only_in_client == {b"%08d" % 1500}

    run(scenario())


def test_client_side_budget_is_typed():
    async def scenario():
        async with ReconciliationServer(items_range(0, 1200), num_shards=1) as server:
            host, port = server.address
            with pytest.raises(SymbolBudgetExceeded):
                await sync(
                    host, port, [b"Y%07d" % i for i in range(1200)], max_symbols=8
                )

    run(scenario())


def test_scheme_and_codec_mismatches_rejected():
    async def scenario():
        async with ReconciliationServer(items_range(0, 50), num_shards=2) as server:
            host, port = server.address
            with pytest.raises(SchemeMismatch):
                await sync(
                    host, port, items_range(0, 50), scheme="pinsketch", capacity=8
                )
            with pytest.raises(SchemeMismatch):
                await sync(host, port, items_range(0, 50), checksum_size=4)
            with pytest.raises(SchemeMismatch):
                await sync(host, port, items_range(0, 50), key=b"\xff" * 16)
            with pytest.raises(SchemeMismatch):
                await sync(host, port, items_range(0, 50), num_shards=3)
            assert server.stats.sessions_completed == 0

    run(scenario())


def test_mutation_mid_stream_surfaces_stale():
    """Mutating the served set while a session streams must fail that
    session with the typed StaleStream, not serve a mixed stream."""
    config = ServerConfig(block_size=4)

    async def scenario():
        async with ReconciliationServer(
            items_range(0, 1500), num_shards=1, config=config
        ) as server:
            host, port = server.address

            async def mutate_soon():
                await asyncio.sleep(0.05)
                server.add_item(b"%08d" % 999999)

            mutation = asyncio.create_task(mutate_soon())
            with pytest.raises(StaleStream):
                # Large difference keeps the stream busy long enough for
                # the mutation to land mid-flight.
                await sync(host, port, [b"Z%07d" % i for i in range(1500)])
            await mutation

    run(scenario())


def test_sketch_mode_serves_fixed_capacity_schemes():
    """Registry integration: a non-streaming scheme backs the shards."""

    async def scenario():
        async with ReconciliationServer(
            items_range(0, 200), scheme="pinsketch", num_shards=2, capacity=8
        ) as server:
            host, port = server.address
            result = await sync(
                host, port, items_range(4, 204), scheme="pinsketch", capacity=8
            )
            assert result.mode == SyncMode.SKETCH
            assert result.only_in_server == set(items_range(0, 4))
            assert result.only_in_client == set(items_range(200, 204))

    run(scenario())


def test_sketch_mode_retry_doubles_until_decoded():
    async def scenario():
        async with ReconciliationServer(
            items_range(0, 300), scheme="regular_iblt", num_shards=1
        ) as server:
            host, port = server.address
            # Initial bound 1 forces several RETRY doublings for d = 24.
            result = await sync(
                host,
                port,
                items_range(12, 312),
                scheme="regular_iblt",
                difference_bound=1,
                max_rounds=8,
            )
            assert result.only_in_server == set(items_range(0, 12))
            assert result.per_shard[0].rounds > 1

    run(scenario())


def test_sketch_mode_round_limit_is_enforced():
    async def scenario():
        async with ReconciliationServer(
            items_range(0, 400), scheme="regular_iblt", num_shards=1
        ) as server:
            host, port = server.address
            with pytest.raises(ReconcileError):
                await sync(
                    host,
                    port,
                    items_range(80, 480),
                    scheme="regular_iblt",
                    difference_bound=1,
                    max_rounds=2,
                )

    run(scenario())


def test_unserveable_scheme_rejected_at_construction():
    with pytest.raises(ValueError):
        ReconciliationServer(items_range(0, 10), scheme="merkle", symbol_size=8)


def test_client_disconnect_mid_stream_leaves_server_healthy():
    async def scenario():
        async with ReconciliationServer(items_range(0, 2000), num_shards=2) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            # Vanish without even a HELLO.
            writer.close()
            await writer.wait_closed()
            # And once more mid-handshake: half a frame, then gone.
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"\x7f\x01")  # declares 127 bytes, sends one
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.1)
            result = await sync(host, port, items_range(1, 2001))
            assert result.only_in_server == {b"%08d" % 0}
            await settle(server, "sessions_dropped", 2)

    run(scenario())


def test_service_node_bidirectional_convergence():
    async def scenario():
        hub = ServiceNode(items_range(0, 150), num_shards=4)
        await hub.start()
        try:
            edge = ServiceNode(items_range(7, 157), num_shards=4)
            result = await edge.sync_with(*hub.address, push=True)
            assert result.difference_size == 14
            assert edge.items == set(items_range(0, 157))
            assert len(hub.server) == 157  # pushes patched the warm banks
            # Second edge syncs against the already-converged hub.
            other = ServiceNode(items_range(0, 150), num_shards=4)
            second = await other.sync_with(*hub.address)
            assert second.only_in_server == set(items_range(150, 157))
            assert other.items == set(items_range(0, 157))
        finally:
            await hub.stop()

    run(scenario())


def test_max_sessions_finishes_server():
    config = ServerConfig(max_sessions=2)

    async def scenario():
        server = ReconciliationServer(
            items_range(0, 100), num_shards=2, config=config
        )
        host, port = await server.start()
        try:
            await sync(host, port, items_range(1, 101))
            await sync(host, port, items_range(2, 102))
            await asyncio.wait_for(server.wait_finished(), timeout=5)
        finally:
            await server.close()

    run(scenario())


def test_retry_frame_in_stream_mode_is_protocol_error():
    """A sketch-mode frame sent to a streaming server must yield a typed
    ERROR, not crash the session task (hostile/buggy client)."""
    from repro.service.framing import (
        PROTOCOL_VERSION,
        FrameType,
        pack_lp_str,
        pack_uvarints,
        read_frame,
        write_frame,
    )
    from repro.service.shard import key_probe

    async def scenario():
        async with ReconciliationServer(items_range(0, 100), num_shards=2) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            probe = key_probe(server.backend.sharded.hash64)
            await write_frame(
                writer,
                FrameType.HELLO,
                pack_uvarints(PROTOCOL_VERSION)
                + pack_lp_str("riblt")
                + pack_uvarints(8, 8)
                + pack_lp_str(server.handle.params.hasher)
                + pack_uvarints(probe, 0, 0, 0),
            )
            frame = await read_frame(reader)
            assert frame is not None and frame[0] == FrameType.WELCOME
            await write_frame(writer, FrameType.RETRY, pack_uvarints(0, 8))
            saw_error = False
            for _ in range(200):
                frame = await read_frame(reader)
                if frame is None or frame[0] == FrameType.ERROR:
                    saw_error = frame is not None
                    break
            assert saw_error
            writer.close()
            await writer.wait_closed()
            # The server survives and serves the next client normally.
            result = await sync(host, port, items_range(1, 101))
            assert result.only_in_server == {b"%08d" % 0}

    run(scenario())
