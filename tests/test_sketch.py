"""Fixed-size sketches: linearity — the paper's central algebraic fact."""

import pytest

from repro.core.sketch import RatelessSketch
from repro.core.symbols import SymbolCodec

from helpers import make_items, split_sets


def test_linearity(codec8, rng):
    """sketch(A) ⊖ sketch(B) = sketch(A △ B), cell for cell (§4.1)."""
    a, b = split_sets(rng, shared=120, only_a=15, only_b=10)
    size = 96
    sk_a = RatelessSketch.from_items(a, size, codec8)
    sk_b = RatelessSketch.from_items(b, size, codec8)
    sk_diff = RatelessSketch.from_items(a ^ b, size, codec8)
    subtracted = sk_a.subtract(sk_b)
    for got, expected in zip(subtracted.cells, sk_diff.cells):
        assert got.sum == expected.sum
        assert got.checksum == expected.checksum
    # counts differ in sign structure: A-only items +1, B-only −1
    decoded = subtracted.decode()
    assert decoded.success


def test_subtract_requires_same_size(codec8, rng):
    a = RatelessSketch.from_items(make_items(rng, 5), 10, codec8)
    b = RatelessSketch.from_items(make_items(rng, 5), 12, codec8)
    with pytest.raises(ValueError):
        a.subtract(b)


def test_subtract_requires_compatible_codec(rng):
    items = make_items(rng, 5)
    a = RatelessSketch.from_items(items, 10, SymbolCodec(8))
    b = RatelessSketch.from_items(items, 10, SymbolCodec(8, checksum_size=4))
    with pytest.raises(ValueError):
        a.subtract(b)


def test_self_subtract_decodes_empty(codec8, rng):
    sk = RatelessSketch.from_items(make_items(rng, 50), 20, codec8)
    result = sk.subtract(sk).decode()
    assert result.success
    assert result.remote == [] and result.local == []


def test_decode_recovers_difference(codec8, rng):
    a, b = split_sets(rng, shared=150, only_a=8, only_b=8)
    size = 64
    result = (
        RatelessSketch.from_items(a, size, codec8)
        .subtract(RatelessSketch.from_items(b, size, codec8))
        .decode()
    )
    assert result.success
    assert set(result.remote) == a - b
    assert set(result.local) == b - a


def test_undersized_sketch_reports_failure(codec8, rng):
    """A too-short prefix fails decode but never returns wrong items."""
    a, b = split_sets(rng, shared=50, only_a=40, only_b=40)
    size = 20  # << 1.35·80
    result = (
        RatelessSketch.from_items(a, size, codec8)
        .subtract(RatelessSketch.from_items(b, size, codec8))
        .decode()
    )
    assert not result.success
    assert set(result.remote) <= a - b
    assert set(result.local) <= b - a


def test_add_remove_item_in_place(codec8, rng):
    items = make_items(rng, 30)
    sk = RatelessSketch.from_items(items[:20], 40, codec8)
    for item in items[20:]:
        sk.add_item(item)
    full = RatelessSketch.from_items(items, 40, codec8)
    assert sk == full
    for item in items[:5]:
        sk.remove_item(item)
    partial = RatelessSketch.from_items(items[5:], 40, codec8)
    assert sk == partial
    assert sk.set_size == 25


def test_truncation_is_prefix(codec8, rng):
    sk = RatelessSketch.from_items(make_items(rng, 40), 64, codec8)
    short = sk.truncated(16)
    assert len(short) == 16
    assert list(short.cells) == list(sk.cells[:16])
    with pytest.raises(ValueError):
        sk.truncated(100)


def test_zero_sketch(codec8):
    sk = RatelessSketch.zero(12, codec8)
    assert all(cell.is_zero() for cell in sk)
    assert sk.set_size == 0


def test_container_protocol(codec8, rng):
    sk = RatelessSketch.from_items(make_items(rng, 10), 8, codec8)
    assert len(sk) == 8
    assert sk[0] == list(sk)[0]


def test_decode_does_not_mutate(codec8, rng):
    a, b = split_sets(rng, shared=40, only_a=4, only_b=4)
    diff = RatelessSketch.from_items(a, 48, codec8).subtract(
        RatelessSketch.from_items(b, 48, codec8)
    )
    snapshot = [cell.copy() for cell in diff.cells]
    diff.decode()
    assert list(diff.cells) == snapshot


def test_multi_peer_universality(codec8, rng):
    """One sketch of A serves any peer: subtracting different Bs from the
    same cells recovers each difference (§1 'universal' property)."""
    base = make_items(rng, 100)
    a = set(base)
    sk_a = RatelessSketch.from_items(a, 128, codec8)
    for drop in (2, 5, 11):
        b = set(base[drop:]) | set(make_items(rng, drop))
        result = sk_a.subtract(RatelessSketch.from_items(b, 128, codec8)).decode()
        assert result.success
        assert set(result.remote) == a - b
        assert set(result.local) == b - a
