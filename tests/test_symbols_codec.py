"""SymbolCodec: conversions, checksum widths, irregular subset choice."""

import pytest

from repro.core.irregular import PAPER_IRREGULAR
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import Blake2bHasher, SipHasher


def test_roundtrip_bytes_int():
    codec = SymbolCodec(16)
    item = bytes(range(16))
    assert codec.to_bytes(codec.to_int(item)) == item


def test_to_int_rejects_wrong_length():
    codec = SymbolCodec(8)
    with pytest.raises(ValueError):
        codec.to_int(b"short")
    with pytest.raises(ValueError):
        codec.to_int(b"way too long!!!!!")


def test_rejects_bad_sizes():
    with pytest.raises(ValueError):
        SymbolCodec(0)
    with pytest.raises(ValueError):
        SymbolCodec(8, checksum_size=0)
    with pytest.raises(ValueError):
        SymbolCodec(8, checksum_size=9)


def test_checksum_matches_hasher():
    hasher = Blake2bHasher()
    codec = SymbolCodec(8, hasher)
    item = b"12345678"
    assert codec.checksum_data(item) == hasher.hash64(item)
    assert codec.checksum_int(codec.to_int(item)) == hasher.hash64(item)


def test_checksum_truncation():
    """A 4-byte checksum masks the hash to 32 bits (§7.1 scalability)."""
    codec = SymbolCodec(8, checksum_size=4)
    value = codec.checksum_data(b"abcdefgh")
    assert 0 <= value < (1 << 32)
    full = SymbolCodec(8).checksum_data(b"abcdefgh")
    assert value == full & 0xFFFFFFFF


def test_alpha_regular_default():
    codec = SymbolCodec(8)
    assert codec.alpha_for(0) == 0.5
    assert codec.alpha_for(2**64 - 1) == 0.5


def test_alpha_irregular_by_hash_position():
    codec = SymbolCodec(8, irregular=PAPER_IRREGULAR)
    span = 1 << 64
    # low hashes land in subset 0, middle in subset 1, high in subset 2
    assert codec.alpha_for(0) == PAPER_IRREGULAR.alphas[0]
    assert codec.alpha_for(int(span * 0.5)) == PAPER_IRREGULAR.alphas[1]
    assert codec.alpha_for(span - 1) == PAPER_IRREGULAR.alphas[2]


def test_new_mapping_seeded_by_checksum():
    codec = SymbolCodec(8)
    a = codec.new_mapping(1234)
    b = codec.new_mapping(1234)
    assert [a.next_index() for _ in range(20)] == [
        b.next_index() for _ in range(20)
    ]


def test_compatibility():
    assert SymbolCodec(8).compatible_with(SymbolCodec(8))
    assert not SymbolCodec(8).compatible_with(SymbolCodec(16))
    assert not SymbolCodec(8).compatible_with(SymbolCodec(8, checksum_size=4))
    assert not SymbolCodec(8).compatible_with(SymbolCodec(8, SipHasher()))
    assert not SymbolCodec(8).compatible_with(
        SymbolCodec(8, irregular=PAPER_IRREGULAR)
    )
    key_a = Blake2bHasher(b"A" * 16)
    key_b = Blake2bHasher(b"B" * 16)
    assert not SymbolCodec(8, key_a).compatible_with(SymbolCodec(8, key_b))


def test_repr_mentions_mode():
    assert "irregular" in repr(SymbolCodec(8, irregular=PAPER_IRREGULAR))
    assert "regular" in repr(SymbolCodec(8))
