"""The (sum, checksum, count) cell algebra (§3)."""

from repro.core.coded import CodedSymbol


def test_zero_cell():
    cell = CodedSymbol()
    assert cell.is_zero()
    assert cell.sum == 0 and cell.checksum == 0 and cell.count == 0


def test_apply_then_remove_is_identity():
    cell = CodedSymbol()
    cell.apply(0xABCD, 0x1234, 1)
    assert not cell.is_zero()
    cell.apply(0xABCD, 0x1234, -1)
    assert cell.is_zero()


def test_apply_accumulates_xor_and_count():
    cell = CodedSymbol()
    cell.apply(0b1100, 0b1010, 1)
    cell.apply(0b1010, 0b0110, 1)
    assert cell.sum == 0b0110
    assert cell.checksum == 0b1100
    assert cell.count == 2


def test_subtract_matches_field_wise():
    a = CodedSymbol(0xFF, 0xAA, 3)
    b = CodedSymbol(0x0F, 0x0A, 1)
    c = a.subtract(b)
    assert c.sum == 0xF0
    assert c.checksum == 0xA0
    assert c.count == 2
    # operands untouched
    assert a.count == 3 and b.count == 1


def test_subtract_in_place():
    a = CodedSymbol(0xFF, 0xAA, 3)
    b = CodedSymbol(0x0F, 0x0A, 1)
    a.subtract_in_place(b)
    assert (a.sum, a.checksum, a.count) == (0xF0, 0xA0, 2)


def test_subtract_self_is_zero():
    a = CodedSymbol(123, 456, 7)
    assert a.subtract(a).is_zero()


def test_negative_count_not_zero():
    """A cell holding one 'local' symbol has count −1 and is not zero."""
    cell = CodedSymbol()
    cell.apply(5, 9, -1)
    assert cell.count == -1
    assert not cell.is_zero()


def test_xor_cancellation_with_nonzero_count_not_zero():
    """Sum/checksum can cancel while count tracks the multiset (a+a)."""
    cell = CodedSymbol()
    cell.apply(7, 8, 1)
    cell.apply(7, 8, 1)
    assert cell.sum == 0 and cell.checksum == 0
    assert cell.count == 2
    assert not cell.is_zero()


def test_equality_and_copy():
    a = CodedSymbol(1, 2, 3)
    b = a.copy()
    assert a == b and a is not b
    b.apply(1, 1, 1)
    assert a != b


def test_repr_readable():
    assert "count=2" in repr(CodedSymbol(0, 0, 2))
