"""The sans-io protocol engine: golden wire-identity + adversarial delivery.

Two jobs:

* prove the engine is **wire-identical to the legacy drivers** it
  replaced — ``tests/golden/protocol_golden.json`` was recorded against
  the pre-engine ``api.Session``/``reconcile``/service stack (see
  ``tests/golden/record_golden.py``), and every byte and every
  ``ReconcileResult`` field must still match;
* prove the machines survive **adversarial delivery**: arbitrary
  payload fragmentation and coalescing, duplicated ticks, mid-stream
  ``peer_closed``, garbage bytes, and budget exhaustion all surface the
  typed ``ReconcileError``/``SymbolBudgetExceeded`` family — and never
  hang (every event leaves the machine ``finished`` or progressed).
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.api import (
    ReconcileError,
    SymbolBudgetExceeded,
    available_schemes,
    get_scheme,
    reconcile,
    scheme_info,
)
from repro.protocol import (
    Delivered,
    Failed,
    InitiatorMachine,
    ResponderMachine,
    SendBytes,
    codec_of,
    hash64_of,
    memory_responder,
    pump,
)
from repro.service.backends import make_backend
from repro.service.errors import ProtocolError
from repro.service.framing import TruncatedFrame
from repro.service.shard import ShardedSet

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "protocol_golden.json").read_text()
)
ITEM = GOLDEN["item_size"]

FIXTURES = {
    "identical": (120, 0, 0),
    "empty": (0, 0, 0),
    "one_diff": (120, 1, 0),
    "disjoint": (0, 25, 25),
    "hundred_diff": (150, 50, 50),
}


def _items(rng: random.Random, count: int) -> list:
    out = set()
    while len(out) < count:
        item = rng.randbytes(ITEM)
        if item != bytes(ITEM):
            out.add(item)
    return sorted(out)


def sets_for(fixture: str):
    shared, only_a, only_b = FIXTURES[fixture]
    rng = random.Random(0xAB1DE + len(fixture) * 1009 + shared + only_a)
    pool = _items(rng, shared + only_a + only_b)
    common = set(pool[:shared])
    a = common | set(pool[shared : shared + only_a])
    b = common | set(pool[shared + only_a :])
    return a, b


def items_range(lo: int, hi: int) -> list:
    return [b"%08d" % i for i in range(lo, hi)]


def service_responder(handle, items, **overrides) -> ResponderMachine:
    """A responder configured exactly like the asyncio server's default."""
    codec = codec_of(handle)
    sharded = ShardedSet(hash64_of(handle, codec), 1, list(items))
    return ResponderMachine(
        make_backend(handle, sharded, codec), handle, **overrides
    )


def drive(initiator, responder, up=None, down=None):
    """Pump two machines, optionally capturing each direction's bytes."""
    initiator.start()
    responder.start()
    while not initiator.finished:
        out = initiator.take_output()
        if out and not responder.finished:
            if up is not None:
                up.extend(out)
            responder.bytes_received(out)
            continue
        back = responder.take_output()
        if back:
            if down is not None:
                down.extend(back)
            initiator.bytes_received(back)
            continue
        if responder.wants_tick:
            responder.tick()
            continue
        initiator.peer_closed()
    return initiator.report


# --- golden: the engine is wire-identical to the legacy drivers -------------


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("block_size", [1, 8])
def test_golden_stream_wire_identical(fixture: str, block_size: int) -> None:
    """The §6 coded-symbol payload matches the pre-engine recording bit
    for bit, as do the ReconcileResult fields."""
    recorded = GOLDEN["api_stream"][fixture][str(block_size)]
    a, b = sets_for(fixture)
    handle = get_scheme("riblt", symbol_size=ITEM)
    initiator = InitiatorMachine(handle, sorted(b), capture_payloads=True)
    responder = memory_responder(handle, sorted(a), block_size=block_size)
    report = pump(initiator, responder)
    payload = bytes(report.payloads[0])
    assert payload.hex() == recorded["payload_hex"]
    assert report.payload_bytes == recorded["bytes_on_wire"]
    assert report.symbols == recorded["symbols_used"]


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("scheme", sorted(GOLDEN["api_schemes"]))
def test_golden_reconcile_results_identical(scheme: str, fixture: str) -> None:
    """reconcile() reports the exact legacy bytes/symbols/rounds."""
    recorded = GOLDEN["api_schemes"][scheme][fixture]
    a, b = sets_for(fixture)
    d = len(a ^ b)
    result = reconcile(a, b, scheme=scheme, symbol_size=ITEM, difference_bound=d)
    assert result.only_in_a == a - b and result.only_in_b == b - a
    assert result.bytes_on_wire == recorded["bytes_on_wire"]
    assert result.symbols_used == recorded["symbols_used"]
    assert result.rounds == recorded["rounds"]
    assert result.difference_size == recorded["difference_size"]


@pytest.mark.parametrize("scheme", sorted(GOLDEN["api_estimator"]))
def test_golden_estimator_composition_identical(scheme: str) -> None:
    """The ESTIMATE-frame composition charges the exact legacy bytes."""
    recorded = GOLDEN["api_estimator"][scheme]
    a, b = sets_for("one_diff")
    result = reconcile(a, b, scheme=scheme, symbol_size=ITEM)
    assert result.bytes_on_wire == recorded["bytes_on_wire"]
    assert result.symbols_used == recorded["symbols_used"]
    assert result.rounds == recorded["rounds"]


def test_golden_service_stream_transcripts() -> None:
    """Against a service-profile responder, the initiator's transcript is
    byte-identical to the legacy TCP client's recording, and the coded
    stream matches the recorded payload (common prefix: recordings made
    over real sockets include look-ahead overshoot)."""
    recorded = GOLDEN["service"]["stream"]
    handle = get_scheme("riblt", symbol_size=8)
    initiator = InitiatorMachine(
        handle, items_range(5, 305), capture_payloads=True
    )
    responder = service_responder(handle, items_range(0, 300))
    up = bytearray()
    report = drive(initiator, responder, up=up)
    assert up.hex() == recorded["client_to_server_hex"]
    payload = bytes(report.payloads[0])
    legacy = bytes.fromhex(recorded["payload_hex"])
    common = min(len(payload), len(legacy))
    assert common > 0
    assert payload[:common] == legacy[:common]
    assert report.symbols == recorded["symbols"]
    assert len(report.only_in_remote) == recorded["only_in_server"]
    assert len(report.only_in_local) == recorded["only_in_client"]


def test_golden_service_sketch_transcripts() -> None:
    """Sketch mode with RETRY doubling: both directions byte-identical to
    the legacy client/server pair (STATS counters included)."""
    import hashlib

    recorded = GOLDEN["service"]["sketch"]
    handle = get_scheme("regular_iblt", symbol_size=8)
    initiator = InitiatorMachine(
        handle, items_range(16, 216), difference_bound=1, max_rounds=8
    )
    responder = service_responder(handle, items_range(0, 200))
    up, down = bytearray(), bytearray()
    report = drive(initiator, responder, up=up, down=down)
    assert up.hex() == recorded["client_to_server_hex"]
    assert len(down) == recorded["server_to_client_len"]
    assert (
        hashlib.sha256(bytes(down)).hexdigest()
        == recorded["server_to_client_sha256"]
    )
    assert report.per_shard[0].rounds == recorded["rounds"]
    assert report.payload_bytes == recorded["bytes_received"]


def test_golden_tcp_service_matches_recording() -> None:
    """The full asyncio stack (new adapters, same machine) still serves
    the recorded coded stream."""
    import asyncio

    from repro.service import ReconciliationServer, sync

    recorded = GOLDEN["service"]["stream"]

    async def scenario():
        # The recording predates the service-layer SipHash default; pin
        # the BLAKE2b hasher it was captured under.
        async with ReconciliationServer(
            items_range(0, 300), num_shards=1, hasher="blake2b"
        ) as server:
            host, port = server.address
            return await sync(
                host,
                port,
                items_range(5, 305),
                capture_payloads=True,
                hasher="blake2b",
            )

    result = asyncio.run(asyncio.wait_for(scenario(), timeout=60))
    payload = bytes(result.payloads[0])
    legacy = bytes.fromhex(recorded["payload_hex"])
    common = min(len(payload), len(legacy))
    assert common >= len(legacy) // 2
    assert payload[:common] == legacy[:common]
    assert result.only_in_server == set(items_range(0, 5))
    assert result.only_in_client == set(items_range(300, 305))


# --- the effect protocol ----------------------------------------------------


def test_effects_are_typed_and_terminal() -> None:
    handle = get_scheme("riblt", symbol_size=8)
    initiator = InitiatorMachine(handle, items_range(2, 102))
    responder = memory_responder(handle, items_range(0, 100))
    initiator.start()
    effects = initiator.poll_effects()
    assert len(effects) == 1 and isinstance(effects[0], SendBytes)
    responder.start()
    responder.bytes_received(effects[0].data)
    initiator.bytes_received(responder.take_output())  # WELCOME
    while not initiator.finished:
        responder.tick()
        initiator.bytes_received(responder.take_output())
        out = initiator.take_output()
        if out:
            responder.bytes_received(out)
            back = responder.take_output()
            if back:
                initiator.bytes_received(back)
    final = [e for e in initiator.poll_effects() if not isinstance(e, SendBytes)]
    assert len(final) == 1 and isinstance(final[0], Delivered)
    assert final[0].report is initiator.report
    # Terminal: further events are ignored, not errors.
    initiator.bytes_received(b"\x01\x02\x03")
    initiator.tick()
    initiator.peer_closed()
    assert initiator.failed is None


# --- adversarial delivery ---------------------------------------------------


def _captured_stream_session():
    """One full stream session's responder->initiator bytes (incl. STATS)."""
    handle = get_scheme("riblt", symbol_size=8)
    initiator = InitiatorMachine(handle, items_range(7, 307))
    responder = service_responder(handle, items_range(0, 300))
    down = bytearray()
    report = drive(initiator, responder, down=down)
    return handle, bytes(down), report


@pytest.mark.parametrize("mode", ["byte_by_byte", "random_chunks", "one_blob"])
def test_fragmentation_and_coalescing_equivalence(mode: str) -> None:
    """Replaying a session's byte stream under any fragmentation gives an
    identical result — FrameDecoder state must survive partial frames."""
    handle, down, reference = _captured_stream_session()
    fresh = InitiatorMachine(handle, items_range(7, 307))
    fresh.start()
    fresh.take_output()
    rng = random.Random(42)
    if mode == "byte_by_byte":
        chunks = [down[i : i + 1] for i in range(len(down))]
    elif mode == "one_blob":
        chunks = [down]
    else:
        chunks, pos = [], 0
        while pos < len(down):
            size = rng.randint(1, 200)
            chunks.append(down[pos : pos + size])
            pos += size
    for chunk in chunks:
        fresh.bytes_received(chunk)
        fresh.take_output()  # SHARD_DONE/BYE answers go nowhere: replay
    assert fresh.finished and fresh.failed is None
    assert fresh.report.only_in_remote == reference.only_in_remote
    assert fresh.report.only_in_local == reference.only_in_local
    assert fresh.report.symbols == reference.symbols


def test_duplicated_ticks_only_overshoot() -> None:
    """Ticking the responder redundantly (transport retries, jittery event
    loops) costs extra symbols but can neither corrupt nor wedge."""
    handle = get_scheme("riblt", symbol_size=8)
    initiator = InitiatorMachine(handle, items_range(3, 203))
    responder = service_responder(handle, items_range(0, 200))
    initiator.start()
    responder.start()
    responder.bytes_received(initiator.take_output())
    initiator.bytes_received(responder.take_output())
    while not initiator.finished:
        for _ in range(3):  # duplicate ticks: blocks pile up in flight
            responder.tick()
        initiator.bytes_received(responder.take_output())
        out = initiator.take_output()
        if out:
            responder.bytes_received(out)
            back = responder.take_output()
            if back:
                initiator.bytes_received(back)
    assert initiator.failed is None
    report = initiator.report
    assert report.only_in_remote == set(items_range(0, 3))
    assert report.only_in_local == set(items_range(200, 203))


def test_peer_closed_mid_stream_fails_not_hangs() -> None:
    handle, down, _ = _captured_stream_session()
    fresh = InitiatorMachine(handle, items_range(7, 307))
    fresh.start()
    fresh.take_output()
    fresh.bytes_received(down[: len(down) // 2])
    fresh.take_output()
    fresh.peer_closed()
    assert fresh.finished
    assert isinstance(fresh.failed, (ProtocolError, TruncatedFrame))


def test_peer_closed_mid_frame_is_truncation() -> None:
    handle, down, _ = _captured_stream_session()
    fresh = InitiatorMachine(handle, items_range(7, 307))
    fresh.start()
    fresh.take_output()
    fresh.bytes_received(down[:3])  # inside the first frame's body
    fresh.peer_closed()
    assert isinstance(fresh.failed, TruncatedFrame)


def test_garbage_bytes_fail_typed() -> None:
    handle = get_scheme("riblt", symbol_size=8)
    initiator = InitiatorMachine(handle, items_range(0, 50))
    initiator.start()
    initiator.take_output()
    initiator.bytes_received(b"\xff" * 64)  # insane length prefix
    assert initiator.finished and initiator.failed is not None
    effects = initiator.poll_effects()
    assert any(isinstance(e, Failed) for e in effects)


def test_initiator_budget_exhaustion_is_typed() -> None:
    handle = get_scheme("riblt", symbol_size=8)
    initiator = InitiatorMachine(
        handle, [b"X%07d" % i for i in range(400)], max_symbols=8
    )
    responder = service_responder(handle, items_range(0, 400))
    with pytest.raises(SymbolBudgetExceeded):
        pump(initiator, responder)
    assert initiator.finished


def test_responder_budget_and_grace_surface_on_both_sides() -> None:
    handle = get_scheme("riblt", symbol_size=8)
    initiator = InitiatorMachine(handle, [b"Y%07d" % i for i in range(400)])
    responder = service_responder(
        handle,
        items_range(0, 400),
        max_symbols_per_shard=16,
        budget_grace=0.5,
    )
    with pytest.raises(SymbolBudgetExceeded):
        pump(initiator, responder)
    assert isinstance(responder.failed, SymbolBudgetExceeded)
    assert responder.symbols_sent == 16  # the budget is a hard cap


def test_sketch_round_exhaustion_is_typed() -> None:
    handle = get_scheme("regular_iblt", symbol_size=8)
    initiator = InitiatorMachine(
        handle, items_range(80, 480), difference_bound=1, max_rounds=2
    )
    responder = service_responder(handle, items_range(0, 400))
    with pytest.raises(ReconcileError):
        pump(initiator, responder)


def test_every_event_on_finished_machine_is_inert() -> None:
    """After failure, the machine ignores everything instead of raising."""
    handle = get_scheme("riblt", symbol_size=8)
    initiator = InitiatorMachine(handle, items_range(0, 10))
    initiator.start()
    initiator.take_output()
    initiator.peer_closed()
    assert initiator.finished and initiator.failed is not None
    first_error = initiator.failed
    initiator.bytes_received(b"anything")
    initiator.tick(123.0)
    initiator.peer_closed()
    assert initiator.failed is first_error


# --- the simulated-link transport (any scheme, lossy link) ------------------

SIM_SCHEMES = [s for s in available_schemes() if scheme_info(s).capabilities.serializable or scheme_info(s).capabilities.streaming]


@pytest.mark.parametrize("scheme", SIM_SCHEMES)
def test_every_framable_scheme_syncs_over_lossy_link(scheme: str) -> None:
    """The ISSUE acceptance bullet: every registry scheme completes over a
    lossy simulated link, driven by the same machine as the TCP service."""
    from repro.net.protocols import simulate_machine_sync

    a = [b"%07d" % i for i in range(220)]
    b = [b"%07d" % i for i in range(20, 240)]
    out = simulate_machine_sync(
        a, b, scheme,
        bandwidth_bps=20e6, delay_s=0.05, loss_rate=0.1, seed=3,
    )
    assert out.result.only_in_a == set(a) - set(b)
    assert out.result.only_in_b == set(b) - set(a)
    assert out.completion_time > 0.1  # ≥ request + first-data half RTTs
    assert out.bytes_down > 0


def test_lossless_link_is_deterministic_and_cheaper() -> None:
    from repro.net.protocols import simulate_machine_sync

    a = [b"%07d" % i for i in range(300)]
    b = [b"%07d" % i for i in range(30, 330)]
    clean = simulate_machine_sync(
        a, b, "riblt", bandwidth_bps=20e6, delay_s=0.05
    )
    again = simulate_machine_sync(
        a, b, "riblt", bandwidth_bps=20e6, delay_s=0.05
    )
    lossy = simulate_machine_sync(
        a, b, "riblt", bandwidth_bps=20e6, delay_s=0.05, loss_rate=0.2, seed=1
    )
    assert clean.completion_time == again.completion_time
    assert clean.bytes_down == again.bytes_down
    # Loss delays decode (retransmission timeouts) but must not corrupt.
    # Total bytes aren't asserted: retransmissions occupy the saturated
    # transmitter, displacing fresh look-ahead blocks almost one-for-one.
    assert lossy.completion_time > clean.completion_time
    assert lossy.result.only_in_a == clean.result.only_in_a


def test_merkle_cannot_be_framed() -> None:
    from repro.net.protocols import simulate_machine_sync

    with pytest.raises(ValueError, match="cannot be framed"):
        simulate_machine_sync(
            [b"12345678"], [b"12345678"], "merkle",
            bandwidth_bps=20e6, delay_s=0.05, symbol_size=8,
        )


# --- the CLI transports -----------------------------------------------------


def test_cli_sync_sim_and_memory_transports(tmp_path, capsys) -> None:
    from repro.cli import main

    rng = random.Random(5)
    shared = [rng.randbytes(8) for _ in range(150)]
    only_a = [rng.randbytes(8) for _ in range(4)]
    only_b = [rng.randbytes(8) for _ in range(4)]
    file_a = tmp_path / "a.bin"
    file_b = tmp_path / "b.bin"
    file_a.write_bytes(b"".join(shared + only_a))
    file_b.write_bytes(b"".join(shared + only_b))
    code = main(
        ["--item-size", "8", "sync", str(file_a), "--transport", "sim",
         "--peer", str(file_b), "--scheme", "pinsketch", "--loss", "0.1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "missing locally : 4" in out
    assert "completion time" in out
    code = main(
        ["--item-size", "8", "sync", str(file_a), "--transport", "memory",
         "--peer", str(file_b)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "extra locally   : 4" in out


def test_hostile_estimate_header_fails_fast() -> None:
    """A tiny ESTIMATE body declaring a gigabyte geometry must be
    rejected from the length check alone — before any table allocation."""
    import time

    from repro.baselines.strata import StrataEstimator
    from repro.core import varint

    hostile = (
        varint.encode_uvarint(50_000)
        + varint.encode_uvarint(10_000)
        + varint.encode_uvarint(3)
    )
    start = time.perf_counter()
    with pytest.raises(ValueError, match="cell bytes"):
        StrataEstimator.deserialize(hostile)
    assert time.perf_counter() - start < 0.5

    # And through the machine: the initiator fails typed, never hangs.
    handle = get_scheme("regular_iblt", symbol_size=8)
    initiator = InitiatorMachine(handle, items_range(0, 50), use_estimator=True)
    initiator.start()
    initiator.take_output()
    from repro.service.framing import FrameType, encode_frame, pack_uvarints

    welcome = encode_frame(
        FrameType.WELCOME, pack_uvarints(1, 1, 1, 64)  # SKETCH mode, 1 shard
    )
    initiator.bytes_received(welcome + encode_frame(FrameType.ESTIMATE, hostile))
    # The machine wraps the deserializer's rejection into the wire-level
    # typed failure (retryable, never untyped).
    assert initiator.finished and isinstance(initiator.failed, ProtocolError)
    assert "cell bytes" in str(initiator.failed)


def test_cli_sync_local_transport_rejects_push(tmp_path, capsys) -> None:
    from repro.cli import main

    file_a = tmp_path / "a.bin"
    file_a.write_bytes(b"y" * 64)
    code = main(
        ["--item-size", "8", "sync", str(file_a), "--transport", "memory",
         "--peer", str(file_a), "--push"]
    )
    assert code == 2
    assert "--push is not supported" in capsys.readouterr().err


def test_cli_sync_sim_requires_peer(tmp_path, capsys) -> None:
    from repro.cli import main

    file_a = tmp_path / "a.bin"
    file_a.write_bytes(b"x" * 64)
    code = main(
        ["--item-size", "8", "sync", str(file_a), "--transport", "sim"]
    )
    assert code == 2
    assert "--peer" in capsys.readouterr().err


# --- the table adapters' streaming faces (cell streams) ---------------------


def test_regular_iblt_streaming_face() -> None:
    a = [b"%07d" % i for i in range(300)]
    b = [b"%07d" % i for i in range(12, 312)]
    handle = get_scheme("regular_iblt", symbol_size=7).sized_for(40)
    alice, bob = handle.new(a), handle.new(b)
    while not bob.decoded:
        bob.absorb(alice.produce_block(16))
    result = bob.stream_result()
    assert set(result.remote) == set(a) - set(b)
    assert set(result.local) == set(b) - set(a)
    assert bob.symbols_absorbed == result.symbols_used


def test_met_iblt_streams_decode_at_block_boundaries() -> None:
    a = [b"%07d" % i for i in range(300)]
    b = [b"%07d" % i for i in range(12, 312)]
    handle = get_scheme("met_iblt", symbol_size=7)
    alice, bob = handle.new(a), handle.new(b)
    while not bob.decoded:
        bob.absorb(alice.produce_block(19))  # deliberately boundary-misaligned
    result = bob.stream_result()
    assert set(result.remote) == set(a) - set(b)
    # d = 24 needs the second preset block: 24 + 90 cells.
    assert result.symbols_used == 114
    # The counter is exact even though absorb overshoots the boundary.
    assert bob.symbols_absorbed >= result.symbols_used


def test_met_iblt_stream_survives_byte_fragmentation() -> None:
    a = [b"%07d" % i for i in range(120)]
    b = [b"%07d" % i for i in range(4, 124)]
    handle = get_scheme("met_iblt", symbol_size=7)
    alice, bob = handle.new(a), handle.new(b)
    blob = alice.produce_block(130)
    for i in range(0, len(blob), 5):
        bob.absorb(blob[i : i + 5])
    assert bob.decoded
    assert set(bob.stream_result().remote) == set(a) - set(b)


def test_fixed_table_stream_exhaustion_raises() -> None:
    a = [b"%07d" % i for i in range(300)]
    b = [b"%07d" % i for i in range(80, 380)]
    handle = get_scheme("regular_iblt", symbol_size=7).sized_for(2)
    alice, bob = handle.new(a), handle.new(b)
    with pytest.raises(ReconcileError, match="exhausted"):
        while True:
            bob.absorb(alice.produce_block(64))
    assert not bob.decoded
