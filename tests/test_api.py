"""The acceptance suite for ``repro.api``: every registered scheme must
pass the *same* calls on the *same* fixtures.

Items are 7 bytes — the one width every scheme can represent exactly
(CPI's field holds ≤56-bit items; PinSketch's largest built-in field is
GF(2^64)) — and never all-zero (0 is not a PinSketch field element).
"""

from __future__ import annotations

import random

import pytest

from repro.api import (
    ReconcileError,
    Session,
    UnsupportedOperation,
    available_schemes,
    get_scheme,
    reconcile,
    scheme_info,
)

ITEM = 7

ALL_SCHEMES = available_schemes()
STREAMING = [s for s in ALL_SCHEMES if scheme_info(s).capabilities.streaming]
FIXED = [s for s in ALL_SCHEMES if scheme_info(s).capabilities.fixed_capacity]
SERIALIZABLE = [s for s in ALL_SCHEMES if scheme_info(s).capabilities.serializable]
INCREMENTAL = [s for s in ALL_SCHEMES if scheme_info(s).capabilities.incremental]

# name -> (shared, only_a, only_b): the ISSUE's five shared workloads.
FIXTURES: dict[str, tuple[int, int, int]] = {
    "identical": (120, 0, 0),
    "empty": (0, 0, 0),
    "one_diff": (120, 1, 0),
    "disjoint": (0, 25, 25),
    "hundred_diff": (150, 50, 50),
}


def _items(rng: random.Random, count: int) -> list[bytes]:
    out: set[bytes] = set()
    while len(out) < count:
        item = rng.randbytes(ITEM)
        if item != bytes(ITEM):
            out.add(item)
    return sorted(out)


def sets_for(fixture: str) -> tuple[set[bytes], set[bytes]]:
    shared, only_a, only_b = FIXTURES[fixture]
    rng = random.Random(0xAB1DE + len(fixture) * 1009 + shared + only_a)
    pool = _items(rng, shared + only_a + only_b)
    common = set(pool[:shared])
    a = common | set(pool[shared : shared + only_a])
    b = common | set(pool[shared + only_a :])
    return a, b


# --- the uniform round-trip: identical call, every scheme, every fixture ----


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_uniform_reconcile(scheme: str, fixture: str) -> None:
    a, b = sets_for(fixture)
    d = len(a ^ b)
    result = reconcile(a, b, scheme=scheme, symbol_size=ITEM, difference_bound=d)
    assert result.scheme == scheme
    assert result.only_in_a == a - b
    assert result.only_in_b == b - a
    assert result.difference_size == d
    assert result.bytes_on_wire >= 0
    if d == 0:
        assert result.overhead == 0.0
    else:
        assert result.overhead > 0.0
        assert result.bytes_on_wire > 0


@pytest.mark.parametrize("scheme", FIXED)
def test_estimator_fallback_sizes_fixed_schemes(scheme: str) -> None:
    """No difference_bound: a strata exchange sizes the sketch (±retries)."""
    a, b = sets_for("one_diff")
    result = reconcile(a, b, scheme=scheme, symbol_size=ITEM)
    assert result.only_in_a == a - b and result.only_in_b == b - a
    # The ~15 KB estimator surcharge is charged to the wire.
    assert result.bytes_on_wire > 15_000
    assert result.rounds >= 2


# --- serialize/deserialize round-trips --------------------------------------


@pytest.mark.parametrize("scheme", SERIALIZABLE)
def test_serialize_roundtrip(scheme: str) -> None:
    a, b = sets_for("one_diff")
    d = len(a ^ b)
    handle = get_scheme(scheme, symbol_size=ITEM).sized_for(d)
    blob = handle.new(a).serialize()
    assert isinstance(blob, bytes) and blob
    rebuilt = handle.deserialize(blob)
    result = rebuilt.subtract(handle.new(b)).decode()
    assert result.success
    assert set(result.remote) == a - b
    assert set(result.local) == b - a


@pytest.mark.parametrize("scheme", sorted(set(ALL_SCHEMES) - set(SERIALIZABLE)))
def test_unserializable_schemes_say_so(scheme: str) -> None:
    a, _ = sets_for("one_diff")
    with pytest.raises(UnsupportedOperation):
        get_scheme(scheme, symbol_size=ITEM).new(a).serialize()


# --- incremental mutation through the uniform interface ---------------------


@pytest.mark.parametrize("scheme", INCREMENTAL)
def test_add_remove_then_reconcile(scheme: str) -> None:
    a, b = sets_for("one_diff")
    d_bound = len(a ^ b) + 2
    handle = get_scheme(scheme, symbol_size=ITEM).sized_for(d_bound)
    alice = handle.new(a)
    bob = handle.new(b)
    moved = next(iter(a - b))
    extra = bytes([7] * ITEM)
    alice.remove(moved)
    alice.add(extra)
    result = alice.subtract(bob).decode()
    assert result.success
    assert set(result.remote) == ((a - {moved}) | {extra}) - b
    assert set(result.local) == b - ((a - {moved}) | {extra})


# --- streaming extension ----------------------------------------------------


@pytest.mark.parametrize("scheme", STREAMING)
def test_streaming_session_step_by_step(scheme: str) -> None:
    a, b = sets_for("disjoint")
    session = Session(a, b, scheme, symbol_size=ITEM)
    steps = 0
    while not session.step():
        steps += 1
        assert steps < 10_000
    result = session.run()
    assert result.only_in_a == a - b
    assert result.only_in_b == b - a
    assert result.bytes_on_wire == session.bytes_sent


def test_streaming_full_duplex_peers() -> None:
    """One reconciler can send and receive at once: producing must not
    consume the indices absorb() subtracts against (regression)."""
    a, b = sets_for("one_diff")
    handle = get_scheme("riblt", symbol_size=ITEM)
    peer_a, peer_b = handle.new(a), handle.new(b)
    exchanges = 0
    while not (peer_a.decoded and peer_b.decoded):
        exchanges += 1
        assert exchanges < 1000
        peer_b.absorb(peer_a.produce_next())
        peer_a.absorb(peer_b.produce_next())
    assert set(peer_b.stream_result().remote) == a - b
    assert set(peer_a.stream_result().remote) == b - a


def test_streaming_budget_raises() -> None:
    a, b = sets_for("hundred_diff")
    with pytest.raises(ReconcileError):
        reconcile(a, b, scheme="riblt", symbol_size=ITEM, max_symbols=3)


def test_session_rejects_non_streaming_schemes() -> None:
    with pytest.raises(ValueError):
        Session([], [], "regular_iblt", symbol_size=ITEM)


# --- registry behaviour -----------------------------------------------------


def test_registry_lists_all_schemes() -> None:
    assert len(ALL_SCHEMES) >= 6
    for expected in (
        "riblt",
        "regular_iblt",
        "regular_iblt+strata",
        "met_iblt",
        "pinsketch",
        "cpi",
        "merkle",
    ):
        assert expected in ALL_SCHEMES


def test_unknown_scheme_is_a_helpful_keyerror() -> None:
    with pytest.raises(KeyError, match="riblt"):
        get_scheme("no-such-scheme")


def test_unknown_parameter_is_a_helpful_typeerror() -> None:
    with pytest.raises(TypeError, match="accepted parameters"):
        get_scheme("riblt", bogus_knob=3)


def test_capability_flags_match_reality() -> None:
    assert scheme_info("riblt").capabilities.streaming
    assert scheme_info("regular_iblt").capabilities.fixed_capacity
    assert scheme_info("regular_iblt+strata").capabilities.needs_estimator
    assert not scheme_info("merkle").capabilities.serializable
    assert not scheme_info("met_iblt").capabilities.fixed_capacity


def test_symbol_size_inferred_from_items() -> None:
    a, b = sets_for("one_diff")
    result = reconcile(a, b, scheme="riblt")  # no symbol_size given
    assert result.only_in_a == a - b


def test_empty_build_needs_explicit_symbol_size() -> None:
    with pytest.raises(ValueError, match="symbol_size"):
        get_scheme("riblt").new([])


def test_mixed_item_widths_rejected() -> None:
    with pytest.raises(ValueError, match="bytes"):
        reconcile([b"1234567", b"123"], [], scheme="riblt")


# --- scheme-specific representation limits, surfaced uniformly --------------


def test_cpi_rejects_wide_items() -> None:
    with pytest.raises(ValueError, match="7 bytes"):
        reconcile(
            [bytes(range(8))], [], scheme="cpi", symbol_size=8, difference_bound=1
        )


def test_pinsketch_rejects_zero_item() -> None:
    with pytest.raises(ValueError, match="zero"):
        reconcile(
            [bytes(ITEM)], [], scheme="pinsketch", symbol_size=ITEM,
            difference_bound=1,
        )


def test_negative_difference_bound_rejected() -> None:
    """A clamped negative bound once let PinSketch alias to a wrong
    answer; nonsensical bounds must be refused outright (regression)."""
    a, b = sets_for("one_diff")
    with pytest.raises(ValueError, match="difference_bound"):
        reconcile(a, b, scheme="pinsketch", symbol_size=ITEM, difference_bound=-3)


@pytest.mark.parametrize("scheme", ["pinsketch", "cpi"])
def test_attribution_survives_post_subtract_mutation(scheme: str) -> None:
    """subtract() must snapshot the receiver's set, not alias it
    (regression)."""
    a, b = sets_for("one_diff")
    handle = get_scheme(scheme, symbol_size=ITEM).sized_for(8)
    alice, bob = handle.new(a), handle.new(b)
    diff = alice.subtract(bob)
    moved = next(iter(a - b))
    bob.add(moved)  # receiver learns the item out of band, post-subtract
    result = diff.decode()
    assert result.success
    assert moved in set(result.remote)


def test_fixed_capacity_overflow_retries_then_succeeds() -> None:
    """An undershot bound is survived by doubling, with each round charged."""
    a, b = sets_for("disjoint")  # d = 50
    result = reconcile(
        a, b, scheme="pinsketch", symbol_size=ITEM, difference_bound=10
    )
    assert result.only_in_a == a - b
    assert result.rounds >= 2
