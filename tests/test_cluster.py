"""The multi-process worker pool: routing, equivalence, crash recovery.

Acceptance anchors:

* ``workers=2`` serving 4 shards is **byte-identical** to the same set
  behind one in-process server — same diff sets and, shard by shard,
  the same wire payloads — for 8 sequential clients;
* a SIGKILL'd worker is restarted warm by the supervisor and a client
  retrying via the existing :class:`~repro.service.RetryPolicy`
  succeeds;
* an injected ``REPRO_CRASH_POINT`` crash kills a *real* worker
  subprocess mid-churn (exit :data:`~repro.cluster.worker
  .CRASH_EXIT_CODE`), and recovery replays exactly the acked prefix of
  its journal segment;
* a worker dying mid-session surfaces as the typed
  :class:`~repro.service.WorkerUnavailable`, never a hang.
"""

import asyncio
import signal

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterError,
    ClusterSupervisor,
    worker_of_shard,
    worker_shards,
)
from repro.cluster.worker import CRASH_EXIT_CODE
from repro.durable import open_durable
from repro.durable.store import JOURNAL_SEGMENT_GLOB, journal_segment_name
from repro.service import (
    ReconciliationServer,
    RetryPolicy,
    WorkerUnavailable,
    sync,
)
from repro.service.framing import FrameType, encode_frame, pack_uvarints

SYNC_TIMEOUT = 180.0

RETRY = RetryPolicy(attempts=10, base_delay=0.2, max_delay=1.0)


def run(coro):
    """Drive one test coroutine (no pytest-asyncio dependency)."""
    return asyncio.run(asyncio.wait_for(coro, timeout=SYNC_TIMEOUT))


def items_range(lo, hi):
    return [b"%016d" % i for i in range(lo, hi)]


def fast_config(**overrides):
    defaults = dict(num_workers=2, fsync=False, restart_backoff=0.05)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


# -- topology ----------------------------------------------------------------


def test_worker_shards_striped():
    assert list(worker_shards(5, 2, 0)) == [0, 2, 4]
    assert list(worker_shards(5, 2, 1)) == [1, 3]
    # Every shard is owned by exactly one worker, and ownership agrees
    # with worker_of_shard.
    owners = {}
    for w in range(3):
        for g in worker_shards(7, 3, w):
            assert g not in owners
            owners[g] = w
    assert sorted(owners) == list(range(7))
    assert all(worker_of_shard(g, 3) == w for g, w in owners.items())


def test_worker_shards_validation():
    with pytest.raises(ValueError):
        worker_shards(4, 0, 0)
    with pytest.raises(ValueError):
        worker_shards(4, 2, 2)
    with pytest.raises(ValueError):
        worker_shards(1, 2, 0)


def test_supervisor_rejects_thin_topology():
    async def scenario():
        sup = ClusterSupervisor(
            items_range(0, 50),
            num_shards=2,
            config=fast_config(num_workers=3),
        )
        with pytest.raises(ClusterError):
            await sup.start()
        await sup.close()

    run(scenario())


# -- equivalence -------------------------------------------------------------


def test_cluster_byte_identical_to_single_server():
    """8 clients against workers=2 see exactly the single-server bytes."""
    server_items = items_range(0, 600)
    workloads = [
        server_items[7 * k :] + items_range(10_000 + 3 * k, 10_000 + 3 * k + 9)
        for k in range(8)
    ]

    async def scenario():
        refs = []
        async with ReconciliationServer(server_items, num_shards=4) as solo:
            host, port = solo.address
            for wl in workloads:
                refs.append(
                    await sync(host, port, wl, capture_payloads=True)
                )
        async with ClusterSupervisor(
            server_items, num_shards=4, config=fast_config()
        ) as sup:
            host, port = sup.entry_address
            for wl, ref in zip(workloads, refs):
                res = await sync(host, port, wl, capture_payloads=True)
                assert res.num_shards == ref.num_shards == 4
                assert res.only_in_server == ref.only_in_server
                assert res.only_in_client == ref.only_in_client
                # Byte-identity, shard by global shard: the pool and the
                # single process produced the same coded-symbol streams.
                assert res.payloads == ref.payloads
                assert [t.shard for t in res.per_shard] == [0, 1, 2, 3]

    run(scenario())


def test_cluster_concurrent_clients():
    server_items = items_range(0, 400)

    async def scenario():
        async with ClusterSupervisor(
            server_items, num_shards=4, config=fast_config()
        ) as sup:
            host, port = sup.entry_address

            async def one(k):
                wl = server_items[5 * k :] + items_range(20_000 + k, 20_001 + k)
                res = await sync(host, port, wl)
                assert res.only_in_server == set(server_items[: 5 * k])
                assert len(res.only_in_client) == 1

            await asyncio.gather(*(one(k) for k in range(8)))

    run(scenario())


def test_fallback_mode_entry_is_worker_zero():
    server_items = items_range(0, 200)

    async def scenario():
        async with ClusterSupervisor(
            server_items,
            num_shards=4,
            config=fast_config(reuse_port=False),
        ) as sup:
            assert not sup.reuse_port_active
            assert sup.entry_port == sup.ports[0]
            res = await sync(*sup.entry_address, server_items[10:])
            assert res.only_in_server == set(server_items[:10])

    run(scenario())


# -- worker death ------------------------------------------------------------


def test_killed_worker_restarts_and_retry_succeeds():
    server_items = items_range(0, 400)
    client_items = server_items[25:] + items_range(30_000, 30_010)

    async def scenario():
        async with ClusterSupervisor(
            server_items, num_shards=4, config=fast_config()
        ) as sup:
            host, port = sup.entry_address
            ref = await sync(host, port, client_items)
            sup.kill_worker(1, signal.SIGKILL)
            res = await sync(host, port, client_items, retry=RETRY)
            assert res.only_in_server == ref.only_in_server
            assert res.only_in_client == ref.only_in_client
            assert sup.restart_counts[1] >= 1
            assert -signal.SIGKILL in sup.unexpected_exits[1]

    run(scenario())


def test_worker_death_mid_session_is_typed_not_a_hang():
    """A connection that got a cluster WELCOME and then died raises
    WorkerUnavailable (a ConnectionError, so RetryPolicy retries it)."""

    async def handler(reader, writer):
        # A plausible cluster WELCOME: version 1, stream mode, 2 granted
        # shards, block 64, then the routing tail (2 workers, index 0,
        # 4 shards, ports) -- and then the "worker" dies mid-session.
        await reader.read(64)  # let the HELLO arrive
        welcome = pack_uvarints(1, 0, 2, 64) + pack_uvarints(2, 0, 4, 1, 2)
        writer.write(encode_frame(FrameType.WELCOME, welcome))
        await writer.drain()
        writer.close()

    async def scenario():
        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            with pytest.raises(WorkerUnavailable) as excinfo:
                await sync("127.0.0.1", port, items_range(0, 10))
            assert isinstance(excinfo.value, ConnectionError)
        finally:
            server.close()
            await server.wait_closed()

    run(scenario())


# -- crash injection ---------------------------------------------------------


def test_injected_crash_kills_worker_process_and_recovers(
    tmp_path, monkeypatch
):
    """REPRO_CRASH_POINT fells a real subprocess mid-churn; the
    supervisor restarts it warm and recovery keeps exactly the acked
    prefix of its journal segment (here: nothing -- the first append is
    torn, so the push is dropped wholesale and the retry re-applies it).
    """
    server_items = items_range(0, 300)
    extras = items_range(40_000, 40_040)
    data_dir = tmp_path / "pool"

    async def scenario():
        # Armed BEFORE the workers spawn: each worker parses the env at
        # import.  The test process's own injector was parsed long ago
        # (unarmed), so only the subprocesses crash.
        monkeypatch.setenv("REPRO_CRASH_POINT", "journal.append")
        sup = ClusterSupervisor(
            server_items,
            data_dir=data_dir,
            num_shards=4,
            config=fast_config(),
        )
        try:
            host, port = await sup.start()
            # Disarm now: monitor respawns re-read os.environ, so the
            # restarted workers must come back clean.
            monkeypatch.delenv("REPRO_CRASH_POINT")
            try:
                await sync(host, port, server_items + extras, push=True)
            except (WorkerUnavailable, ConnectionError):
                pass  # the crash may also cut the session mid-push
            deadline = asyncio.get_running_loop().time() + 30.0
            while not any(sup.restart_counts):
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.05)
            crashed = [
                w
                for w, codes in enumerate(sup.unexpected_exits)
                if CRASH_EXIT_CODE in codes
            ]
            assert crashed, sup.unexpected_exits
            # The armed append was torn: recovery drops it, the store
            # still equals the pre-push (acked) state, and the retried
            # push lands everything.
            res = await sync(
                host, port, server_items + extras, push=True, retry=RETRY
            )
            assert len(res.only_in_client) == len(extras)
            res2 = await sync(host, port, server_items + extras, retry=RETRY)
            assert not res2.only_in_client and not res2.only_in_server
            for w in range(2):
                assert (data_dir / journal_segment_name(w)).exists()
        finally:
            await sup.close()

    run(scenario())

    # A later full open folds every worker's segment back into one
    # checkpoint; the folded set is the union and the segments are gone.
    backend = open_durable(data_dir)
    try:
        recovered = set()
        for shard in backend.sharded.shards:
            recovered |= set(shard)
    finally:
        backend.close()
    assert recovered == set(server_items) | set(extras)
    assert not list(data_dir.glob(JOURNAL_SEGMENT_GLOB))


# -- durable restart ---------------------------------------------------------


def test_pool_restart_recovers_churn_from_segments(tmp_path):
    """Churn journaled by workers survives a full pool stop/start."""
    server_items = items_range(0, 250)
    extras = items_range(50_000, 50_030)
    data_dir = tmp_path / "pool"

    async def scenario_push():
        async with ClusterSupervisor(
            server_items,
            data_dir=data_dir,
            num_shards=4,
            config=fast_config(),
        ) as sup:
            host, port = sup.entry_address
            await sync(host, port, server_items + extras, push=True)

    async def scenario_verify():
        # items=() on an existing dir: everything comes back from disk
        # (boot folds the segments from the previous run).
        async with ClusterSupervisor(
            data_dir=data_dir, config=fast_config()
        ) as sup:
            host, port = sup.entry_address
            res = await sync(host, port, server_items + extras)
            assert not res.only_in_server and not res.only_in_client

    run(scenario_push())
    run(scenario_verify())
