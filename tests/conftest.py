"""Shared fixtures: deterministic RNGs, codecs, and item factories."""

from __future__ import annotations

import random

import pytest
from hypothesis import settings

from repro.core.symbols import SymbolCodec

# Deterministic property testing: examples are derived from the test
# body, so a run that passed keeps passing (no fresh-seed flakiness).
settings.register_profile("deterministic", derandomize=True)
settings.load_profile("deterministic")


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG, fresh per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def codec8() -> SymbolCodec:
    """Codec for 8-byte items (the paper's computation benchmarks)."""
    return SymbolCodec(8)


@pytest.fixture
def codec32() -> SymbolCodec:
    """Codec for 32-byte items (the paper's communication benchmarks)."""
    return SymbolCodec(32)


def make_items(rng: random.Random, count: int, size: int = 8) -> list[bytes]:
    """``count`` distinct random items of ``size`` bytes.

    Sorted so the workload is identical across processes — ``list(set)``
    order would depend on the interpreter's randomised string hashing.
    """
    items: set[bytes] = set()
    while len(items) < count:
        items.add(rng.randbytes(size))
    return sorted(items)


def split_sets(
    rng: random.Random, shared: int, only_a: int, only_b: int, size: int = 8
) -> tuple[set[bytes], set[bytes]]:
    """Two sets with the given shared/exclusive cardinalities."""
    items = make_items(rng, shared + only_a + only_b, size)
    common = items[:shared]
    a_extra = items[shared : shared + only_a]
    b_extra = items[shared + only_a :]
    return set(common) | set(a_extra), set(common) | set(b_extra)
