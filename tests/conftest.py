"""Shared fixtures: deterministic RNGs, codecs, and item factories.

Plain helper functions (``make_items``, ``split_sets``) live in
``tests/helpers.py`` so test modules never import from a module named
``conftest`` — that name is claimed by every test directory and is
shadowed as soon as two of them land on ``sys.path`` together.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import settings

from helpers import make_items, split_sets  # noqa: F401  (re-export)
from repro.core.symbols import SymbolCodec

# Deterministic property testing: examples are derived from the test
# body, so a run that passed keeps passing (no fresh-seed flakiness).
settings.register_profile("deterministic", derandomize=True)
settings.load_profile("deterministic")


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG, fresh per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def codec8() -> SymbolCodec:
    """Codec for 8-byte items (the paper's computation benchmarks)."""
    return SymbolCodec(8)


@pytest.fixture
def codec32() -> SymbolCodec:
    """Codec for 32-byte items (the paper's communication benchmarks)."""
    return SymbolCodec(32)
