"""Count-free decoding (§7.1): same recovery, ~1 byte/cell cheaper."""

import pytest

from repro.core.coded import CodedSymbol
from repro.core.countless import (
    CountlessDecoder,
    countless_cell_bytes,
    decode_countless,
    encode_countless,
    reconcile_countless,
)
from repro.core.encoder import RatelessEncoder
from repro.core.wire import cell_wire_size

from helpers import split_sets


def test_reconcile_countless_exact(codec8, rng):
    a, b = split_sets(rng, shared=300, only_a=20, only_b=20)
    result = reconcile_countless(a, b, codec8)
    assert result.success
    assert set(result.remote) == a - b
    assert set(result.local) == b - a


def test_countless_identical_sets(codec8, rng):
    a, _ = split_sets(rng, shared=100, only_a=0, only_b=0)
    result = reconcile_countless(a, a, codec8)
    assert result.success
    assert result.symbols_used == 1


def test_countless_one_sided(codec8, rng):
    a, b = split_sets(rng, shared=150, only_a=12, only_b=0)
    result = reconcile_countless(a, b, codec8)
    assert result.success
    assert set(result.remote) == a - b and result.local == []


def test_countless_overhead_unchanged(codec8, rng):
    """Dropping count must not change *how many* symbols decoding needs
    (the peeling graph is identical)."""
    from repro.core.session import reconcile

    a, b = split_sets(rng, shared=400, only_a=25, only_b=25)
    with_count = reconcile(a, b, symbol_size=8)
    without = reconcile_countless(a, b, codec8)
    assert without.symbols_used == with_count.symbols_used


def test_countless_wire_savings(codec8):
    """Cells shrink by exactly the count var-int (≥1 byte each)."""
    assert countless_cell_bytes(codec8) == cell_wire_size(codec8) - 1


def test_countless_wire_roundtrip(codec8, rng):
    items = [rng.randbytes(8) for _ in range(50)]
    enc = RatelessEncoder(codec8, items)
    cells = [enc.produce_next().copy() for _ in range(30)]
    blob = encode_countless(codec8, cells)
    assert len(blob) == 30 * countless_cell_bytes(codec8)
    back = decode_countless(codec8, blob)
    for original, parsed in zip(cells, back):
        assert parsed.sum == original.sum
        assert parsed.checksum == original.checksum
        assert parsed.count == 0  # unknown by design


def test_countless_wire_length_validation(codec8):
    with pytest.raises(ValueError):
        decode_countless(codec8, b"\x00" * 17)


def test_countless_partial_results_correct(codec8, rng):
    """Starved decoder: partial recoveries are still true differences."""
    a, b = split_sets(rng, shared=50, only_a=30, only_b=30)
    result = reconcile_countless(a, b, codec8, max_symbols=20)
    assert not result.success
    assert set(result.remote) <= a - b
    assert set(result.local) <= b - a


def test_countless_end_to_end_over_wire(codec8, rng):
    """Alice serialises count-free; Bob subtracts his own cells and peels
    with membership probes."""
    a, b = split_sets(rng, shared=120, only_a=6, only_b=6)
    alice = RatelessEncoder(codec8, a)
    blob = encode_countless(
        codec8, [alice.produce_next().copy() for _ in range(60)]
    )
    received = decode_countless(codec8, blob)
    bob_enc = RatelessEncoder(codec8, b)
    decoder = CountlessDecoder(codec8, is_local=set(b).__contains__)
    for remote in received:
        local = bob_enc.produce_next()
        decoder.add_coded_symbol(
            CodedSymbol(remote.sum ^ local.sum, remote.checksum ^ local.checksum, 0)
        )
        if decoder.decoded:
            break
    assert decoder.decoded
    assert set(decoder.remote_items()) == a - b
    assert set(decoder.local_items()) == b - a
