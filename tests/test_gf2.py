"""GF(2^m): field axioms, irreducibility of the moduli, derived maps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pinsketch.gf2 import (
    IRREDUCIBLE_POLYS,
    GF2m,
    clmul,
    poly2_divmod,
    poly2_gcd,
    poly2_mod,
)

FIELDS = {m: GF2m(m) for m in (8, 16, 32, 64)}


# --- GF(2)[x] integer-polynomial helpers ---------------------------------------


def test_clmul_basics():
    assert clmul(0, 123) == 0
    assert clmul(1, 123) == 123
    assert clmul(0b10, 0b11) == 0b110  # x·(x+1) = x²+x
    assert clmul(0b11, 0b11) == 0b101  # (x+1)² = x²+1 (carry-less!)


@given(st.integers(0, 2**32), st.integers(0, 2**32), st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_clmul_distributes(a, b, c):
    assert clmul(a, b ^ c) == clmul(a, b) ^ clmul(a, c)


@given(st.integers(0, 2**32), st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_clmul_commutes(a, b):
    assert clmul(a, b) == clmul(b, a)


@given(st.integers(0, 2**40), st.integers(1, 2**20))
@settings(max_examples=60, deadline=None)
def test_poly2_divmod_identity(a, b):
    q, r = poly2_divmod(a, b)
    assert clmul(q, b) ^ r == a
    assert r.bit_length() < b.bit_length()


def test_poly2_gcd_known():
    # gcd(x²+1, x+1) = x+1 over GF(2) since x²+1 = (x+1)²
    assert poly2_gcd(0b101, 0b11) == 0b11


def _is_irreducible(poly: int) -> bool:
    """Rabin's test over GF(2): x^(2^m) ≡ x and gcd(x^(2^(m/p)) − x, f) = 1."""
    m = poly.bit_length() - 1

    def x_pow_pow2(k: int) -> int:
        # x^(2^k) mod poly by repeated squaring in GF(2)[x]/poly
        value = 0b10  # x
        for _ in range(k):
            spread = 0
            bit = 0
            v = value
            while v:
                if v & 1:
                    spread |= 1 << (2 * bit)
                v >>= 1
                bit += 1
            value = poly2_mod(spread, poly)
        return value

    if x_pow_pow2(m) != 0b10:
        return False
    primes = {p for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31) if m % p == 0}
    for p in primes:
        h = x_pow_pow2(m // p) ^ 0b10
        if poly2_gcd(poly, h) != 1:
            return False
    return True


@pytest.mark.parametrize("m", sorted(IRREDUCIBLE_POLYS))
def test_builtin_moduli_irreducible(m):
    assert _is_irreducible(IRREDUCIBLE_POLYS[m]), f"GF(2^{m}) modulus reducible!"


# --- field axioms ----------------------------------------------------------------


@pytest.mark.parametrize("m", [8, 16, 32, 64])
def test_identity_elements(m):
    field = FIELDS[m]
    for a in (1, 2, 5, field.mask):
        assert field.mul(a, 1) == a
        assert field.add(a, 0) == a


@given(st.data())
@settings(max_examples=120, deadline=None)
def test_field_axioms_random(data):
    m = data.draw(st.sampled_from([8, 16, 32, 64]))
    field = FIELDS[m]
    a = data.draw(st.integers(0, field.mask))
    b = data.draw(st.integers(0, field.mask))
    c = data.draw(st.integers(0, field.mask))
    assert field.mul(a, b) == field.mul(b, a)
    assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
    assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)
    assert field.sqr(a) == field.mul(a, a)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_inverse_property(data):
    m = data.draw(st.sampled_from([8, 16, 32, 64]))
    field = FIELDS[m]
    a = data.draw(st.integers(1, field.mask))
    assert field.mul(a, field.inv(a)) == 1
    assert field.div(field.mul(a, 7), a) == 7 or m == 8  # div sanity
    if m > 8:
        assert field.div(field.mul(a, 7), a) == 7


def test_inv_zero_raises():
    with pytest.raises(ZeroDivisionError):
        FIELDS[16].inv(0)


@pytest.mark.parametrize("m", [8, 16])
def test_inverse_exhaustive_small(m):
    """Every nonzero element of the small fields inverts correctly."""
    field = FIELDS[m]
    step = 1 if m == 8 else 257
    for a in range(1, field.order, step):
        assert field.mul(a, field.inv(a)) == 1


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_frobenius_is_additive(data):
    """(a+b)² = a² + b² in characteristic 2."""
    m = data.draw(st.sampled_from([16, 32, 64]))
    field = FIELDS[m]
    a = data.draw(st.integers(0, field.mask))
    b = data.draw(st.integers(0, field.mask))
    assert field.sqr(a ^ b) == field.sqr(a) ^ field.sqr(b)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_sqrt_inverts_sqr(data):
    m = data.draw(st.sampled_from([8, 16, 32, 64]))
    field = FIELDS[m]
    a = data.draw(st.integers(0, field.mask))
    assert field.sqrt(field.sqr(a)) == a


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_trace_in_prime_field(data):
    m = data.draw(st.sampled_from([8, 16, 32]))
    field = FIELDS[m]
    a = data.draw(st.integers(0, field.mask))
    assert field.trace(a) in (0, 1)


def test_trace_linear():
    field = FIELDS[32]
    for a, b in [(3, 5), (1234, 99999), (0xDEAD, 0xBEEF)]:
        assert field.trace(a ^ b) == field.trace(a) ^ field.trace(b)


def test_mul_table_agrees_with_mul():
    field = FIELDS[64]
    b = 0x0123456789ABCDEF
    table = field.mul_table(b)
    for a in (0, 1, 2, 0xFFFF, 0xDEADBEEF, field.mask):
        assert field.mul_with(a, table) == field.mul(a, b)


def test_pow():
    field = FIELDS[16]
    a = 0x1234
    assert field.pow(a, 0) == 1
    assert field.pow(a, 1) == a
    assert field.pow(a, 2) == field.sqr(a)
    assert field.pow(a, 5) == field.mul(field.pow(a, 4), a)
    # Lagrange: a^(2^m − 1) = 1 for nonzero a
    assert field.pow(a, field.order - 1) == 1
    # negative exponent = inverse power
    assert field.mul(field.pow(a, -1), a) == 1


def test_unknown_field_size_needs_modulus():
    with pytest.raises(ValueError):
        GF2m(24)
    # but an explicit modulus works if its degree matches
    with pytest.raises(ValueError):
        GF2m(24, modulus=(1 << 23) | 0x3)


def test_field_equality():
    assert GF2m(16) == GF2m(16)
    assert GF2m(16) != GF2m(32)
