"""Framing-layer robustness: corrupted, truncated, and hostile inputs
must surface as typed errors — never as garbage frames or unbounded
buffering."""

import random

import pytest

from repro.service.framing import (
    BodyReader,
    ErrorCode,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    FrameType,
    TruncatedFrame,
    encode_frame,
    pack_busy_body,
    pack_lp_str,
    pack_uvarints,
)


def test_roundtrip_single_and_coalesced():
    decoder = FrameDecoder()
    blob = encode_frame(FrameType.SYMBOLS, b"abc") + encode_frame(FrameType.BYE)
    frames = decoder.feed(blob)
    assert frames == [(FrameType.SYMBOLS, b"abc"), (FrameType.BYE, b"")]
    decoder.finish()  # boundary-clean


def test_byte_by_byte_reassembly():
    blob = encode_frame(FrameType.PUSH, bytes(range(100)))
    decoder = FrameDecoder()
    collected = []
    for i in range(len(blob)):
        collected.extend(decoder.feed(blob[i : i + 1]))
    assert collected == [(FrameType.PUSH, bytes(range(100)))]
    assert decoder.pending_bytes == 0


def test_truncated_frame_detected_at_eof():
    blob = encode_frame(FrameType.SYMBOLS, b"x" * 50)
    decoder = FrameDecoder()
    assert decoder.feed(blob[:-1]) == []
    assert decoder.pending_bytes == len(blob) - 1
    with pytest.raises(TruncatedFrame):
        decoder.finish()


def test_oversized_frame_rejected_before_buffering():
    decoder = FrameDecoder(max_frame=1024)
    huge = encode_frame(FrameType.SYMBOLS, b"y" * 2000)
    with pytest.raises(FrameTooLarge):
        decoder.feed(huge[:4])  # the length prefix alone must trip it


def test_malformed_length_prefix_rejected():
    decoder = FrameDecoder()
    with pytest.raises(FrameError):
        decoder.feed(b"\xff" * 12)  # varint that never terminates


def test_zero_length_frame_rejected():
    decoder = FrameDecoder()
    with pytest.raises(FrameError):
        decoder.feed(b"\x00")  # no room for a type byte


def test_encode_respects_cap():
    with pytest.raises(FrameTooLarge):
        encode_frame(FrameType.PUSH, b"z" * (5 << 20))


def test_body_reader_bounds_checked():
    body = pack_uvarints(3, 7) + pack_lp_str("riblt")
    reader = BodyReader(body)
    assert reader.uvarint() == 3
    assert reader.uvarint() == 7
    assert reader.lp_str() == "riblt"
    reader.expect_end()

    reader = BodyReader(pack_uvarints(3))
    reader.uvarint()
    with pytest.raises(FrameError):
        reader.raw(4)  # past the end

    with pytest.raises(FrameError):
        BodyReader(b"\xff\xff").uvarint()  # truncated varint

    reader = BodyReader(pack_uvarints(1, 2))
    reader.uvarint()
    with pytest.raises(FrameError):
        reader.expect_end()  # trailing bytes


def test_body_reader_rejects_bad_utf8():
    with pytest.raises(FrameError):
        BodyReader(pack_uvarints(2) + b"\xff\xfe").lp_str()


def test_split_across_many_frames_with_garbage_tail():
    """Valid frames parse; the corrupt tail raises instead of looping."""
    decoder = FrameDecoder()
    good = encode_frame(FrameType.SHARD_DONE, pack_uvarints(2))
    frames = decoder.feed(good)
    assert frames == [(FrameType.SHARD_DONE, pack_uvarints(2))]
    with pytest.raises(FrameError):
        decoder.feed(b"\x81" * 32)  # endless continuation bits


def test_busy_body_packs_code_and_retry_after():
    body = pack_busy_body(0.25, "server busy: session limit")
    reader = BodyReader(body)
    assert reader.uvarint() == int(ErrorCode.BUSY)
    assert reader.uvarint() == 250  # milliseconds, rounded up
    assert reader.rest() == b"server busy: session limit"
    # Negative hints clamp to zero; fractional milliseconds round up.
    assert BodyReader(pack_busy_body(-3.0, "")).uvarint() is not None
    reader = BodyReader(pack_busy_body(0.0001, "x"))
    reader.uvarint()
    assert reader.uvarint() == 1


# -- randomized corruption/truncation sweep ----------------------------------

# One representative wire body per frame type (shapes matter, values
# don't: the decoder treats bodies as opaque — the sweep proves the
# *frame layer* stays typed under fire for every type byte the protocol
# can emit).
_SWEEP_BODIES = {
    FrameType.HELLO: pack_uvarints(1, 0, 4) + pack_lp_str("riblt"),
    FrameType.WELCOME: pack_uvarints(1, 0, 4, 64),
    FrameType.SYMBOLS: pack_uvarints(0, 3) + bytes(range(96)),
    FrameType.SKETCH: pack_uvarints(1, 40) + bytes(40),
    FrameType.SHARD_DONE: pack_uvarints(2),
    FrameType.RETRY: pack_uvarints(1, 80),
    FrameType.PUSH: pack_uvarints(0, 2) + bytes(32),
    FrameType.BYE: b"",
    FrameType.STATS: pack_uvarints(12, 3456),
    FrameType.ERROR: pack_busy_body(0.5, "busy"),
    FrameType.ESTIMATE: pack_uvarints(1) + bytes(24),
}


def _mutate(rng, blob):
    """One seeded corruption: flip, truncate, insert, delete, or splice."""
    data = bytearray(blob)
    op = rng.choice(("flip", "truncate", "insert", "delete", "splice"))
    if op == "flip" and data:
        pos = rng.randrange(len(data))
        data[pos] ^= 1 + rng.randrange(255)
    elif op == "truncate" and data:
        del data[rng.randrange(len(data)):]
    elif op == "insert":
        pos = rng.randrange(len(data) + 1)
        data[pos:pos] = rng.randbytes(1 + rng.randrange(4))
    elif op == "delete" and data:
        pos = rng.randrange(len(data))
        del data[pos : pos + 1 + rng.randrange(3)]
    else:  # splice: random garbage appended mid-stream
        data.extend(rng.randbytes(1 + rng.randrange(8)))
    return bytes(data)


def test_randomized_corruption_sweep_every_frame_type():
    """Seeded sweep: for every frame type, hundreds of random
    corruptions/truncations of a valid frame either decode cleanly (the
    mutation kept the framing coherent) or raise a typed ``FrameError``
    — never an untyped exception, and never an unterminated loop (the
    decoder consumes every fed byte in one call)."""
    assert set(_SWEEP_BODIES) == set(FrameType), "sweep must cover every type"
    rng = random.Random(0xF4A3E5)
    for ftype, body in sorted(_SWEEP_BODIES.items()):
        frame = encode_frame(ftype, body)
        for _ in range(250):
            blob = _mutate(rng, frame)
            decoder = FrameDecoder(max_frame=1 << 16)
            try:
                frames = decoder.feed(blob)
                decoder.finish()
            except FrameError:
                continue  # typed: exactly what hostile input must produce
            # Clean decode: every frame must be structurally sane (an
            # unknown type byte is the *machine's* job to reject, as a
            # typed ProtocolError — see the machine corruption tests).
            for got_type, got_body in frames:
                assert 0 <= got_type < 256
                assert len(got_body) <= 1 << 16


def test_machine_survives_corrupted_transcript_sweep():
    """One layer up: a *real* responder transcript, corrupted at seeded
    positions and replayed into a fresh initiator, must leave the
    machine finished with a typed failure (or a clean success when the
    mutation missed anything load-bearing) — never an untyped raise,
    never a machine that will not terminate.  Runs identically on the
    numpy and scalar symbol engines."""
    from repro.api import SymbolBudgetExceeded, get_scheme
    from repro.protocol import InitiatorMachine, memory_responder
    from repro.service.errors import ServiceError

    handle = get_scheme("riblt", symbol_size=8)
    items_a = [b"%08d" % i for i in range(80)]
    items_b = [b"%08d" % i for i in range(5, 80)]

    # Capture the clean responder->initiator byte stream once.
    initiator = InitiatorMachine(handle, items_b)
    responder = memory_responder(handle, items_a)
    initiator.start()
    responder.start()
    chunks = []
    now = 0.0
    while not initiator.finished:
        out = initiator.take_output()
        if out and not responder.finished:
            responder.bytes_received(out)
            continue
        back = responder.take_output()
        if back:
            chunks.append(back)
            initiator.bytes_received(back)
            continue
        if responder.wants_tick:
            responder.tick(now)
            continue
        delay = responder.next_tick_delay(now)
        if delay is not None and not responder.finished:
            now += delay
            responder.tick(now)
            continue
        initiator.peer_closed()
    assert initiator.failed is None
    transcript = b"".join(chunks)

    rng = random.Random(0xC0FFEE)
    typed = (ServiceError, FrameError, SymbolBudgetExceeded)
    for _ in range(120):
        blob = _mutate(rng, transcript)
        machine = InitiatorMachine(handle, items_b, max_symbols=4096)
        machine.start()
        machine.take_output()
        machine.bytes_received(blob)
        steps = 0
        while not machine.finished:
            machine.take_output()
            machine.peer_closed()
            steps += 1
            assert steps < 8, "machine failed to terminate after EOF"
        failure = machine.failed
        assert failure is None or isinstance(failure, typed), repr(failure)


def test_randomized_fragmented_corruption_sweep():
    """The same guarantee under adversarial delivery: the corrupted
    stream arrives in random fragment sizes (including byte-by-byte),
    and a stream that goes quiet mid-frame surfaces ``TruncatedFrame``
    at EOF — typed, never a hang."""
    rng = random.Random(0xBADF00)
    stream = b"".join(
        encode_frame(ftype, body) for ftype, body in sorted(_SWEEP_BODIES.items())
    )
    for _ in range(150):
        blob = _mutate(rng, stream)
        decoder = FrameDecoder(max_frame=1 << 16)
        consumed = 0
        try:
            while consumed < len(blob):
                step = 1 + rng.randrange(17)
                decoder.feed(blob[consumed : consumed + step])
                consumed += step
            decoder.finish()
        except FrameError:
            pass  # typed — TruncatedFrame, FrameTooLarge, malformed prefix

