"""Framing-layer robustness: corrupted, truncated, and hostile inputs
must surface as typed errors — never as garbage frames or unbounded
buffering."""

import pytest

from repro.service.framing import (
    BodyReader,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    FrameType,
    TruncatedFrame,
    encode_frame,
    pack_lp_str,
    pack_uvarints,
)


def test_roundtrip_single_and_coalesced():
    decoder = FrameDecoder()
    blob = encode_frame(FrameType.SYMBOLS, b"abc") + encode_frame(FrameType.BYE)
    frames = decoder.feed(blob)
    assert frames == [(FrameType.SYMBOLS, b"abc"), (FrameType.BYE, b"")]
    decoder.finish()  # boundary-clean


def test_byte_by_byte_reassembly():
    blob = encode_frame(FrameType.PUSH, bytes(range(100)))
    decoder = FrameDecoder()
    collected = []
    for i in range(len(blob)):
        collected.extend(decoder.feed(blob[i : i + 1]))
    assert collected == [(FrameType.PUSH, bytes(range(100)))]
    assert decoder.pending_bytes == 0


def test_truncated_frame_detected_at_eof():
    blob = encode_frame(FrameType.SYMBOLS, b"x" * 50)
    decoder = FrameDecoder()
    assert decoder.feed(blob[:-1]) == []
    assert decoder.pending_bytes == len(blob) - 1
    with pytest.raises(TruncatedFrame):
        decoder.finish()


def test_oversized_frame_rejected_before_buffering():
    decoder = FrameDecoder(max_frame=1024)
    huge = encode_frame(FrameType.SYMBOLS, b"y" * 2000)
    with pytest.raises(FrameTooLarge):
        decoder.feed(huge[:4])  # the length prefix alone must trip it


def test_malformed_length_prefix_rejected():
    decoder = FrameDecoder()
    with pytest.raises(FrameError):
        decoder.feed(b"\xff" * 12)  # varint that never terminates


def test_zero_length_frame_rejected():
    decoder = FrameDecoder()
    with pytest.raises(FrameError):
        decoder.feed(b"\x00")  # no room for a type byte


def test_encode_respects_cap():
    with pytest.raises(FrameTooLarge):
        encode_frame(FrameType.PUSH, b"z" * (5 << 20))


def test_body_reader_bounds_checked():
    body = pack_uvarints(3, 7) + pack_lp_str("riblt")
    reader = BodyReader(body)
    assert reader.uvarint() == 3
    assert reader.uvarint() == 7
    assert reader.lp_str() == "riblt"
    reader.expect_end()

    reader = BodyReader(pack_uvarints(3))
    reader.uvarint()
    with pytest.raises(FrameError):
        reader.raw(4)  # past the end

    with pytest.raises(FrameError):
        BodyReader(b"\xff\xff").uvarint()  # truncated varint

    reader = BodyReader(pack_uvarints(1, 2))
    reader.uvarint()
    with pytest.raises(FrameError):
        reader.expect_end()  # trailing bytes


def test_body_reader_rejects_bad_utf8():
    with pytest.raises(FrameError):
        BodyReader(pack_uvarints(2) + b"\xff\xfe").lp_str()


def test_split_across_many_frames_with_garbage_tail():
    """Valid frames parse; the corrupt tail raises instead of looping."""
    decoder = FrameDecoder()
    good = encode_frame(FrameType.SHARD_DONE, pack_uvarints(2))
    frames = decoder.feed(good)
    assert frames == [(FrameType.SHARD_DONE, pack_uvarints(2))]
    with pytest.raises(FrameError):
        decoder.feed(b"\x81" * 32)  # endless continuation bits
