"""Discrete-event simulator and link model invariants."""

import pytest

from repro.net.link import Link, Message
from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace


def test_events_fire_in_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("late"))
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.schedule(1.0, lambda: fired.append("early2"))
    sim.run()
    assert fired == ["early", "early2", "late"]
    assert sim.now == 2.0


def test_schedule_into_past_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_cancel():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 3]


def test_nested_scheduling():
    sim = Simulator()
    fired = []

    def first():
        fired.append(sim.now)
        sim.schedule(0.5, lambda: fired.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == [1.0, 1.5]


def test_link_delivery_time_single_message():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=8e6, delay_s=0.05)  # 1 MB/s
    arrivals = []
    link.send_to_b(1_000_000, "blob", lambda m: arrivals.append(sim.now))
    sim.run()
    # 1 MB at 1 MB/s = 1 s serialisation + 50 ms propagation
    assert arrivals == [pytest.approx(1.05)]


def test_link_fifo_and_serialisation_queue():
    """Back-to-back messages serialise sequentially (bottleneck model)."""
    sim = Simulator()
    link = Link(sim, bandwidth_bps=8e6, delay_s=0.0)
    arrivals = []
    link.send_to_b(500_000, 1, lambda m: arrivals.append((1, sim.now)))
    link.send_to_b(500_000, 2, lambda m: arrivals.append((2, sim.now)))
    sim.run()
    assert arrivals == [(1, pytest.approx(0.5)), (2, pytest.approx(1.0))]


def test_duplex_directions_independent():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=8e6, delay_s=0.0)
    arrivals = []
    link.send_to_b(500_000, "down", lambda m: arrivals.append(("down", sim.now)))
    link.send_to_a(500_000, "up", lambda m: arrivals.append(("up", sim.now)))
    sim.run()
    assert ("down", pytest.approx(0.5)) in arrivals
    assert ("up", pytest.approx(0.5)) in arrivals


def test_infinite_bandwidth_capped():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=float("inf"), delay_s=0.01)
    arrivals = []
    link.send_to_b(10**9, "huge", lambda m: arrivals.append(sim.now))
    sim.run()
    assert arrivals[0] > 0.01  # still strictly positive serialisation


def test_bytes_accounting():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=1e9, delay_s=0.0)
    for _ in range(5):
        link.send_to_b(100, None, lambda m: None)
    sim.run()
    assert link.a_to_b.bytes_sent == 500
    assert link.b_to_a.bytes_sent == 0


def test_message_timestamps():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=8e6, delay_s=0.1)
    seen = []
    link.send_to_b(1000, "m", seen.append)
    sim.run()
    message = seen[0]
    assert isinstance(message, Message)
    assert message.sent_at == 0.0
    assert message.delivered_at == pytest.approx(0.1 + 1000 * 8 / 8e6)


def test_bandwidth_trace_bins():
    trace = BandwidthTrace(bin_seconds=0.5)
    trace.record(0.1, 1000)
    trace.record(0.4, 1000)
    trace.record(0.9, 500)
    series = trace.series()
    assert series[0] == (0.0, pytest.approx(2000 * 8 / 0.5 / 1e6))
    assert series[1] == (0.5, pytest.approx(500 * 8 / 0.5 / 1e6))
    assert trace.total_bytes == 2500


def test_trace_extends_to_until():
    trace = BandwidthTrace(bin_seconds=1.0)
    trace.record(0.5, 100)
    series = trace.series(until_s=3.5)
    assert len(series) == 4
    assert series[-1] == (3.0, 0.0)


def test_trace_rejects_bad_bin():
    with pytest.raises(ValueError):
        BandwidthTrace(bin_seconds=0.0)
