"""Placement hashes are computed once and reused — never re-derived.

Every sync used to hash each item twice with the same keyed hash:
once for shard placement, once for the codec's mapping/checksum seeds.
The reuse path threads the placement hashes from
:func:`repro.service.shard.hash_items` through
:meth:`repro.api.registry.Scheme.new` down to
:class:`~repro.core.encoder.RatelessEncoder`, which derives checksums
from them via
:meth:`~repro.core.symbols.SymbolCodec.checksums_from_hash64`.

These tests pin the only property that makes the optimisation safe:
the reused-hash path is **bit-identical** to hashing from scratch, for
every hasher family and checksum width.
"""

import pytest

from repro.api import get_scheme
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import make_hasher
from repro.protocol import InitiatorMachine, memory_responder, pump
from repro.service.shard import hash_items, partition_with_hashes

HASHERS = ("blake2b", "siphash")
CHECKSUM_SIZES = (4, 8)


def items_range(lo, hi):
    return [b"%012d" % i for i in range(lo, hi)]


@pytest.mark.parametrize("hasher", HASHERS)
@pytest.mark.parametrize("checksum_size", CHECKSUM_SIZES)
def test_checksums_from_hash64_matches_checksum_batch(hasher, checksum_size):
    codec = SymbolCodec(
        symbol_size=12,
        hasher=make_hasher(hasher),
        checksum_size=checksum_size,
    )
    items = items_range(0, 300)
    hashes = hash_items(codec.hasher.hash64, items)
    assert codec.checksums_from_hash64(hashes) == codec.checksum_batch(items)


@pytest.mark.parametrize("hasher", HASHERS)
def test_encoder_identical_with_and_without_item_hashes(hasher):
    codec = SymbolCodec(symbol_size=12, hasher=make_hasher(hasher))
    items = items_range(0, 200)
    hashes = hash_items(codec.hasher.hash64, items)
    cold = RatelessEncoder(codec, items)
    reused = RatelessEncoder(codec, items, item_hashes=hashes)
    assert [cold.produce_next() for _ in range(400)] == [
        reused.produce_next() for _ in range(400)
    ]


def test_encoder_rejects_misaligned_hashes():
    codec = SymbolCodec(symbol_size=12)
    items = items_range(0, 10)
    with pytest.raises(ValueError):
        RatelessEncoder(codec, items, item_hashes=[1, 2, 3])


def test_scheme_new_forwards_item_hashes():
    handle = get_scheme("riblt", symbol_size=12)
    items = items_range(0, 150)
    codec = SymbolCodec(symbol_size=12)
    hashes = hash_items(codec.hasher.hash64, items)
    cold = handle.new(items)
    reused = handle.new(items, item_hashes=hashes)
    assert cold.produce_block(64) == reused.produce_block(64)


def test_scheme_new_ignores_hashes_for_non_accepting_schemes():
    # A scheme that never declared accepts_item_hashes must not receive
    # the keyword (its from_items would TypeError on it).
    handle = get_scheme("regular_iblt", symbol_size=12, num_cells=128)
    items = items_range(0, 20)
    reconciler = handle.new(items)
    assert not getattr(type(reconciler), "accepts_item_hashes", False)
    hashes = hash_items(make_hasher("blake2b").hash64, items)
    reconciler = handle.new(items, item_hashes=hashes)  # silently dropped
    assert reconciler is not None


def test_partition_with_hashes_keeps_alignment():
    codec = SymbolCodec(symbol_size=12)
    items = items_range(0, 500)
    hashes = hash_items(codec.hasher.hash64, items)
    parts, part_hashes = partition_with_hashes(items, hashes, 4)
    for shard in range(4):
        assert part_hashes[shard] == [
            codec.hasher.hash64(item) for item in parts[shard]
        ]
    with pytest.raises(ValueError):
        partition_with_hashes(items, hashes[:-1], 4)


@pytest.mark.parametrize("num_shards", (1, 4))
def test_wire_bytes_identical_with_hash_reuse(num_shards, monkeypatch):
    """The full engine round trip is byte-identical whether or not the
    initiator's placement hashes reach the encoders."""
    from repro.api.adapters.riblt import RibltReconciler

    handle = get_scheme("riblt", symbol_size=12)
    alice = items_range(0, 400)
    bob = alice[12:] + items_range(9_000, 9_006)

    def roundtrip():
        initiator = InitiatorMachine(
            handle, bob, num_shards=num_shards, capture_payloads=True
        )
        responder = memory_responder(handle, alice, num_shards=num_shards)
        return pump(initiator, responder)

    reused = roundtrip()
    monkeypatch.setattr(RibltReconciler, "accepts_item_hashes", False)
    cold = roundtrip()
    assert reused.payloads == cold.payloads
    assert reused.only_in_remote == cold.only_in_remote
    assert reused.only_in_local == cold.only_in_local
