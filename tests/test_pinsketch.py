"""PinSketch: syndrome algebra, BM, decode exactness, capacity bounds."""

import random

import pytest

from repro.baselines.pinsketch import DecodeFailure, GF2m, PinSketch
from repro.baselines.pinsketch.bch import (
    berlekamp_massey,
    expand_syndromes,
    odd_syndromes,
)

F16 = GF2m(16)
F64 = GF2m(64)


def distinct_elements(rng, field, count):
    out = set()
    while len(out) < count:
        value = rng.getrandbits(field.m)
        if value:
            out.add(value)
    return sorted(out)


def test_odd_syndromes_powers():
    element = 0x1234
    syn = odd_syndromes(F16, element, 4)
    assert syn[0] == element
    assert syn[1] == F16.pow(element, 3)
    assert syn[2] == F16.pow(element, 5)
    assert syn[3] == F16.pow(element, 7)


def test_odd_syndromes_rejects_zero():
    with pytest.raises(ValueError):
        odd_syndromes(F16, 0, 4)


def test_expand_syndromes_even_are_squares():
    rng = random.Random(1)
    elements = distinct_elements(rng, F16, 5)
    t = 6
    odd = [0] * t
    for e in elements:
        for j, p in enumerate(odd_syndromes(F16, e, t)):
            odd[j] ^= p
    full = expand_syndromes(F16, odd)
    # s_j = sum e^j directly
    for j in range(1, 2 * t + 1):
        expected = 0
        for e in elements:
            expected ^= F16.pow(e, j)
        assert full[j - 1] == expected


def test_berlekamp_massey_lfsr_property():
    """BM's output actually generates the syndrome sequence."""
    rng = random.Random(3)
    elements = distinct_elements(rng, F16, 4)
    t = 6
    odd = [0] * t
    for e in elements:
        for j, p in enumerate(odd_syndromes(F16, e, t)):
            odd[j] ^= p
    seq = expand_syndromes(F16, odd)
    c = berlekamp_massey(F16, seq)
    L = len(c) - 1
    assert L == len(elements)
    for n in range(L, len(seq)):
        acc = 0
        for i in range(1, L + 1):
            acc ^= F16.mul(c[i], seq[n - i])
        assert acc == seq[n]


def test_add_twice_removes():
    sketch = PinSketch(F16, 8)
    sketch.add(123)
    sketch.add(123)
    assert all(s == 0 for s in sketch.syndromes)


def test_add_range_checked():
    sketch = PinSketch(F16, 4)
    with pytest.raises(ValueError):
        sketch.add(0)
    with pytest.raises(ValueError):
        sketch.add(1 << 16)


def test_capacity_positive():
    with pytest.raises(ValueError):
        PinSketch(F16, 0)


@pytest.mark.parametrize("d,capacity", [(0, 4), (1, 4), (4, 4), (7, 16), (30, 40)])
def test_decode_exact(d, capacity):
    rng = random.Random(d * 31 + capacity)
    shared = distinct_elements(rng, F16, 50)
    extra = [e for e in distinct_elements(rng, F16, 50 + d) if e not in shared][:d]
    a = shared + extra[: d // 2]
    b = shared + extra[d // 2 :]
    sa = PinSketch.from_items(a, F16, capacity)
    sb = PinSketch.from_items(b, F16, capacity)
    decoded = sa.subtract(sb).decode()
    assert decoded == sorted(set(a) ^ set(b))


def test_decode_gf64():
    rng = random.Random(12)
    elements = distinct_elements(rng, F64, 80)
    a = elements[:60]
    b = elements[20:]
    sa = PinSketch.from_items(a, F64, 48)
    sb = PinSketch.from_items(b, F64, 48)
    decoded = sa.subtract(sb).decode()
    assert decoded == sorted(set(a) ^ set(b))


def test_overflow_raises_never_lies():
    rng = random.Random(8)
    elements = distinct_elements(rng, F16, 20)
    sketch = PinSketch.from_items(elements, F16, 8)  # d = 20 > t = 8
    with pytest.raises(DecodeFailure):
        sketch.decode()


def test_wire_size_is_information_optimal():
    """t·m bits: the overhead-1 line of Fig 7."""
    sketch = PinSketch(F64, 100)
    assert sketch.wire_size() == 100 * 64 // 8
    sketch16 = PinSketch(F16, 10)
    assert sketch16.wire_size() == 20


def test_serialize_roundtrip():
    rng = random.Random(5)
    sketch = PinSketch.from_items(distinct_elements(rng, F64, 10), F64, 16)
    blob = sketch.serialize()
    assert len(blob) == sketch.wire_size()
    back = PinSketch.deserialize(blob, F64, 16)
    assert back.syndromes == sketch.syndromes


def test_deserialize_length_checked():
    with pytest.raises(ValueError):
        PinSketch.deserialize(b"123", F16, 4)


def test_geometry_mismatch():
    with pytest.raises(ValueError):
        PinSketch(F16, 4).subtract(PinSketch(F16, 5))
    with pytest.raises(ValueError):
        PinSketch(F16, 4).subtract(PinSketch(F64, 4))


def test_empty_difference_decodes_empty():
    rng = random.Random(2)
    elements = distinct_elements(rng, F16, 30)
    sa = PinSketch.from_items(elements, F16, 8)
    sb = PinSketch.from_items(elements, F16, 8)
    assert sa.subtract(sb).decode() == []
