"""Density evolution vs the paper's §5 numbers; Monte Carlo envelopes."""

import pytest

# The closed-form §5 machinery is numpy/scipy-backed; the no-numpy CI
# leg (scalar engines only) skips this module rather than failing it.
pytest.importorskip("numpy")
pytest.importorskip("scipy")

from repro.analysis.density_evolution import (
    eta_star,
    f_limit,
    optimal_alpha,
    recovered_fraction_curve,
    recovered_fraction_limit,
    satisfies_de_condition,
)
from repro.analysis.montecarlo import (
    IntSymbolCodec,
    overhead_stats,
    recovered_fraction_sim,
    simulate_overhead_once,
)


def test_eta_star_at_half_is_1_35():
    """Corollary 5.2: overhead → 1.35 at α = 0.5."""
    assert eta_star(0.5) == pytest.approx(1.35, abs=0.01)


def test_optimal_alpha_near_0_64():
    """§5.1: optimum α ≈ 0.64 with η* ≈ 1.31 (3% better than α = 0.5)."""
    import numpy as np

    alpha, eta = optimal_alpha(np.arange(0.55, 0.76, 0.01))
    assert 0.60 <= alpha <= 0.70
    assert eta == pytest.approx(1.31, abs=0.01)


def test_eta_star_monotone_behaviour_around_optimum():
    """η*(α) grows away from the optimum in both directions (Fig 4's U)."""
    assert eta_star(0.2) > eta_star(0.5)
    assert eta_star(0.95) > eta_star(0.65)


def test_f_limit_properties():
    assert f_limit(0.0, 1.35) == 0.0
    assert 0.0 < f_limit(1.0, 1.35) < 1.0
    with pytest.raises(ValueError):
        f_limit(0.5, 0.0)


def test_de_condition_brackets_threshold():
    assert not satisfies_de_condition(1.30, alpha=0.5)
    assert satisfies_de_condition(1.40, alpha=0.5)


def test_recovered_fraction_monotone_in_eta():
    values = [recovered_fraction_limit(eta) for eta in (0.8, 1.0, 1.2, 1.5)]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(1.0, abs=1e-6)


def test_recovered_fraction_partial_below_threshold():
    """Below η* the decoder stalls at a nontrivial fixed point (Fig 6)."""
    fraction = recovered_fraction_limit(1.0)
    assert 0.05 < fraction < 0.35


def test_recovered_fraction_curve_shape():
    curve = recovered_fraction_curve([0.5, 1.0, 1.4])
    assert curve[0][1] < curve[1][1] < curve[2][1]


def test_simulate_overhead_once_bounds(rng):
    m = simulate_overhead_once(100, rng)
    assert 100 <= m <= 300


def test_overhead_stats_converges_towards_1_35():
    stats = overhead_stats(2000, runs=5, seed=2)
    assert 1.30 <= stats.mean <= 1.48
    assert stats.std < 0.08


def test_overhead_small_d_peaks():
    """Fig 5: overhead peaks ≈1.7 around d = 4 (with wide variance)."""
    stats = overhead_stats(4, runs=200, seed=3)
    assert 1.45 <= stats.mean <= 2.0


def test_overhead_stats_fields():
    stats = overhead_stats(64, runs=10, seed=4)
    assert stats.runs == 10 and len(stats.samples) == 10
    assert stats.difference_size == 64
    assert min(stats.samples) >= 1.0


def test_recovered_fraction_sim_matches_de():
    """Finite-d simulation tracks the DE fixed points (Fig 6)."""
    sim = dict(recovered_fraction_sim(1000, [1.0, 1.5], runs=4, seed=5))
    assert sim[1.0] == pytest.approx(recovered_fraction_limit(1.0), abs=0.06)
    assert sim[1.5] == pytest.approx(1.0, abs=0.02)


def test_int_codec_duck_type(rng):
    codec = IntSymbolCodec()
    value = rng.getrandbits(64)
    assert codec.to_int(codec.to_bytes(value)) == value
    assert codec.checksum_int(value) == codec.checksum_data(codec.to_bytes(value))
    gen_a = codec.new_mapping(123)
    gen_b = codec.new_mapping(123)
    assert gen_a.next_index() == gen_b.next_index()


def test_int_codec_compatibility():
    assert IntSymbolCodec().compatible_with(IntSymbolCodec())
    assert not IntSymbolCodec(alpha=0.6).compatible_with(IntSymbolCodec())
