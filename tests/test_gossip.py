"""The gossip mesh: digests, clocks, topologies, tiers, convergence."""

import math
import random

import pytest

from repro.api import SymbolBudgetExceeded
from repro.gossip import (
    GossipConfig,
    GossipMesh,
    GossipNode,
    SetDigest,
    build_topology,
    decode_digest,
    encode_digest,
    make_nodes,
    run_link_session,
    run_round,
    select_pairs,
    simulate_flooding,
)
from repro.service.errors import ProtocolError

ITEM = 16


def rand_items(rng, n):
    return sorted({rng.randbytes(ITEM) for _ in range(n)})


def diverged_sets(rng, n_nodes, base_size, per_node):
    """A shared base; each node misses and owns ``per_node`` items."""
    base = rand_items(rng, base_size)
    sets = []
    for _ in range(n_nodes):
        missing = set(rng.sample(base, per_node))
        own = [rng.randbytes(ITEM) for _ in range(per_node)]
        sets.append([x for x in base if x not in missing] + own)
    return sets


def assert_all_equal(nodes):
    first = set(nodes[0].backend.sharded)
    for node in nodes[1:]:
        assert set(node.backend.sharded) == first
    return first


# -- digests ----------------------------------------------------------------


def test_digest_frame_roundtrip():
    digest = SetDigest(version=123456, xor64=0xDEADBEEFCAFEF00D, count=987)
    assert decode_digest(encode_digest(digest)) == digest


def test_digest_frame_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_digest(b"")
    with pytest.raises(ProtocolError):
        decode_digest(b"\xff\x00\x00")
    blob = encode_digest(SetDigest(1, 2, 3))
    with pytest.raises(ProtocolError):
        decode_digest(blob + b"\x00")  # trailing junk


def test_digest_incremental_equals_rebuild():
    rng = random.Random(0)
    items = rand_items(rng, 64)
    node = GossipNode(0, items)
    extra = rng.randbytes(ITEM)
    node.add(extra)
    node.remove(items[3])
    incremental = node.digest()
    rebuilt = GossipNode(1, node.items()).digest()
    assert incremental.matches(rebuilt)
    assert incremental.count == len(items)  # one added, one removed
    # XOR folding is its own inverse: add+remove returns to the start
    node.add(items[3])
    node.remove(extra)
    assert node.digest().matches(GossipNode(2, items).digest())


def test_digest_recomputes_after_backend_drift():
    rng = random.Random(1)
    items = rand_items(rng, 32)
    node = GossipNode(0, items)
    before = node.digest()
    # A served session applying PUSH frames mutates the backend directly,
    # behind the node's incremental XOR.
    pushed = rng.randbytes(ITEM)
    node.backend.add(pushed)
    after = node.digest()
    assert not after.matches(before)
    assert after.matches(GossipNode(1, items + [pushed]).digest())
    # Node-API churn right after drift must not mask the stale cache.
    node2 = GossipNode(2, items)
    node2.backend.add(pushed)
    own = rng.randbytes(ITEM)
    node2.add(own)
    assert node2.digest().matches(GossipNode(3, items + [pushed, own]).digest())


def test_equal_sets_digest_match_any_history():
    rng = random.Random(2)
    items = rand_items(rng, 40)
    a = GossipNode(0, items[:20])
    a.add_many(items[20:])
    b = GossipNode(1, items)
    assert a.digest().matches(b.digest())
    assert a.digest().version != 0


# -- peer clocks ------------------------------------------------------------


def test_can_skip_requires_confirmed_sync():
    rng = random.Random(3)
    items = rand_items(rng, 16)
    x, y = GossipNode(0, items), GossipNode(1, items)
    assert not x.can_skip(1, round_no=1, refresh_every=4)
    x.mark_synced(1, y.digest(), round_no=1)
    assert x.can_skip(1, round_no=2, refresh_every=4)


def test_can_skip_expires_after_refresh_every():
    rng = random.Random(4)
    items = rand_items(rng, 16)
    x, y = GossipNode(0, items), GossipNode(1, items)
    x.mark_synced(1, y.digest(), round_no=1)
    assert x.can_skip(1, round_no=4, refresh_every=4)
    assert not x.can_skip(1, round_no=5, refresh_every=4)


def test_can_skip_invalidated_by_local_mutation():
    rng = random.Random(5)
    items = rand_items(rng, 16)
    x, y = GossipNode(0, items), GossipNode(1, items)
    x.mark_synced(1, y.digest(), round_no=1)
    x.add(rng.randbytes(ITEM))
    assert not x.can_skip(1, round_no=2, refresh_every=4)


def test_can_skip_invalidated_by_newer_peer_digest():
    rng = random.Random(6)
    items = rand_items(rng, 16)
    x, y = GossipNode(0, items), GossipNode(1, items)
    x.mark_synced(1, y.digest(), round_no=1)
    y.add(rng.randbytes(ITEM))
    x.note_peer_digest(1, y.digest(), round_no=2)
    assert not x.can_skip(1, round_no=2, refresh_every=4)


# -- topologies and schedules ----------------------------------------------


@pytest.mark.parametrize("kind", ["ring", "random", "full"])
def test_topology_connected_undirected(kind):
    neighbors = build_topology(12, kind, degree=4, rng=random.Random(7))
    for i, peers in enumerate(neighbors):
        assert i not in peers
        for j in peers:
            assert i in neighbors[j]
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for j in neighbors[node]:
            if j not in seen:
                seen.add(j)
                frontier.append(j)
    assert seen == set(range(12))


def test_topology_validation():
    with pytest.raises(ValueError):
        build_topology(1, "ring", 2, random.Random(0))
    with pytest.raises(ValueError):
        build_topology(4, "star", 2, random.Random(0))


def test_select_pairs_deterministic_and_fanout_bounded():
    neighbors = build_topology(10, "random", degree=4, rng=random.Random(8))
    a = select_pairs(neighbors, 2, random.Random(9))
    b = select_pairs(neighbors, 2, random.Random(9))
    assert a == b
    per_node = {}
    for initiator, responder in a:
        assert responder in neighbors[initiator]
        per_node[initiator] = per_node.get(initiator, 0) + 1
    assert all(count <= 2 for count in per_node.values())


# -- single rounds: the three tiers ----------------------------------------


def test_equal_peers_cost_digest_frames_only():
    rng = random.Random(10)
    items = rand_items(rng, 48)
    x, y = GossipNode(0, items), GossipNode(1, items)
    outcome = run_round(x, y, round_no=1)
    assert outcome.tier == "digest-skip"
    assert outcome.session_bytes == 0
    assert outcome.symbols == 0
    assert 0 < outcome.digest_bytes < 64
    # The confirmed sync now powers the zero-byte tier.
    outcome = run_round(x, y, round_no=2)
    assert outcome.tier == "clock-skip"
    assert outcome.wire_bytes == 0


def test_full_round_reconciles_both_directions():
    rng = random.Random(11)
    base = rand_items(rng, 64)
    x = GossipNode(0, base[:60] + [rng.randbytes(ITEM) for _ in range(2)])
    y = GossipNode(1, base)
    outcome = run_round(x, y, round_no=1)
    assert outcome.tier == "full"
    assert outcome.learned == 4  # the 4 base items x lacked
    assert outcome.delivered == 2  # x pushed its 2 own items
    assert outcome.symbols > 0
    assert set(x.backend.sharded) == set(y.backend.sharded)
    # And the pair is now provably synced.
    assert run_round(x, y, round_no=2).tier == "clock-skip"


def test_silent_peer_change_caught_when_refresh_expires():
    rng = random.Random(12)
    items = rand_items(rng, 32)
    x, y = GossipNode(0, items), GossipNode(1, items)
    run_round(x, y, round_no=1)
    y.add(rng.randbytes(ITEM))
    # x has not heard from y, so the conservative clock skip still fires —
    # but only inside the refresh window...
    assert run_round(x, y, round_no=2).tier == "clock-skip"
    # ...after which the digest tier catches the silent change.
    outcome = run_round(x, y, round_no=5)
    assert outcome.tier == "full"
    assert outcome.learned == 1


# -- mesh convergence (memory transport) ------------------------------------


@pytest.mark.parametrize("topology", ["ring", "random"])
def test_mesh_converges_deterministically(topology):
    rng = random.Random(13)
    node_sets = diverged_sets(rng, 12, base_size=160, per_node=3)
    bound = math.ceil(math.log2(12)) + 2

    def build():
        return GossipMesh(
            make_nodes(node_sets),
            topology=topology,
            degree=4,
            fanout=2,
            seed=17,
        )

    mesh = build()
    report = mesh.run_until_converged(max_rounds=16)
    assert report.converged
    assert report.rounds <= bound
    union = set().union(*(set(s) for s in node_sets))
    assert assert_all_equal(mesh.nodes) == union
    # Determinism: an identical mesh replays the identical run.
    replay = build().run_until_converged(max_rounds=16)
    assert replay.rounds == report.rounds
    assert replay.wire_bytes == report.wire_bytes


def test_gossip_beats_flooding_by_2x():
    rng = random.Random(14)
    node_sets = diverged_sets(rng, 16, base_size=256, per_node=3)
    mesh = GossipMesh(
        make_nodes(node_sets), topology="random", degree=4, fanout=2, seed=23
    )
    report = mesh.run_until_converged(max_rounds=16)
    assert report.converged
    flooding = simulate_flooding(
        node_sets,
        ITEM,
        lambda round_no, frng: select_pairs(mesh.neighbors, 2, frng),
        random.Random(23),
        max_rounds=16,
    )
    assert report.wire_bytes < 0.5 * flooding.total_bytes


def test_converged_mesh_rounds_move_no_symbols():
    rng = random.Random(15)
    node_sets = diverged_sets(rng, 8, base_size=96, per_node=2)
    mesh = GossipMesh(
        make_nodes(node_sets), topology="random", degree=4, fanout=2, seed=29
    )
    assert mesh.run_until_converged(max_rounds=16).converged
    steady = mesh.run_round()
    assert steady.full_syncs == 0
    assert steady.session_bytes == 0
    assert steady.symbols == 0
    assert steady.digest_skips + steady.clock_skips == steady.sessions
    # Within refresh_every, later rounds drop to pure clock skips.
    later = mesh.run_round()
    assert later.wire_bytes <= steady.wire_bytes


def test_churn_mid_gossip_reconverges():
    rng = random.Random(16)
    node_sets = diverged_sets(rng, 8, base_size=96, per_node=2)
    mesh = GossipMesh(
        make_nodes(node_sets), topology="random", degree=4, fanout=2, seed=31
    )
    assert mesh.run_until_converged(max_rounds=16).converged
    # Churn lands on one node between rounds: new items plus a removal.
    node = mesh.nodes[3]
    fresh = [rng.randbytes(ITEM) for _ in range(5)]
    node.add_many(fresh)
    node.remove(node.items()[0])
    assert not mesh.converged
    report = mesh.run_until_converged(max_rounds=16)
    assert report.converged
    union = assert_all_equal(mesh.nodes)
    assert set(fresh) <= union


# -- sim transport -----------------------------------------------------------


def test_sim_mesh_converges_under_loss():
    rng = random.Random(17)
    node_sets = diverged_sets(rng, 8, base_size=96, per_node=2)
    config = GossipConfig(
        transport="sim",
        bandwidth_bps=50e6,
        delay_s=0.002,
        loss_rate=0.02,
        seed=37,
    )
    mesh = GossipMesh(
        make_nodes(node_sets),
        topology="ring",
        fanout=1,
        seed=37,
        config=config,
    )
    report = mesh.run_until_converged(max_rounds=24)
    assert report.converged
    assert_all_equal(mesh.nodes)
    # Virtual time was actually simulated for the full rounds.
    assert any(r.round_time > 0 for r in report.per_round)


def test_lossy_link_session_budget_fails_typed():
    rng = random.Random(18)
    x = GossipNode(0, rand_items(rng, 128))
    y = GossipNode(1, rand_items(rng, 128))  # disjoint: diff of 256
    with pytest.raises(SymbolBudgetExceeded):
        run_link_session(
            x.initiator(push=False, max_symbols=16),
            y.responder(block_size=8),
            bandwidth_bps=20e6,
            delay_s=0.005,
            loss_rate=0.1,
            rng=random.Random(41),
        )


def test_link_session_result_matches_memory_pump():
    rng = random.Random(19)
    base = rand_items(rng, 64)
    x = GossipNode(0, base[:-3])
    y = GossipNode(1, base)
    report, wire_bytes, completed = run_link_session(
        x.initiator(push=False),
        y.responder(block_size=4),
        bandwidth_bps=20e6,
        delay_s=0.001,
    )
    assert set(report.only_in_remote) == set(base[-3:])
    assert report.only_in_local == set()
    assert wire_bytes > 0
    assert completed > 0


# -- service transport --------------------------------------------------------


def test_service_transport_round_over_real_sockets():
    rng = random.Random(20)
    base = rand_items(rng, 48)
    x = GossipNode(0, base[:44] + [rng.randbytes(ITEM)])
    y = GossipNode(1, base)
    outcome = run_round(
        x, y, round_no=1, config=GossipConfig(transport="service")
    )
    assert outcome.tier == "full"
    assert outcome.learned == 4
    assert outcome.delivered == 1  # PUSH applied through the live backend
    assert set(x.backend.sharded) == set(y.backend.sharded)
    # The pushed item reached y's *warm* backend (the node's own set).
    assert outcome.session_bytes > 0


def test_server_hosting_live_backend_is_exclusive():
    from repro.service.server import ReconciliationServer

    rng = random.Random(21)
    node = GossipNode(0, rand_items(rng, 8))
    with pytest.raises(ValueError):
        ReconciliationServer([b"x" * ITEM], backend=node.backend)
    with pytest.raises(ValueError):
        ReconciliationServer(backend=node.backend, num_shards=2)
    server = ReconciliationServer(backend=node.backend)
    assert server.backend is node.backend
    node.add(rng.randbytes(ITEM))
    assert len(server) == 9  # the server serves the node's live set


# -- construction ------------------------------------------------------------


def test_make_nodes_shares_one_scheme_handle():
    rng = random.Random(22)
    sets = [rand_items(rng, 8), rand_items(rng, 8)]
    nodes = make_nodes(sets)
    assert nodes[0].handle is nodes[1].handle
    assert [n.node_id for n in nodes] == [0, 1]
    with pytest.raises(ValueError):
        make_nodes([[], []])  # all-empty: no symbol_size to infer


def test_mesh_rejects_duplicate_node_ids():
    rng = random.Random(23)
    items = rand_items(rng, 8)
    with pytest.raises(ValueError):
        GossipMesh([GossipNode(0, items), GossipNode(0, items)])
