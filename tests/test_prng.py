"""splitmix64 stream: determinism, range, and uniformity sanity."""

from repro.hashing.prng import Splitmix64, mix64


def test_deterministic_stream():
    a = Splitmix64(12345)
    b = Splitmix64(12345)
    assert [a.next_u64() for _ in range(100)] == [b.next_u64() for _ in range(100)]


def test_different_seeds_differ():
    a = Splitmix64(1)
    b = Splitmix64(2)
    assert [a.next_u64() for _ in range(8)] != [b.next_u64() for _ in range(8)]


def test_outputs_in_range():
    rng = Splitmix64(77)
    for _ in range(1000):
        assert 0 <= rng.next_u64() < (1 << 64)


def test_floats_in_unit_interval():
    rng = Splitmix64(99)
    values = [rng.next_float() for _ in range(10_000)]
    assert all(0.0 <= v < 1.0 for v in values)
    mean = sum(values) / len(values)
    assert abs(mean - 0.5) < 0.02  # ~6 sigma for 10k uniform draws


def test_float_spread():
    """All sixteenths of [0,1) are hit — no gross bias."""
    rng = Splitmix64(1234)
    buckets = [0] * 16
    for _ in range(16_000):
        buckets[int(rng.next_float() * 16)] += 1
    assert min(buckets) > 700  # expectation 1000

def test_mix64_bijective_sample():
    """mix64 is injective on a sample (it is a bijection on u64)."""
    seen = {mix64(i) for i in range(10_000)}
    assert len(seen) == 10_000


def test_mix64_avalanche():
    """Single-bit input flips change ~half the output bits on average."""
    total_flips = 0
    samples = 200
    for i in range(samples):
        base = mix64(i * 0x9E3779B97F4A7C15)
        flipped = mix64((i * 0x9E3779B97F4A7C15) ^ 1)
        total_flips += bin(base ^ flipped).count("1")
    average = total_flips / samples
    assert 24 < average < 40


def test_fork_independent():
    parent = Splitmix64(5)
    child = parent.fork()
    assert child.state != parent.state
    assert child.next_u64() != parent.next_u64()
