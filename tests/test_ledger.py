"""Synthetic ledger: accounts, chain evolution, snapshots, scenarios."""

import pytest

from repro.ledger.account import (
    ACCOUNT_BYTES,
    ADDRESS_BYTES,
    ITEM_BYTES,
    Account,
    account_item,
)
from repro.ledger.chain import BLOCKS_PER_HOUR, Chain
from repro.ledger.workload import build_scenario


def small_chain(blocks=10):
    chain = Chain(num_accounts=800, seed=1, updates_per_block=20, creates_per_block=2)
    chain.advance(blocks)
    return chain


def test_account_encoding_size():
    account = Account(nonce=7, balance=10**18, code_hash=b"\xcc" * 32)
    assert len(account.encode()) == ACCOUNT_BYTES == 72


def test_account_roundtrip():
    account = Account(nonce=123, balance=456789, code_hash=b"\xab" * 32)
    assert Account.decode(account.encode()) == account


def test_account_validation():
    with pytest.raises(ValueError):
        Account(nonce=-1, balance=0, code_hash=b"\x00" * 32)
    with pytest.raises(ValueError):
        Account(nonce=0, balance=0, code_hash=b"short")
    with pytest.raises(ValueError):
        Account.decode(b"x" * 10)


def test_account_bumped():
    account = Account(nonce=1, balance=100, code_hash=b"\x00" * 32)
    richer = account.bumped(50)
    assert richer.nonce == 2 and richer.balance == 150
    poorer = account.bumped(-200)
    assert poorer.balance == 0  # floors at zero


def test_item_layout():
    address = b"\x11" * ADDRESS_BYTES
    state = b"\x22" * ACCOUNT_BYTES
    item = account_item(address, state)
    assert len(item) == ITEM_BYTES == 92
    assert item[:20] == address
    with pytest.raises(ValueError):
        account_item(b"short", state)


def test_blocks_per_hour():
    assert BLOCKS_PER_HOUR == 300  # one block every 12 s


def test_chain_genesis():
    chain = Chain(num_accounts=100, seed=3)
    assert chain.head == 0
    assert len(chain.state) == 100
    assert len(chain.roots) == 1


def test_chain_advance_touches_accounts():
    chain = small_chain(blocks=5)
    assert chain.head == 5
    assert len(chain.blocks) == 5
    for block in chain.blocks:
        assert block.touched_accounts >= 20


def test_roots_change_every_block():
    chain = small_chain(blocks=4)
    assert len(set(chain.roots)) == 5


def test_trie_matches_state_at_every_height():
    chain = small_chain(blocks=4)
    for height in range(chain.head + 1):
        trie_view = dict(chain.trie_at(height).items())
        assert trie_view == chain.state_at(height)


def test_state_rollback_exact():
    chain = Chain(num_accounts=300, seed=9, updates_per_block=10, creates_per_block=1)
    genesis_state = dict(chain.state)
    chain.advance(6)
    assert chain.state_at(0) == genesis_state
    assert chain.state_at(chain.head) == chain.state


def test_difference_size_matches_item_sets():
    chain = small_chain(blocks=8)
    for staleness in (1, 4, 8):
        height = chain.head - staleness
        direct = len(chain.items_at(chain.head) ^ chain.items_at(height))
        assert chain.difference_size(chain.head, height) == direct


def test_difference_grows_with_staleness():
    chain = small_chain(blocks=10)
    diffs = [
        chain.difference_size(chain.head, chain.head - k) for k in (2, 5, 10)
    ]
    assert diffs[0] < diffs[1] < diffs[2]


def test_scenario_construction():
    chain = small_chain(blocks=6)
    scenario = build_scenario(chain, staleness_blocks=3)
    assert scenario.difference_size == len(
        scenario.alice_items ^ scenario.bob_items
    )
    assert scenario.staleness_seconds == 36
    # Bob's store holds exactly his snapshot
    assert len(scenario.bob_store) == scenario.bob_trie.node_count()
    with pytest.raises(ValueError):
        build_scenario(chain, staleness_blocks=100)


def test_items_are_fixed_width():
    chain = small_chain(blocks=2)
    items = chain.items_at(chain.head)
    assert all(len(item) == ITEM_BYTES for item in items)
