"""The §4.2 index generator: determinism, monotonicity, and that it
actually realises ρ(i) = 1/(1+αi)."""

import math
import random

import pytest

from repro.core.mapping import (
    IndexGenerator,
    RandomMapping,
    expected_degree,
    mapping_probability,
)


def test_first_index_is_zero():
    """ρ(0) = 1: every symbol maps to coded symbol 0 (§4.1.2)."""
    for seed in range(50):
        assert IndexGenerator(seed).current == 0


def test_indices_strictly_increase():
    gen = IndexGenerator(seed=42)
    prev = gen.current
    for _ in range(1000):
        nxt = gen.next_index()
        assert nxt > prev
        prev = nxt


def test_deterministic_given_seed():
    a = IndexGenerator(seed=7)
    b = IndexGenerator(seed=7)
    assert [a.next_index() for _ in range(200)] == [
        b.next_index() for _ in range(200)
    ]


def test_different_seeds_diverge():
    a = [IndexGenerator(1).next_index() for _ in range(1)]
    sequences = {
        tuple(IndexGenerator(seed).indices_below(64)) for seed in range(32)
    }
    assert len(sequences) > 16  # almost surely all distinct


def test_rejects_nonpositive_alpha():
    with pytest.raises(ValueError):
        IndexGenerator(seed=1, alpha=0.0)


def test_indices_below_consistency():
    mapping = RandomMapping(seed=99)
    upto_64 = mapping.indices_below(64)
    upto_128 = mapping.indices_below(128)
    assert upto_128[: len(upto_64)] == upto_64  # prefix property
    assert all(i < 64 for i in upto_64)
    assert upto_64[0] == 0


def test_mapping_probability_values():
    assert mapping_probability(0) == 1.0
    assert mapping_probability(2) == pytest.approx(0.5)
    assert mapping_probability(0, alpha=0.25) == 1.0
    with pytest.raises(ValueError):
        mapping_probability(-1)


def test_empirical_density_matches_rho():
    """Fraction of symbols mapped to index i ≈ ρ(i) (the §4.1.2 law)."""
    rng = random.Random(5)
    trials = 4000
    bound = 64
    hits = [0] * bound
    for _ in range(trials):
        for idx in RandomMapping(rng.getrandbits(64)).indices_below(bound):
            hits[idx] += 1
    for index in (0, 1, 2, 4, 8, 16, 32, 63):
        observed = hits[index] / trials
        expected = mapping_probability(index)
        sigma = math.sqrt(expected * (1 - expected) / trials)
        assert abs(observed - expected) < max(6 * sigma, 0.01), (
            f"index {index}: observed {observed}, expected {expected}"
        )


def test_empirical_density_generic_alpha():
    """The generic-α (Stirling) path also realises its ρ."""
    rng = random.Random(11)
    trials = 4000
    alpha = 0.8
    hits = [0] * 32
    for _ in range(trials):
        gen = IndexGenerator(rng.getrandbits(64), alpha=alpha)
        idx = 0
        while idx < 32:
            hits[idx] += 1
            idx = gen.next_index()
    for index in (0, 1, 3, 7, 15, 31):
        observed = hits[index] / trials
        expected = mapping_probability(index, alpha)
        sigma = math.sqrt(expected * (1 - expected) / trials)
        assert abs(observed - expected) < max(6 * sigma, 0.015)


def test_mean_degree_logarithmic():
    """E[degree below m] = Σρ(i) ≈ 2·ln(1+m/2) at α = 0.5 — the sparsity
    that §4.1.2 credits for the computational win."""
    rng = random.Random(3)
    bound = 512
    trials = 600
    total = sum(
        RandomMapping(rng.getrandbits(64)).degree_below(bound)
        for _ in range(trials)
    )
    observed_mean = total / trials
    predicted = expected_degree(bound)
    assert abs(observed_mean - predicted) / predicted < 0.08
    # the closed form: Σ 1/(1+i/2) = Σ 2/(2+i)
    assert predicted == pytest.approx(
        sum(2.0 / (2 + i) for i in range(bound)), rel=1e-9
    )


def test_expected_degree_formula():
    assert expected_degree(1) == 1.0
    assert expected_degree(3) == pytest.approx(1.0 + 1 / 1.5 + 1 / 2.0)


def test_large_index_no_overflow():
    """The generator survives far-tail draws without float blowups."""
    gen = IndexGenerator(seed=0xDEAD)
    for _ in range(20_000):
        gen.next_index()
    assert gen.current < (1 << 49)
