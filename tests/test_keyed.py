"""Keyed hasher family: interchangeability and keying semantics."""

import pytest

from repro.hashing.keyed import Blake2bHasher, SipHasher, make_hasher


@pytest.mark.parametrize("kind", ["blake2b", "siphash"])
def test_make_hasher(kind):
    hasher = make_hasher(kind)
    value = hasher.hash64(b"hello")
    assert 0 <= value < (1 << 64)
    assert hasher.hash64(b"hello") == value


def test_make_hasher_unknown_kind():
    with pytest.raises(ValueError):
        make_hasher("md5")


@pytest.mark.parametrize("cls", [Blake2bHasher, SipHasher])
def test_key_changes_output(cls):
    a = cls(bytes(16))
    b = cls(bytes(15) + b"\x01")
    assert a.hash64(b"item") != b.hash64(b"item")


def test_siphasher_rejects_bad_key():
    with pytest.raises(ValueError):
        SipHasher(b"too short")


def test_blake2b_rejects_bad_key():
    with pytest.raises(ValueError):
        Blake2bHasher(b"")


def test_families_disagree():
    """The two families are different PRFs under the same key."""
    key = bytes(range(16))
    assert Blake2bHasher(key).hash64(b"x") != SipHasher(key).hash64(b"x")


@pytest.mark.parametrize("cls", [Blake2bHasher, SipHasher])
def test_distribution_coarse(cls):
    """Top byte of the hash roughly uniform over 4k inputs."""
    hasher = cls(bytes(range(16)))
    buckets = [0] * 16
    for i in range(4096):
        buckets[hasher.hash64(i.to_bytes(8, "little")) >> 60] += 1
    assert min(buckets) > 150  # expectation 256
