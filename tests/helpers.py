"""Shared test helpers (imported as ``from helpers import ...``).

Deliberately *not* named ``conftest``: test modules used to import
helpers from ``conftest``, which breaks the moment another directory's
``conftest.py`` (e.g. ``benchmarks/``) lands earlier on ``sys.path`` and
shadows it.  Fixtures stay in ``tests/conftest.py``; plain functions
live here under a collision-free module name.
"""

from __future__ import annotations

import random


def make_items(rng: random.Random, count: int, size: int = 8) -> list[bytes]:
    """``count`` distinct random items of ``size`` bytes.

    Sorted so the workload is identical across processes — ``list(set)``
    order would depend on the interpreter's randomised string hashing.
    """
    items: set[bytes] = set()
    while len(items) < count:
        items.add(rng.randbytes(size))
    return sorted(items)


def split_sets(
    rng: random.Random, shared: int, only_a: int, only_b: int, size: int = 8
) -> tuple[set[bytes], set[bytes]]:
    """Two sets with the given shared/exclusive cardinalities."""
    items = make_items(rng, shared + only_a + only_b, size)
    common = items[:shared]
    a_extra = items[shared : shared + only_a]
    b_extra = items[shared + only_a :]
    return set(common) | set(a_extra), set(common) | set(b_extra)
