"""CPI: characteristic-polynomial reconciliation over GF(p)."""

import random

import pytest

from repro.baselines.cpi import (
    MAX_ITEM,
    PRIME,
    CPIDecodeFailure,
    CPISketch,
    _poly_roots,
    reconcile_cpi,
    sample_point,
)


def distinct_items(rng, count):
    out = set()
    while len(out) < count:
        out.add(rng.randrange(1, MAX_ITEM))
    return sorted(out)


def test_sample_points_above_items():
    assert sample_point(0) == PRIME - 1
    assert sample_point(5) == PRIME - 6
    assert sample_point(0) >= MAX_ITEM


def test_item_range_enforced():
    with pytest.raises(ValueError):
        CPISketch.from_items([MAX_ITEM], 4)


@pytest.mark.parametrize("d", [0, 1, 2, 10, 25])
def test_reconcile_exact(d):
    rng = random.Random(d)
    items = distinct_items(rng, 60 + d)
    a = items[: 60 + d // 2]
    b = items[: 60] + items[60 + d // 2 :]
    only_a, only_b = reconcile_cpi(a, b, difference_bound=max(2, d + 2))
    assert only_a == sorted(set(a) - set(b))
    assert only_b == sorted(set(b) - set(a))


def test_asymmetric_sizes():
    rng = random.Random(77)
    items = distinct_items(rng, 50)
    a = items  # |A| = 50
    b = items[:40]  # Bob missing 10
    only_a, only_b = reconcile_cpi(a, b, difference_bound=12)
    assert only_a == sorted(items[40:])
    assert only_b == []


def test_overflow_detected():
    rng = random.Random(3)
    items = distinct_items(rng, 80)
    a = items[:50]
    b = items[30:]
    with pytest.raises(CPIDecodeFailure):
        reconcile_cpi(a, b, difference_bound=10)  # true d = 60


def test_wire_size():
    rng = random.Random(4)
    sketch = CPISketch.from_items(distinct_items(rng, 10), 7)
    assert sketch.wire_size() == 7 * 8 + 8


def test_poly_roots_product_of_linears():
    rng = random.Random(9)
    roots = distinct_items(rng, 8)
    coeffs = [1]
    for r in roots:
        # multiply by (x − r)
        nxt = [0] * (len(coeffs) + 1)
        for i, c in enumerate(coeffs):
            nxt[i] = (nxt[i] - r * c) % PRIME
            nxt[i + 1] = (nxt[i + 1] + c) % PRIME
        coeffs = nxt
    assert sorted(_poly_roots(coeffs)) == sorted(roots)


def test_poly_roots_with_irreducible_part():
    """x² + 1 has no roots mod 2^61−1 (p ≡ 3 mod 4): only linear roots
    come back."""
    # (x² + 1)(x − 5)
    coeffs = [(-5) % PRIME, 1, (-5) % PRIME, 1]
    roots = _poly_roots(coeffs)
    assert roots == [5]


def test_evaluations_multiplicative_structure():
    """χ_{A∪{x}}(z) = χ_A(z)·(z − x): the homomorphism CPI relies on."""
    rng = random.Random(11)
    items = distinct_items(rng, 5)
    extra = next(i for i in range(1, 100) if i not in items)
    base = CPISketch.from_items(items, 3)
    bigger = CPISketch.from_items(items + [extra], 3)
    for i in range(3):
        z = sample_point(i)
        assert bigger.evaluations[i] == base.evaluations[i] * (z - extra) % PRIME


def test_identical_sets():
    rng = random.Random(13)
    items = distinct_items(rng, 30)
    only_a, only_b = reconcile_cpi(items, items, difference_bound=4)
    assert only_a == [] and only_b == []


# --- streaming (rateless-style) CPI -------------------------------------------


def test_streaming_cpi_reconciles_without_bound():
    from repro.baselines.cpi import reconcile_cpi_streaming

    rng = random.Random(21)
    items = distinct_items(rng, 70)
    a = items[:60]
    b = items[:50] + items[60:]
    only_a, only_b, used = reconcile_cpi_streaming(a, b)
    assert only_a == sorted(set(a) - set(b))
    assert only_b == sorted(set(b) - set(a))
    d = len(set(a) ^ set(b))
    assert d <= used <= d + 4  # near-optimal communication


def test_streaming_cpi_identical_sets():
    from repro.baselines.cpi import reconcile_cpi_streaming

    rng = random.Random(22)
    items = distinct_items(rng, 30)
    only_a, only_b, used = reconcile_cpi_streaming(items, items)
    assert only_a == [] and only_b == []
    assert used <= 4


def test_streaming_cpi_gives_up():
    from repro.baselines.cpi import CPIDecodeFailure, reconcile_cpi_streaming

    rng = random.Random(23)
    items = distinct_items(rng, 60)
    with pytest.raises(CPIDecodeFailure):
        reconcile_cpi_streaming(items[:30], items[30:], max_points=8)


def test_streaming_produces_same_evaluations_as_batch():
    from repro.baselines.cpi import CPISketch, StreamingCPI

    rng = random.Random(24)
    items = distinct_items(rng, 20)
    stream = StreamingCPI(items)
    for _ in range(6):
        stream.produce_next()
    batch = CPISketch.from_items(items, 6)
    assert stream.sketch().evaluations == batch.evaluations
