"""Every example script must run clean (they assert their own claims)."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} printed nothing"
