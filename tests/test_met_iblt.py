"""MET-IBLT: rate compatibility, decode at optimised targets, staircase."""

import random

import pytest

from repro.baselines.met_iblt import DEFAULT_MET_CONFIG, MetConfig, MetIBLT

from helpers import split_sets


def test_config_validation():
    with pytest.raises(ValueError):
        MetConfig((10, 20), (3,), (10, 50))
    with pytest.raises(ValueError):
        MetConfig((10,), (0,), (10,))
    with pytest.raises(ValueError):
        MetConfig((10, 20), (3, 2), (50, 10))  # targets must increase


def test_cumulative_cells():
    config = MetConfig((10, 20, 30), (3, 2, 1), (5, 25, 125))
    assert config.cumulative_cells(0) == 0
    assert config.cumulative_cells(2) == 30
    assert config.cumulative_cells(3) == 60


def test_level_for_difference():
    config = DEFAULT_MET_CONFIG
    assert config.level_for_difference(1) == 1
    assert config.level_for_difference(config.target_differences[0]) == 1
    assert config.level_for_difference(config.target_differences[0] + 1) == 2
    huge = config.target_differences[-1] * 10
    assert config.level_for_difference(huge) == config.levels


def test_block_of_cell():
    config = MetConfig((4, 8), (3, 1), (2, 10))
    assert config.block_of_cell(0) == 0
    assert config.block_of_cell(3) == 0
    assert config.block_of_cell(4) == 1
    with pytest.raises(IndexError):
        config.block_of_cell(12)


def test_prefix_property():
    """Rate compatibility: block prefixes of the full table are exactly the
    shorter tables (the sender can extend in place)."""
    rng = random.Random(2)
    codec_items, _ = split_sets(rng, shared=100, only_a=0, only_b=0)
    from repro.core.symbols import SymbolCodec

    codec = SymbolCodec(8)
    table = MetIBLT.from_items(codec_items, codec)
    # cells of level-1 prefix never reference higher blocks
    level_1_cells = table.config.cumulative_cells(1)
    prefix = table.cells[:level_1_cells]
    rebuilt = MetIBLT.from_items(codec_items, codec)
    assert prefix == rebuilt.cells[:level_1_cells]


def _mean_overhead(codec, d, trials, seed):
    """Mean cells/d under the rate-compatible protocol: try a prefix,
    extend by one block on failure (decode_smallest_prefix)."""
    rng = random.Random(seed)
    total = 0.0
    for _ in range(trials):
        a, b = split_sets(rng, shared=100, only_a=d // 2, only_b=d - d // 2)
        diff = MetIBLT.from_items(a, codec).subtract(MetIBLT.from_items(b, codec))
        result, cells_used = diff.decode_smallest_prefix()
        assert result.success
        assert set(result.remote) == a - b
        assert set(result.local) == b - a
        total += cells_used / d
    return total / trials


@pytest.mark.parametrize("target_index,bound", [(0, 4.2), (1, 2.8), (2, 2.8)])
def test_efficient_at_optimised_targets(codec8, target_index, bound):
    """At the optimised difference sizes, mean overhead stays low
    (the Fig 7 'good' points of MET-IBLT).  The smallest target gets a
    looser bound: a rare level-1 failure costs a whole extra block."""
    d = DEFAULT_MET_CONFIG.target_differences[target_index]
    mean = _mean_overhead(codec8, d, trials=8, seed=d)
    assert mean <= bound, f"overhead {mean:.2f} at optimised d={d}"


def test_staircase_overhead_between_targets(codec8):
    """Between optimised sizes the next whole block must usually ship:
    the 4-10× overhead staircase of Fig 7."""
    at_target = _mean_overhead(codec8, 10, trials=10, seed=1)
    between = _mean_overhead(codec8, 20, trials=10, seed=2)
    far_between = _mean_overhead(codec8, 100, trials=6, seed=3)
    assert between > 1.5 * at_target
    assert between > 3.5
    assert far_between > 4.0


def test_decode_levels_bounds(codec8):
    table = MetIBLT(codec8)
    with pytest.raises(ValueError):
        table.decode(0)
    with pytest.raises(ValueError):
        table.decode(table.config.levels + 1)


def test_subtract_geometry_check(codec8):
    a = MetIBLT(codec8)
    b = MetIBLT(codec8, MetConfig((8,), (3,), (4,)))
    with pytest.raises(ValueError):
        a.subtract(b)


def test_wire_size(codec32):
    table = MetIBLT(codec32)
    one_block = table.config.block_sizes[0]
    assert table.wire_size(1) == one_block * (32 + 16)


def test_never_wrong_on_failure(codec8):
    """Overfull prefix: failure reported, no wrong items."""
    rng = random.Random(4)
    a, b = split_sets(rng, shared=30, only_a=40, only_b=40)
    diff = MetIBLT.from_items(a, codec8).subtract(MetIBLT.from_items(b, codec8))
    result = diff.decode(1)  # way undersized
    assert not result.success
    assert set(result.remote) <= a - b
    assert set(result.local) <= b - a
