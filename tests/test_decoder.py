"""Incremental peeling decoder: recovery, orientation, termination."""

import pytest

from repro.core.decoder import RatelessDecoder, decode_sketch_cells
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec

from helpers import make_items, split_sets


def stream_reconcile(codec, set_a, set_b, max_symbols=100_000):
    """Helper: run the full subtract-and-peel protocol."""
    alice = RatelessEncoder(codec, set_a)
    bob = RatelessEncoder(codec, set_b)
    decoder = RatelessDecoder(codec)
    while not decoder.decoded:
        if decoder.symbols_received >= max_symbols:
            raise AssertionError("did not decode in time")
        decoder.add_subtracted(alice.produce_next(), bob.produce_next())
    return decoder


def test_identical_sets_decode_immediately(codec8, rng):
    items = make_items(rng, 100)
    decoder = stream_reconcile(codec8, set(items), set(items))
    assert decoder.symbols_received == 1
    assert decoder.remote_items() == []
    assert decoder.local_items() == []


def test_single_difference(codec8, rng):
    a, b = split_sets(rng, shared=100, only_a=1, only_b=0)
    decoder = stream_reconcile(codec8, a, b)
    assert set(decoder.remote_items()) == a - b
    assert decoder.local_items() == []


def test_single_local_difference(codec8, rng):
    a, b = split_sets(rng, shared=100, only_a=0, only_b=1)
    decoder = stream_reconcile(codec8, a, b)
    assert set(decoder.local_items()) == b - a
    assert decoder.remote_items() == []


@pytest.mark.parametrize("d", [2, 8, 32, 128])
def test_two_sided_difference(codec8, rng, d):
    a, b = split_sets(rng, shared=300, only_a=d // 2, only_b=d - d // 2)
    decoder = stream_reconcile(codec8, a, b)
    assert set(decoder.remote_items()) == a - b
    assert set(decoder.local_items()) == b - a


def test_disjoint_sets(codec8, rng):
    a, b = split_sets(rng, shared=0, only_a=40, only_b=40)
    decoder = stream_reconcile(codec8, a, b)
    assert set(decoder.remote_items()) == a
    assert set(decoder.local_items()) == b


def test_empty_vs_nonempty(codec8, rng):
    items = set(make_items(rng, 25))
    decoder = stream_reconcile(codec8, items, set())
    assert set(decoder.remote_items()) == items


def test_overhead_reasonable(codec8, rng):
    """m/d stays within the paper's finite-d envelope (≤ ~2.3 w.h.p.)."""
    a, b = split_sets(rng, shared=500, only_a=50, only_b=50)
    decoder = stream_reconcile(codec8, a, b)
    assert decoder.symbols_received <= 2.5 * 100


def test_not_decoded_prematurely(codec8, rng):
    """decoded must not fire while differences remain unrecovered."""
    a, b = split_sets(rng, shared=50, only_a=10, only_b=10)
    alice = RatelessEncoder(codec8, a)
    bob = RatelessEncoder(codec8, b)
    decoder = RatelessDecoder(codec8)
    while not decoder.decoded:
        recovered = len(decoder.remote_items()) + len(decoder.local_items())
        assert recovered < 20
        decoder.add_subtracted(alice.produce_next(), bob.produce_next())
    assert len(decoder.remote_items()) + len(decoder.local_items()) == 20


def test_decoded_requires_at_least_one_symbol(codec8):
    decoder = RatelessDecoder(codec8)
    assert not decoder.decoded


def test_result_snapshot(codec8, rng):
    a, b = split_sets(rng, shared=60, only_a=3, only_b=4)
    decoder = stream_reconcile(codec8, a, b)
    result = decoder.result()
    assert result.success
    assert result.difference_size == 7
    assert result.symbols_used == decoder.symbols_received
    assert result.overhead == result.symbols_used / 7


def test_decode_sketch_cells_one_shot(codec8, rng):
    a, b = split_sets(rng, shared=80, only_a=5, only_b=5)
    alice = RatelessEncoder(codec8, a)
    bob = RatelessEncoder(codec8, b)
    cells = [
        alice.produce_next().subtract(bob.produce_next()) for _ in range(60)
    ]
    result = decode_sketch_cells(cells, codec8)
    assert result.success
    assert set(result.remote) == a - b
    assert set(result.local) == b - a


def test_decode_does_not_mutate_with_copy(codec8, rng):
    a, b = split_sets(rng, shared=30, only_a=2, only_b=2)
    alice = RatelessEncoder(codec8, a)
    bob = RatelessEncoder(codec8, b)
    cells = [
        alice.produce_next().subtract(bob.produce_next()) for _ in range(30)
    ]
    snapshot = [cell.copy() for cell in cells]
    decode_sketch_cells(cells, codec8, copy=True)
    assert cells == snapshot


def test_large_difference(codec8, rng):
    a, b = split_sets(rng, shared=200, only_a=400, only_b=400)
    decoder = stream_reconcile(codec8, a, b)
    assert set(decoder.remote_items()) == a - b
    assert set(decoder.local_items()) == b - a
    assert decoder.symbols_received < 2.0 * 800


def test_values_and_items_agree(codec8, rng):
    a, b = split_sets(rng, shared=40, only_a=4, only_b=0)
    decoder = stream_reconcile(codec8, a, b)
    assert [
        codec8.to_bytes(v) for v in decoder.remote_values()
    ] == decoder.remote_items()


def test_32_byte_items(rng):
    codec = SymbolCodec(32)
    a, b = split_sets(rng, shared=100, only_a=10, only_b=10, size=32)
    decoder = stream_reconcile(codec, a, b)
    assert set(decoder.remote_items()) == a - b
    assert set(decoder.local_items()) == b - a


def test_truncated_checksum_still_decodes(rng):
    """4-byte checksums reconcile small differences fine (§7.1)."""
    codec = SymbolCodec(8, checksum_size=4)
    a, b = split_sets(rng, shared=200, only_a=20, only_b=20)
    decoder = stream_reconcile(codec, a, b)
    assert set(decoder.remote_items()) == a - b
    assert set(decoder.local_items()) == b - a


def test_add_stream_stops_on_decode(codec8, rng):
    a, b = split_sets(rng, shared=50, only_a=2, only_b=2)
    alice = RatelessEncoder(codec8, a)
    bob = RatelessEncoder(codec8, b)
    cells = [
        alice.produce_next().subtract(bob.produce_next()) for _ in range(64)
    ]
    decoder = RatelessDecoder(codec8)
    used = decoder.add_stream(cells)
    assert decoder.decoded
    assert used < 64
