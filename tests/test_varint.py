"""LEB128 / zigzag round-trips and size guarantees (§6 count field)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.varint import (
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)


@pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 16_383, 16_384, 2**32, 2**64])
def test_uvarint_roundtrip(value):
    blob = encode_uvarint(value)
    decoded, offset = decode_uvarint(blob)
    assert decoded == value
    assert offset == len(blob)


def test_uvarint_rejects_negative():
    with pytest.raises(ValueError):
        encode_uvarint(-1)


def test_uvarint_sizes():
    """7 bits per byte: values < 128 are one byte, < 16384 two, etc."""
    assert len(encode_uvarint(0)) == 1
    assert len(encode_uvarint(127)) == 1
    assert len(encode_uvarint(128)) == 2
    assert len(encode_uvarint(16_383)) == 2
    assert len(encode_uvarint(16_384)) == 3


def test_uvarint_truncation_detected():
    blob = encode_uvarint(1 << 40)
    with pytest.raises(ValueError):
        decode_uvarint(blob[:-1])


def test_uvarint_offset_decoding():
    blob = b"\xff" + encode_uvarint(777)
    value, offset = decode_uvarint(blob, offset=1)
    assert value == 777
    assert offset == len(blob)


@pytest.mark.parametrize("value", [0, -1, 1, -2, 2, 63, -64, 64, -(2**40), 2**40])
def test_zigzag_roundtrip(value):
    assert zigzag_decode(zigzag_encode(value)) == value


def test_zigzag_small_magnitudes_stay_small():
    """Zigzag keeps |small| numbers small: key to 1-byte counts (§6)."""
    for value in range(-63, 64):
        assert len(encode_svarint(value)) == 1


@pytest.mark.parametrize("value", [0, 5, -5, 1000, -1000, 2**33, -(2**33)])
def test_svarint_roundtrip(value):
    blob = encode_svarint(value)
    decoded, offset = decode_svarint(blob)
    assert decoded == value
    assert offset == len(blob)


@given(st.integers(min_value=0, max_value=2**70))
def test_uvarint_roundtrip_property(value):
    decoded, offset = decode_uvarint(encode_uvarint(value))
    assert decoded == value


@given(st.integers(min_value=-(2**69), max_value=2**69))
def test_svarint_roundtrip_property(value):
    decoded, offset = decode_svarint(encode_svarint(value))
    assert decoded == value


@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=20))
def test_svarint_stream_roundtrip(values):
    """Concatenated svarints parse back unambiguously."""
    blob = b"".join(encode_svarint(v) for v in values)
    offset = 0
    decoded = []
    while offset < len(blob):
        value, offset = decode_uvarint(blob, offset)
        decoded.append(zigzag_decode(value))
    assert decoded == values
