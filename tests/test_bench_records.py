"""Committed ``BENCH_*.json`` records must stay structurally comparable.

The perf-smoke gate (``benchmarks/check_perf_regression.py``) compares
fresh CI runs against these records; a record missing its envelope or
its ``meta.env`` block silently weakens that comparison (numbers from
unknown hardware are not a baseline).  This test pins the contract for
every committed default-scale record.
"""

import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

COMMITTED = sorted(
    path
    for path in REPO_ROOT.glob("BENCH_*.json")
    if path.suffixes == [".json"]  # not BENCH_<name>.<scale>.json
)


def test_some_records_are_committed():
    assert COMMITTED, "no committed BENCH_*.json records found"
    names = {path.name for path in COMMITTED}
    assert "BENCH_gossip_convergence.json" in names


@pytest.mark.parametrize("path", COMMITTED, ids=lambda p: p.name)
def test_record_envelope(path):
    record = json.loads(path.read_text())
    assert record["bench"] == path.stem.removeprefix("BENCH_")
    assert record["scale"] == "default", (
        f"{path.name}: committed records must be default-scale trajectories"
    )
    assert isinstance(record["unix_time"], float)
    assert isinstance(record["python"], str)
    assert isinstance(record["rows"], list) and record["rows"]


@pytest.mark.parametrize("path", COMMITTED, ids=lambda p: p.name)
def test_record_carries_environment_meta(path):
    record = json.loads(path.read_text())
    env = record.get("meta", {}).get("env")
    assert isinstance(env, dict), f"{path.name}: missing meta.env block"
    assert set(env) >= {"numpy", "cpu_count", "platform"}
    assert env["cpu_count"] is None or isinstance(env["cpu_count"], int)
    assert isinstance(env["platform"], str) and env["platform"]
