"""Failure injection: corrupted, truncated, or mismatched streams must
degrade to decode *failure*, never to wrong answers.

The 64-bit keyed checksum is what stands between a bit-flip and a bogus
"recovered" item; these tests exercise that line of defence.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.core.wire import SymbolStreamReader, decode_stream, encode_stream
from repro.hashing.keyed import Blake2bHasher

from helpers import split_sets

CODEC = SymbolCodec(8)


def build_stream(rng, set_a, set_b, symbols):
    alice = RatelessEncoder(CODEC, set_a)
    blob = encode_stream(
        CODEC, len(set_a), [alice.produce_next().copy() for _ in range(symbols)]
    )
    return blob


def decode_against(blob, set_b, codec=CODEC):
    cells, _ = decode_stream(codec, blob)
    bob = RatelessEncoder(codec, set_b)
    decoder = RatelessDecoder(codec)
    for cell in cells:
        decoder.add_subtracted(cell, bob.produce_next())
        if decoder.decoded:
            break
    return decoder.result()


def test_clean_stream_baseline(rng):
    a, b = split_sets(rng, shared=100, only_a=5, only_b=5)
    blob = build_stream(rng, a, b, 60)
    result = decode_against(blob, b)
    assert result.success
    assert set(result.remote) == a - b


def test_single_bit_flips_never_fabricate(rng):
    """Flip one bit anywhere in the payload: recovered items must remain a
    subset of the true difference (decode may or may not complete)."""
    a, b = split_sets(rng, shared=60, only_a=4, only_b=4)
    blob = bytearray(build_stream(rng, a, b, 50))
    header = 12  # leave the header intact; it is length-checked separately
    true_remote = a - b
    true_local = b - a
    for _ in range(40):
        position = rng.randrange(header, len(blob))
        bit = 1 << rng.randrange(8)
        blob[position] ^= bit
        try:
            result = decode_against(bytes(blob), b)
        except ValueError:
            pass  # parse-level rejection is fine
        else:
            # one flipped cell can cancel against a true symbol, but any
            # *fabricated* item would have to forge a 64-bit checksum
            assert len(set(result.remote) - true_remote) == 0
            assert len(set(result.local) - true_local) == 0
        blob[position] ^= bit  # restore


def test_corrupted_header_rejected(rng):
    a, b = split_sets(rng, shared=30, only_a=2, only_b=2)
    blob = bytearray(build_stream(rng, a, b, 20))
    blob[0] ^= 0xFF  # magic
    with pytest.raises(ValueError):
        decode_against(bytes(blob), b)


def test_truncated_stream_parses_prefix(rng):
    """Cutting the stream mid-cell yields exactly the complete cells."""
    a, b = split_sets(rng, shared=40, only_a=3, only_b=3)
    blob = build_stream(rng, a, b, 30)
    reader = SymbolStreamReader(CODEC)
    cells = reader.feed(blob[: len(blob) - 5])
    assert 0 < len(cells) < 30


def test_reordered_cells_fail_safely(rng):
    """Cells carry implicit indices; swapping two corrupts the mapping —
    decode must not fabricate items."""
    a, b = split_sets(rng, shared=50, only_a=4, only_b=4)
    alice = RatelessEncoder(CODEC, a)
    cells = [alice.produce_next().copy() for _ in range(40)]
    cells[3], cells[17] = cells[17], cells[3]
    bob = RatelessEncoder(CODEC, b)
    decoder = RatelessDecoder(CODEC)
    for cell in cells:
        decoder.add_subtracted(cell, bob.produce_next())
    assert set(decoder.remote_items()) <= (a - b) | (b - a)
    assert set(decoder.local_items()) <= (a - b) | (b - a)


def test_wrong_key_streams_are_garbage_not_lies(rng):
    """Alice and Bob disagree on the hash key: nothing decodes, nothing
    is fabricated."""
    a, b = split_sets(rng, shared=50, only_a=3, only_b=3)
    codec_a = SymbolCodec(8, Blake2bHasher(b"A" * 16))
    codec_b = SymbolCodec(8, Blake2bHasher(b"B" * 16))
    alice = RatelessEncoder(codec_a, a)
    bob = RatelessEncoder(codec_b, b)
    decoder = RatelessDecoder(codec_b)
    for _ in range(200):
        decoder.add_subtracted(alice.produce_next(), bob.produce_next())
    assert not decoder.decoded
    # everything "recovered" must at least be a true member of A or B —
    # in practice nothing passes the checksum gate
    fabricated = (set(decoder.remote_items()) | set(decoder.local_items())) - (a | b)
    assert not fabricated


@given(st.integers(min_value=0, max_value=2**64 - 1), st.data())
@settings(max_examples=30, deadline=None)
def test_random_garbage_cells_recover_nothing(seed, data):
    """Streams of uniformly random cells must not yield a single item."""
    rng = random.Random(seed)
    from repro.core.coded import CodedSymbol

    decoder = RatelessDecoder(CODEC)
    for _ in range(50):
        decoder.add_coded_symbol(
            CodedSymbol(
                rng.getrandbits(64), rng.getrandbits(64), rng.choice((-1, 1, 2, 0))
            )
        )
    assert decoder.remote_items() == []
    assert decoder.local_items() == []


def test_duplicate_cells_do_not_double_recover(rng):
    """Feeding the same subtracted cell list twice in sequence is a
    protocol violation; the ghost guard must prevent double recovery."""
    a, b = split_sets(rng, shared=30, only_a=2, only_b=0)
    alice = RatelessEncoder(CODEC, a)
    bob = RatelessEncoder(CODEC, b)
    cells = [alice.produce_next().subtract(bob.produce_next()) for _ in range(12)]
    decoder = RatelessDecoder(CODEC)
    for cell in cells + cells:
        decoder.add_coded_symbol(cell.copy())
    assert len(decoder.remote_items()) == len(set(decoder.remote_items()))
    assert set(decoder.remote_items()) <= a - b
