"""CLI end-to-end tests over temp files."""

import pytest

from repro.cli import CliError, main, read_items


@pytest.fixture
def item_files(tmp_path, rng):
    """Two binary files of 8-byte records differing in 12 items."""
    shared = [rng.randbytes(8) for _ in range(200)]
    only_a = [rng.randbytes(8) for _ in range(6)]
    only_b = [rng.randbytes(8) for _ in range(6)]
    file_a = tmp_path / "a.bin"
    file_b = tmp_path / "b.bin"
    file_a.write_bytes(b"".join(shared + only_a))
    file_b.write_bytes(b"".join(shared + only_b))
    return file_a, file_b, set(only_a), set(only_b)


def test_reconcile_command(item_files, capsys):
    file_a, file_b, only_a, only_b = item_files
    code = main(["--item-size", "8", "reconcile", str(file_a), str(file_b)])
    out = capsys.readouterr().out
    assert code == 0
    assert "difference      : 12" in out


def test_reconcile_show_items(item_files, capsys):
    file_a, file_b, only_a, only_b = item_files
    code = main(
        ["--item-size", "8", "reconcile", str(file_a), str(file_b), "--show-items"]
    )
    out = capsys.readouterr().out
    assert code == 0
    for item in only_a:
        assert f"A-only {item.hex()}" in out
    for item in only_b:
        assert f"B-only {item.hex()}" in out


def test_sketch_then_decode(item_files, tmp_path, capsys):
    file_a, file_b, only_a, only_b = item_files
    sketch_path = tmp_path / "a.sketch"
    code = main(
        ["--item-size", "8", "sketch", str(file_a), "-o", str(sketch_path),
         "--symbols", "64"]
    )
    assert code == 0
    assert sketch_path.exists()
    code = main(
        ["--item-size", "8", "decode", str(sketch_path), str(file_b),
         "--show-items"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "decoded         : yes" in out
    assert "missing locally : 6" in out
    for item in only_a:
        assert f"+ {item.hex()}" in out


def test_decode_undersized_sketch_exit_code(item_files, tmp_path, capsys):
    file_a, file_b, *_ = item_files
    sketch_path = tmp_path / "tiny.sketch"
    main(["--item-size", "8", "sketch", str(file_a), "-o", str(sketch_path),
          "--symbols", "4"])
    code = main(["--item-size", "8", "decode", str(sketch_path), str(file_b)])
    out = capsys.readouterr().out
    assert code == 3
    assert "NO" in out


def test_estimate_command(item_files, capsys):
    file_a, file_b, *_ = item_files
    code = main(["--item-size", "8", "estimate", str(file_a), str(file_b)])
    out = capsys.readouterr().out
    assert code == 0
    assert "true difference      : 12" in out


def test_hex_format(tmp_path, capsys):
    a = tmp_path / "a.hex"
    b = tmp_path / "b.hex"
    a.write_text("# comment\naabbccdd\n11223344\n")
    b.write_text("11223344\ndeadbeef\n")
    code = main(["--format", "hex", "reconcile", str(a), str(b)])
    out = capsys.readouterr().out
    assert code == 0
    assert "difference      : 2" in out


def test_hex_mixed_sizes_rejected(tmp_path, capsys):
    bad = tmp_path / "bad.hex"
    bad.write_text("aabb\naabbcc\n")
    code = main(["--format", "hex", "estimate", str(bad), str(bad)])
    assert code == 2
    assert "mixed sizes" in capsys.readouterr().err


def test_binary_needs_item_size(tmp_path, capsys):
    f = tmp_path / "x.bin"
    f.write_bytes(bytes(16))
    code = main(["reconcile", str(f), str(f)])
    assert code == 2
    assert "--item-size" in capsys.readouterr().err


def test_binary_partial_record_rejected(tmp_path, capsys):
    f = tmp_path / "x.bin"
    f.write_bytes(bytes(17))
    code = main(["--item-size", "8", "reconcile", str(f), str(f)])
    assert code == 2


def test_missing_file(tmp_path, capsys):
    code = main(
        ["--item-size", "8", "reconcile", str(tmp_path / "no"), str(tmp_path / "no")]
    )
    assert code == 2
    assert "no such file" in capsys.readouterr().err


def test_duplicate_items_rejected(tmp_path, capsys):
    f = tmp_path / "dup.bin"
    f.write_bytes(bytes(8) + bytes(8))
    code = main(["--item-size", "8", "reconcile", str(f), str(f)])
    assert code == 2
    assert "duplicate" in capsys.readouterr().err


def test_key_mismatch_between_sketch_and_decode(item_files, tmp_path, capsys):
    """Different hash keys make streams incompatible — decode fails to
    terminate within the sketch rather than returning wrong data."""
    file_a, file_b, *_ = item_files
    sketch_path = tmp_path / "a.sketch"
    main(["--item-size", "8", "--key", "00" * 16, "sketch", str(file_a),
          "-o", str(sketch_path), "--symbols", "64"])
    code = main(["--item-size", "8", "--key", "ff" * 16, "decode",
                 str(sketch_path), str(file_b)])
    assert code == 3  # undecodable, never wrong


def test_read_items_helper(tmp_path):
    f = tmp_path / "r.bin"
    f.write_bytes(bytes(range(16)))
    items = read_items(f, 4, "bin")
    assert items == [bytes([0, 1, 2, 3]), bytes([4, 5, 6, 7]),
                     bytes([8, 9, 10, 11]), bytes([12, 13, 14, 15])]
    with pytest.raises(CliError):
        read_items(f, 5, "bin")
