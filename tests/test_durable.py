"""Crash-safe persistence (``repro.durable``): the recovery contract.

Acceptance anchors:

* recovery after randomized churn is **bit-identical** to fresh ingest
  of the same final set — the served wire stream, the shard versions,
  and future cell production all match (§4.1 linearity end to end);
* a simulated crash at *every* named crash point, followed by restart,
  recovers exactly the acknowledged prefix of mutations and serves a
  stream golden-equal to fresh ingest of that prefix;
* a torn journal tail (byte shortage) is silently truncated; a
  complete record with a bad CRC is *corruption* and fails typed.
"""

import json
import random

import pytest

from repro.api.registry import get_scheme
from repro.durable import (
    CRASH_POINTS,
    INJECTOR,
    CorruptJournal,
    CorruptSnapshot,
    DataDirMismatch,
    DurableConfig,
    FaultInjector,
    SimulatedCrash,
    open_durable,
)
from repro.durable.journal import MAGIC as JOURNAL_MAGIC
from repro.durable.store import JOURNAL_NAME, MANIFEST_NAME
from repro.protocol.machine import codec_of, hash64_of
from repro.service.backends import WarmRibltBackend
from repro.service.shard import ShardedSet

ITEM = 8
NUM_SHARDS = 4


@pytest.fixture(autouse=True)
def _clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def make_items(lo, hi):
    return [b"%08d" % i for i in range(lo, hi)]


def fresh_backend(items, num_shards=NUM_SHARDS):
    """Reference: a cold WarmRibltBackend ingesting ``items`` directly."""
    handle = get_scheme("riblt", symbol_size=ITEM)
    codec = codec_of(handle)
    hash64 = hash64_of(handle, codec)
    sharded = ShardedSet(hash64, num_shards, sorted(items))
    return WarmRibltBackend(handle, sharded, codec)


def served_stream(backend, cells=96):
    """The exact wire bytes a client would read from every shard."""
    return [
        backend.open_stream(shard).next_block(cells)
        for shard in range(backend.num_shards)
    ]


def assert_bit_identical(recovered, reference):
    """Recovered state must be indistinguishable from fresh ingest."""
    assert set(recovered.sharded) == set(reference.sharded)
    assert recovered.num_shards == reference.num_shards
    assert served_stream(recovered) == served_stream(reference)
    # Future production must agree too, not just the cached prefix.
    for shard in range(recovered.num_shards):
        a = recovered.open_stream(shard)
        b = reference.open_stream(shard)
        a.next_block(64)
        b.next_block(64)
        assert a.next_block(64) == b.next_block(64)


# -- recovery is fresh-ingest, bit for bit ---------------------------------


def test_checkpoint_close_reopen_roundtrip(tmp_path):
    items = make_items(0, 300)
    backend = open_durable(tmp_path, items, num_shards=NUM_SHARDS)
    backend.add_many(make_items(300, 360))
    backend.remove_many(make_items(0, 30))
    versions = list(backend.sharded.versions)
    backend.close()

    recovered = open_durable(tmp_path)
    try:
        final = sorted(set(make_items(30, 360)))
        assert sorted(recovered.sharded) == final
        # Journal replay re-applies the same batches, so the mutation
        # clock lands exactly where it was at close (gossip digests
        # compare versions across restarts).
        assert list(recovered.sharded.versions) == versions
        assert_bit_identical(recovered, fresh_backend(final))
    finally:
        recovered.close()


@pytest.mark.parametrize("seed", [1, 7, 2024])
def test_recovery_bit_identical_after_random_churn(tmp_path, seed):
    rng = random.Random(seed)
    live = set(make_items(0, 200))
    backend = open_durable(
        tmp_path,
        sorted(live),
        num_shards=NUM_SHARDS,
        config=DurableConfig(checkpoint_every=97, fsync=False),
    )
    fresh_counter = 1000
    for _ in range(rng.randrange(5, 15)):
        if rng.random() < 0.6 or len(live) < 20:
            batch = [
                b"%08d" % i
                for i in range(fresh_counter, fresh_counter + rng.randrange(1, 40))
            ]
            fresh_counter += len(batch)
            backend.add_many(batch)
            live.update(batch)
        else:
            batch = rng.sample(sorted(live), rng.randrange(1, 20))
            backend.remove_many(batch)
            live.difference_update(batch)
        if rng.random() < 0.2:
            backend.checkpoint()
    versions = list(backend.sharded.versions)
    backend.close()

    recovered = open_durable(tmp_path)
    try:
        assert set(recovered.sharded) == live
        assert list(recovered.sharded.versions) == versions
        assert_bit_identical(recovered, fresh_backend(sorted(live)))
    finally:
        recovered.close()


def test_reopen_with_same_items_validates(tmp_path):
    items = make_items(0, 50)
    open_durable(tmp_path, items, num_shards=2).close()
    # Same items: fine (idempotent cold-start scripts).
    backend = open_durable(tmp_path, items, num_shards=2)
    backend.close()
    # Different items: refusing beats silently serving the wrong set.
    with pytest.raises(DataDirMismatch):
        open_durable(tmp_path, make_items(0, 51), num_shards=2)
    with pytest.raises(DataDirMismatch):
        open_durable(tmp_path, items, num_shards=3)


# -- kill it at every crash point ------------------------------------------


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_point_then_recover_serves_acked_prefix(tmp_path, point):
    """Crash at ``point``; restart serves a clean op-sequence prefix.

    The contract: every *acked* op survives; the single in-flight op
    may or may not (a crash after the journal write but before the ack
    — e.g. during the fsync — legitimately persists it).  Whatever
    state comes back must be bit-identical to fresh ingest of it.
    """
    backend = open_durable(
        tmp_path, make_items(0, 120), num_shards=NUM_SHARDS
    )
    acked = set(make_items(0, 120))
    backend.add_many(make_items(200, 240))
    acked.update(make_items(200, 240))

    # A journal-point crash fires inside a mutation; a snapshot or
    # manifest point fires inside the checkpoint.
    ops = [
        ("add", make_items(300, 330)),
        ("remove", make_items(0, 10)),
        ("checkpoint", None),
    ]
    INJECTOR.arm_crash(point)
    attempted = acked
    try:
        for op, batch in ops:
            if op == "add":
                attempted = acked | set(batch)
                backend.add_many(batch)
            elif op == "remove":
                attempted = acked - set(batch)
                backend.remove_many(batch)
            else:
                attempted = acked
                backend.checkpoint()
            acked = attempted
        pytest.fail(f"crash point {point} never fired")
    except SimulatedCrash as exc:
        assert exc.point == point
    INJECTOR.reset()

    recovered = open_durable(tmp_path)
    try:
        recovered_set = set(recovered.sharded)
        assert recovered_set in (acked, attempted)
        assert_bit_identical(recovered, fresh_backend(sorted(recovered_set)))
    finally:
        recovered.close()


def test_crash_point_env_var_spec():
    injector = FaultInjector(env={"REPRO_CRASH_POINT": "manifest.rename:2"})
    # skip=2: the first two hits pass, the third crashes.
    injector._take_crash("manifest.rename")
    injector._take_crash("manifest.rename")
    with pytest.raises(SimulatedCrash):
        injector.crash("manifest.rename")


def test_unknown_crash_point_rejected():
    with pytest.raises(ValueError):
        INJECTOR.arm_crash("snapshot.nonsense")
    with pytest.raises(ValueError):
        FaultInjector(env={"REPRO_CRASH_POINT": "bogus.point"})


# -- journal pathology ------------------------------------------------------


def test_torn_journal_tail_is_truncated_not_fatal(tmp_path):
    backend = open_durable(tmp_path, make_items(0, 60), num_shards=2)
    backend.add_many(make_items(100, 110))  # acked, journaled
    backend.close()

    journal = tmp_path / JOURNAL_NAME
    intact = journal.read_bytes()
    # A torn write: half of a would-be record, then the crash.
    journal.write_bytes(intact + b"\x40" + b"\xAB" * 17)

    recovered = open_durable(tmp_path)
    try:
        assert set(recovered.sharded) == set(make_items(0, 60) + make_items(100, 110))
        # The tail was physically truncated so the next append extends
        # a valid log, not garbage.
        recovered.add(b"%08d" % 999)
    finally:
        recovered.close()
    reopened = open_durable(tmp_path)
    try:
        assert b"%08d" % 999 in reopened.sharded
    finally:
        reopened.close()


def test_corrupt_journal_record_fails_typed(tmp_path):
    backend = open_durable(tmp_path, make_items(0, 60), num_shards=2)
    backend.add_many(make_items(100, 110))
    backend.close()

    journal = tmp_path / JOURNAL_NAME
    blob = bytearray(journal.read_bytes())
    assert len(blob) > len(JOURNAL_MAGIC) + 8
    blob[-6] ^= 0xFF  # inside the record payload: CRC now lies
    journal.write_bytes(bytes(blob))

    with pytest.raises(CorruptJournal):
        open_durable(tmp_path)


def test_corrupt_snapshot_fails_typed(tmp_path):
    backend = open_durable(tmp_path, make_items(0, 60), num_shards=2)
    backend.close()
    snap = sorted(tmp_path.glob("shard-*.snap"))[0]
    blob = bytearray(snap.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    snap.write_bytes(bytes(blob))
    with pytest.raises(CorruptSnapshot):
        open_durable(tmp_path)


def test_corrupt_manifest_fails_typed(tmp_path):
    from repro.durable import CorruptManifest

    open_durable(tmp_path, make_items(0, 20)).close()
    manifest = tmp_path / MANIFEST_NAME
    manifest.write_text(manifest.read_text()[:-10])
    with pytest.raises(CorruptManifest):
        open_durable(tmp_path)


# -- injected IO errors (no crash, just a failing disk) ---------------------


def test_journal_io_error_leaves_memory_and_disk_unchanged(tmp_path):
    backend = open_durable(tmp_path, make_items(0, 60), num_shards=2)
    before = set(backend.sharded)
    journal_bytes = (tmp_path / JOURNAL_NAME).read_bytes()

    INJECTOR.arm_io_error("journal.append")
    with pytest.raises(OSError):
        backend.add_many(make_items(100, 105))
    # Write-ahead ordering: the failed batch never reached the bank.
    assert set(backend.sharded) == before
    assert (tmp_path / JOURNAL_NAME).read_bytes() == journal_bytes
    INJECTOR.reset()

    backend.add_many(make_items(100, 105))  # the disk recovered
    backend.close()
    recovered = open_durable(tmp_path)
    try:
        assert set(recovered.sharded) == before | set(make_items(100, 105))
    finally:
        recovered.close()


def test_checkpoint_io_error_keeps_previous_generation(tmp_path):
    backend = open_durable(tmp_path, make_items(0, 60), num_shards=2)
    backend.add_many(make_items(100, 110))
    INJECTOR.arm_io_error("snapshot.write")
    with pytest.raises(OSError):
        backend.checkpoint()
    INJECTOR.reset()
    backend.close()
    # The old snapshot generation plus the journal still replays clean.
    recovered = open_durable(tmp_path)
    try:
        assert set(recovered.sharded) == set(make_items(0, 60) + make_items(100, 110))
    finally:
        recovered.close()


# -- checkpoint policy ------------------------------------------------------


def test_auto_checkpoint_resets_journal(tmp_path):
    backend = open_durable(
        tmp_path,
        make_items(0, 40),
        num_shards=2,
        config=DurableConfig(checkpoint_every=16, fsync=False),
    )
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    gen_before = manifest["gen"]
    backend.add_many(make_items(100, 120))  # 20 >= 16: auto-checkpoint
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert manifest["gen"] == gen_before + 1
    assert (tmp_path / JOURNAL_NAME).read_bytes() == JOURNAL_MAGIC
    backend.close()


def test_checkpoint_sweeps_stale_generations(tmp_path):
    backend = open_durable(tmp_path, make_items(0, 40), num_shards=2)
    backend.add(b"%08d" % 500)
    backend.checkpoint()
    backend.add(b"%08d" % 501)
    backend.checkpoint()
    gens = {int(p.name.split(".g")[1].split(".")[0]) for p in tmp_path.glob("shard-*.snap")}
    assert len(gens) == 1  # only the live generation remains
    assert not list(tmp_path.glob("*.tmp"))
    backend.close()
