"""Golden equivalence: the batch fast paths emit bit-identical results
to the reference per-cell paths.

Covers both scatter engines (NumPy lane on and off), regular and
irregular (§8) codecs, wide symbols (>64-bit, scalar-only lane),
truncated checksums, mid-stream add/remove patching of a bank-backed
prefix, block wire framing, and session-level block stepping.
"""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import cellbank
from repro.core.cellbank import CodedSymbolBank
from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.irregular import PAPER_IRREGULAR
from repro.core.session import ReconciliationSession
from repro.core.symbols import SymbolCodec
from repro.core.wire import SymbolStreamReader, SymbolStreamWriter

from helpers import make_items, split_sets


CODECS = {
    "regular8": lambda: SymbolCodec(8),
    "irregular8": lambda: SymbolCodec(8, irregular=PAPER_IRREGULAR),
    "wide16": lambda: SymbolCodec(16),
    "truncated4": lambda: SymbolCodec(8, checksum_size=4),
}


@pytest.fixture(params=[True, False], ids=["numpy", "scalar"])
def lane(request, monkeypatch):
    if request.param and cellbank._np is None:
        pytest.skip("NumPy not available")
    monkeypatch.setattr(cellbank, "NUMPY_LANE", request.param)
    return request.param


def codec_items(name, rng, n):
    codec = CODECS[name]()
    return codec, make_items(rng, n, size=codec.symbol_size)


# -- encoder ---------------------------------------------------------------


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_produce_block_equals_produce_next(lane, codec_name, rng):
    codec, items = codec_items(codec_name, rng, 150)
    m = 260
    reference = RatelessEncoder(codec, items)
    expected = [reference.produce_next() for _ in range(m)]
    batch = RatelessEncoder(codec, items)
    bank = batch.produce_block(m)
    assert bank.cells() == expected
    # the cached prefix is the same object stream
    assert [batch.cached(i) for i in range(m)] == expected


@pytest.mark.parametrize("codec_name", ["regular8", "irregular8"])
def test_produce_block_split_points_agree(lane, codec_name, rng):
    """Any split of the stream into blocks yields the same prefix."""
    codec, items = codec_items(codec_name, rng, 80)
    reference = RatelessEncoder(codec, items)
    expected = [reference.produce_next() for _ in range(160)]
    batch = RatelessEncoder(codec, items)
    out = []
    for size in (1, 2, 3, 5, 19, 40, 80, 10):  # sums to 160
        out.extend(batch.produce_block(size).cells())
    assert out == expected


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_midstream_churn_patches_bank_prefix(lane, codec_name, rng):
    """add/remove after block production patches the cached bank so it
    matches a fresh encode of the final set (§4.1 linearity)."""
    codec, items = codec_items(codec_name, rng, 90)
    enc = RatelessEncoder(codec, items[:70])
    enc.produce_block(120)
    for item in items[70:]:
        enc.add_item(item)
    for item in items[:15]:
        enc.remove_item(item)
    enc.produce_block(40)
    final_set = items[15:]
    fresh = RatelessEncoder(codec, final_set)
    assert fresh.produce_block(160).cells() == [enc.cached(i) for i in range(160)]


def test_add_items_batch_equals_singles(lane, rng):
    codec = SymbolCodec(8)
    items = make_items(rng, 60)
    batch = RatelessEncoder(codec, items)  # add_items fast path
    singles = RatelessEncoder(codec)
    for item in items:
        singles.add_item(item)
    assert batch.produce_block(100).cells() == singles.produce_block(100).cells()


# -- vectorised ingestion ---------------------------------------------------


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_bulk_ingest_bit_identical_across_engines(codec_name, rng):
    """items → bank through the staged pool (NumPy) vs the per-item
    reference engine: identical lanes, identical follow-on stream."""
    if cellbank._np is None:
        pytest.skip("NumPy not available")
    codec_factory = CODECS[codec_name]
    items = make_items(rng, 300, size=codec_factory().symbol_size)
    banks = {}
    for flag in (True, False):
        saved = cellbank.NUMPY_LANE
        cellbank.NUMPY_LANE = flag
        try:
            enc = RatelessEncoder(codec_factory(), items)
            enc.produce_block(200)
            # per-cell production after the bulk block (materialises the
            # pool on the NumPy lane) must continue the same stream
            tail = [enc.produce_next() for _ in range(20)]
            banks[flag] = ([enc.cached(i) for i in range(220)], tail)
        finally:
            cellbank.NUMPY_LANE = saved
    assert banks[True] == banks[False]


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_batch_churn_bit_identical_across_engines(codec_name, rng):
    """add_items/remove_items against a produced prefix: the fused batch
    patch equals the per-item reference patch equals a fresh encode."""
    if cellbank._np is None:
        pytest.skip("NumPy not available")
    codec_factory = CODECS[codec_name]
    items = make_items(rng, 260, size=codec_factory().symbol_size)
    base, fresh = items[:200], items[200:]
    stale = items[:40]
    banks = {}
    for flag in (True, False):
        saved = cellbank.NUMPY_LANE
        cellbank.NUMPY_LANE = flag
        try:
            enc = RatelessEncoder(codec_factory(), base)
            enc.produce_block(150)
            enc.add_items(fresh)
            enc.remove_items(stale)
            enc.produce_block(50)
            banks[flag] = [enc.cached(i) for i in range(200)]
        finally:
            cellbank.NUMPY_LANE = saved
    assert banks[True] == banks[False]
    reference = RatelessEncoder(codec_factory(), items[40:])
    assert banks[True] == reference.produce_block(200).cells()


def test_pool_and_heap_entries_mix(lane, rng):
    """Singles (heap entries) and bulk batches (pool rows) interleave on
    one encoder without disturbing the stream."""
    codec = SymbolCodec(8)
    items = make_items(rng, 120)
    mixed = RatelessEncoder(codec)
    mixed.add_items(items[:50])  # pool (NumPy lane) or entries (scalar)
    for item in items[50:60]:
        mixed.add_item(item)  # always heap entries
    mixed.produce_block(80)
    mixed.add_items(items[60:110])  # staged against a produced prefix
    for item in items[110:]:
        mixed.add_item(item)
    mixed.remove_items(items[:10] + items[55:65])  # spans pool and heap
    mixed.produce_block(40)
    reference = RatelessEncoder(codec, items[10:55] + items[65:])
    assert reference.produce_block(120).cells() == [
        mixed.cached(i) for i in range(120)
    ]


def test_sketch_from_items_bit_identical_across_engines(rng):
    from repro.core.sketch import RatelessSketch

    if cellbank._np is None:
        pytest.skip("NumPy not available")
    for codec_name in sorted(CODECS):
        codec_factory = CODECS[codec_name]
        items = make_items(rng, 150, size=codec_factory().symbol_size)
        sketches = {}
        for flag in (True, False):
            saved = cellbank.NUMPY_LANE
            cellbank.NUMPY_LANE = flag
            try:
                sketches[flag] = RatelessSketch.from_items(
                    items, 120, codec_factory()
                )
            finally:
                cellbank.NUMPY_LANE = saved
        assert sketches[True].cells == sketches[False].cells
        assert sketches[True].set_size == sketches[False].set_size


def test_iblt_fills_bit_identical_across_engines(rng):
    from repro.baselines.met_iblt import MetIBLT
    from repro.baselines.regular_iblt import RegularIBLT

    if cellbank._np is None:
        pytest.skip("NumPy not available")
    codec = SymbolCodec(8)
    items = make_items(rng, 400)
    tables = {}
    for flag in (True, False):
        saved = cellbank.NUMPY_LANE
        cellbank.NUMPY_LANE = flag
        try:
            tables[flag] = (
                RegularIBLT.from_items(items, 300, codec).cells,
                MetIBLT.from_items(items, codec).cells,
            )
        finally:
            cellbank.NUMPY_LANE = saved
    assert tables[True] == tables[False]


# -- decoder ---------------------------------------------------------------


def subtracted_stream(codec, set_a, set_b, m):
    alice = RatelessEncoder(codec, set_a)
    bank = alice.produce_block(m)
    bank.subtract_in_place(RatelessEncoder(codec, set_b).produce_block(m))
    return bank


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_add_coded_block_equals_per_cell(lane, codec_name, rng):
    codec = CODECS[codec_name]()
    a, b = split_sets(rng, shared=120, only_a=30, only_b=25, size=codec.symbol_size)
    stream = subtracted_stream(codec, a, b, 200)
    reference = RatelessDecoder(codec)
    for cell in stream.cells():
        reference.add_coded_symbol(cell)
    batch = RatelessDecoder(codec)
    consumed = batch.add_coded_block(stream)
    assert consumed == len(stream)
    assert batch.decoded == reference.decoded
    assert sorted(batch.remote_values()) == sorted(reference.remote_values())
    assert sorted(batch.local_values()) == sorted(reference.local_values())
    # the peeled lane state reaches the same fixed point
    assert batch._bank == reference._bank
    assert batch._nonzero == reference._nonzero


@pytest.mark.parametrize("codec_name", ["regular8", "irregular8"])
def test_add_coded_block_chunked_split_points_agree(lane, codec_name, rng):
    """Feeding the same stream in arbitrary block sizes converges to the
    same state, including continued ingestion after decode completes."""
    codec = CODECS[codec_name]()
    a, b = split_sets(rng, shared=100, only_a=20, only_b=20, size=codec.symbol_size)
    stream = subtracted_stream(codec, a, b, 180)
    reference = RatelessDecoder(codec)
    for cell in stream.cells():
        reference.add_coded_symbol(cell)
    chunked = RatelessDecoder(codec)
    lo = 0
    for size in (1, 7, 64, 3, 80, 25):  # sums to 180
        chunked.add_coded_block(stream.slice(lo, lo + size))
        lo += size
    assert chunked._bank == reference._bank
    assert sorted(chunked.remote_values()) == sorted(reference.remote_values())
    assert sorted(chunked.local_values()) == sorted(reference.local_values())


def test_add_coded_block_stop_when_decoded_cell_exact(lane, rng):
    """chunk=1 reproduces per-cell early-stop accounting on both engines."""
    codec = SymbolCodec(8)
    a, b = split_sets(rng, shared=80, only_a=8, only_b=8)
    stream = subtracted_stream(codec, a, b, 120)
    reference = RatelessDecoder(codec)
    used_reference = reference.add_stream(stream.cells())
    batch = RatelessDecoder(codec)
    used_batch = batch.add_coded_block(stream, stop_when_decoded=True, chunk=1)
    assert used_batch == used_reference
    assert batch.decoded
    assert batch._bank == reference._bank


def test_add_coded_block_rejects_bad_chunk(rng):
    codec = SymbolCodec(8)
    with pytest.raises(ValueError):
        RatelessDecoder(codec).add_coded_block(
            CodedSymbolBank.zeros(4), stop_when_decoded=True, chunk=0
        )


def test_scalar_and_numpy_decoders_agree(rng):
    if cellbank._np is None:
        pytest.skip("NumPy not available")
    codec = SymbolCodec(8)
    a, b = split_sets(rng, shared=200, only_a=40, only_b=40)
    stream = subtracted_stream(codec, a, b, 300)
    results = {}
    for flag in (True, False):
        saved = cellbank.NUMPY_LANE
        cellbank.NUMPY_LANE = flag
        try:
            decoder = RatelessDecoder(codec)
            decoder.add_coded_block(stream, stop_when_decoded=True)
            results[flag] = (
                decoder.symbols_received,
                sorted(decoder.remote_values()),
                sorted(decoder.local_values()),
                decoder._bank.copy(),
            )
        finally:
            cellbank.NUMPY_LANE = saved
    assert results[True] == results[False]


@given(
    st.sets(st.binary(min_size=8, max_size=8), min_size=0, max_size=50),
    st.sets(st.binary(min_size=8, max_size=8), min_size=0, max_size=50),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_block_paths_reconcile_exactly(set_a, set_b):
    """Whatever the sets, the all-batch pipeline recovers exactly A △ B."""
    codec = SymbolCodec(8)
    m = 24 * (len(set_a ^ set_b) + 2)
    stream = subtracted_stream(codec, set_a, set_b, m)
    decoder = RatelessDecoder(codec)
    decoder.add_coded_block(stream, stop_when_decoded=True)
    assert decoder.decoded
    assert set(decoder.remote_items()) == set_a - set_b
    assert set(decoder.local_items()) == set_b - set_a


# -- wire + session --------------------------------------------------------


def test_write_block_bytes_identical_to_per_cell(lane, rng):
    codec = SymbolCodec(8)
    items = make_items(rng, 64)
    bank = RatelessEncoder(codec, items).produce_block(90)
    one = SymbolStreamWriter(codec, set_size=64)
    per_cell = one.header() + b"".join(one.write(cell) for cell in bank.cells())
    two = SymbolStreamWriter(codec, set_size=64)
    blocked = two.header() + two.write_block(bank)
    assert blocked == per_cell
    assert one.bytes_written == two.bytes_written
    assert one.count_bytes_written == two.count_bytes_written


def test_feed_into_matches_feed(rng):
    codec = SymbolCodec(8)
    items = make_items(rng, 40)
    bank = RatelessEncoder(codec, items).produce_block(50)
    writer = SymbolStreamWriter(codec, set_size=40)
    blob = writer.header() + writer.write_block(bank)
    reader_a = SymbolStreamReader(codec)
    cells = []
    # dribble bytes to exercise partial-cell buffering
    for i in range(0, len(blob), 7):
        cells.extend(reader_a.feed(blob[i : i + 7]))
    assert cells == bank.cells()
    reader_b = SymbolStreamReader(codec)
    parsed = CodedSymbolBank()
    for i in range(0, len(blob), 11):
        reader_b.feed_into(parsed, blob[i : i + 11])
    assert parsed == bank


def test_session_block_run_matches_outcome(lane, rng):
    a, b = split_sets(rng, shared=150, only_a=12, only_b=12)
    exact = ReconciliationSession(a, b, SymbolCodec(8)).run()
    blocked = ReconciliationSession(a, b, SymbolCodec(8)).run(block_size=32)
    assert blocked.only_in_a == exact.only_in_a
    assert blocked.only_in_b == exact.only_in_b
    # block granularity: within one block of the exact count
    assert exact.symbols_used <= blocked.symbols_used < exact.symbols_used + 32


def test_api_session_block_run_matches(lane, rng):
    from repro.api import Session

    a, b = split_sets(rng, shared=120, only_a=10, only_b=10)
    exact = Session(sorted(a), sorted(b), "riblt").run()
    blocked = Session(sorted(a), sorted(b), "riblt").run(block_size=16)
    assert blocked.only_in_a == exact.only_in_a
    assert blocked.only_in_b == exact.only_in_b
    assert exact.symbols_used <= blocked.symbols_used < exact.symbols_used + 16


def test_riblt_adapter_block_payload_bytes_identical(lane, rng):
    from repro.api import get_scheme

    items = make_items(rng, 60)
    handle = get_scheme("riblt")
    singles = handle.new(items)
    payload_singles = b"".join(singles.produce_next() for _ in range(40))
    blocks = handle.new(items)
    payload_blocks = blocks.produce_block(25) + blocks.produce_block(15)
    assert payload_blocks == payload_singles

# -- packed bank (zero-copy pack/unpack) ------------------------------------


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_pack_unpack_round_trip(lane, codec_name, rng):
    """pack → unpack is the identity on every codec shape, including a
    subtracted bank whose counts are negative (signed count field)."""
    codec, items = codec_items(codec_name, rng, 120)
    bank = RatelessEncoder(codec, items).produce_block(90)
    stride = codec.symbol_size + codec.checksum_size + CodedSymbolBank.COUNT_BYTES
    blob = bank.pack(codec)
    assert len(blob) == 90 * stride
    assert CodedSymbolBank.unpack(blob, codec) == bank
    other = RatelessEncoder(codec, items[:40]).produce_block(90)
    diff = other.subtract(bank)  # 40-item minus 120-item: counts go negative
    assert any(c < 0 for c in diff.counts)  # the signed field is exercised
    assert CodedSymbolBank.unpack(diff.pack(codec), codec) == diff


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_pack_bytes_identical_across_engines(codec_name, rng):
    """The vectorised pack/unpack engines are byte-for-byte the scalar
    reference: same blob out, same lanes back."""
    if cellbank._np is None:
        pytest.skip("NumPy not available")
    codec_factory = CODECS[codec_name]
    items = make_items(rng, 80, size=codec_factory().symbol_size)
    codec = codec_factory()
    bank = RatelessEncoder(codec, items).produce_block(64)
    blobs = {}
    parsed = {}
    for flag in (True, False):
        saved = cellbank.NUMPY_LANE
        cellbank.NUMPY_LANE = flag
        try:
            blobs[flag] = bank.pack(codec)
            parsed[flag] = CodedSymbolBank.unpack(blobs[True], codec)
        finally:
            cellbank.NUMPY_LANE = saved
    assert blobs[True] == blobs[False]
    assert parsed[True] == parsed[False] == bank


def test_pack_small_bank_skips_vector_engine(lane, rng):
    """Banks below PACK_MIN_CELLS stay on the scalar engine and still
    round-trip (the threshold is a performance gate, not a format one)."""
    codec = SymbolCodec(8)
    items = make_items(rng, 20)
    bank = RatelessEncoder(codec, items).produce_block(
        cellbank.PACK_MIN_CELLS - 1
    )
    assert CodedSymbolBank.unpack(bank.pack(codec), codec) == bank


def test_unpack_rejects_misaligned_blob(lane):
    codec = SymbolCodec(8)
    with pytest.raises(ValueError, match="stride"):
        CodedSymbolBank.unpack(b"\x00" * 17, codec)


# -- integer-direct batched hashing (decoder peel verification) -------------


def test_siphash_int_batch_matches_bytes_path(rng):
    """siphash24_int_batch == siphash24 over the equivalent byte message
    for every size 1..8, on both the scalar and lane engines."""
    from repro.hashing import siphash as sh

    key = bytes(range(16))
    for size in (1, 3, 7, 8):
        hi = (1 << (8 * size)) - 1
        values = [0, 1, hi] + [rng.getrandbits(8 * size) for _ in range(60)]
        expected = [
            sh.siphash24(key, v.to_bytes(size, "little")) for v in values
        ]
        for flag in (True, False):
            if flag and sh._np is None:
                continue
            saved = sh.NUMPY_LANE
            sh.NUMPY_LANE = flag
            try:
                assert sh.siphash24_int_batch(key, values, size) == expected
                # below the lane threshold the unrolled scalar engine runs
                assert sh.siphash24_int_batch(key, values[:3], size) == expected[:3]
            finally:
                sh.NUMPY_LANE = saved


def test_siphash_int_batch_contract():
    """Same contract as int.to_bytes: out-of-range values raise, on
    either engine, before anything is hashed."""
    from repro.hashing import siphash as sh

    key = bytes(16)
    assert sh.siphash24_int_batch(key, [], 8) == []
    with pytest.raises(OverflowError):
        sh.siphash24_int_batch(key, [1 << 16], 2)
    with pytest.raises(OverflowError):
        sh.siphash24_int_batch(key, [5, -1], 4)
    with pytest.raises(ValueError):
        sh.siphash24_int_batch(key, [1], 9)
    with pytest.raises(ValueError):
        sh.siphash24_int_batch(b"short", [1], 8)


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_checksum_int_batch_matches_per_value(codec_name, rng):
    """The decoder's peel-round verification hash — checksum_int_batch —
    equals per-value checksum_int on every codec, for both the SipHash
    integer fast path and the wide-symbol bytes fallback."""
    from repro.hashing.keyed import SipHasher

    for hasher in (None, SipHasher(key=bytes(range(16)))):
        codec = SymbolCodec(
            CODECS[codec_name]().symbol_size,
            hasher=hasher,
            checksum_size=CODECS[codec_name]().checksum_size,
            irregular=CODECS[codec_name]().irregular,
        )
        values = [
            rng.getrandbits(8 * codec.symbol_size) for _ in range(50)
        ]
        expected = [codec.checksum_int(v) for v in values]
        assert codec.checksum_int_batch(values) == expected
