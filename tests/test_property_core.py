"""Hypothesis property tests for the core invariants (DESIGN.md §7)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.sketch import RatelessSketch
from repro.core.symbols import SymbolCodec

CODEC = SymbolCodec(8)

# Strategy: small universes of distinct 8-byte items.
items_strategy = st.sets(
    st.binary(min_size=8, max_size=8), min_size=0, max_size=60
)


@given(items_strategy, items_strategy)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_reconciliation_always_exact(set_a, set_b):
    """Whatever the sets, subtract-and-peel recovers exactly A △ B."""
    alice = RatelessEncoder(CODEC, set_a)
    bob = RatelessEncoder(CODEC, set_b)
    decoder = RatelessDecoder(CODEC)
    budget = 40 * (len(set_a ^ set_b) + 2)
    while not decoder.decoded and decoder.symbols_received < budget:
        decoder.add_subtracted(alice.produce_next(), bob.produce_next())
    assert decoder.decoded, "decoder failed within generous budget"
    assert set(decoder.remote_items()) == set_a - set_b
    assert set(decoder.local_items()) == set_b - set_a


@given(items_strategy, items_strategy, st.integers(min_value=1, max_value=80))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_linearity_every_prefix(set_a, set_b, size):
    """sketch(A) ⊖ sketch(B) equals sketch(A △ B) in sum/checksum for any
    prefix length."""
    sk_a = RatelessSketch.from_items(set_a, size, CODEC)
    sk_b = RatelessSketch.from_items(set_b, size, CODEC)
    sk_d = RatelessSketch.from_items(set_a ^ set_b, size, CODEC)
    for got, expected in zip(sk_a.subtract(sk_b).cells, sk_d.cells):
        assert got.sum == expected.sum
        assert got.checksum == expected.checksum


@given(items_strategy, st.integers(min_value=1, max_value=64))
@settings(max_examples=40, deadline=None)
def test_encoder_prefix_stable_under_extension(items, size):
    """Producing more symbols never rewrites earlier ones (Fig 3)."""
    enc = RatelessEncoder(CODEC, items)
    prefix = [cell.copy() for cell in enc.produce(size)]
    enc.produce(size)
    assert [enc.cached(i) for i in range(size)] == prefix


@given(items_strategy)
@settings(max_examples=30, deadline=None)
def test_incremental_update_equals_rebuild(items):
    """Add-then-remove churn leaves the cached prefix identical to a fresh
    encoder over the same final set."""
    items = list(items)
    rng = random.Random(42)
    enc = RatelessEncoder(CODEC, items)
    enc.produce(32)
    removed = [item for item in items if rng.random() < 0.3]
    for item in removed:
        enc.remove_item(item)
    final = [item for item in items if item not in set(removed)]
    fresh = RatelessEncoder(CODEC, final)
    assert [enc.cached(i) for i in range(32)] == fresh.produce(32)


@given(items_strategy, items_strategy)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_decoder_partial_results_always_correct(set_a, set_b):
    """Even before success, everything recovered is a true difference."""
    alice = RatelessEncoder(CODEC, set_a)
    bob = RatelessEncoder(CODEC, set_b)
    decoder = RatelessDecoder(CODEC)
    for _ in range(max(4, len(set_a ^ set_b))):  # deliberately too few
        decoder.add_subtracted(alice.produce_next(), bob.produce_next())
    assert set(decoder.remote_items()) <= set_a - set_b
    assert set(decoder.local_items()) <= set_b - set_a


@given(
    st.sets(st.binary(min_size=8, max_size=8), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=48),
)
@settings(max_examples=30, deadline=None)
def test_sketch_insertion_order_irrelevant(items, size):
    """Sketches are set functions: item order must not matter."""
    forward = RatelessSketch.from_items(sorted(items), size, CODEC)
    backward = RatelessSketch.from_items(sorted(items, reverse=True), size, CODEC)
    assert forward == backward
