"""Merkle trie: determinism, persistence, content addressing."""

import pytest

from repro.baselines.merkle.nibbles import key_to_nibbles, max_depth, nibble_at
from repro.baselines.merkle.trie import (
    EMPTY_HASH,
    NodeStore,
    Trie,
    decode_node,
    encode_branch,
    encode_leaf,
    hash_node,
)


def random_kv(rng, count, key_size=20, value_size=72):
    out = {}
    while len(out) < count:
        out[rng.randbytes(key_size)] = rng.randbytes(value_size)
    return out


def test_nibbles():
    assert key_to_nibbles(b"\xab\xcd") == (0xA, 0xB, 0xC, 0xD)
    assert nibble_at(b"\xab\xcd", 0) == 0xA
    assert nibble_at(b"\xab\xcd", 3) == 0xD
    assert max_depth(20) == 40


def test_node_encodings_roundtrip():
    kind, payload = decode_node(encode_leaf(b"k" * 20, b"v" * 72))
    assert kind == "leaf"
    assert payload == (b"k" * 20, b"v" * 72)
    children = [EMPTY_HASH] * 16
    children[3] = b"\x01" * 32
    children[15] = b"\x02" * 32
    kind, decoded = decode_node(encode_branch(children))
    assert kind == "branch"
    assert decoded == children


def test_branch_encoding_sparse():
    """Only non-empty children occupy space (bitmap encoding)."""
    empty = encode_branch([EMPTY_HASH] * 16)
    one = encode_branch([b"\x01" * 32] + [EMPTY_HASH] * 15)
    assert len(one) == len(empty) + 32


def test_unknown_tag_rejected():
    with pytest.raises(ValueError):
        decode_node(b"\xff\x00")


def test_empty_trie():
    trie = Trie(NodeStore())
    assert trie.root_hash == EMPTY_HASH
    assert trie.get(b"k" * 20) is None
    assert list(trie.items()) == []
    assert trie.node_count() == 0


def test_get_after_updates(rng):
    kv = random_kv(rng, 200)
    trie = Trie.from_items(kv.items())
    for key, value in kv.items():
        assert trie.get(key) == value
    assert trie.get(b"\x00" * 20) is None or b"\x00" * 20 in kv


def test_items_complete(rng):
    kv = random_kv(rng, 100)
    trie = Trie.from_items(kv.items())
    assert dict(trie.items()) == kv


def test_root_hash_order_independent(rng):
    """The root is a pure function of the map — insertion order must not
    matter (the property replicas rely on to compare states)."""
    kv = random_kv(rng, 80)
    pairs = list(kv.items())
    trie_forward = Trie.from_items(pairs)
    trie_backward = Trie.from_items(reversed(pairs))
    assert trie_forward.root_hash == trie_backward.root_hash


def test_update_changes_root(rng):
    kv = random_kv(rng, 50)
    trie = Trie.from_items(kv.items())
    key = next(iter(kv))
    updated = trie.update(key, b"\x01" * 72)
    assert updated.root_hash != trie.root_hash
    assert updated.get(key) == b"\x01" * 72
    # persistence: the old version still reads the old value
    assert trie.get(key) == kv[key]


def test_overwrite_same_value_same_root(rng):
    kv = random_kv(rng, 20)
    trie = Trie.from_items(kv.items())
    key = next(iter(kv))
    again = trie.update(key, kv[key])
    assert again.root_hash == trie.root_hash


def test_structure_sharing(rng):
    """Persistent updates reuse untouched subtrees: far fewer new nodes
    than the trie has in total."""
    kv = random_kv(rng, 300)
    store = NodeStore()
    trie = Trie.from_items(kv.items(), store)
    before = len(store)
    trie.update(next(iter(kv)), b"\x02" * 72)
    new_nodes = len(store) - before
    assert new_nodes <= 10  # ~depth of the trie, not its size


def test_content_addressing_verified():
    store = NodeStore()
    encoding = encode_leaf(b"a" * 20, b"b" * 72)
    node_hash = hash_node(encoding)
    store.put_hashed(node_hash, encoding)
    with pytest.raises(ValueError):
        store.put_hashed(node_hash, encoding + b"x")


def test_reachable_store(rng):
    kv = random_kv(rng, 100)
    store = NodeStore()
    trie = Trie.from_items(kv.items(), store)
    # pollute the shared store with another version's nodes
    trie.update(next(iter(kv)), b"\x03" * 72)
    own = trie.reachable_store()
    assert len(own) == trie.node_count()
    assert dict(Trie(own, trie.root_hash).items()) == kv


def test_diff_leaves(rng):
    kv = random_kv(rng, 60)
    store = NodeStore()
    trie_a = Trie.from_items(kv.items(), store)
    key = next(iter(kv))
    trie_b = trie_a.update(key, b"\x04" * 72)
    only_a, only_b = trie_a.diff_leaves(trie_b)
    assert only_a == {key} and only_b == {key}


def test_deep_collision_keys():
    """Keys sharing long nibble prefixes split into branch chains."""
    store = NodeStore()
    key_a = b"\xaa" * 19 + b"\x00"
    key_b = b"\xaa" * 19 + b"\x01"
    trie = Trie.from_items([(key_a, b"A" * 72), (key_b, b"B" * 72)], store)
    assert trie.get(key_a) == b"A" * 72
    assert trie.get(key_b) == b"B" * 72
    assert trie.node_count() >= 39  # long shared prefix => deep chain


def test_duplicate_key_same_depth_rejected():
    store = NodeStore()
    key = b"\x11" * 20
    trie = Trie.from_items([(key, b"A" * 72)], store)
    # same key is an overwrite, not a split
    trie2 = trie.update(key, b"B" * 72)
    assert trie2.get(key) == b"B" * 72
