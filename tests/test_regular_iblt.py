"""Regular IBLT: peel correctness, provisioning, and the Appendix A
inflexibility theorems."""

import random

import pytest

from repro.baselines.regular_iblt import (
    CELL_OVERHEAD_BYTES,
    RegularIBLT,
    recommended_cells,
)
from helpers import make_items, split_sets


def test_insert_delete_roundtrip(codec8, rng):
    table = RegularIBLT(30, codec8)
    item = rng.randbytes(8)
    table.insert(item)
    table.delete_value(codec8.to_int(item))
    assert all(cell.is_zero() for cell in table.cells)


def test_positions_distinct(codec8, rng):
    table = RegularIBLT(30, codec8, hash_count=3)
    for _ in range(100):
        positions = table._positions(rng.getrandbits(64))
        assert len(set(positions)) == 3
        # one per sub-table
        assert sorted(p // table.subtable_size for p in positions) == [0, 1, 2]


def test_geometry_validation(codec8):
    with pytest.raises(ValueError):
        RegularIBLT(30, codec8, hash_count=1)
    with pytest.raises(ValueError):
        RegularIBLT(2, codec8, hash_count=3)


def test_subtract_requires_same_geometry(codec8, rng):
    a = RegularIBLT(30, codec8)
    b = RegularIBLT(33, codec8)
    with pytest.raises(ValueError):
        a.subtract(b)


def test_reconciliation(codec8, rng):
    a, b = split_sets(rng, shared=400, only_a=25, only_b=25)
    m = recommended_cells(50)
    ta = RegularIBLT.from_items(a, m, codec8)
    tb = RegularIBLT.from_items(b, m, codec8)
    result = ta.subtract(tb).decode()
    assert result.success
    assert set(result.remote) == a - b
    assert set(result.local) == b - a


def test_decode_never_wrong_even_when_failing(codec8, rng):
    a, b = split_sets(rng, shared=50, only_a=60, only_b=60)
    table = RegularIBLT.from_items(a, 60, codec8).subtract(
        RegularIBLT.from_items(b, 60, codec8)
    )
    result = table.decode()
    assert not result.success
    assert set(result.remote) <= a - b
    assert set(result.local) <= b - a


def test_recommended_cells_monotone():
    values = [recommended_cells(d) for d in (1, 2, 5, 10, 50, 100, 1000)]
    assert all(a <= b for a, b in zip(values, values[1:]))


def test_recommended_cells_multiplier_shrinks():
    """Small d needs a much larger multiplier (the Fig 7 penalty)."""
    assert recommended_cells(1) / 1 >= 10
    assert recommended_cells(1000) / 1000 < 2.0


def test_recommended_cells_rejects_zero():
    with pytest.raises(ValueError):
        recommended_cells(0)


def test_recommended_cells_high_success_rate(codec8):
    """The calibrated table must actually decode ≥ 95% of the time
    (the Fig 7 criterion is stricter; full calibration runs in the bench)."""
    rng = random.Random(7)
    for d in (10, 100):
        m = recommended_cells(d)
        failures = 0
        trials = 40
        for _ in range(trials):
            a, b = split_sets(rng, shared=50, only_a=d // 2, only_b=d - d // 2)
            diff = RegularIBLT.from_items(a, m, codec8).subtract(
                RegularIBLT.from_items(b, m, codec8)
            )
            if not diff.decode().success:
                failures += 1
        assert failures <= 2, f"d={d}: {failures}/{trials} failures at m={m}"


def test_wire_size_accounting(codec32):
    table = RegularIBLT(90, codec32)
    assert table.wire_size() == 90 * (32 + CELL_OVERHEAD_BYTES)


# --- Appendix A: inflexibility of regular IBLTs -------------------------------


def test_theorem_a1_undersized_recovers_nothing(codec8):
    """Thm A.1: with n source symbols ≫ m cells, peeling cannot even start
    (w.h.p.) — undersized IBLTs are useless, unlike rateless prefixes."""
    rng = random.Random(99)
    recovered_total = 0
    trials = 20
    for _ in range(trials):
        items = make_items(rng, 150)  # n = 150, m = 30
        table = RegularIBLT.from_items(items, 30, codec8)
        result = table.decode()
        assert not result.success
        recovered_total += result.difference_size
    assert recovered_total <= trials  # ~0 recoveries on average


def test_theorem_a2_truncated_prefix_fails(codec8):
    """Thm A.2: decoding from a truncated prefix of a regular IBLT fails
    with probability → 1 as the dropped fraction grows."""
    rng = random.Random(17)
    n = 60
    m = recommended_cells(n)
    failures_half = 0
    trials = 15
    for _ in range(trials):
        items = make_items(rng, n)
        table = RegularIBLT.from_items(items, m, codec8)
        assert table.decode().success
        if not table.decode(prefix_cells=m // 2).success:
            failures_half += 1
    assert failures_half == trials  # dropping half the cells is fatal


def test_contrast_rateless_prefix_succeeds(codec8):
    """The same truncation scenario with Rateless IBLT: a prefix sized to
    the *actual* difference succeeds — the whole point of the paper."""
    from repro.core.sketch import RatelessSketch

    rng = random.Random(23)
    items = make_items(rng, 60)
    sketch = RatelessSketch.from_items(items, 1024, codec8)
    # use only a 2·n prefix of the long sketch
    result = sketch.truncated(120).decode()
    assert result.success
    assert set(result.remote) == set(items)
