"""Polynomials over GF(2^m): algebra and the trace-splitting root finder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pinsketch import poly
from repro.baselines.pinsketch.gf2 import GF2m

F16 = GF2m(16)
F64 = GF2m(64)

coeffs16 = st.lists(st.integers(0, F16.mask), min_size=0, max_size=8)


def test_trim_and_degree():
    assert poly.trim([1, 2, 0, 0]) == [1, 2]
    assert poly.degree([]) == -1
    assert poly.degree([5]) == 0
    assert poly.degree([0, 1]) == 1


def test_add_self_cancels():
    p = [1, 2, 3]
    assert poly.add(p, p) == []


@given(coeffs16, coeffs16)
@settings(max_examples=50, deadline=None)
def test_add_commutes(p, q):
    assert poly.add(p, q) == poly.add(q, p)


@given(coeffs16, coeffs16)
@settings(max_examples=50, deadline=None)
def test_mul_degree_adds(p, q):
    p, q = poly.trim(list(p)), poly.trim(list(q))
    product = poly.mul(F16, p, q)
    if p and q:
        assert poly.degree(product) == poly.degree(p) + poly.degree(q)
    else:
        assert product == []


@given(coeffs16, coeffs16)
@settings(max_examples=50, deadline=None)
def test_divmod_identity(p, q):
    q = poly.trim(list(q))
    if not q:
        return
    quotient, remainder = poly.divmod_poly(F16, p, q)
    recombined = poly.add(poly.mul(F16, quotient, q), remainder)
    assert recombined == poly.trim(list(p))
    assert poly.degree(remainder) < poly.degree(q)


def test_divmod_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        poly.divmod_poly(F16, [1, 2], [])


def test_gcd_of_products():
    """gcd((x−a)(x−b), (x−a)(x−c)) = (x−a) for distinct a, b, c."""
    a, b, c = 3, 77, 1234
    left = poly.from_roots(F16, [a, b])
    right = poly.from_roots(F16, [a, c])
    g = poly.gcd(F16, left, right)
    assert g == poly.monic(F16, poly.from_roots(F16, [a]))


@given(coeffs16)
@settings(max_examples=40, deadline=None)
def test_gcd_divides_both(p):
    q = [7, 1]  # x + 7
    g = poly.gcd(F16, p, q)
    if poly.trim(list(p)) and g:
        _, r1 = poly.divmod_poly(F16, p, g)
        _, r2 = poly.divmod_poly(F16, q, g)
        assert r1 == [] and r2 == []


def test_evaluate_at_roots():
    roots = [5, 99, 1023]
    p = poly.from_roots(F16, roots)
    for r in roots:
        assert poly.evaluate(F16, p, r) == 0
    assert poly.evaluate(F16, p, 7) != 0


def test_from_roots_monic():
    p = poly.from_roots(F16, [1, 2, 3])
    assert p[-1] == 1
    assert poly.degree(p) == 3


def test_sqr_mod_matches_mul_mod():
    modulus = poly.from_roots(F16, [9, 10, 11, 12])
    p = [3, 1, 4, 1]
    assert poly.sqr_mod(F16, p, modulus) == poly.mul_mod(F16, p, p, modulus)


@pytest.mark.parametrize("field,count", [(F16, 5), (F16, 12), (F64, 8)])
def test_find_roots_recovers_all(field, count):
    rng = random.Random(count * field.m)
    roots = set()
    while len(roots) < count:
        r = rng.getrandbits(field.m)
        if r:
            roots.add(r)
    p = poly.from_roots(field, sorted(roots))
    found = poly.find_roots(field, p)
    assert sorted(found) == sorted(roots)


def test_find_roots_constant_and_linear():
    assert poly.find_roots(F16, [1]) == []
    assert poly.find_roots(F16, [42, 1]) == [42]


def test_find_roots_irreducible_factor_detected():
    """A polynomial with an irreducible quadratic factor yields only the
    linear roots — the missing ones signal decode failure upstream."""
    # x² + x + c is irreducible iff Tr(c) = 1; find such a c (note: all
    # tiny values happen to have trace 0 under this modulus).
    rng = random.Random(6)
    c = next(
        c
        for c in (rng.getrandbits(16) for _ in range(10_000))
        if c and F16.trace(c) == 1
    )
    irreducible = [c, 1, 1]
    with_root = poly.mul(F16, irreducible, poly.from_roots(F16, [77]))
    found = poly.find_roots(F16, with_root)
    assert found == [77]


def test_scale_and_monic():
    p = [2, 4, 6]
    scaled = poly.scale(F16, p, 0)
    assert scaled == []
    m = poly.monic(F16, p)
    assert m[-1] == 1
    assert poly.evaluate(F16, m, 1) == F16.mul(
        poly.evaluate(F16, p, 1), F16.inv(6)
    )
