"""Cross-module integration: all schemes agree; the §7.3 pipeline holds up."""

import random

from repro.baselines.cpi import reconcile_cpi
from repro.baselines.merkle import Trie, state_heal
from repro.baselines.met_iblt import MetIBLT
from repro.baselines.pinsketch import GF2m, PinSketch
from repro.baselines.regular_iblt import RegularIBLT, recommended_cells
from repro.core.session import reconcile
from repro.core.symbols import SymbolCodec
from repro.ledger import Chain, build_scenario
from repro.ledger.workload import measure_riblt_plan
from repro.net.protocols import simulate_riblt_sync, simulate_state_heal


def test_all_schemes_agree_on_same_workload():
    """Rateless IBLT, regular IBLT, MET-IBLT, PinSketch, and CPI must
    recover the identical symmetric difference from one workload."""
    rng = random.Random(2024)
    universe = []
    seen = set()
    while len(universe) < 260:
        v = rng.getrandbits(60) + 1  # nonzero, < 2^61−1 for CPI
        if v not in seen:
            seen.add(v)
            universe.append(v)
    a_vals = set(universe[:240])
    b_vals = set(universe[20:])
    expected_a = a_vals - b_vals
    expected_b = b_vals - a_vals

    codec = SymbolCodec(8)
    to_item = lambda v: v.to_bytes(8, "little")
    a_items = {to_item(v) for v in a_vals}
    b_items = {to_item(v) for v in b_vals}

    # Rateless IBLT
    out = reconcile(a_items, b_items, symbol_size=8)
    assert {int.from_bytes(i, "little") for i in out.only_in_a} == expected_a
    assert {int.from_bytes(i, "little") for i in out.only_in_b} == expected_b

    # Regular IBLT
    m = recommended_cells(40)
    reg = RegularIBLT.from_items(a_items, m, codec).subtract(
        RegularIBLT.from_items(b_items, m, codec)
    )
    result = reg.decode()
    assert result.success
    assert {int.from_bytes(i, "little") for i in result.remote} == expected_a

    # MET-IBLT
    met = MetIBLT.from_items(a_items, codec).subtract(
        MetIBLT.from_items(b_items, codec)
    )
    met_result, _ = met.decode_smallest_prefix()
    assert met_result.success
    assert {int.from_bytes(i, "little") for i in met_result.remote} == expected_a

    # PinSketch
    field = GF2m(64)
    pin = PinSketch.from_items(a_vals, field, 64).subtract(
        PinSketch.from_items(b_vals, field, 64)
    )
    assert set(pin.decode()) == expected_a | expected_b

    # CPI
    only_a, only_b = reconcile_cpi(a_vals, b_vals, difference_bound=44)
    assert set(only_a) == expected_a and set(only_b) == expected_b


def test_ledger_sync_end_to_end():
    """Full §7.3 pipeline: chain → scenario → riblt sync vs state heal."""
    chain = Chain(num_accounts=4000, seed=11, updates_per_block=25, creates_per_block=3)
    chain.advance(12)
    scenario = build_scenario(chain, staleness_blocks=6)

    # (1) set reconciliation recovers exactly the account-state difference
    out = reconcile(scenario.alice_items, scenario.bob_items, symbol_size=92)
    assert out.only_in_a == scenario.alice_items - scenario.bob_items
    assert out.only_in_b == scenario.bob_items - scenario.alice_items

    # (2) the trie diff agrees with the set diff on changed addresses
    changed_keys = {item[:20] for item in out.only_in_a | out.only_in_b}
    only_alice, only_bob = scenario.alice_trie.diff_leaves(scenario.bob_trie)
    assert only_alice | only_bob == changed_keys

    # (3) state heal converges Bob to Alice's root
    store = scenario.bob_store.copy()
    report = state_heal(store, scenario.alice_trie)
    healed = Trie(store, scenario.alice_trie.root_hash)
    assert dict(healed.items()) == dict(scenario.alice_trie.items())

    # (4) under equal network conditions riblt finishes faster and the
    # protocols transfer sane byte volumes
    plan = measure_riblt_plan(scenario, calibrated_line_rate_bps=170e6)
    riblt = simulate_riblt_sync(plan, 20e6, 0.05)
    heal = simulate_state_heal(report, 20e6, 0.05)
    assert riblt.completion_time < heal.completion_time
    assert heal.round_trips >= 3
    assert riblt.bytes_down_at_decode >= plan.symbols_needed * 92


def test_riblt_multisource_union():
    """§1: coded symbols are universal — Bob reconciles with two different
    peers off the same locally-built decoder inputs."""
    rng = random.Random(5)
    base = [rng.randbytes(8) for _ in range(150)]
    bob = set(base)
    peer_a = set(base[5:]) | {rng.randbytes(8) for _ in range(5)}
    peer_b = set(base[:-5]) | {rng.randbytes(8) for _ in range(5)}
    for peer in (peer_a, peer_b):
        out = reconcile(peer, bob, symbol_size=8)
        bob |= out.only_in_a
    assert peer_a | peer_b <= bob


def test_estimator_plus_regular_iblt_pipeline():
    """The Fig 7 'Regular IBLT + Estimator' deployment pattern: estimate d,
    provision the table with headroom, reconcile."""
    from repro.baselines.strata import StrataEstimator

    rng = random.Random(31)
    base = [rng.randbytes(32) for _ in range(1200)]
    a = set(base)
    b = set(base[60:]) | {rng.randbytes(32) for _ in range(60)}
    codec = SymbolCodec(32)
    ea = StrataEstimator.from_items(a)
    eb = StrataEstimator.from_items(b)
    estimate = ea.estimate(eb)
    provisioned = recommended_cells(max(1, 2 * estimate))  # 2x headroom
    diff = RegularIBLT.from_items(a, provisioned, codec).subtract(
        RegularIBLT.from_items(b, provisioned, codec)
    )
    result = diff.decode()
    assert result.success
    assert set(result.remote) == a - b
    assert set(result.local) == b - a
