#!/usr/bin/env python3
"""Record golden wire traffic and results from the reconciliation drivers.

Run ONCE against the pre-refactor (legacy) drivers to freeze their
observable behaviour into ``protocol_golden.json``; the protocol-engine
tests then assert the refactored stack reproduces every recording
bit for bit.  Re-running against the current tree regenerates the file
(useful only for intentional, documented wire-format changes).

    PYTHONPATH=src python tests/golden/record_golden.py
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import sys
from pathlib import Path

from repro.api import Session, get_scheme, reconcile, scheme_info, available_schemes

HERE = Path(__file__).resolve().parent
OUT = HERE / "protocol_golden.json"

ITEM = 7

# Mirrors tests/test_api.py so the goldens cover the acceptance fixtures.
FIXTURES: dict[str, tuple[int, int, int]] = {
    "identical": (120, 0, 0),
    "empty": (0, 0, 0),
    "one_diff": (120, 1, 0),
    "disjoint": (0, 25, 25),
    "hundred_diff": (150, 50, 50),
}


def _items(rng: random.Random, count: int) -> list[bytes]:
    out: set[bytes] = set()
    while len(out) < count:
        item = rng.randbytes(ITEM)
        if item != bytes(ITEM):
            out.add(item)
    return sorted(out)


def sets_for(fixture: str) -> tuple[set[bytes], set[bytes]]:
    shared, only_a, only_b = FIXTURES[fixture]
    rng = random.Random(0xAB1DE + len(fixture) * 1009 + shared + only_a)
    pool = _items(rng, shared + only_a + only_b)
    common = set(pool[:shared])
    a = common | set(pool[shared : shared + only_a])
    b = common | set(pool[shared + only_a :])
    return a, b


def sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def record_api_stream() -> dict:
    """The riblt streaming driver: exact wire payload per fixture."""
    out = {}
    for fixture in sorted(FIXTURES):
        a, b = sets_for(fixture)
        per_block = {}
        for block_size in (1, 8):
            session = Session(sorted(a), sorted(b), "riblt", symbol_size=ITEM)
            payload = bytearray()
            while not session.decoded:
                chunk = (
                    session.alice.produce_block(block_size)
                    if block_size > 1
                    else session.alice.produce_next()
                )
                payload.extend(chunk)
                session.bytes_sent += len(chunk)
                session.steps += block_size
                session.bob.absorb(bytes(chunk))
            result = session.run()
            per_block[str(block_size)] = {
                "payload_hex": bytes(payload).hex(),
                "payload_sha256": sha(bytes(payload)),
                "payload_len": len(payload),
                "bytes_on_wire": result.bytes_on_wire,
                "symbols_used": result.symbols_used,
                "rounds": result.rounds,
            }
        out[fixture] = per_block
    return out


def record_api_schemes() -> dict:
    """reconcile() result fields for every scheme x fixture (bounded)."""
    out = {}
    for scheme in available_schemes():
        rows = {}
        for fixture in sorted(FIXTURES):
            a, b = sets_for(fixture)
            d = len(a ^ b)
            result = reconcile(
                a, b, scheme=scheme, symbol_size=ITEM, difference_bound=d
            )
            rows[fixture] = {
                "bytes_on_wire": result.bytes_on_wire,
                "symbols_used": result.symbols_used,
                "rounds": result.rounds,
                "difference_size": result.difference_size,
            }
        out[scheme] = rows
    return out


def record_api_estimator() -> dict:
    """Estimator-composed runs (no difference_bound) for fixed schemes."""
    out = {}
    for scheme in available_schemes():
        if not scheme_info(scheme).capabilities.fixed_capacity:
            continue
        a, b = sets_for("one_diff")
        result = reconcile(a, b, scheme=scheme, symbol_size=ITEM)
        out[scheme] = {
            "bytes_on_wire": result.bytes_on_wire,
            "symbols_used": result.symbols_used,
            "rounds": result.rounds,
        }
    return out


class _RecReader:
    def __init__(self, reader: asyncio.StreamReader, buf: bytearray) -> None:
        self._reader = reader
        self._buf = buf

    async def readexactly(self, n: int) -> bytes:
        data = await self._reader.readexactly(n)
        self._buf.extend(data)
        return data

    async def read(self, n: int = -1) -> bytes:
        data = await self._reader.read(n)
        self._buf.extend(data)
        return data


class _RecWriter:
    def __init__(self, writer: asyncio.StreamWriter, buf: bytearray) -> None:
        self._writer = writer
        self._buf = buf

    def write(self, data: bytes) -> None:
        self._buf.extend(data)
        self._writer.write(data)

    async def drain(self) -> None:
        await self._writer.drain()

    def close(self) -> None:
        self._writer.close()

    async def wait_closed(self) -> None:
        await self._writer.wait_closed()


def record_service() -> dict:
    """One-shard service sessions, both directions, via a recording tap."""
    from repro.service.client import _sync_over
    from repro.service.server import ReconciliationServer

    def items_range(lo: int, hi: int) -> list[bytes]:
        return [b"%08d" % i for i in range(lo, hi)]

    async def run_session(server_items, client_items, scheme, **kwargs):
        params = dict(kwargs.pop("params", {}))
        server = ReconciliationServer(
            server_items, scheme=scheme, num_shards=1, **params
        )
        host, port = await server.start()
        up = bytearray()  # client -> server
        down = bytearray()  # server -> client
        reader, writer = await asyncio.open_connection(host, port)
        handle = get_scheme(scheme, **params)
        if handle.params.symbol_size is None:
            handle = handle.with_params(symbol_size=len(server_items[0]))
        try:
            result = await _sync_over(
                _RecReader(reader, down),
                _RecWriter(writer, up),
                handle,
                list(client_items),
                num_shards=0,
                push=False,
                max_symbols=None,
                capture_payloads=True,
                max_frame=4 << 20,
                **kwargs,
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            await server.close()
        return result, bytes(up), bytes(down)

    out = {}

    # Stream mode (riblt): the client->server transcript is deterministic;
    # the server->client payload prefix equals the §4.1 universal stream.
    result, up, down = asyncio.run(
        run_session(
            items_range(0, 300), items_range(5, 305), "riblt",
            difference_bound=0, max_rounds=4,
        )
    )
    payload = bytes(result.payloads[0])
    out["stream"] = {
        "client_to_server_hex": up.hex(),
        "payload_hex": payload.hex(),
        "payload_len": len(payload),
        "payload_sha256": sha(payload),
        "symbols": result.symbols,
        "bytes_received": result.bytes_received,
        "only_in_server": len(result.only_in_server),
        "only_in_client": len(result.only_in_client),
    }

    # Sketch mode (regular_iblt) with an undershot initial bound: the
    # RETRY doubling makes the full transcript exercise every frame type.
    result, up, down = asyncio.run(
        run_session(
            items_range(0, 200), items_range(16, 216), "regular_iblt",
            difference_bound=1, max_rounds=8,
        )
    )
    out["sketch"] = {
        "client_to_server_hex": up.hex(),
        "server_to_client_sha256": sha(down),
        "server_to_client_len": len(down),
        "rounds": result.per_shard[0].rounds,
        "bytes_received": result.bytes_received,
        "only_in_server": len(result.only_in_server),
        "only_in_client": len(result.only_in_client),
    }
    return out


def main() -> int:
    record = {
        "item_size": ITEM,
        "api_stream": record_api_stream(),
        "api_schemes": record_api_schemes(),
        "api_estimator": record_api_estimator(),
        "service": record_service(),
    }
    OUT.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
