"""End-to-end reconciliation sessions and the public `reconcile` API."""

import pytest

from repro.core.session import ReconciliationSession, reconcile
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import SipHasher

from helpers import split_sets


def test_reconcile_basic(rng):
    a, b = split_sets(rng, shared=200, only_a=10, only_b=10)
    out = reconcile(a, b, symbol_size=8)
    assert out.only_in_a == a - b
    assert out.only_in_b == b - a
    assert out.difference_size == 20
    assert out.symbols_used >= 20
    assert out.overhead == out.symbols_used / 20


def test_reconcile_empty_difference(rng):
    a, _ = split_sets(rng, shared=50, only_a=0, only_b=0)
    out = reconcile(a, a, symbol_size=8)
    assert out.only_in_a == set() and out.only_in_b == set()
    assert out.symbols_used == 1  # first zero cell signals completion


def test_reconcile_both_empty():
    out = reconcile([], [], symbol_size=8)
    assert out.symbols_used == 1
    assert out.difference_size == 0


def test_bytes_on_wire_accounting(rng):
    a, b = split_sets(rng, shared=100, only_a=5, only_b=5)
    out = reconcile(a, b, symbol_size=8)
    # each cell is ≥ 8 (sum) + 8 (checksum) + 1 (count); plus header
    assert out.bytes_on_wire >= out.symbols_used * 17
    assert out.bytes_on_wire < out.symbols_used * 19 + 32


def test_reconcile_with_siphash(rng):
    a, b = split_sets(rng, shared=64, only_a=3, only_b=3)
    out = reconcile(a, b, symbol_size=8, hasher=SipHasher())
    assert out.only_in_a == a - b
    assert out.only_in_b == b - a


def test_session_stepwise(rng):
    a, b = split_sets(rng, shared=80, only_a=4, only_b=4)
    session = ReconciliationSession(a, b, SymbolCodec(8))
    steps = 0
    while not session.step():
        steps += 1
        assert steps < 10_000
    assert session.decoded
    assert set(session.decoder.remote_items()) == a - b


def test_session_max_symbols_raises(rng):
    a, b = split_sets(rng, shared=10, only_a=50, only_b=50)
    session = ReconciliationSession(a, b, SymbolCodec(8))
    with pytest.raises(RuntimeError):
        session.run(max_symbols=3)


def test_reconcile_symbol_size_mismatch_items(rng):
    with pytest.raises(ValueError):
        reconcile([b"toolongforsize8"], [b"x" * 8], symbol_size=8)


def test_overhead_close_to_paper_at_moderate_d(rng):
    """d = 100: average overhead ≈ 1.45 (Fig 5); single run ≤ 2.0 w.h.p."""
    a, b = split_sets(rng, shared=1000, only_a=50, only_b=50)
    out = reconcile(a, b, symbol_size=8)
    assert out.overhead < 2.0
