"""End-to-end reconciliation sessions and the public `reconcile` API."""

import pytest

from repro.core.session import (
    ReconciliationSession,
    SymbolBudgetExceeded,
    reconcile,
)
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import SipHasher

from helpers import split_sets


def test_reconcile_basic(rng):
    a, b = split_sets(rng, shared=200, only_a=10, only_b=10)
    out = reconcile(a, b, symbol_size=8)
    assert out.only_in_a == a - b
    assert out.only_in_b == b - a
    assert out.difference_size == 20
    assert out.symbols_used >= 20
    assert out.overhead == out.symbols_used / 20


def test_reconcile_empty_difference(rng):
    a, _ = split_sets(rng, shared=50, only_a=0, only_b=0)
    out = reconcile(a, a, symbol_size=8)
    assert out.only_in_a == set() and out.only_in_b == set()
    assert out.symbols_used == 1  # first zero cell signals completion


def test_reconcile_both_empty():
    out = reconcile([], [], symbol_size=8)
    assert out.symbols_used == 1
    assert out.difference_size == 0


def test_bytes_on_wire_accounting(rng):
    a, b = split_sets(rng, shared=100, only_a=5, only_b=5)
    out = reconcile(a, b, symbol_size=8)
    # each cell is ≥ 8 (sum) + 8 (checksum) + 1 (count); plus header
    assert out.bytes_on_wire >= out.symbols_used * 17
    assert out.bytes_on_wire < out.symbols_used * 19 + 32


def test_reconcile_with_siphash(rng):
    a, b = split_sets(rng, shared=64, only_a=3, only_b=3)
    out = reconcile(a, b, symbol_size=8, hasher=SipHasher())
    assert out.only_in_a == a - b
    assert out.only_in_b == b - a


def test_session_stepwise(rng):
    a, b = split_sets(rng, shared=80, only_a=4, only_b=4)
    session = ReconciliationSession(a, b, SymbolCodec(8))
    steps = 0
    while not session.step():
        steps += 1
        assert steps < 10_000
    assert session.decoded
    assert set(session.decoder.remote_items()) == a - b


def test_session_max_symbols_raises(rng):
    a, b = split_sets(rng, shared=10, only_a=50, only_b=50)
    session = ReconciliationSession(a, b, SymbolCodec(8))
    with pytest.raises(RuntimeError):
        session.run(max_symbols=3)


def test_reconcile_symbol_size_mismatch_items(rng):
    with pytest.raises(ValueError):
        reconcile([b"toolongforsize8"], [b"x" * 8], symbol_size=8)


def test_overhead_close_to_paper_at_moderate_d(rng):
    """d = 100: average overhead ≈ 1.45 (Fig 5); single run ≤ 2.0 w.h.p."""
    a, b = split_sets(rng, shared=1000, only_a=50, only_b=50)
    out = reconcile(a, b, symbol_size=8)
    assert out.overhead < 2.0


def test_budget_exhaustion_is_typed(rng):
    """max_symbols overrun raises SymbolBudgetExceeded (a RuntimeError
    subclass, so pre-existing handlers still catch it) with spend data."""
    a, b = split_sets(rng, shared=10, only_a=30, only_b=30)
    session = ReconciliationSession(a, b, SymbolCodec(8))
    with pytest.raises(SymbolBudgetExceeded) as excinfo:
        session.run(max_symbols=3)
    assert excinfo.value.max_symbols == 3
    assert excinfo.value.symbols_sent >= 3
    assert isinstance(excinfo.value, RuntimeError)


def test_api_budget_exception_is_one_family(rng):
    """The api-layer exception is catchable as the core type AND as
    ReconcileError — one except clause covers every layer."""
    from repro.api import ReconcileError
    from repro.api import SymbolBudgetExceeded as ApiBudget
    from repro.api import reconcile as api_reconcile

    a, b = split_sets(rng, shared=10, only_a=20, only_b=20)
    with pytest.raises(SymbolBudgetExceeded):
        api_reconcile(a, b, scheme="riblt", symbol_size=8, max_symbols=2)
    with pytest.raises(ReconcileError):
        api_reconcile(a, b, scheme="riblt", symbol_size=8, max_symbols=2)
    assert issubclass(ApiBudget, SymbolBudgetExceeded)
    assert issubclass(ApiBudget, ReconcileError)


def test_run_bounded_bool_wrapper(rng):
    """The bool API survives as a wrapper over the typed exception."""
    a, b = split_sets(rng, shared=10, only_a=30, only_b=30)
    session = ReconciliationSession(a, b, SymbolCodec(8))
    assert session.run_bounded(max_symbols=3) is False
    # The same session may keep going with a bigger budget.
    assert session.run_bounded(max_symbols=5000) is True
    outcome = session.outcome()
    assert outcome.only_in_a == a - b
    assert outcome.only_in_b == b - a
