"""Multi-peer union synchronisation (§1's universality in action)."""

import pytest

from repro.core.multiparty import UnionSynchronizer, synchronize_union
from repro.core.symbols import SymbolCodec

from helpers import make_items


def build_world(rng, base=200, peers=3, churn=10):
    items = make_items(rng, base + peers * churn)
    local = set(items[:base])
    peer_sets = {}
    for p in range(peers):
        extra = items[base + p * churn : base + (p + 1) * churn]
        # each peer misses a few local items and has its own extras
        peer_sets[f"peer{p}"] = set(items[p * 3 : base]) | set(extra)
    return local, peer_sets


def test_union_contains_everything(rng):
    local, peers = build_world(rng)
    union, stats = synchronize_union(local, peers, symbol_size=8)
    expected = set(local)
    for items in peers.values():
        expected |= items
    assert union == expected


def test_per_peer_stats(rng):
    local, peers = build_world(rng)
    union, stats = synchronize_union(local, peers, symbol_size=8)
    for name, peer_items in peers.items():
        assert stats[name].decoded
        assert stats[name].learned == peer_items - local
        assert stats[name].pushed == local - peer_items
        d = len(peer_items ^ local)
        assert stats[name].symbols_used <= 3 * d + 10


def test_peers_finish_independently(rng):
    """A nearly-synced peer finishes long before a divergent one."""
    items = make_items(rng, 300)
    local = set(items[:250])
    peers = {
        "close": set(items[1:250]),  # d = 1
        "far": set(items[100:300]),  # d = 200
    }
    codec = SymbolCodec(8)
    sync = UnionSynchronizer(codec, local, peers)
    sync.run()
    assert sync.stats["close"].symbols_used < sync.stats["far"].symbols_used / 10


def test_identical_peer_costs_one_symbol(rng):
    local, _ = build_world(rng, peers=1, churn=0)
    union, stats = synchronize_union(local, {"twin": set(local)}, symbol_size=8)
    assert union == local
    assert stats["twin"].symbols_used == 1


def test_requires_a_peer(rng):
    with pytest.raises(ValueError):
        UnionSynchronizer(SymbolCodec(8), set(), {})


def test_non_convergence_raises(rng):
    local, peers = build_world(rng, base=20, peers=1, churn=30)
    codec = SymbolCodec(8)
    sync = UnionSynchronizer(codec, local, peers)
    with pytest.raises(RuntimeError):
        sync.run(max_symbols_per_peer=2)
