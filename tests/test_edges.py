"""Edge-path coverage: helpers and corners not hit by the main suites."""

import pytest

from repro.core.decoder import RatelessDecoder, peel_until_decoded
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.net.link import Link
from repro.net.simulator import Simulator

from helpers import make_items, split_sets


def test_peel_until_decoded_helper(codec8, rng):
    a, b = split_sets(rng, shared=60, only_a=3, only_b=3)
    alice = RatelessEncoder(codec8, a)
    bob = RatelessEncoder(codec8, b)
    stream = (
        alice.produce_next().subtract(bob.produce_next()) for _ in range(200)
    )
    result = peel_until_decoded(RatelessDecoder(codec8), stream)
    assert result.success
    assert set(result.remote) == a - b


def test_peel_until_decoded_respects_budget(codec8, rng):
    a, b = split_sets(rng, shared=20, only_a=30, only_b=30)
    alice = RatelessEncoder(codec8, a)
    bob = RatelessEncoder(codec8, b)
    stream = (
        alice.produce_next().subtract(bob.produce_next()) for _ in range(10_000)
    )
    result = peel_until_decoded(RatelessDecoder(codec8), stream, max_symbols=10)
    assert not result.success
    assert result.symbols_used == 10


def test_decode_result_overhead_empty():
    """d = 0 reports overhead 0.0 — the convention shared with
    ``ReconcileOutcome`` and ``ReconcileResult`` (PR 1); the termination
    symbol stays visible in ``symbols_used``."""
    from repro.core.decoder import DecodeResult

    result = DecodeResult(success=True, symbols_used=1)
    assert result.difference_size == 0
    assert result.overhead == 0.0
    assert result.symbols_used == 1


def test_simulator_event_budget():
    sim = Simulator()

    def reschedule():
        sim.schedule(0.001, reschedule)

    sim.schedule(0.0, reschedule)
    with pytest.raises(RuntimeError):
        sim.run(max_events=100)


def test_link_rtt_property():
    sim = Simulator()
    link = Link(sim, 1e6, delay_s=0.05)
    assert link.rtt == pytest.approx(0.1)


def test_measure_riblt_plan_uncalibrated_costs():
    """Without a calibrated line rate the plan carries measured (positive)
    interpreter costs."""
    from repro.ledger import Chain, build_scenario
    from repro.ledger.workload import measure_riblt_plan

    chain = Chain(num_accounts=500, seed=3, updates_per_block=5, creates_per_block=1)
    chain.advance(4)
    scenario = build_scenario(chain, staleness_blocks=2)
    plan = measure_riblt_plan(scenario)
    assert plan.decode_seconds_per_symbol > 0
    assert plan.symbols_needed >= scenario.difference_size
    assert plan.bytes_per_symbol > 92  # item + checksum + count


def test_cli_checksum_size_flag(tmp_path, capsys, rng):
    """4-byte checksums round-trip through the CLI end to end."""
    from repro.cli import main

    items = make_items(rng, 60, 8)
    file_a = tmp_path / "a.bin"
    file_b = tmp_path / "b.bin"
    file_a.write_bytes(b"".join(items))
    file_b.write_bytes(b"".join(items[4:]))
    sketch = tmp_path / "a.sk"
    assert main(["--item-size", "8", "--checksum-size", "4", "sketch",
                 str(file_a), "-o", str(sketch), "--symbols", "32"]) == 0
    assert main(["--item-size", "8", "--checksum-size", "4", "decode",
                 str(sketch), str(file_b)]) == 0
    assert "missing locally : 4" in capsys.readouterr().out


def test_cli_siphash_family(tmp_path, capsys, rng):
    from repro.cli import main

    items = make_items(rng, 40, 8)
    file_a = tmp_path / "a.bin"
    file_a.write_bytes(b"".join(items))
    assert main(["--item-size", "8", "--hasher", "siphash", "reconcile",
                 str(file_a), str(file_a)]) == 0
    assert "difference      : 0" in capsys.readouterr().out


def test_failure_curve_with_irregular_config():
    from repro.analysis.failure import failure_curve
    from repro.core.irregular import PAPER_IRREGULAR

    curve = failure_curve(64, [1.0, 2.0], runs=20, irregular=PAPER_IRREGULAR, seed=6)
    probs = dict(curve.points)
    assert probs[2.0] <= probs[1.0]


def test_chain_hour_staleness_helpers():
    from repro.ledger.chain import BLOCKS_PER_HOUR, Chain

    chain = Chain(num_accounts=200, seed=8, updates_per_block=3, creates_per_block=1)
    chain.advance(BLOCKS_PER_HOUR // 60)  # one minute of blocks
    from repro.ledger import build_scenario

    scenario = build_scenario(chain, chain.head)
    assert scenario.staleness_seconds == 60


def test_union_synchronizer_stats_before_run(rng):
    from repro.core.multiparty import UnionSynchronizer

    items = make_items(rng, 30)
    sync = UnionSynchronizer(
        SymbolCodec(8), items[:20], {"p": set(items[5:])}
    )
    assert not sync.all_decoded
    assert sync.stats["p"].symbols_used == 0


def test_trace_empty_series():
    from repro.net.trace import BandwidthTrace

    assert BandwidthTrace().series() == []
    assert BandwidthTrace().total_bytes == 0


def test_met_level_cells_wire_default(codec8):
    from repro.baselines.met_iblt import MetIBLT

    table = MetIBLT(codec8)
    assert table.wire_size() == table.num_cells * (8 + 16)
