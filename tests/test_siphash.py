"""SipHash-2-4: reference vectors and PRF properties (§4.3 substrate)."""

import pytest

from repro.hashing import siphash
from repro.hashing.siphash import siphash24, siphash24_batch

REFERENCE_KEY = bytes(range(16))

# The official Aumasson & Bernstein reference vectors (the 64-entry
# ``vectors_sip64`` table shipped with the reference C implementation):
# entry n is SipHash-2-4 of the message 00 01 02 ... n-1 under the key
# 00 01 ... 0f, as a little-endian u64.  Entry 15 is the fully worked
# example in the SipHash paper's Appendix A.
VECTORS_SIP64 = [
    0x726FDB47DD0E0E31, 0x74F839C593DC67FD, 0x0D6C8009D9A94F5A, 0x85676696D7FB7E2D,
    0xCF2794E0277187B7, 0x18765564CD99A68D, 0xCBC9466E58FEE3CE, 0xAB0200F58B01D137,
    0x93F5F5799A932462, 0x9E0082DF0BA9E4B0, 0x7A5DBBC594DDB9F3, 0xF4B32F46226BADA7,
    0x751E8FBC860EE5FB, 0x14EA5627C0843D90, 0xF723CA908E7AF2EE, 0xA129CA6149BE45E5,
    0x3F2ACC7F57C29BDB, 0x699AE9F52CBE4794, 0x4BC1B3F0968DD39C, 0xBB6DC91DA77961BD,
    0xBED65CF21AA2EE98, 0xD0F2CBB02E3B67C7, 0x93536795E3A33E88, 0xA80C038CCD5CCEC8,
    0xB8AD50C6F649AF94, 0xBCE192DE8A85B8EA, 0x17D835B85BBB15F3, 0x2F2E6163076BCFAD,
    0xDE4DAAACA71DC9A5, 0xA6A2506687956571, 0xAD87A3535C49EF28, 0x32D892FAD841C342,
    0x7127512F72F27CCE, 0xA7F32346F95978E3, 0x12E0B01ABB051238, 0x15E034D40FA197AE,
    0x314DFFBE0815A3B4, 0x027990F029623981, 0xCADCD4E59EF40C4D, 0x9ABFD8766A33735C,
    0x0E3EA96B5304A7D0, 0xAD0C42D6FC585992, 0x187306C89BC215A9, 0xD4A60ABCF3792B95,
    0xF935451DE4F21DF2, 0xA9538F0419755787, 0xDB9ACDDFF56CA510, 0xD06C98CD5C0975EB,
    0xE612A3CB9ECBA951, 0xC766E62CFCADAF96, 0xEE64435A9752FE72, 0xA192D576B245165A,
    0x0A8787BF8ECB74B2, 0x81B3E73D20B49B6F, 0x7FA8220BA3B2ECEA, 0x245731C13CA42499,
    0xB78DBFAF3A8D83BD, 0xEA1AD565322A1A0B, 0x60E61C23A3795013, 0x6606D7E446282B93,
    0x6CA4ECB15C5F91E1, 0x9F626DA15C9625F3, 0xE51B38608EF25F57, 0x958A324CEB064572,
]


@pytest.fixture(params=["scalar", "batch-numpy", "batch-scalar"])
def hash_path(request, monkeypatch):
    """One hasher callable per engine path, same (key, message) contract."""
    if request.param == "scalar":
        return siphash24
    if request.param == "batch-numpy" and siphash._np is None:
        pytest.skip("NumPy not available")
    monkeypatch.setattr(siphash, "NUMPY_LANE", request.param == "batch-numpy")
    # Singleton batches still run the full lane pipeline (padding, final
    # block, rounds) for every message length.
    monkeypatch.setattr(siphash, "NUMPY_MIN_BATCH", 1)
    return lambda key, message: siphash24_batch(key, [message])[0]


@pytest.mark.parametrize("length", range(64))
def test_reference_vectors(hash_path, length):
    message = bytes(range(length))
    assert hash_path(REFERENCE_KEY, message) == VECTORS_SIP64[length]


def test_batch_matches_scalar_elementwise():
    """One batch call == 64 scalar calls, across the whole vector table
    (fixed width per call; the table varies width across calls)."""
    for length in (0, 1, 7, 8, 9, 16, 63):
        messages = [bytes([i] * length) for i in range(32)]
        assert siphash24_batch(REFERENCE_KEY, messages) == [
            siphash24(REFERENCE_KEY, message) for message in messages
        ]


def test_batch_engines_agree(monkeypatch):
    if siphash._np is None:
        pytest.skip("NumPy not available")
    messages = [bytes([i, 255 - i] * 4) for i in range(100)]
    monkeypatch.setattr(siphash, "NUMPY_LANE", True)
    fast = siphash24_batch(REFERENCE_KEY, messages)
    monkeypatch.setattr(siphash, "NUMPY_LANE", False)
    assert siphash24_batch(REFERENCE_KEY, messages) == fast


def test_batch_rejects_ragged_messages():
    with pytest.raises(ValueError):
        siphash24_batch(REFERENCE_KEY, [b"12345678", b"1234567"])


def test_batch_rejects_bad_key():
    with pytest.raises(ValueError):
        siphash24_batch(b"short", [b"12345678"])


def test_batch_empty():
    assert siphash24_batch(REFERENCE_KEY, []) == []


def test_rejects_short_key():
    with pytest.raises(ValueError):
        siphash24(b"short", b"data")


def test_rejects_long_key():
    with pytest.raises(ValueError):
        siphash24(bytes(17), b"data")


def test_output_is_64_bits():
    for i in range(64):
        value = siphash24(REFERENCE_KEY, bytes([i]) * i)
        assert 0 <= value < (1 << 64)


def test_key_sensitivity():
    """Flipping any key bit changes the hash (PRF behaviour)."""
    message = b"set reconciliation"
    base = siphash24(REFERENCE_KEY, message)
    for byte_index in range(16):
        key = bytearray(REFERENCE_KEY)
        key[byte_index] ^= 1
        assert siphash24(bytes(key), message) != base


def test_message_sensitivity():
    """Flipping any message bit changes the hash."""
    message = bytearray(b"0123456789abcdef0123")
    base = siphash24(REFERENCE_KEY, bytes(message))
    for byte_index in range(len(message)):
        mutated = bytearray(message)
        mutated[byte_index] ^= 0x80
        assert siphash24(REFERENCE_KEY, bytes(mutated)) != base


def test_length_extension_blocks_differ():
    """Messages that only differ by trailing zero bytes hash differently
    (the length byte in the final block sees to it)."""
    a = siphash24(REFERENCE_KEY, b"\x00" * 7)
    b = siphash24(REFERENCE_KEY, b"\x00" * 8)
    c = siphash24(REFERENCE_KEY, b"\x00" * 9)
    assert len({a, b, c}) == 3


def test_block_boundary_lengths():
    """No crash or collision across the 8-byte block boundary."""
    outputs = {
        length: siphash24(REFERENCE_KEY, b"x" * length) for length in range(0, 25)
    }
    assert len(set(outputs.values())) == len(outputs)


def test_deterministic():
    assert siphash24(REFERENCE_KEY, b"abc") == siphash24(REFERENCE_KEY, b"abc")
