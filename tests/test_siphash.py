"""SipHash-2-4: reference vectors and PRF properties (§4.3 substrate)."""

import pytest

from repro.hashing.siphash import siphash24

REFERENCE_KEY = bytes(range(16))

# Official test vectors: the SipHash paper's Appendix A example and the
# head of the reference implementation's vectors_sip64 table (message is
# the byte string 00 01 02 ... of the given length, key as above).
REFERENCE_VECTORS = {
    0: 0x726FDB47DD0E0E31,
    1: 0x74F839C593DC67FD,
    2: 0x0D6C8009D9A94F5A,
    3: 0x85676696D7FB7E2D,
    15: 0xA129CA6149BE45E5,  # the worked example in the SipHash paper
}


@pytest.mark.parametrize("length,expected", sorted(REFERENCE_VECTORS.items()))
def test_reference_vectors(length, expected):
    message = bytes(range(length))
    assert siphash24(REFERENCE_KEY, message) == expected


def test_rejects_short_key():
    with pytest.raises(ValueError):
        siphash24(b"short", b"data")


def test_rejects_long_key():
    with pytest.raises(ValueError):
        siphash24(bytes(17), b"data")


def test_output_is_64_bits():
    for i in range(64):
        value = siphash24(REFERENCE_KEY, bytes([i]) * i)
        assert 0 <= value < (1 << 64)


def test_key_sensitivity():
    """Flipping any key bit changes the hash (PRF behaviour)."""
    message = b"set reconciliation"
    base = siphash24(REFERENCE_KEY, message)
    for byte_index in range(16):
        key = bytearray(REFERENCE_KEY)
        key[byte_index] ^= 1
        assert siphash24(bytes(key), message) != base


def test_message_sensitivity():
    """Flipping any message bit changes the hash."""
    message = bytearray(b"0123456789abcdef0123")
    base = siphash24(REFERENCE_KEY, bytes(message))
    for byte_index in range(len(message)):
        mutated = bytearray(message)
        mutated[byte_index] ^= 0x80
        assert siphash24(REFERENCE_KEY, bytes(mutated)) != base


def test_length_extension_blocks_differ():
    """Messages that only differ by trailing zero bytes hash differently
    (the length byte in the final block sees to it)."""
    a = siphash24(REFERENCE_KEY, b"\x00" * 7)
    b = siphash24(REFERENCE_KEY, b"\x00" * 8)
    c = siphash24(REFERENCE_KEY, b"\x00" * 9)
    assert len({a, b, c}) == 3


def test_block_boundary_lengths():
    """No crash or collision across the 8-byte block boundary."""
    outputs = {
        length: siphash24(REFERENCE_KEY, b"x" * length) for length in range(0, 25)
    }
    assert len(set(outputs.values())) == len(outputs)


def test_deterministic():
    assert siphash24(REFERENCE_KEY, b"abc") == siphash24(REFERENCE_KEY, b"abc")
