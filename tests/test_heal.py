"""State heal protocol: convergence, transcript accounting, lock-step rounds."""

from repro.baselines.merkle.heal import DEFAULT_BATCH_LIMIT, state_heal
from repro.baselines.merkle.trie import NodeStore, Trie

from test_trie import random_kv


def build_two_versions(rng, base_count, changed):
    """A shared-store chain: Bob's version and Alice's (with changes)."""
    kv = random_kv(rng, base_count)
    store = NodeStore()
    bob_trie = Trie.from_items(kv.items(), store)
    alice_trie = bob_trie
    keys = list(kv)
    for key in rng.sample(keys, changed):
        alice_trie = alice_trie.update(key, rng.randbytes(72))
    return bob_trie, alice_trie


def test_heal_converges(rng):
    bob_trie, alice_trie = build_two_versions(rng, 300, 30)
    bob_store = bob_trie.reachable_store()
    report = state_heal(bob_store, alice_trie)
    healed = Trie(bob_store, alice_trie.root_hash)
    assert dict(healed.items()) == dict(alice_trie.items())
    assert report.nodes_fetched > 0


def test_heal_nothing_when_identical(rng):
    bob_trie, _ = build_two_versions(rng, 100, 0)
    bob_store = bob_trie.reachable_store()
    report = state_heal(bob_store, Trie(bob_store, bob_trie.root_hash))
    assert report.round_trips == 0
    assert report.total_bytes == 0


def test_heal_empty_target():
    report = state_heal(NodeStore(), Trie(NodeStore()))
    assert report.round_trips == 0


def test_heal_from_scratch(rng):
    """An empty Bob fetches the entire trie."""
    kv = random_kv(rng, 120)
    alice = Trie.from_items(kv.items())
    bob_store = NodeStore()
    report = state_heal(bob_store, alice)
    assert report.nodes_fetched == alice.node_count()
    assert dict(Trie(bob_store, alice.root_hash).items()) == kv


def test_heal_skips_shared_subtrees(rng):
    """Bob must fetch far fewer nodes than the trie holds when the
    difference is small — only differing paths are downloaded."""
    bob_trie, alice_trie = build_two_versions(rng, 500, 10)
    bob_store = bob_trie.reachable_store()
    report = state_heal(bob_store, alice_trie)
    assert report.nodes_fetched < alice_trie.node_count() / 3


def test_heal_amplification_over_leaves(rng):
    """The §7.3 complaint: internal nodes amplify bytes over the leaf
    payload actually needed."""
    bob_trie, alice_trie = build_two_versions(rng, 400, 20)
    bob_store = bob_trie.reachable_store()
    report = state_heal(bob_store, alice_trie)
    assert report.nodes_fetched > report.leaves_fetched
    leaf_payload = report.leaves_fetched * 92
    assert report.bytes_down > 1.5 * leaf_payload


def test_round_count_tracks_depth(rng):
    """Rounds ≈ depth of differing paths (lock-step descent)."""
    bob_trie, alice_trie = build_two_versions(rng, 400, 20)
    bob_store = bob_trie.reachable_store()
    report = state_heal(bob_store, alice_trie)
    assert 2 <= report.round_trips <= 12


def test_batch_limit_adds_rounds(rng):
    bob_trie, alice_trie = build_two_versions(rng, 400, 60)
    unbatched = state_heal(bob_trie.reachable_store(), alice_trie)
    batched = state_heal(
        bob_trie.reachable_store(), alice_trie, batch_limit=8
    )
    assert batched.round_trips > unbatched.round_trips
    assert batched.nodes_fetched == unbatched.nodes_fetched


def test_transcript_totals_consistent(rng):
    bob_trie, alice_trie = build_two_versions(rng, 200, 15)
    report = state_heal(bob_trie.reachable_store(), alice_trie)
    assert report.bytes_up == sum(r.request_bytes for r in report.rounds)
    assert report.bytes_down == sum(r.response_bytes for r in report.rounds)
    assert report.nodes_fetched == sum(r.nodes_delivered for r in report.rounds)
    assert all(r.requested_hashes <= DEFAULT_BATCH_LIMIT for r in report.rounds)
