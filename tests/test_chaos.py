"""Overload control + the chaos layer: typed sheds, bounded faults.

Acceptance anchors (ISSUE 10):

* an overloaded server answers the HELLO with a typed ``BUSY`` frame
  (retry-after hint included) in bounded time — it never queues or
  hangs the connection;
* ``RetryPolicy`` honours the server's retry-after and composes with
  connection retries and frame-error retries;
* the fault proxy's schedule is deterministic and JSON-round-trips;
* every injected fault — mid-frame reset, byte corruption, blackhole,
  worker SIGKILL through proxied fan-out — terminates typed, and a
  retrying client fleet still completes 100% with exact diffs.
"""

import asyncio
import json
import subprocess
import sys
import os
import re
from pathlib import Path

import pytest

from repro.chaos import (
    ChaosError,
    ChaosOrchestrator,
    ChaosProxy,
    FaultSchedule,
    FaultSpec,
    default_schedule,
)
from repro.cluster import ClusterConfig
from repro.service import (
    IdleTimeout,
    ReconciliationServer,
    RetryPolicy,
    ServerBusy,
    ServerConfig,
    sync,
)
from repro.service.framing import ErrorCode, FrameError

SYNC_TIMEOUT = 180.0

RETRY = RetryPolicy(attempts=20, base_delay=0.05, max_delay=0.5, seed=7,
                    retry_frame_errors=True)


def run(coro):
    """Drive one test coroutine (no pytest-asyncio dependency)."""
    return asyncio.run(asyncio.wait_for(coro, timeout=SYNC_TIMEOUT))


def items_range(lo, hi):
    return [b"%016d" % i for i in range(lo, hi)]


def fast_config(**overrides):
    defaults = dict(num_workers=2, fsync=False, restart_backoff=0.05)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


# -- fault schedules ---------------------------------------------------------


def test_schedule_cycles_and_seeded_rngs():
    sched = FaultSchedule(
        specs=(FaultSpec(), FaultSpec(latency_s=0.01)), seed=42
    )
    assert sched.spec_for(0) == FaultSpec()
    assert sched.spec_for(1) == FaultSpec(latency_s=0.01)
    assert sched.spec_for(2) == sched.spec_for(0)
    # Same (seed, connection, lane) -> same draws; different lane differs.
    a = [sched.rng_for(3, 0).random() for _ in range(4)]
    b = [sched.rng_for(3, 0).random() for _ in range(4)]
    c = [sched.rng_for(3, 1).random() for _ in range(4)]
    assert a == b
    assert a != c


def test_schedule_json_roundtrip():
    sched = default_schedule(9)
    clone = FaultSchedule.from_json(sched.to_json())
    assert clone == sched
    assert clone.seed == 9
    doc = json.loads(sched.to_json())
    assert set(doc) == {"seed", "specs"}


def test_schedule_validation():
    with pytest.raises(ChaosError):
        FaultSpec(latency_s=-1.0)
    with pytest.raises(ChaosError):
        FaultSpec(corrupt_prob=1.5)
    with pytest.raises(ChaosError):
        FaultSchedule(specs=(), seed=0)
    with pytest.raises(ChaosError):
        FaultSpec.from_dict({"no_such_fault": 1})
    with pytest.raises(ChaosError):
        FaultSchedule.from_json("not json")


# -- overload control: admission sheds --------------------------------------


def test_busy_shed_answers_hello_in_bounded_time():
    async def scenario():
        config = ServerConfig(max_concurrent_sessions=0, busy_retry_after=0.25)
        async with ReconciliationServer(
            items_range(0, 100), num_shards=2, config=config
        ) as server:
            host, port = server.address
            start = asyncio.get_running_loop().time()
            with pytest.raises(ServerBusy) as excinfo:
                await asyncio.wait_for(
                    sync(host, port, items_range(5, 100)), timeout=10.0
                )
            elapsed = asyncio.get_running_loop().time() - start
            # Bounded: the BUSY frame is the server's immediate answer,
            # not a queue timeout.
            assert elapsed < 5.0
            assert excinfo.value.retry_after == pytest.approx(0.25)
            assert server.stats.sessions_shed == 1
            assert server.stats.shed_reasons == {"session limit": 1}
            assert server.stats.errors_sent.get(int(ErrorCode.BUSY)) == 1
            # Refused at admission: never counted as a started session.
            assert server.stats.sessions_started == 0

    run(scenario())


def test_busy_retry_after_honoured_by_policy():
    async def scenario():
        config = ServerConfig(max_concurrent_sessions=1, busy_retry_after=0.05)
        async with ReconciliationServer(
            items_range(0, 200), num_shards=2, config=config
        ) as server:
            host, port = server.address
            retry = RetryPolicy(attempts=30, base_delay=0.02, max_delay=0.2,
                                seed=11)
            results = await asyncio.gather(
                *(sync(host, port, items_range(5, 200), retry=retry)
                  for _ in range(4))
            )
            for result in results:
                assert result.only_in_server == set(items_range(0, 5))
            # With a cap of one, somebody must have been shed and waited.
            assert sum(r.busy_waits for r in results) >= 1
            assert server.stats.sessions_shed >= 1

    run(scenario())


def test_per_peer_rate_limit_sheds():
    async def scenario():
        config = ServerConfig(per_peer_rate=0.001, per_peer_burst=2,
                              busy_retry_after=0.5)
        async with ReconciliationServer(
            items_range(0, 100), num_shards=2, config=config
        ) as server:
            host, port = server.address
            await sync(host, port, items_range(5, 100))
            await sync(host, port, items_range(5, 100))
            with pytest.raises(ServerBusy):
                await sync(host, port, items_range(5, 100))
            assert server.stats.shed_reasons == {"peer rate limit": 1}

    run(scenario())


def test_session_byte_cap_sheds_mid_stream():
    async def scenario():
        config = ServerConfig(max_session_bytes=64, busy_retry_after=0.1)
        async with ReconciliationServer(
            items_range(0, 300), num_shards=2, config=config
        ) as server:
            host, port = server.address
            with pytest.raises(ServerBusy):
                await sync(host, port, items_range(150, 300))
            # Admitted, then shed mid-stream: counts as a started
            # session AND a shed.
            assert server.stats.sessions_started == 1
            assert server.stats.shed_reasons == {"session bytes": 1}

    run(scenario())


def test_cluster_workers_inherit_limits():
    async def scenario():
        from repro.cluster import ClusterSupervisor

        config = fast_config(max_concurrent_sessions=0, busy_retry_after=0.07)
        async with ClusterSupervisor(
            items_range(0, 100), num_shards=4, config=config
        ) as sup:
            host, port = sup.entry_address
            with pytest.raises(ServerBusy) as excinfo:
                await asyncio.wait_for(
                    sync(host, port, items_range(5, 100)), timeout=15.0
                )
            assert excinfo.value.retry_after == pytest.approx(0.07)

    run(scenario())


# -- the proxy ---------------------------------------------------------------


def test_proxy_clean_passthrough():
    async def scenario():
        async with ReconciliationServer(
            items_range(0, 200), num_shards=2
        ) as server:
            sched = FaultSchedule(specs=(FaultSpec(),), seed=0)
            async with ChaosProxy(*server.address, sched) as proxy:
                result = await sync(proxy.host, proxy.port, items_range(5, 200))
                assert result.only_in_server == set(items_range(0, 5))
                assert proxy.stats.connections == 1
                assert proxy.stats.bytes_forwarded > 0
                assert proxy.stats.resets == 0

    run(scenario())


def test_proxy_midframe_reset_is_typed_and_retryable():
    async def scenario():
        async with ReconciliationServer(
            items_range(0, 300), num_shards=2
        ) as server:
            sched = FaultSchedule(
                specs=(FaultSpec(reset_after_bytes=512), FaultSpec()), seed=2
            )
            # Without retries: typed (connection cut or truncated
            # frame), never a hang or an untyped crash.
            async with ChaosProxy(*server.address, sched) as proxy:
                with pytest.raises((ConnectionError, FrameError)):
                    await asyncio.wait_for(
                        sync(proxy.host, proxy.port, items_range(5, 300)),
                        timeout=20.0,
                    )
            # With retries: the second (clean) connection completes.
            async with ChaosProxy(*server.address, sched) as proxy:
                result = await sync(
                    proxy.host, proxy.port, items_range(5, 300), retry=RETRY
                )
                assert result.only_in_server == set(items_range(0, 5))
                assert result.attempts >= 2
                assert proxy.stats.resets >= 1

    run(scenario())


def test_proxy_corruption_decays_typed_and_recovers():
    async def scenario():
        async with ReconciliationServer(
            items_range(0, 300), num_shards=2
        ) as server:
            sched = FaultSchedule(
                specs=(FaultSpec(corrupt_prob=1.0), FaultSpec()), seed=3
            )
            async with ChaosProxy(*server.address, sched) as proxy:
                result = await sync(
                    proxy.host, proxy.port, items_range(5, 300),
                    retry=RETRY, idle_timeout=1.0, max_symbols=4096,
                )
                assert result.only_in_server == set(items_range(0, 5))
                assert result.attempts >= 2
                assert proxy.stats.corrupted_bytes >= 1

    run(scenario())


def test_proxy_blackhole_bounded_by_idle_timeout():
    async def scenario():
        async with ReconciliationServer(
            items_range(0, 100), num_shards=2
        ) as server:
            sched = FaultSchedule(specs=(FaultSpec(blackhole_s=30.0),), seed=4)
            async with ChaosProxy(*server.address, sched) as proxy:
                start = asyncio.get_running_loop().time()
                with pytest.raises(IdleTimeout):
                    await sync(
                        proxy.host, proxy.port, items_range(5, 100),
                        idle_timeout=0.3,
                    )
                assert asyncio.get_running_loop().time() - start < 10.0

    run(scenario())


def test_proxy_drop_is_typed():
    async def scenario():
        async with ReconciliationServer(
            items_range(0, 100), num_shards=2
        ) as server:
            sched = FaultSchedule(specs=(FaultSpec(drop=True),), seed=5)
            async with ChaosProxy(*server.address, sched) as proxy:
                with pytest.raises((ConnectionError, FrameError)):
                    await asyncio.wait_for(
                        sync(proxy.host, proxy.port, items_range(5, 100)),
                        timeout=20.0,
                    )
                assert proxy.stats.dropped == 1

    run(scenario())


# -- the orchestrator: wire faults + process faults --------------------------


def test_orchestrator_soak_with_worker_kill():
    """The acceptance scenario, compact: a client fleet through fault
    proxies against a 2-worker pool with admission caps, one worker
    SIGKILLed mid-run — 100% completion, exact diffs, sheds observed."""

    async def scenario():
        server_items = items_range(0, 400)
        config = fast_config(
            max_concurrent_sessions=2, busy_retry_after=0.05
        )
        async with ChaosOrchestrator(
            server_items,
            schedule=default_schedule(17),
            config=config,
            num_shards=4,
        ) as orch:
            host, port = orch.entry_address
            killed = {"done": False}
            completed = {"count": 0}

            async def one_client(k):
                retry = RetryPolicy(
                    attempts=30, base_delay=0.05, max_delay=0.5,
                    seed=500 + k, retry_frame_errors=True,
                )
                result = await sync(
                    host, port, items_range(5 + k, 400 + k),
                    retry=retry, idle_timeout=5.0, max_symbols=1 << 14,
                )
                completed["count"] += 1
                if not killed["done"] and completed["count"] >= 2:
                    killed["done"] = True
                    orch.kill_worker(1)
                return k, result

            results = await asyncio.gather(*(one_client(k) for k in range(6)))
            assert len(results) == 6  # 100% completion
            for k, result in results:
                assert result.only_in_server == set(items_range(0, 5 + k))
                assert result.only_in_client == set(items_range(400, 400 + k))
            assert killed["done"]
            total_busy = sum(r.busy_waits for _, r in results)
            total_attempts = sum(r.attempts for _, r in results)
            assert total_busy >= 1, "admission cap never shed anyone"
            assert total_attempts > 6, "fault schedule never forced a retry"
            stats = orch.proxy_stats()
            assert stats["connections"] >= 12

    run(scenario())


def test_orchestrator_requires_matching_advertise_ports():
    from repro.cluster import ClusterError, ClusterSupervisor

    async def scenario():
        config = fast_config(advertise_ports=[1])  # 1 port, 2 workers
        sup = ClusterSupervisor(
            items_range(0, 50), num_shards=2, config=config
        )
        with pytest.raises(ClusterError):
            await sup.start()
        await sup.close()

    run(scenario())


# -- CLI ---------------------------------------------------------------------


def test_cli_chaos_smoke(tmp_path):
    blob = b"".join(items_range(0, 120))
    path = tmp_path / "items.bin"
    path.write_bytes(blob)
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "--item-size", "16", "chaos",
         str(path), "--workers", "2", "--max-conns", "2", "--seed", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"on ([\d.]+):(\d+)", banner)
        assert match, banner
        out = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--item-size", "16", "sync",
             str(path), "--port", match.group(2)],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        assert "missing locally : 0" in out.stdout
        assert proc.wait(timeout=30) == 0
        tail = proc.stdout.read()
        assert "connections proxied" in tail
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
