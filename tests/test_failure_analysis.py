"""Failure-probability curves: monotonicity and calibration."""

import pytest

from repro.analysis.failure import FailureCurve, failure_curve, recommended_prefix


def test_failure_curve_monotone_decreasing():
    curve = failure_curve(64, [1.0, 1.2, 1.5, 2.0, 2.5], runs=60, seed=1)
    probs = [p for _, p in sorted(curve.points)]
    assert all(a >= b - 0.05 for a, b in zip(probs, probs[1:]))


def test_failure_high_at_information_bound():
    """At exactly m = d symbols, decoding is very unlikely for moderate d."""
    curve = failure_curve(128, [1.0], runs=40, seed=2)
    assert curve.points[0][1] > 0.8


def test_failure_low_with_generous_margin():
    curve = failure_curve(128, [2.5], runs=40, seed=3)
    assert curve.points[0][1] < 0.1


def test_failure_at_lookup():
    curve = FailureCurve(10, 10, points=[(1.0, 0.9), (1.5, 0.3), (2.0, 0.0)])
    assert curve.failure_at(1.6) == 0.3
    assert curve.failure_at(2.5) == 0.0
    assert curve.failure_at(0.5) == 1.0


def test_overhead_for_target():
    curve = FailureCurve(10, 10, points=[(1.0, 0.9), (1.5, 0.3), (2.0, 0.0)])
    assert curve.overhead_for(0.5) == 1.5
    assert curve.overhead_for(0.0) == 2.0
    assert FailureCurve(10, 10, points=[(1.0, 0.9)]).overhead_for(0.1) is None


def test_recommended_prefix_decodes_in_practice():
    """A prefix sized at 1% failure should almost always decode."""
    import random

    from repro.analysis.montecarlo import IntSymbolCodec, _random_values
    from repro.core.decoder import RatelessDecoder
    from repro.core.encoder import RatelessEncoder

    d = 64
    m = recommended_prefix(d, target_failure=0.05, runs=60, seed=4)
    assert m >= int(1.2 * d)
    rng = random.Random(99)
    successes = 0
    trials = 20
    for _ in range(trials):
        codec = IntSymbolCodec(key=rng.getrandbits(64))
        encoder = RatelessEncoder(codec)
        for value in _random_values(d, rng):
            encoder.add_value(value)
        decoder = RatelessDecoder(codec)
        for _ in range(m):
            decoder.add_coded_symbol(encoder.produce_next())
            if decoder.decoded:
                break
        successes += decoder.decoded
    assert successes >= trials - 3


def test_recommended_prefix_validation():
    with pytest.raises(ValueError):
        recommended_prefix(0)


def test_small_d_needs_big_margin():
    """Tiny differences need proportionally more margin (Fig 5's peak)."""
    small = recommended_prefix(4, target_failure=0.1, runs=150, seed=5) / 4
    large = recommended_prefix(256, target_failure=0.1, runs=60, seed=5) / 256
    assert small > large
