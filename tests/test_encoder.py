"""Incremental encoder: heap scheduling, prefix stability, live updates."""

import pytest

from repro.core.encoder import RatelessEncoder
from repro.core.sketch import RatelessSketch
from repro.core.symbols import SymbolCodec

from helpers import make_items


def test_add_and_contains(codec8, rng):
    enc = RatelessEncoder(codec8)
    item = rng.randbytes(8)
    enc.add_item(item)
    assert item in enc
    assert len(enc) == 1


def test_duplicate_add_rejected(codec8, rng):
    enc = RatelessEncoder(codec8)
    item = rng.randbytes(8)
    enc.add_item(item)
    with pytest.raises(KeyError):
        enc.add_item(item)


def test_remove_missing_rejected(codec8, rng):
    enc = RatelessEncoder(codec8)
    with pytest.raises(KeyError):
        enc.remove_item(rng.randbytes(8))


def test_first_cell_contains_all(codec8, rng):
    """ρ(0) = 1: coded symbol 0 sums the entire set."""
    items = make_items(rng, 50)
    enc = RatelessEncoder(codec8, items)
    cell = enc.produce_next()
    assert cell.count == 50
    expected_sum = 0
    for item in items:
        expected_sum ^= codec8.to_int(item)
    assert cell.sum == expected_sum


def test_matches_one_shot_sketch(codec8, rng):
    """Heap-incremental production equals the direct-walk sketch builder."""
    items = make_items(rng, 200)
    enc = RatelessEncoder(codec8, items)
    incremental = enc.produce(150)
    direct = RatelessSketch.from_items(items, 150, codec8)
    assert incremental == list(direct.cells)


def test_prefix_stability(codec8, rng):
    """Fig 3's rateless property: extending the stream never changes
    already-produced symbols."""
    items = make_items(rng, 64)
    enc = RatelessEncoder(codec8, items)
    first_10 = [cell.copy() for cell in enc.produce(10)]
    enc.produce(90)
    assert [enc.cached(i) for i in range(10)] == first_10


def test_empty_set_produces_zero_cells(codec8):
    enc = RatelessEncoder(codec8)
    cells = enc.produce(5)
    assert all(cell.is_zero() for cell in cells)


def test_late_add_patches_prefix(codec8, rng):
    """Adding an item after production updates the cached prefix so it
    equals a fresh encode of the larger set (§4.1 linearity)."""
    items = make_items(rng, 40)
    enc = RatelessEncoder(codec8, items[:30])
    enc.produce(64)
    for item in items[30:]:
        enc.add_item(item)
    fresh = RatelessEncoder(codec8, items)
    assert [enc.cached(i) for i in range(64)] == fresh.produce(64)


def test_remove_patches_prefix(codec8, rng):
    items = make_items(rng, 40)
    enc = RatelessEncoder(codec8, items)
    enc.produce(64)
    for item in items[35:]:
        enc.remove_item(item)
    fresh = RatelessEncoder(codec8, items[:35])
    assert [enc.cached(i) for i in range(64)] == fresh.produce(64)


def test_removed_item_not_in_future_symbols(codec8, rng):
    """A removed item must not appear in symbols produced later either."""
    items = make_items(rng, 20)
    enc = RatelessEncoder(codec8, items)
    enc.produce(8)
    enc.remove_item(items[0])
    fresh = RatelessEncoder(codec8, items[1:])
    fresh.produce(8)
    for _ in range(56):
        assert enc.produce_next() == fresh.produce_next()


def test_add_remove_churn(codec8, rng):
    """Interleaved add/remove/produce stays consistent with a fresh encode."""
    items = make_items(rng, 60)
    enc = RatelessEncoder(codec8, items[:40])
    enc.produce(16)
    for item in items[40:50]:
        enc.add_item(item)
    enc.produce(16)
    for item in items[:10]:
        enc.remove_item(item)
    enc.produce(16)
    final_set = items[10:50]
    fresh = RatelessEncoder(codec8, final_set)
    assert [enc.cached(i) for i in range(48)] == fresh.produce(48)


def test_produce_counts(codec8, rng):
    enc = RatelessEncoder(codec8, make_items(rng, 10))
    assert enc.produced_count == 0
    enc.produce(7)
    assert enc.produced_count == 7
    assert enc.set_size == 10


def test_prefix_produces_on_demand(codec8, rng):
    enc = RatelessEncoder(codec8, make_items(rng, 10))
    cells = enc.prefix(12)
    assert len(cells) == 12
    assert enc.produced_count == 12
    # prefix returns frozen copies
    cells[0].apply(1, 1, 1)
    assert enc.cached(0) != cells[0]


def test_one_byte_symbols(rng):
    """ℓ = 1 byte works (the paper spans 'a few bytes to megabytes')."""
    codec = SymbolCodec(1)
    enc = RatelessEncoder(codec, [bytes([i]) for i in range(30)])
    cell = enc.produce_next()
    assert cell.count == 30
