"""Wire format: round-trips, count compression, streaming parse (§6)."""

import pytest

from repro.core.encoder import RatelessEncoder
from repro.core.irregular import PAPER_IRREGULAR
from repro.core.symbols import SymbolCodec
from repro.core.wire import (
    SymbolStreamReader,
    SymbolStreamWriter,
    cell_wire_size,
    decode_stream,
    encode_stream,
    expected_count,
)

from helpers import make_items


def test_roundtrip(codec8, rng):
    items = make_items(rng, 100)
    enc = RatelessEncoder(codec8, items)
    cells = [cell.copy() for cell in enc.produce(50)]
    blob = encode_stream(codec8, len(items), cells)
    decoded, set_size = decode_stream(codec8, blob)
    assert decoded == cells
    assert set_size == 100


def test_roundtrip_with_start_index(codec8, rng):
    """Resuming a stream mid-way (rateless extension) round-trips."""
    items = make_items(rng, 64)
    enc = RatelessEncoder(codec8, items)
    enc.produce(32)
    tail = [cell.copy() for cell in enc.produce(16)]
    blob = encode_stream(codec8, 64, tail, start_index=32)
    decoded, _ = decode_stream(codec8, blob)
    assert decoded == tail


def test_expected_count_regular(codec8):
    assert expected_count(codec8, 1000, 0) == 1000
    assert expected_count(codec8, 1000, 2) == 500
    assert expected_count(codec8, 1000, 18) == 100


def test_expected_count_irregular():
    codec = SymbolCodec(8, irregular=PAPER_IRREGULAR)
    mean_rho_2 = PAPER_IRREGULAR.mean_rho(2)
    assert expected_count(codec, 1000, 2) == round(1000 * mean_rho_2)


def test_count_compression_near_one_byte(codec8, rng):
    """§6: counts cost ≈1 byte/cell on average once deltas are small."""
    items = make_items(rng, 4000)
    enc = RatelessEncoder(codec8, items)
    writer = SymbolStreamWriter(codec8, set_size=4000)
    writer.header()
    for cell in enc.produce(400):
        writer.write(cell)
    assert writer.mean_count_bytes < 1.6


def test_incremental_reader_chunked(codec8, rng):
    """Feeding one byte at a time parses the identical cell stream."""
    items = make_items(rng, 30)
    enc = RatelessEncoder(codec8, items)
    cells = [cell.copy() for cell in enc.produce(20)]
    blob = encode_stream(codec8, 30, cells)
    reader = SymbolStreamReader(codec8)
    out = []
    for i in range(len(blob)):
        out.extend(reader.feed(blob[i : i + 1]))
    assert out == cells
    assert reader.set_size == 30


def test_reader_rejects_bad_magic(codec8):
    reader = SymbolStreamReader(codec8)
    with pytest.raises(ValueError):
        reader.feed(b"XXXX" + bytes(20))


def test_reader_rejects_size_mismatch(codec8, rng):
    items = make_items(rng, 10)
    enc = RatelessEncoder(codec8, items)
    blob = encode_stream(codec8, 10, [c.copy() for c in enc.produce(4)])
    other = SymbolCodec(16)
    reader = SymbolStreamReader(other)
    with pytest.raises(ValueError):
        reader.feed(blob)


def test_reader_rejects_checksum_width_mismatch(rng):
    codec_full = SymbolCodec(8)
    codec_short = SymbolCodec(8, checksum_size=4)
    enc = RatelessEncoder(codec_full, make_items(rng, 10))
    blob = encode_stream(codec_full, 10, [c.copy() for c in enc.produce(4)])
    with pytest.raises(ValueError):
        SymbolStreamReader(codec_short).feed(blob)


def test_decode_stream_trailing_garbage(codec8, rng):
    enc = RatelessEncoder(codec8, make_items(rng, 10))
    blob = encode_stream(codec8, 10, [c.copy() for c in enc.produce(4)])
    with pytest.raises(ValueError):
        decode_stream(codec8, blob + b"\x01\x02\x03")


def test_truncated_checksum_wire_size(rng):
    """4-byte checksums shrink every cell by 4 bytes on the wire."""
    codec_full = SymbolCodec(8)
    codec_short = SymbolCodec(8, checksum_size=4)
    assert cell_wire_size(codec_short) == cell_wire_size(codec_full) - 4


def test_wire_size_helper(codec8):
    assert cell_wire_size(codec8, count_delta=0) == 8 + 8 + 1
    assert cell_wire_size(codec8, count_delta=1000) == 8 + 8 + 2


def test_end_to_end_over_wire(codec8, rng):
    """Serialise Alice's cells, parse at Bob, decode — full pipeline."""
    from repro.core.decoder import RatelessDecoder

    items = make_items(rng, 120)
    a = set(items)
    b = set(items[10:]) | set(make_items(rng, 10))
    alice = RatelessEncoder(codec8, a)
    blob = encode_stream(codec8, len(a), [c.copy() for c in alice.produce(80)])
    cells, _ = decode_stream(codec8, blob)
    bob = RatelessEncoder(codec8, b)
    decoder = RatelessDecoder(codec8)
    for cell in cells:
        decoder.add_subtracted(cell, bob.produce_next())
        if decoder.decoded:
            break
    assert decoder.decoded
    assert set(decoder.remote_items()) == a - b
    assert set(decoder.local_items()) == b - a


# -- robustness: truncation, corruption, disconnects ------------------------


def test_reader_finish_clean_boundary(codec8, rng):
    items = make_items(rng, 20)
    enc = RatelessEncoder(codec8, items)
    blob = encode_stream(codec8, 20, [c.copy() for c in enc.produce(6)])
    reader = SymbolStreamReader(codec8)
    cells = reader.feed(blob)
    assert len(cells) == 6
    reader.finish()  # exact boundary: no error
    assert reader.pending_bytes == 0


def test_reader_finish_mid_cell_raises(codec8, rng):
    """A disconnect mid-cell is a typed truncation, not silent loss."""
    items = make_items(rng, 20)
    enc = RatelessEncoder(codec8, items)
    blob = encode_stream(codec8, 20, [c.copy() for c in enc.produce(6)])
    reader = SymbolStreamReader(codec8)
    reader.feed(blob[:-3])
    assert reader.pending_bytes > 0
    with pytest.raises(ValueError):
        reader.finish()


def test_reader_finish_mid_header_raises(codec8):
    reader = SymbolStreamReader(codec8)
    reader.feed(b"RIB1\x08")  # header cut short
    with pytest.raises(ValueError):
        reader.finish()


def test_corrupt_count_varint_raises_not_stalls(codec8, rng):
    """A count varint of endless continuation bytes must raise; before
    the guard it parked the reader waiting for bytes that never come."""
    from repro.core.cellbank import CodedSymbolBank

    items = make_items(rng, 30)
    enc = RatelessEncoder(codec8, items)
    blob = encode_stream(codec8, 30, [c.copy() for c in enc.produce(2)])
    reader = SymbolStreamReader(codec8)
    reader.feed(blob)
    bank = CodedSymbolBank()
    with pytest.raises(ValueError):
        # fixed part of one cell, then a hostile varint
        reader.feed_into(bank, b"\x00" * 16 + b"\xff" * 16)


def test_header_size_mismatch_raises(codec8, rng):
    items = make_items(rng, 10)
    enc = RatelessEncoder(codec8, items)
    blob = encode_stream(codec8, 10, [c.copy() for c in enc.produce(2)])
    wrong = SymbolCodec(4)
    with pytest.raises(ValueError):
        SymbolStreamReader(wrong).feed(blob)


def test_feed_into_byte_by_byte_matches_bulk(codec8, rng):
    """Chunking must never change what parses (mid-stream reconnects)."""
    from repro.core.cellbank import CodedSymbolBank

    items = make_items(rng, 50)
    enc = RatelessEncoder(codec8, items)
    blob = encode_stream(codec8, 50, [c.copy() for c in enc.produce(20)])
    bulk = SymbolStreamReader(codec8)
    bank_bulk = CodedSymbolBank()
    bulk.feed_into(bank_bulk, blob)
    trickle = SymbolStreamReader(codec8)
    bank_trickle = CodedSymbolBank()
    for i in range(len(blob)):
        trickle.feed_into(bank_trickle, blob[i : i + 1])
    assert bank_bulk == bank_trickle
    trickle.finish()
