"""Legacy shim so editable installs work without the ``wheel`` package
(this sandbox has no network to fetch build-isolation dependencies).
All real metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
