"""The PinSketch set sketch: syndrome encode, XOR subtract, BCH decode.

API mirrors Minisketch: a sketch of *capacity* ``t`` occupies exactly
``t·m`` bits and reconciles up to ``t`` differences.  ``decode`` either
returns the exact symmetric difference or raises :class:`DecodeFailure`;
it never silently returns a wrong answer (roots are verified against the
syndromes before being accepted).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.baselines.pinsketch import poly
from repro.baselines.pinsketch.bch import (
    berlekamp_massey,
    expand_syndromes,
    odd_syndromes,
)
from repro.baselines.pinsketch.gf2 import GF2m


class DecodeFailure(Exception):
    """Raised when the difference exceeds the sketch capacity."""


class PinSketch:
    """BCH-syndrome sketch over GF(2^m) with capacity ``t``."""

    def __init__(self, field: GF2m, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.field = field
        self.capacity = capacity
        self.syndromes = [0] * capacity

    # -- construction -----------------------------------------------------

    def add(self, element: int) -> None:
        """Toggle one nonzero field element in the sketch.

        Adding an element twice removes it (XOR), matching set semantics
        under symmetric difference.
        """
        if not 0 < element < self.field.order:
            raise ValueError(
                f"element must be in [1, 2^{self.field.m}), got {element}"
            )
        for j, power in enumerate(odd_syndromes(self.field, element, self.capacity)):
            self.syndromes[j] ^= power

    @classmethod
    def from_items(
        cls, items: Iterable[int], field: GF2m, capacity: int
    ) -> "PinSketch":
        sketch = cls(field, capacity)
        for item in items:
            sketch.add(item)
        return sketch

    # -- linearity ----------------------------------------------------------

    def subtract(self, other: "PinSketch") -> "PinSketch":
        """Sketch of the symmetric difference (XOR of syndromes)."""
        if self.field != other.field or self.capacity != other.capacity:
            raise ValueError("sketches have different geometry")
        out = PinSketch(self.field, self.capacity)
        out.syndromes = [a ^ b for a, b in zip(self.syndromes, other.syndromes)]
        return out

    # -- wire ------------------------------------------------------------------

    def serialize(self) -> bytes:
        """Pack the syndromes into ⌈t·m/8⌉ bytes."""
        blob = 0
        for j, s in enumerate(self.syndromes):
            blob |= s << (j * self.field.m)
        return blob.to_bytes((self.capacity * self.field.m + 7) // 8, "little")

    @classmethod
    def deserialize(cls, data: bytes, field: GF2m, capacity: int) -> "PinSketch":
        expected = (capacity * field.m + 7) // 8
        if len(data) != expected:
            raise ValueError(f"expected {expected} bytes, got {len(data)}")
        blob = int.from_bytes(data, "little")
        sketch = cls(field, capacity)
        sketch.syndromes = [
            (blob >> (j * field.m)) & field.mask for j in range(capacity)
        ]
        return sketch

    def wire_size(self) -> int:
        """Serialised size in bytes."""
        return (self.capacity * self.field.m + 7) // 8

    # -- decoding -----------------------------------------------------------------

    def decode(self) -> list[int]:
        """Recover the elements of a (difference) sketch.

        Raises :class:`DecodeFailure` when more than ``capacity`` elements
        are present.  The empty difference decodes to ``[]``.
        """
        field = self.field
        if all(s == 0 for s in self.syndromes):
            return []
        full = expand_syndromes(field, self.syndromes)
        locator = berlekamp_massey(field, full)
        v = poly.degree(locator)
        if v < 1 or v > self.capacity:
            raise DecodeFailure(f"locator degree {v} out of range")
        # Λ(x) = Π(1 − X_i x); its reversal Π(x − X_i) has the elements as
        # roots.  (Reversal = coefficient list reversed.)
        reversed_locator = poly.trim(list(reversed(locator)))
        roots = poly.find_roots(field, reversed_locator)
        if len(roots) != v or len(set(roots)) != v or any(r == 0 for r in roots):
            raise DecodeFailure(
                f"locator of degree {v} produced {len(roots)} distinct roots"
            )
        self._verify(roots)
        return sorted(roots)

    def _verify(self, roots: Sequence[int]) -> None:
        """Check the recovered elements regenerate the sketch exactly."""
        field = self.field
        check = [0] * self.capacity
        for r in roots:
            for j, power in enumerate(odd_syndromes(field, r, self.capacity)):
                check[j] ^= power
        if check != self.syndromes:
            raise DecodeFailure("recovered roots do not reproduce the syndromes")
