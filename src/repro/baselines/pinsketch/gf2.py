"""Binary extension fields GF(2^m) on plain Python integers.

Elements are ints in ``[0, 2^m)`` interpreted as polynomials over GF(2);
multiplication is carry-less (4-bit windowed) followed by reduction modulo
a fixed low-weight irreducible polynomial.  Sizes 8/16/32/64 cover the
paper's experiments (8-byte items ⇒ GF(2^64), the largest Minisketch
supports, per §7.2).
"""

from __future__ import annotations

# Low-weight irreducible polynomials (HAC Table 4.8 / Seroussi), including
# the leading x^m term.  Verified irreducible by tests/test_gf2.py.
IRREDUCIBLE_POLYS: dict[int, int] = {
    8: (1 << 8) | 0x1B,  # x^8 + x^4 + x^3 + x + 1
    16: (1 << 16) | 0x2B,  # x^16 + x^5 + x^3 + x + 1
    32: (1 << 32) | 0x8D,  # x^32 + x^7 + x^3 + x^2 + 1
    64: (1 << 64) | 0x1B,  # x^64 + x^4 + x^3 + x + 1
}


# Bit-interleave table for fast polynomial squaring: _SPREAD8[b] has the
# bits of byte b spread to even positions.
_SPREAD8 = [0] * 256
for _b in range(256):
    _s = 0
    for _i in range(8):
        if (_b >> _i) & 1:
            _s |= 1 << (2 * _i)
    _SPREAD8[_b] = _s
del _b, _s, _i


def clmul(a: int, b: int) -> int:
    """Carry-less product of two non-negative integers (GF(2)[x] multiply)."""
    # 4-bit window: precompute the 16 sub-products of b.
    table = [0] * 16
    table[1] = b
    for i in range(2, 16, 2):
        table[i] = table[i >> 1] << 1
        table[i + 1] = table[i] ^ b
    result = 0
    shift = 0
    while a:
        result ^= table[a & 0xF] << shift
        a >>= 4
        shift += 4
    return result


def poly2_mod(value: int, modulus: int) -> int:
    """Reduce a GF(2)[x] polynomial (as int) modulo ``modulus``."""
    mod_deg = modulus.bit_length() - 1
    deg = value.bit_length() - 1
    while deg >= mod_deg:
        value ^= modulus << (deg - mod_deg)
        deg = value.bit_length() - 1
    return value


def poly2_divmod(a: int, b: int) -> tuple[int, int]:
    """Quotient and remainder of GF(2)[x] division."""
    if b == 0:
        raise ZeroDivisionError("division by zero polynomial")
    deg_b = b.bit_length() - 1
    quotient = 0
    while a.bit_length() - 1 >= deg_b and a:
        shift = (a.bit_length() - 1) - deg_b
        quotient |= 1 << shift
        a ^= b << shift
    return quotient, a


def poly2_gcd(a: int, b: int) -> int:
    """GCD of two GF(2)[x] polynomials (as ints)."""
    while b:
        a, b = b, poly2_divmod(a, b)[1]
    return a


class GF2m:
    """The field GF(2^m) with its arithmetic operations.

    >>> field = GF2m(16)
    >>> a = 0x1234
    >>> field.mul(a, field.inv(a))
    1
    """

    def __init__(self, m: int, modulus: int | None = None) -> None:
        if modulus is None:
            if m not in IRREDUCIBLE_POLYS:
                raise ValueError(
                    f"no built-in modulus for GF(2^{m}); supply one explicitly"
                )
            modulus = IRREDUCIBLE_POLYS[m]
        if modulus.bit_length() - 1 != m:
            raise ValueError("modulus degree does not match m")
        self.m = m
        self.modulus = modulus
        self.order = 1 << m
        self.mask = self.order - 1
        # Bit positions of the modulus tail (modulus minus x^m): since
        # x^m ≡ tail (mod f), a product's high half folds into the low half
        # with a handful of shifted XORs instead of bit-by-bit division.
        tail = modulus ^ (1 << m)
        self._tail_shifts = tuple(
            i for i in range(tail.bit_length()) if (tail >> i) & 1
        )

    def _reduce(self, value: int) -> int:
        """Reduce a (≤ 2m-bit) carry-less product modulo the field polynomial
        by folding the high half through x^m ≡ tail."""
        mask = self.mask
        shifts = self._tail_shifts
        hi = value >> self.m
        lo = value & mask
        while hi:
            folded = 0
            for s in shifts:
                folded ^= hi << s
            hi = folded >> self.m
            lo ^= folded & mask
        return lo

    # -- basic ops -----------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Addition = subtraction = XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        return self._reduce(clmul(a, b))

    def mul_table(self, b: int) -> list[int]:
        """Precompute the 4-bit-window table for repeated products by ``b``.

        Polynomial inner loops multiply long coefficient vectors by one
        fixed factor; building the window table once per factor instead of
        once per product is a ~5x win at interpreter speed.
        """
        table = [0] * 16
        table[1] = b
        for i in range(2, 16, 2):
            table[i] = table[i >> 1] << 1
            table[i + 1] = table[i] ^ b
        return table

    def mul_with(self, a: int, table: list[int]) -> int:
        """Multiply ``a`` by the factor whose table was precomputed."""
        result = 0
        shift = 0
        while a:
            result ^= table[a & 0xF] << shift
            a >>= 4
            shift += 4
        return self._reduce(result)

    def sqr(self, a: int) -> int:
        """Field squaring (Frobenius); spread bits then reduce."""
        return self._reduce(self._spread(a))

    @staticmethod
    def _spread(a: int) -> int:
        """Interleave zero bits: squaring of a GF(2)[x] polynomial."""
        result = 0
        shift = 0
        while a:
            result |= _SPREAD8[a & 0xFF] << shift
            a >>= 8
            shift += 16
        return result

    def pow(self, a: int, e: int) -> int:
        """Exponentiation by squaring; ``0^0 = 1`` by convention."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        result = 1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.sqr(base)
            e >>= 1
        return result

    def inv(self, a: int) -> int:
        """Multiplicative inverse via the extended Euclidean algorithm."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        # Invariants: t0*a ≡ r0, t1*a ≡ r1 (mod modulus).
        r0, r1 = self.modulus, a
        t0, t1 = 0, 1
        while r1 != 1:
            q, r = poly2_divmod(r0, r1)
            r0, r1 = r1, r
            t0, t1 = t1, t0 ^ poly2_mod(clmul(q, t1), self.modulus)
            if r1 == 0:
                raise ZeroDivisionError("element not invertible (bad modulus?)")
        return t1

    def div(self, a: int, b: int) -> int:
        """Field division a/b."""
        return self.mul(a, self.inv(b))

    # -- derived maps ----------------------------------------------------------

    def trace(self, a: int) -> int:
        """Absolute trace Tr(a) = Σ a^(2^i) ∈ {0, 1}."""
        acc = a
        power = a
        for _ in range(self.m - 1):
            power = self.sqr(power)
            acc ^= power
        return acc

    def sqrt(self, a: int) -> int:
        """Square root: the inverse Frobenius, a^(2^(m−1))."""
        result = a
        for _ in range(self.m - 1):
            result = self.sqr(result)
        return result

    def is_element(self, a: int) -> bool:
        """Range check."""
        return 0 <= a < self.order

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GF2m):
            return NotImplemented
        return self.m == other.m and self.modulus == other.modulus

    def __hash__(self) -> int:
        return hash((self.m, self.modulus))

    def __repr__(self) -> str:
        return f"GF2m(m={self.m}, modulus={self.modulus:#x})"
