"""BCH syndrome machinery: power sums and Berlekamp–Massey.

A set S ⊂ GF(2^m)\\{0} has syndromes ``s_j = Σ_{x∈S} x^j``.  Over
characteristic 2, even syndromes are redundant (``s_2j = s_j²``), so a
PinSketch stores only the odd ones, ``t`` of them to correct up to ``t``
differences.  Decoding reconstructs ``s_1..s_2t`` and runs
Berlekamp–Massey to find the error locator ``Λ(x) = Π(1 − x·X_i)`` whose
inverse roots are the difference elements.
"""

from __future__ import annotations

from repro.baselines.pinsketch.gf2 import GF2m
from repro.baselines.pinsketch.poly import Poly, trim


def odd_syndromes(field: GF2m, element: int, t: int) -> list[int]:
    """[x, x³, x⁵, …, x^(2t−1)] for one element — its sketch contribution."""
    if element == 0:
        raise ValueError("PinSketch elements must be nonzero")
    powers = [0] * t
    square = field.sqr(element)
    current = element
    for j in range(t):
        powers[j] = current
        current = field.mul(current, square)
    return powers


def expand_syndromes(field: GF2m, odd: list[int]) -> list[int]:
    """Reconstruct s_1..s_2t from the stored odd syndromes (s_2j = s_j²)."""
    t = len(odd)
    full = [0] * (2 * t)
    for j in range(t):
        full[2 * j] = odd[j]  # s_{2j+1}
    # s_{2k} = s_k² ; fill even positions in increasing k so dependencies
    # (s_k for k ≤ t) are already available.
    for k in range(1, t + 1):
        full[2 * k - 1] = field.sqr(full[k - 1])
    return full


def berlekamp_massey(field: GF2m, sequence: list[int]) -> Poly:
    """Minimal LFSR (connection polynomial) generating ``sequence``.

    Returns ``C = [1, c1, …, cL]`` such that for all n ≥ L:
    ``s_n = Σ_{i=1..L} c_i·s_{n−i}`` (all arithmetic in GF(2^m), where
    + and − coincide).  For BCH syndromes of ``v ≤ t`` errors this is the
    error locator Λ(x) with ``deg Λ = v``.
    """
    c: Poly = [1]
    b: Poly = [1]
    length = 0
    shift = 1
    prev_disc = 1
    fmul = field.mul
    for n, s_n in enumerate(sequence):
        # Discrepancy: s_n + Σ c_i s_{n-i}.
        disc = s_n
        for i in range(1, length + 1):
            if i < len(c) and c[i]:
                disc ^= fmul(c[i], sequence[n - i])
        if disc == 0:
            shift += 1
            continue
        coef = fmul(disc, field.inv(prev_disc))
        adjustment = [0] * shift + [fmul(coef, x) for x in b]
        if 2 * length <= n:
            old_c = list(c)
            length = n + 1 - length
            b = old_c
            prev_disc = disc
            shift = 1
        else:
            shift += 1
        # c = c - adjustment (XOR in char 2), aligned lengths.
        if len(adjustment) > len(c):
            c = c + [0] * (len(adjustment) - len(c))
        for i, a in enumerate(adjustment):
            c[i] ^= a
        trim(c)
    return c
