"""PinSketch [Dodis, Ostrovsky, Reyzin & Smith 2008] from scratch.

PinSketch encodes a set of nonzero elements of GF(2^m) as the odd power
sums (BCH syndromes) ``s_j = Σ x^j`` for ``j = 1, 3, …, 2t−1``.  Sketches
XOR-subtract; the difference sketch decodes via Berlekamp–Massey plus
polynomial root finding, recovering up to ``t`` symmetric-difference
elements from exactly ``t·m`` bits — the information-theoretic optimum
that Fig 7 plots as overhead 1.

The price is computation: encoding is O(t) field multiplications *per
item*, and decoding is O(t²) — the quadratic wall the paper measures in
Figs 8-9 (PinSketch is 2-2000× slower than Rateless IBLT).

This package stands in for Minisketch (the production C++ library the
paper benchmarks); same algorithm, interpreter-speed constants.
"""

from repro.baselines.pinsketch.gf2 import GF2m
from repro.baselines.pinsketch.sketch import DecodeFailure, PinSketch

__all__ = ["GF2m", "PinSketch", "DecodeFailure"]
