"""Polynomials over GF(2^m): the decoding toolbox for PinSketch.

Polynomials are lists of field elements, index = degree, normalised so the
leading coefficient is nonzero (the zero polynomial is the empty list).
Includes the Berlekamp trace-splitting root finder, which locates all
roots of a squarefree polynomial in O(deg²·m) field operations — no
exhaustive Chien search over 2^m points.
"""

from __future__ import annotations

from repro.baselines.pinsketch.gf2 import GF2m
from repro.hashing.prng import Splitmix64

Poly = list[int]


def trim(p: Poly) -> Poly:
    """Drop leading zero coefficients in place; return p."""
    while p and p[-1] == 0:
        p.pop()
    return p


def degree(p: Poly) -> int:
    """Degree; −1 for the zero polynomial."""
    return len(p) - 1


def add(p: Poly, q: Poly) -> Poly:
    """p + q (coefficient-wise XOR)."""
    if len(p) < len(q):
        p, q = q, p
    out = list(p)
    for i, c in enumerate(q):
        out[i] ^= c
    return trim(out)


def scale(field: GF2m, p: Poly, c: int) -> Poly:
    """c · p."""
    if c == 0:
        return []
    if c == 1:
        return list(p)
    table = field.mul_table(c)
    mul_with = field.mul_with
    return trim([mul_with(coef, table) for coef in p])


def mul(field: GF2m, p: Poly, q: Poly) -> Poly:
    """Schoolbook product."""
    if not p or not q:
        return []
    if len(p) > len(q):
        p, q = q, p  # build window tables for the shorter operand
    out = [0] * (len(p) + len(q) - 1)
    mul_with = field.mul_with
    for i, a in enumerate(p):
        if a == 0:
            continue
        table = field.mul_table(a)
        for j, b in enumerate(q):
            if b:
                out[i + j] ^= mul_with(b, table)
    return trim(out)


def divmod_poly(field: GF2m, p: Poly, q: Poly) -> tuple[Poly, Poly]:
    """Quotient and remainder of p / q."""
    q = trim(list(q))
    if not q:
        raise ZeroDivisionError("division by the zero polynomial")
    rem = trim(list(p))
    dq = degree(q)
    lead_inv = field.inv(q[-1])
    quot = [0] * max(0, len(p) - dq)
    fmul = field.mul
    mul_with = field.mul_with
    # Precompute window tables for the divisor's nonzero coefficients —
    # they multiply a fresh factor on every elimination step.
    q_terms = [(i, field.mul_table(c)) for i, c in enumerate(q) if c]
    while degree(rem) >= dq:
        shift = degree(rem) - dq
        factor = fmul(rem[-1], lead_inv)
        quot[shift] = factor
        for i, table in q_terms:
            rem[i + shift] ^= mul_with(factor, table)
        trim(rem)
        if not rem:
            break
    return trim(quot), rem


def mod(field: GF2m, p: Poly, q: Poly) -> Poly:
    """Remainder of p / q."""
    return divmod_poly(field, p, q)[1]


def monic(field: GF2m, p: Poly) -> Poly:
    """Scale p so its leading coefficient is 1."""
    if not p:
        return []
    return scale(field, p, field.inv(p[-1]))


def gcd(field: GF2m, p: Poly, q: Poly) -> Poly:
    """Monic greatest common divisor."""
    a, b = trim(list(p)), trim(list(q))
    while b:
        a, b = b, mod(field, a, b)
    return monic(field, a)


def evaluate(field: GF2m, p: Poly, x: int) -> int:
    """Horner evaluation of p at x."""
    acc = 0
    table = field.mul_table(x)
    mul_with = field.mul_with
    for c in reversed(p):
        acc = mul_with(acc, table) ^ c
    return acc


def from_roots(field: GF2m, roots: list[int]) -> Poly:
    """Monic polynomial Π(x − r)."""
    p: Poly = [1]
    for r in roots:
        p = mul(field, p, [r, 1])
    return p


def sqr_mod(field: GF2m, p: Poly, modulus: Poly) -> Poly:
    """p² mod modulus — cheap in characteristic 2 (coefficients spread)."""
    if not p:
        return []
    out = [0] * (2 * len(p) - 1)
    fsqr = field.sqr
    for i, c in enumerate(p):
        if c:
            out[2 * i] = fsqr(c)
    return mod(field, trim(out), modulus)


def mul_mod(field: GF2m, p: Poly, q: Poly, modulus: Poly) -> Poly:
    """p·q mod modulus."""
    return mod(field, mul(field, p, q), modulus)


def _frobenius_basis(field: GF2m, modulus: Poly) -> list[Poly]:
    """[x^(2^i) mod modulus for i in 0..m-1] — the Frobenius power basis.

    With this precomputed, the trace polynomial of any β costs only m
    scalar-by-polynomial products: T(βx) mod p = Σ_i β^(2^i)·(x^(2^i) mod p).
    """
    basis: list[Poly] = [[0, 1]]
    for _ in range(field.m - 1):
        basis.append(sqr_mod(field, basis[-1], modulus))
    return basis


def find_roots(field: GF2m, p: Poly, seed: int = 0xB10C5) -> list[int]:
    """All roots in GF(2^m) of a squarefree polynomial ``p``.

    Berlekamp trace algorithm: for random β, the trace polynomial
    ``T(βx) = Σ_{i<m} (βx)^{2^i}`` evaluates to 0 or 1 at every point, so
    ``gcd(p, T(βx) mod p)`` splits the roots into the trace-0 and trace-1
    classes; recurse until linear.  The Frobenius basis is computed once
    per factor and *reduced* (not re-squared) on recursion, so each split
    attempt is O(m·d) instead of O(m·d²).

    Returns fewer than ``deg p`` roots when some factors have no roots in
    the field (the caller detects this as a decode failure).
    """
    p = monic(field, trim(list(p)))
    if not p or degree(p) == 0:
        return []
    rng = Splitmix64(seed ^ (degree(p) * 0x9E3779B97F4A7C15))
    roots: list[int] = []
    stack: list[tuple[Poly, list[Poly]]] = [(p, _frobenius_basis(field, p))]
    fsqr = field.sqr
    while stack:
        current, basis = stack.pop()
        deg = degree(current)
        if deg <= 0:
            continue
        if deg == 1:
            # monic x + c0 has the single root c0 (char 2).
            roots.append(current[0])
            continue
        split_found = False
        for _ in range(4 * field.m):
            beta = rng.next_u64() & field.mask
            if beta == 0:
                continue
            # T(βx) mod current from the precomputed basis.
            acc: Poly = []
            beta_power = beta
            for frob in basis:
                acc = add(acc, scale(field, frob, beta_power))
                beta_power = fsqr(beta_power)
            for candidate in (acc, add(acc, [1])):
                g = gcd(field, current, candidate)
                dg = degree(g)
                if 0 < dg < deg:
                    quotient, rem = divmod_poly(field, current, g)
                    if rem:
                        raise ArithmeticError("gcd does not divide polynomial")
                    stack.append((g, [mod(field, f, g) for f in basis]))
                    stack.append(
                        (quotient, [mod(field, f, quotient) for f in basis])
                    )
                    split_found = True
                    break
            if split_found:
                break
        if not split_found:
            # No roots in the field for this factor (irreducible of deg ≥ 2)
            # — legitimate when the input polynomial was not a product of
            # linear factors; the caller treats missing roots as failure.
            continue
    return roots
