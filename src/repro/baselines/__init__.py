"""Every scheme the paper compares against (§2, §7).

``regular_iblt`` — Invertible Bloom Lookup Tables [Goodrich & Mitzenmacher
                   2011; Eppstein et al. 2011], the non-rateless ancestor.
``strata``       — the Eppstein et al. strata estimator used to size
                   regular IBLTs ("Regular IBLT + Estimator" in Fig 7).
``met_iblt``     — MET-IBLT [Lázaro & Matuz 2023], rate-compatible blocks
                   optimised for preset difference sizes.
``pinsketch``    — BCH-syndrome set sketches [Dodis et al. 2008], the
                   algorithm behind Minisketch.
``cpi``          — Characteristic Polynomial Interpolation [Minsky,
                   Trachtenberg & Zippel 2003].
``merkle``       — hexary Merkle trie + the *state heal* protocol used by
                   Ethereum in production (§7.3).
"""
