"""Characteristic Polynomial Interpolation set reconciliation (CPI).

Minsky, Trachtenberg & Zippel (2003): Alice evaluates her set's
characteristic polynomial ``χ_A(z) = Π_{a∈A}(z − a)`` at ``m`` agreed
sample points over a prime field and sends the evaluations.  Bob forms
``f(z_i) = χ_A(z_i)/χ_B(z_i)``; because common items cancel,
``f = χ_{A\\B}/χ_{B\\A}`` is a rational function of total degree
``d = |A △ B|``, recoverable by rational interpolation from ``d+1``
points — communication-optimal (the Fig 7 overhead-1 reference point along
with PinSketch) but with O(d³) interpolation and O(|B|·m) evaluation cost,
which is why the paper's lineage moved to PinSketch and then IBLTs (§2).

Implementation notes: the field is GF(p) with p = 2^61 − 1 (Mersenne), so
items must be integers in [0, p); the linear system is solved by Gaussian
elimination; numerator roots (A\\B, unknown to Bob) are found by
Cantor–Zassenhaus-style splitting, denominator roots by rational-root
checks against Bob's own set.  The decoder verifies on held-out points and
raises :class:`CPIDecodeFailure` if the difference exceeded the sketch.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.hashing.prng import Splitmix64

# The Mersenne prime 2^61 − 1.
PRIME = (1 << 61) - 1


class CPIDecodeFailure(Exception):
    """Raised when the evaluations cannot explain the difference."""


# --- GF(p) helpers -----------------------------------------------------------


def _inv(a: int) -> int:
    """Inverse mod PRIME (Fermat)."""
    if a % PRIME == 0:
        raise ZeroDivisionError("0 has no inverse")
    return pow(a, PRIME - 2, PRIME)


def _poly_eval(coeffs: Sequence[int], x: int) -> int:
    """Horner evaluation; coeffs[i] is the degree-i coefficient."""
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % PRIME
    return acc


def _poly_trim(p: list[int]) -> list[int]:
    while p and p[-1] == 0:
        p.pop()
    return p


def _poly_mul(p: Sequence[int], q: Sequence[int]) -> list[int]:
    if not p or not q:
        return []
    out = [0] * (len(p) + len(q) - 1)
    for i, a in enumerate(p):
        if a:
            for j, b in enumerate(q):
                out[i + j] = (out[i + j] + a * b) % PRIME
    return _poly_trim(out)


def _poly_mod(p: Sequence[int], q: Sequence[int]) -> list[int]:
    rem = list(p)
    dq = len(q) - 1
    lead_inv = _inv(q[-1])
    while len(rem) - 1 >= dq and rem:
        shift = len(rem) - 1 - dq
        factor = rem[-1] * lead_inv % PRIME
        for i, c in enumerate(q):
            rem[i + shift] = (rem[i + shift] - factor * c) % PRIME
        _poly_trim(rem)
    return rem


def _poly_gcd(p: Sequence[int], q: Sequence[int]) -> list[int]:
    a, b = list(p), list(q)
    while b:
        a, b = b, _poly_mod(a, b)
    if a:
        lead_inv = _inv(a[-1])
        a = [c * lead_inv % PRIME for c in a]
    return a


def _poly_pow_mod(
    base: Sequence[int], exponent: int, modulus: Sequence[int]
) -> list[int]:
    result = [1]
    acc = _poly_mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = _poly_mod(_poly_mul(result, acc), modulus)
        acc = _poly_mod(_poly_mul(acc, acc), modulus)
        exponent >>= 1
    return result


def _poly_roots(p: Sequence[int], seed: int = 0xC91) -> list[int]:
    """All roots of a squarefree product of linear factors over GF(p).

    Equal-degree splitting: gcd(p, (x+a)^((p−1)/2) − 1) separates roots by
    the quadratic character of (root + a); recurse with random shifts.
    Returns fewer roots than deg(p) if p has irreducible factors.
    """
    p = _poly_trim(list(p))
    if not p:
        return []
    lead_inv = _inv(p[-1])
    p = [c * lead_inv % PRIME for c in p]
    # Keep only the part that splits into linear factors: gcd(p, x^p − x).
    xp = _poly_pow_mod([0, 1], PRIME, p)
    xp_minus_x = _poly_trim(
        [(c - (1 if i == 1 else 0)) % PRIME for i, c in enumerate(xp + [0, 0])]
    )
    linear_part = _poly_gcd(p, xp_minus_x) if xp_minus_x else p
    rng = Splitmix64(seed)
    roots: list[int] = []
    stack = [linear_part]
    while stack:
        current = stack.pop()
        deg = len(current) - 1
        if deg <= 0:
            continue
        if deg == 1:
            roots.append((-current[0]) * _inv(current[1]) % PRIME)
            continue
        while True:
            shift = rng.next_u64() % PRIME
            probe = _poly_pow_mod([shift, 1], (PRIME - 1) // 2, current)
            probe = _poly_trim(
                [(c - (1 if i == 0 else 0)) % PRIME for i, c in enumerate(probe + [0])]
            )
            g = _poly_gcd(current, probe)
            if 0 < len(g) - 1 < deg:
                quotient = _poly_div_exact(current, g)
                stack.append(g)
                stack.append(quotient)
                break
    return roots


def _poly_div_exact(p: Sequence[int], q: Sequence[int]) -> list[int]:
    rem = list(p)
    dq = len(q) - 1
    lead_inv = _inv(q[-1])
    quot = [0] * max(0, len(p) - dq)
    while len(rem) - 1 >= dq and rem:
        shift = len(rem) - 1 - dq
        factor = rem[-1] * lead_inv % PRIME
        quot[shift] = factor
        for i, c in enumerate(q):
            rem[i + shift] = (rem[i + shift] - factor * c) % PRIME
        _poly_trim(rem)
    if rem:
        raise ArithmeticError("division was not exact")
    return _poly_trim(quot)


def _solve_linear_system(matrix: list[list[int]], rhs: list[int]) -> list[int] | None:
    """Solve ``matrix·x = rhs`` mod PRIME by Gaussian elimination.

    Returns None when the system is singular (the caller falls back to a
    smaller degree split or reports failure).
    """
    n = len(matrix)
    cols = len(matrix[0]) if n else 0
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    pivot_row = 0
    pivot_cols = []
    for col in range(cols):
        pivot = next(
            (r for r in range(pivot_row, n) if aug[r][col] % PRIME != 0), None
        )
        if pivot is None:
            return None
        aug[pivot_row], aug[pivot] = aug[pivot], aug[pivot_row]
        inv = _inv(aug[pivot_row][col])
        aug[pivot_row] = [c * inv % PRIME for c in aug[pivot_row]]
        for r in range(n):
            if r != pivot_row and aug[r][col]:
                factor = aug[r][col]
                aug[r] = [
                    (c - factor * pc) % PRIME
                    for c, pc in zip(aug[r], aug[pivot_row])
                ]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == n:
            break
    if pivot_row < cols:
        return None
    solution = [0] * cols
    for r, col in enumerate(pivot_cols):
        solution[col] = aug[r][cols]
    return solution


# --- sample points --------------------------------------------------------------
#
# Agreed evaluation points must avoid set items; items are hashed into
# [0, 2^60) and points are taken descending from PRIME − 1.


def sample_point(index: int) -> int:
    """The ``index``-th agreed evaluation point."""
    return PRIME - 1 - index


MAX_ITEM = PRIME - (1 << 20)  # keep a gap between items and sample points


class CPISketch:
    """Evaluations of a set's characteristic polynomial at agreed points."""

    def __init__(self, set_size: int, evaluations: list[int]) -> None:
        self.set_size = set_size
        self.evaluations = evaluations

    @classmethod
    def from_items(cls, items: Iterable[int], num_points: int) -> "CPISketch":
        """Evaluate χ_A at the first ``num_points`` sample points.

        O(|A|·num_points) multiplications — the encoding cost CPI is
        penalised for in §2.
        """
        items = list(items)
        for item in items:
            if not 0 <= item < MAX_ITEM:
                raise ValueError(f"CPI items must be in [0, {MAX_ITEM})")
        evals = []
        for i in range(num_points):
            z = sample_point(i)
            acc = 1
            for item in items:
                acc = acc * (z - item) % PRIME
            evals.append(acc)
        return cls(len(items), evals)

    def wire_size(self) -> int:
        """Bytes on the wire: 8 per evaluation plus the set size."""
        return 8 * len(self.evaluations) + 8

    def decode_against(self, bob_items: Iterable[int]) -> tuple[list[int], list[int]]:
        """Recover (A \\ B, B \\ A) given Bob's full set.

        Uses all but one evaluation for interpolation and the remainder
        for verification.  Raises :class:`CPIDecodeFailure` when the
        difference does not fit.
        """
        bob = list(bob_items)
        m = len(self.evaluations)
        if m < 2:
            raise CPIDecodeFailure("need at least two evaluation points")
        # Ratios f_i = χ_A(z_i) / χ_B(z_i).
        ratios = []
        for i, alice_eval in enumerate(self.evaluations):
            z = sample_point(i)
            bob_eval = 1
            for item in bob:
                bob_eval = bob_eval * (z - item) % PRIME
            if alice_eval == 0 or bob_eval == 0:
                raise CPIDecodeFailure("sample point collides with a set item")
            ratios.append(alice_eval * _inv(bob_eval) % PRIME)
        delta = self.set_size - len(bob)
        # Try the largest representable difference first, then shrink: the
        # verification points reject over-fitted splits.
        budget = m - 1  # one point held out for verification
        start = budget - ((budget - abs(delta)) % 2)
        for total in range(start, abs(delta) - 1, -2):
            # total = deg P + deg Q with deg P − deg Q = delta.
            deg_p = (total + delta) // 2
            deg_q = (total - delta) // 2
            solution = self._try_interpolate(ratios, deg_p, deg_q)
            if solution is None:
                continue
            # After gcd reduction the true degrees may be smaller than the
            # fitted ones; compare against the reduced polynomials.
            p_coeffs, q_coeffs = solution
            true_p = len(p_coeffs) - 1
            true_q = len(q_coeffs) - 1
            only_a = _poly_roots(p_coeffs)
            only_b = _poly_roots(q_coeffs)
            if len(only_a) != true_p or len(only_b) != true_q:
                continue
            if len(set(only_a)) != true_p or len(set(only_b)) != true_q:
                continue
            bob_set = set(bob)
            if any(b not in bob_set for b in only_b):
                continue
            return sorted(only_a), sorted(only_b)
        raise CPIDecodeFailure(
            f"difference does not fit in {m} evaluation points"
        )

    def _try_interpolate(
        self, ratios: list[int], deg_p: int, deg_q: int
    ) -> tuple[list[int], list[int]] | None:
        """Fit monic P (deg_p) and monic Q (deg_q) to P(z_i) = f_i·Q(z_i).

        Uses deg_p + deg_q equations; all remaining points must verify.
        """
        unknowns = deg_p + deg_q
        m = len(ratios)
        if unknowns + 1 > m:
            return None
        matrix: list[list[int]] = []
        rhs: list[int] = []
        for i in range(unknowns):
            z = sample_point(i)
            f = ratios[i]
            row = [pow(z, j, PRIME) for j in range(deg_p)]
            row.extend((-f) * pow(z, j, PRIME) % PRIME for j in range(deg_q))
            matrix.append(row)
            rhs.append((f * pow(z, deg_q, PRIME) - pow(z, deg_p, PRIME)) % PRIME)
        if unknowns == 0:
            solution: list[int] = []
        else:
            solution = _solve_linear_system(matrix, rhs)
            if solution is None:
                return None
        p_coeffs = _poly_trim(solution[:deg_p] + [1])
        q_coeffs = _poly_trim(solution[deg_p:] + [1])
        # Verify on the held-out points.
        for i in range(unknowns, m):
            z = sample_point(i)
            lhs = _poly_eval(p_coeffs, z)
            rhs_val = ratios[i] * _poly_eval(q_coeffs, z) % PRIME
            if lhs != rhs_val:
                return None
        # Reduce common factors (items counted on both sides).
        gcd = _poly_gcd(p_coeffs, q_coeffs)
        if len(gcd) - 1 > 0:
            p_coeffs = _poly_div_exact(p_coeffs, gcd)
            q_coeffs = _poly_div_exact(q_coeffs, gcd)
        return p_coeffs, q_coeffs


def reconcile_cpi(
    alice_items: Iterable[int],
    bob_items: Iterable[int],
    difference_bound: int,
) -> tuple[list[int], list[int]]:
    """One-shot CPI reconciliation with an explicit difference bound."""
    bob = list(bob_items)
    sketch = CPISketch.from_items(alice_items, difference_bound + 2)
    return sketch.decode_against(bob)


class StreamingCPI:
    """Rateless-style CPI: evaluations stream one at a time (§2).

    The paper credits CPI [19] with first mentioning incremental coded
    symbols: χ_A evaluations at successive sample points *are* a
    parameter-free stream — each new point supports one more unit of
    difference.  What kept it impractical is the cost this class makes
    measurable: every appended evaluation costs Alice O(|A|)
    multiplications, and every decode attempt costs O(d³), versus
    O(log d) per symbol and O(d log d) for Rateless IBLT.
    """

    def __init__(self, alice_items: Iterable[int]) -> None:
        self.items = list(alice_items)
        for item in self.items:
            if not 0 <= item < MAX_ITEM:
                raise ValueError(f"CPI items must be in [0, {MAX_ITEM})")
        self.evaluations: list[int] = []

    def produce_next(self) -> int:
        """Evaluate χ_A at the next sample point — O(|A|) multiplies."""
        z = sample_point(len(self.evaluations))
        acc = 1
        for item in self.items:
            acc = acc * (z - item) % PRIME
        self.evaluations.append(acc)
        return acc

    def sketch(self) -> CPISketch:
        """The sketch formed by everything produced so far."""
        return CPISketch(len(self.items), list(self.evaluations))


def reconcile_cpi_streaming(
    alice_items: Iterable[int],
    bob_items: Iterable[int],
    max_points: int = 256,
    batch: int = 2,
) -> tuple[list[int], list[int], int]:
    """Stream evaluations until decode succeeds; no difference bound.

    Returns ``(only_a, only_b, points_used)``.  Bob retries decoding
    every ``batch`` new evaluations (each retry is an O(d³)
    interpolation — the cost that makes this impractical vs Rateless
    IBLT, which retries for free as part of peeling).
    """
    bob = list(bob_items)
    stream = StreamingCPI(alice_items)
    while len(stream.evaluations) < max_points:
        for _ in range(batch):
            stream.produce_next()
        try:
            only_a, only_b = stream.sketch().decode_against(bob)
        except CPIDecodeFailure:
            continue
        return only_a, only_b, len(stream.evaluations)
    raise CPIDecodeFailure(f"no decode within {max_points} evaluation points")
