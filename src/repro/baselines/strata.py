"""Strata estimator for the set-difference size [Eppstein et al. 2011 §5].

Regular IBLTs need ``d`` up front; deployments therefore first exchange a
*strata estimator*: items are assigned to stratum ``i`` with probability
``2^-(i+1)`` (by the number of trailing zero bits of their hash), and each
stratum is a small fixed-size IBLT.  Decoding the subtracted strata from
the sparsest stratum down and scaling by ``2^(i+1)`` at the first failure
estimates ``d``.

The estimator stores *hashes* of items, not items, so its size does not
depend on ℓ.  The default geometry (16 strata × 80 cells × 12 B cells)
serialises to ≈15 KB — the extra cost Fig 7 charges to
"Regular IBLT + Estimator", per the recommended setup the paper cites.
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines.regular_iblt import RegularIBLT
from repro.core import varint
from repro.core.cellbank import CodedSymbolBank
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import KeyedHasher, make_hasher

# Default geometry tuned to ≈15 KB on the wire.
DEFAULT_STRATA = 16
DEFAULT_CELLS_PER_STRATUM = 80
# 8-byte stored hash + 3-byte checksum + 1-byte count.
STRATUM_CELL_BYTES = 12


class StrataEstimator:
    """Estimates |A △ B| from two ~15 KB summaries."""

    def __init__(
        self,
        strata: int = DEFAULT_STRATA,
        cells_per_stratum: int = DEFAULT_CELLS_PER_STRATUM,
        hasher: KeyedHasher | None = None,
        hash_count: int = 3,
    ) -> None:
        if strata < 2:
            raise ValueError("need at least two strata")
        self.strata = strata
        self.cells_per_stratum = cells_per_stratum
        self.hasher = hasher if hasher is not None else make_hasher()
        self.hash_count = hash_count
        # Each stratum stores 8-byte item hashes with a narrow checksum.
        self._codec = SymbolCodec(8, self.hasher, checksum_size=3)
        self.tables = [
            RegularIBLT(cells_per_stratum, self._codec, hash_count)
            for _ in range(strata)
        ]

    # -- construction ---------------------------------------------------------

    def _stratum_of(self, item_hash: int) -> int:
        """Stratum index: trailing zero bits of the hash, clamped."""
        if item_hash == 0:
            return self.strata - 1
        tz = (item_hash & -item_hash).bit_length() - 1
        return min(tz, self.strata - 1)

    def insert(self, data: bytes) -> None:
        """Account one set item."""
        item_hash = self.hasher.hash64(data)
        stratum = self._stratum_of(item_hash)
        self.tables[stratum].insert_value(item_hash)

    @classmethod
    def from_items(
        cls, items: Iterable[bytes], **kwargs: object
    ) -> "StrataEstimator":
        estimator = cls(**kwargs)  # type: ignore[arg-type]
        for item in items:
            estimator.insert(item)
        return estimator

    # -- estimation --------------------------------------------------------------

    def same_geometry(self, other: "StrataEstimator") -> bool:
        return (
            self.strata == other.strata
            and self.cells_per_stratum == other.cells_per_stratum
            and self.hash_count == other.hash_count
        )

    def estimate(self, other: "StrataEstimator") -> int:
        """Estimate |A △ B| given the other party's estimator.

        Decodes subtracted strata from the sparsest down; at the first
        undecodable stratum ``i`` the count seen so far scales by
        ``2^(i+1)``.
        """
        if not self.same_geometry(other):
            raise ValueError("strata estimators have different geometry")
        count = 0
        for i in range(self.strata - 1, -1, -1):
            diff = self.tables[i].subtract(other.tables[i])
            result = diff.decode()
            if not result.success:
                return count * (2 ** (i + 1))
            count += result.difference_size
        return count

    def wire_size(self) -> int:
        """Serialised size in bytes (the Fig 7 "+ Estimator" surcharge)."""
        return self.strata * self.cells_per_stratum * STRATUM_CELL_BYTES

    # -- wire -----------------------------------------------------------------

    def serialize(self) -> bytes:
        """The summary as bytes, for the protocol engine's ESTIMATE frame.

        Geometry header (strata, cells per stratum, hash count) followed
        by each stratum's flat cell blob.  The keyed hash itself never
        crosses the wire — like the codec key, both peers must hold it
        already (the engine constructs both estimators with the shared
        default).  Accounting (:meth:`wire_size`) intentionally stays
        the paper's 12 B/cell figure, not this faithful encoding.
        """
        parts = [
            varint.encode_uvarint(self.strata),
            varint.encode_uvarint(self.cells_per_stratum),
            varint.encode_uvarint(self.hash_count),
        ]
        parts.extend(
            CodedSymbolBank.from_cells(table.cells).pack(self._codec)
            for table in self.tables
        )
        return b"".join(parts)

    @classmethod
    def deserialize(
        cls, blob: bytes, hasher: KeyedHasher | None = None
    ) -> "StrataEstimator":
        """Rebuild a received summary (``hasher`` must match the sender's)."""
        strata, pos = varint.decode_uvarint(blob, 0)
        cells_per_stratum, pos = varint.decode_uvarint(blob, pos)
        hash_count, pos = varint.decode_uvarint(blob, pos)
        if strata < 2 or hash_count < 2 or cells_per_stratum < hash_count:
            raise ValueError(
                f"strata summary: implausible geometry (strata={strata}, "
                f"cells={cells_per_stratum}, hashes={hash_count})"
            )
        # Validate the declared geometry against the actual byte count
        # BEFORE allocating strata × cells tables: a hostile header must
        # fail in O(1), not after gigabytes of allocation.  Cell stride
        # is fixed by the estimator codec (8 B hash + 3 B checksum +
        # count); tables round their cell count down to a hash_count
        # multiple.
        stride = 8 + 3 + CodedSymbolBank.COUNT_BYTES
        stratum_bytes = (cells_per_stratum // hash_count) * hash_count * stride
        if len(blob) - pos != strata * stratum_bytes:
            raise ValueError(
                f"strata summary: expected {strata * stratum_bytes} cell bytes, "
                f"got {len(blob) - pos}"
            )
        est = cls(strata, cells_per_stratum, hasher, hash_count)
        codec = est._codec
        for table in est.tables:
            chunk = blob[pos : pos + stratum_bytes]
            table.cells = CodedSymbolBank.unpack(chunk, codec).cells()
            pos += stratum_bytes
        return est
