"""Regular (fixed-size) Invertible Bloom Lookup Tables — paper §3.

Each item is hashed into ``k`` cells, one per sub-table (the partitioned
construction guarantees the k cells are distinct).  Tables of identical
geometry subtract cell-wise into the table of the symmetric difference,
which decodes by peeling exactly like the rateless variant.

Regular IBLTs are the *non-rateless* baseline: the table size ``m`` must
be provisioned for the difference size ``d`` in advance.  Appendix A of
the paper proves the two failure modes we also exercise in tests:
``m < d`` decodes nothing (w.h.p.), and decoding from a truncated prefix
fails exponentially fast in the dropped fraction.

Cell layout on the wire follows the paper's evaluation setup: ℓ bytes of
sum + 8 bytes of checksum + 8 bytes of count.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.core.cellbank import NUMPY_MIN_JOBS, numpy_lane_eligible
from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult
from repro.core.symbols import SymbolCodec
from repro.hashing.prng import mix64

# Fixed wire width of one cell beyond the ℓ-byte sum (§7.1 setup:
# "allocate 8 bytes for the checksum and the count fields, respectively").
CELL_OVERHEAD_BYTES = 16

# Golden-ratio increment, used to derive the k per-row hash functions from
# one 64-bit base hash.
_ROW_SALT = 0x9E3779B97F4A7C15
_MASK = 0xFFFFFFFFFFFFFFFF


class RegularIBLT:
    """A fixed-geometry IBLT with ``m`` cells split into ``k`` sub-tables."""

    def __init__(self, num_cells: int, codec: SymbolCodec, hash_count: int = 3) -> None:
        if hash_count < 2:
            raise ValueError("hash_count must be at least 2")
        if num_cells < hash_count:
            raise ValueError("need at least one cell per sub-table")
        self.codec = codec
        self.hash_count = hash_count
        # Round down to a multiple of k so sub-tables are equal-sized.
        self.subtable_size = num_cells // hash_count
        self.num_cells = self.subtable_size * hash_count
        self.cells = [CodedSymbol() for _ in range(self.num_cells)]

    # -- geometry -----------------------------------------------------------

    def _positions(self, checksum: int) -> list[int]:
        """The k distinct cells an item with this checksum occupies."""
        positions = []
        sub = self.subtable_size
        for row in range(self.hash_count):
            row_hash = mix64((checksum + row * _ROW_SALT) & _MASK)
            positions.append(row * sub + row_hash % sub)
        return positions

    def wire_size(self) -> int:
        """Serialised size in bytes under the §7.1 accounting."""
        return self.num_cells * (self.codec.symbol_size + CELL_OVERHEAD_BYTES)

    def same_geometry(self, other: "RegularIBLT") -> bool:
        """True when two tables can be subtracted."""
        return (
            self.num_cells == other.num_cells
            and self.hash_count == other.hash_count
            and self.codec.compatible_with(other.codec)
        )

    # -- construction ---------------------------------------------------------

    def insert(self, data: bytes) -> None:
        """Add one item to the table."""
        self.insert_value(self.codec.to_int(data))

    def insert_value(self, value: int) -> None:
        """Add one item given in integer form."""
        checksum = self.codec.checksum_int(value)
        for pos in self._positions(checksum):
            self.cells[pos].apply(value, checksum, 1)

    def delete(self, data: bytes) -> None:
        """Remove one item (XOR is self-inverse)."""
        self.delete_value(self.codec.to_int(data))

    def delete_value(self, value: int) -> None:
        """Remove one item (XOR is self-inverse)."""
        checksum = self.codec.checksum_int(value)
        for pos in self._positions(checksum):
            self.cells[pos].apply(value, checksum, -1)

    @classmethod
    def from_items(
        cls,
        items: Iterable[bytes],
        num_cells: int,
        codec: SymbolCodec,
        hash_count: int = 3,
    ) -> "RegularIBLT":
        """Build a table from a batch of items.

        Large batches of narrow symbols ride the vectorised ingestion
        pipeline: one batch keyed-hash call, the k per-row positions as
        ``mix64`` lane arithmetic, and one unbuffered scatter per row —
        bit-identical to the per-item reference loop below.
        """
        table = cls(num_cells, codec, hash_count)
        datas = items if isinstance(items, list) else list(items)
        if len(datas) >= NUMPY_MIN_JOBS and numpy_lane_eligible(codec):
            import numpy as np

            from repro.hashing.prng import mix64_lanes

            values = np.array(codec.to_int_batch(datas), dtype=np.uint64)
            checksums = np.array(codec.checksum_batch(datas), dtype=np.uint64)
            sums = np.zeros(table.num_cells, dtype=np.uint64)
            cell_checksums = np.zeros(table.num_cells, dtype=np.uint64)
            counts = np.zeros(table.num_cells, dtype=np.int64)
            sub = np.uint64(table.subtable_size)
            with np.errstate(over="ignore"):
                for row in range(hash_count):
                    salted = checksums + np.uint64((row * _ROW_SALT) & _MASK)
                    pos = (
                        np.uint64(row) * sub + mix64_lanes(salted) % sub
                    ).astype(np.int64)
                    np.bitwise_xor.at(sums, pos, values)
                    np.bitwise_xor.at(cell_checksums, pos, checksums)
                    np.add.at(counts, pos, 1)
            table.cells = [
                CodedSymbol(s, k, c)
                for s, k, c in zip(
                    sums.tolist(), cell_checksums.tolist(), counts.tolist()
                )
            ]
            return table
        for item in datas:
            table.insert(item)
        return table

    # -- linearity -------------------------------------------------------------

    def subtract(self, other: "RegularIBLT") -> "RegularIBLT":
        """Cell-wise difference; decodes to the symmetric difference."""
        if not self.same_geometry(other):
            raise ValueError("IBLTs have different geometry and cannot be subtracted")
        out = RegularIBLT(self.num_cells, self.codec, self.hash_count)
        out.cells = [a.subtract(b) for a, b in zip(self.cells, other.cells)]
        return out

    # -- decoding ---------------------------------------------------------------

    def decode(self, prefix_cells: Optional[int] = None) -> DecodeResult:
        """Peel the (already subtracted) table.

        ``prefix_cells`` restricts decoding to the first cells only —
        used to reproduce Theorem A.2's truncation experiment.  The table
        is not mutated.
        """
        limit = (
            self.num_cells
            if prefix_cells is None
            else min(prefix_cells, self.num_cells)
        )
        cells = [cell.copy() for cell in self.cells[:limit]]
        codec = self.codec
        queue = deque(
            idx for idx, cell in enumerate(cells) if cell.count in (1, -1)
        )
        remote: list[int] = []
        local: list[int] = []
        seen: set[int] = set()
        while queue:
            idx = queue.popleft()
            cell = cells[idx]
            direction = cell.count
            if direction != 1 and direction != -1:
                continue
            checksum = cell.checksum
            if codec.checksum_int(cell.sum) != checksum:
                continue
            if checksum in seen:
                continue
            value = cell.sum
            seen.add(checksum)
            if direction == 1:
                remote.append(value)
            else:
                local.append(value)
            for pos in self._positions(checksum):
                if pos >= limit:
                    continue
                target = cells[pos]
                target.apply(value, checksum, -direction)
                if target.count in (1, -1):
                    queue.append(pos)
        success = all(cell.is_zero() for cell in cells)
        return DecodeResult(
            success=success,
            remote=[codec.to_bytes(v) for v in remote],
            local=[codec.to_bytes(v) for v in local],
            symbols_used=limit,
        )


# --- provisioning -------------------------------------------------------------
#
# Overhead multipliers m/d for k = 3 such that the decode failure rate is
# below ~1/3000 (the criterion used for Fig 7), calibrated with
# scripts embedded in benchmarks/bench_fig07_comm_overhead.py.  Small
# differences need proportionally much larger tables — the effect the
# paper reports as 4-10x overhead for small d.

_MULTIPLIER_TABLE: list[tuple[int, float]] = [
    (1, 15.0),
    (2, 10.0),
    (3, 8.0),
    (5, 6.6),
    (10, 5.0),
    (20, 3.6),
    (50, 2.7),
    (100, 2.25),
    (200, 1.95),
    (400, 1.75),
    (1000, 1.6),
    (10000, 1.45),
    (100000, 1.4),
]


def recommended_cells(difference_size: int, hash_count: int = 3) -> int:
    """Table size for a *known* difference size (failure rate ≲ 1/3000).

    Piecewise-geometric interpolation of the calibrated multiplier table.
    """
    if difference_size < 1:
        raise ValueError("difference size must be at least 1")
    d = difference_size
    table = _MULTIPLIER_TABLE
    if d >= table[-1][0]:
        mult = table[-1][1]
    else:
        mult = table[0][1]
        for (d0, m0), (d1, m1) in zip(table, table[1:]):
            if d0 <= d <= d1:
                # interpolate multiplier in log(d)
                import math

                t = (math.log(d) - math.log(d0)) / (math.log(d1) - math.log(d0))
                mult = m0 + t * (m1 - m0)
                break
    cells = max(hash_count * 2, int(round(d * mult)))
    # round up to a multiple of k
    return ((cells + hash_count - 1) // hash_count) * hash_count
