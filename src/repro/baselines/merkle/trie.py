"""A persistent hexary Merkle trie with content-addressed nodes.

Design choices mirror what the paper's §7.3 baseline needs:

* **16-ary branching** on key nibbles, like Geth's trie;
* **leaf-level compression**: a subtree holding a single key collapses to
  one leaf node carrying the full key, which subsumes Geth's "shorten
  sub-tries that have no branches" optimisation for hashed keys;
* **content addressing**: nodes are stored by the 32-byte BLAKE2b hash of
  their serialisation, so identical subtrees in different snapshots share
  storage and a replica can check "do I already have this node?" by hash —
  the primitive state heal is built on;
* **persistence**: ``update`` returns a new root, sharing all untouched
  nodes with the previous version.  Chain snapshots are therefore just a
  list of root hashes.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Optional

from repro.baselines.merkle.nibbles import max_depth, nibble_at

HASH_SIZE = 32
EMPTY_HASH = b"\x00" * HASH_SIZE

_LEAF_TAG = 0x4C  # 'L'
_BRANCH_TAG = 0x42  # 'B'


def hash_node(encoding: bytes) -> bytes:
    """Content address of a node encoding."""
    return hashlib.blake2b(encoding, digest_size=HASH_SIZE).digest()


class NodeStore:
    """A content-addressed node database (hash → encoding)."""

    def __init__(self) -> None:
        self._nodes: dict[bytes, bytes] = {}

    def put(self, encoding: bytes) -> bytes:
        node_hash = hash_node(encoding)
        self._nodes[node_hash] = encoding
        return node_hash

    def put_hashed(self, node_hash: bytes, encoding: bytes) -> None:
        """Insert a node fetched from a peer, verifying its hash."""
        if hash_node(encoding) != node_hash:
            raise ValueError("node encoding does not match its hash")
        self._nodes[node_hash] = encoding

    def get(self, node_hash: bytes) -> bytes:
        return self._nodes[node_hash]

    def __contains__(self, node_hash: bytes) -> bool:
        return node_hash in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def copy(self) -> "NodeStore":
        """Shallow copy (encodings are immutable bytes)."""
        out = NodeStore()
        out._nodes = dict(self._nodes)
        return out

    def total_bytes(self) -> int:
        """Sum of stored encoding sizes."""
        return sum(len(e) for e in self._nodes.values())


# --- node encodings -----------------------------------------------------------


def encode_leaf(key: bytes, value: bytes) -> bytes:
    return bytes([_LEAF_TAG, len(key)]) + key + value


def encode_branch(children: list[bytes]) -> bytes:
    """Children is a 16-list of hashes (EMPTY_HASH = no child).

    A bitmap plus the non-empty hashes keeps sparse branches compact,
    matching how production nodes serialise.
    """
    bitmap = 0
    body = bytearray()
    for i, child in enumerate(children):
        if child != EMPTY_HASH:
            bitmap |= 1 << i
            body.extend(child)
    return bytes([_BRANCH_TAG]) + bitmap.to_bytes(2, "little") + bytes(body)


def decode_node(encoding: bytes) -> tuple[str, object]:
    """Decode to ("leaf", (key, value)) or ("branch", [16 child hashes])."""
    tag = encoding[0]
    if tag == _LEAF_TAG:
        key_len = encoding[1]
        key = encoding[2 : 2 + key_len]
        value = encoding[2 + key_len :]
        return "leaf", (key, value)
    if tag == _BRANCH_TAG:
        bitmap = int.from_bytes(encoding[1:3], "little")
        children = []
        offset = 3
        for i in range(16):
            if bitmap & (1 << i):
                children.append(encoding[offset : offset + HASH_SIZE])
                offset += HASH_SIZE
            else:
                children.append(EMPTY_HASH)
        return "branch", children
    raise ValueError(f"unknown node tag {tag:#x}")


# --- the trie -------------------------------------------------------------------


class Trie:
    """An immutable view of one trie version (root hash + shared store)."""

    def __init__(self, store: NodeStore, root_hash: bytes = EMPTY_HASH) -> None:
        self.store = store
        self.root_hash = root_hash

    @classmethod
    def from_items(
        cls, items: Iterable[tuple[bytes, bytes]], store: Optional[NodeStore] = None
    ) -> "Trie":
        trie = cls(store if store is not None else NodeStore())
        for key, value in items:
            trie = trie.update(key, value)
        return trie

    # -- reads ------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Value stored under ``key``, or None."""
        node_hash = self.root_hash
        depth = 0
        while node_hash != EMPTY_HASH:
            kind, payload = decode_node(self.store.get(node_hash))
            if kind == "leaf":
                leaf_key, value = payload  # type: ignore[misc]
                return value if leaf_key == key else None
            children = payload  # type: ignore[assignment]
            node_hash = children[nibble_at(key, depth)]  # type: ignore[index]
            depth += 1
        return None

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All (key, value) pairs, in depth-first nibble order."""
        if self.root_hash == EMPTY_HASH:
            return
        stack = [self.root_hash]
        while stack:
            node_hash = stack.pop()
            kind, payload = decode_node(self.store.get(node_hash))
            if kind == "leaf":
                yield payload  # type: ignore[misc]
            else:
                for child in reversed(payload):  # type: ignore[arg-type]
                    if child != EMPTY_HASH:
                        stack.append(child)

    def node_count(self) -> int:
        """Number of distinct nodes reachable from this root."""
        if self.root_hash == EMPTY_HASH:
            return 0
        seen = {self.root_hash}
        stack = [self.root_hash]
        while stack:
            kind, payload = decode_node(self.store.get(stack.pop()))
            if kind == "branch":
                for child in payload:  # type: ignore[attr-defined]
                    if child != EMPTY_HASH and child not in seen:
                        seen.add(child)
                        stack.append(child)
        return len(seen)

    # -- writes -----------------------------------------------------------

    def update(self, key: bytes, value: bytes) -> "Trie":
        """Insert or overwrite ``key``; returns the new trie version."""
        new_root = self._update(self.root_hash, key, value, 0)
        return Trie(self.store, new_root)

    def _update(self, node_hash: bytes, key: bytes, value: bytes, depth: int) -> bytes:
        store = self.store
        if node_hash == EMPTY_HASH:
            return store.put(encode_leaf(key, value))
        kind, payload = decode_node(store.get(node_hash))
        if kind == "leaf":
            leaf_key, leaf_value = payload  # type: ignore[misc]
            if leaf_key == key:
                return store.put(encode_leaf(key, value))
            return self._split_leaf(leaf_key, leaf_value, key, value, depth)
        children = list(payload)  # type: ignore[arg-type]
        branch_nibble = nibble_at(key, depth)
        children[branch_nibble] = self._update(
            children[branch_nibble], key, value, depth + 1
        )
        return store.put(encode_branch(children))

    def _split_leaf(
        self,
        old_key: bytes,
        old_value: bytes,
        new_key: bytes,
        new_value: bytes,
        depth: int,
    ) -> bytes:
        """Replace a leaf by the branch chain separating two distinct keys."""
        store = self.store
        limit = max_depth(len(new_key))
        if depth >= limit:
            raise ValueError("duplicate key with different value reached max depth")
        old_nibble = nibble_at(old_key, depth)
        new_nibble = nibble_at(new_key, depth)
        children = [EMPTY_HASH] * 16
        if old_nibble == new_nibble:
            children[old_nibble] = self._split_leaf(
                old_key, old_value, new_key, new_value, depth + 1
            )
        else:
            children[old_nibble] = store.put(encode_leaf(old_key, old_value))
            children[new_nibble] = store.put(encode_leaf(new_key, new_value))
        return store.put(encode_branch(children))

    def reachable_store(self) -> NodeStore:
        """A fresh store holding exactly the nodes this root reaches.

        Used to give a replica *only its own* snapshot (the chain's shared
        store holds every version).
        """
        out = NodeStore()
        if self.root_hash == EMPTY_HASH:
            return out
        stack = [self.root_hash]
        seen = {self.root_hash}
        while stack:
            node_hash = stack.pop()
            encoding = self.store.get(node_hash)
            out.put_hashed(node_hash, encoding)
            kind, payload = decode_node(encoding)
            if kind == "branch":
                for child in payload:  # type: ignore[attr-defined]
                    if child != EMPTY_HASH and child not in seen:
                        seen.add(child)
                        stack.append(child)
        return out

    # -- comparisons ---------------------------------------------------------

    def diff_leaves(self, other: "Trie") -> tuple[set[bytes], set[bytes]]:
        """Keys of leaves reachable only from self / only from other.

        Used by tests to cross-check reconciliation results.
        """
        mine = dict(self.items())
        theirs = dict(other.items())
        only_self = {
            k for k, v in mine.items() if theirs.get(k) != v
        }
        only_other = {
            k for k, v in theirs.items() if mine.get(k) != v
        }
        return only_self, only_other
