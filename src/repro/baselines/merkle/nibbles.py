"""Nibble-path helpers for the hexary trie (16-ary branching on 4-bit digits)."""

from __future__ import annotations


def key_to_nibbles(key: bytes) -> tuple[int, ...]:
    """Split a key into 4-bit digits, most significant nibble first."""
    out = []
    for byte in key:
        out.append(byte >> 4)
        out.append(byte & 0xF)
    return tuple(out)


def nibble_at(key: bytes, depth: int) -> int:
    """The ``depth``-th nibble of ``key`` without materialising the path."""
    byte = key[depth >> 1]
    return byte >> 4 if depth % 2 == 0 else byte & 0xF


def max_depth(key_length: int) -> int:
    """Number of nibbles in a ``key_length``-byte key."""
    return 2 * key_length
