"""Hexary Merkle trie + the *state heal* protocol (paper §7.3 baseline).

Ethereum synchronises ledger state with Merkle tries: replicas compare
root hashes and descend, in lock steps, into sub-tries whose hashes
differ.  Geth's production protocol ("state heal") batches node requests
per round trip.  This package implements:

* :class:`~repro.baselines.merkle.trie.Trie` — a persistent (structure-
  sharing) hexary trie with content-addressed nodes, leaf-level path
  compression, and deterministic root hashes;
* :mod:`~repro.baselines.merkle.heal` — the round-based heal protocol,
  producing the per-round transcript (requests, bodies, node counts) that
  the network simulator replays under bandwidth/latency/compute models.
"""

from repro.baselines.merkle.heal import HealReport, state_heal
from repro.baselines.merkle.trie import NodeStore, Trie

__all__ = ["HealReport", "NodeStore", "Trie", "state_heal"]
