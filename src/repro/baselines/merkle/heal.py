"""State heal: Geth's Merkle-trie synchronisation protocol (paper §7.3).

Bob knows Alice's target root hash (from a block header) and owns a stale
node store.  Each round he requests the batch of node hashes on his
frontier that he does not have locally; Alice answers with the node
bodies; branch children he lacks join the next frontier.  The descent is
inherently lock-step — a node's children are unknown until its body
arrives — which is why the protocol costs one round trip per trie level
(plus extra rounds when a level exceeds the per-request batch limit), the
≥11 RTTs the paper measures.

This module runs the protocol on real tries and records the transcript;
``repro.net.protocols.heal_sync`` replays transcripts under network and
compute models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.merkle.trie import (
    EMPTY_HASH,
    HASH_SIZE,
    NodeStore,
    Trie,
    decode_node,
)

# Geth's snap/1 limits node requests to 384 per message.
DEFAULT_BATCH_LIMIT = 384

# Fixed per-message framing (headers etc.) charged to each direction.
MESSAGE_OVERHEAD_BYTES = 64


@dataclass
class HealRound:
    """One request/response round of the heal protocol."""

    requested_hashes: int
    request_bytes: int
    response_bytes: int
    nodes_delivered: int
    leaves_delivered: int


@dataclass
class HealReport:
    """Complete transcript and totals of a heal run."""

    rounds: list[HealRound] = field(default_factory=list)
    nodes_fetched: int = 0
    leaves_fetched: int = 0
    bytes_up: int = 0  # Bob → Alice (requests)
    bytes_down: int = 0  # Alice → Bob (node bodies)

    @property
    def round_trips(self) -> int:
        return len(self.rounds)

    @property
    def total_bytes(self) -> int:
        return self.bytes_up + self.bytes_down


def state_heal(
    bob_store: NodeStore,
    alice: Trie,
    batch_limit: int = DEFAULT_BATCH_LIMIT,
) -> HealReport:
    """Heal ``bob_store`` to contain Alice's full trie; return the transcript.

    After the call Bob can open ``Trie(bob_store, alice.root_hash)`` and
    read every account.
    """
    report = HealReport()
    if alice.root_hash == EMPTY_HASH:
        return report
    frontier: list[bytes] = []
    if alice.root_hash not in bob_store:
        frontier.append(alice.root_hash)
    while frontier:
        batch = frontier[:batch_limit]
        frontier = frontier[batch_limit:]
        request_bytes = MESSAGE_OVERHEAD_BYTES + HASH_SIZE * len(batch)
        response_bytes = MESSAGE_OVERHEAD_BYTES
        nodes_delivered = 0
        leaves_delivered = 0
        for node_hash in batch:
            encoding = alice.store.get(node_hash)
            bob_store.put_hashed(node_hash, encoding)
            response_bytes += len(encoding) + 2  # tiny length framing
            nodes_delivered += 1
            kind, payload = decode_node(encoding)
            if kind == "leaf":
                leaves_delivered += 1
            else:
                for child in payload:  # type: ignore[attr-defined]
                    if child != EMPTY_HASH and child not in bob_store:
                        frontier.append(child)
        report.rounds.append(
            HealRound(
                requested_hashes=len(batch),
                request_bytes=request_bytes,
                response_bytes=response_bytes,
                nodes_delivered=nodes_delivered,
                leaves_delivered=leaves_delivered,
            )
        )
        report.nodes_fetched += nodes_delivered
        report.leaves_fetched += leaves_delivered
        report.bytes_up += request_bytes
        report.bytes_down += response_bytes
    return report
