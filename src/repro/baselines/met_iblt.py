"""MET-IBLT: a rate-compatible IBLT optimised for preset difference sizes.

Lázaro & Matuz (IEEE Trans. Commun. 2023) jointly optimise IBLT degree
distributions for several pre-selected difference sizes ``d_1 < … < d_n``
such that the cell list for ``d_i`` is a prefix of the one for ``d_j``
(j > i).  The sender can therefore extend an in-flight table — but only in
coarse jumps to the next optimised size, which is exactly the limitation
Fig 7 shows: overhead is competitive *at* the preset sizes and 4-10×
worse between them.

The published parameter tables are not reproducible from the citing
paper, so this module implements the construction generically (multi-edge
types = per-block edge counts) with defaults calibrated by simulation
(see the calibration test in tests/test_met_iblt.py).  The defining
properties are preserved:

* cells are organised in append-only *blocks*, so longer tables extend
  shorter ones (rate compatibility);
* each item maps to ``edges_per_block[j]`` distinct cells in block ``j``,
  giving the multi-edge-type degree structure;
* decoding with the first ``t`` blocks peels like any IBLT.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.core.cellbank import NUMPY_MIN_JOBS, numpy_lane_eligible
from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult
from repro.core.symbols import SymbolCodec
from repro.hashing.prng import mix64

# Same wire accounting as regular IBLT (§7.1 setup).
CELL_OVERHEAD_BYTES = 16

_BLOCK_SALT = 0xC2B2AE3D27D4EB4F
_MASK = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class MetConfig:
    """Geometry of a MET-IBLT: block sizes, per-block degrees, targets."""

    block_sizes: tuple[int, ...]
    edges_per_block: tuple[int, ...]
    target_differences: tuple[int, ...]

    def __post_init__(self) -> None:
        if not (
            len(self.block_sizes)
            == len(self.edges_per_block)
            == len(self.target_differences)
        ):
            raise ValueError("config tuples must have equal length")
        if any(b < 1 for b in self.block_sizes):
            raise ValueError("block sizes must be positive")
        if any(e < 1 for e in self.edges_per_block):
            raise ValueError("edge counts must be positive")
        if list(self.target_differences) != sorted(self.target_differences):
            raise ValueError("target differences must be increasing")

    @property
    def levels(self) -> int:
        return len(self.block_sizes)

    def cumulative_cells(self, level: int) -> int:
        """Total cells when the first ``level`` blocks are in use."""
        return sum(self.block_sizes[:level])

    def level_for_difference(self, d: int) -> int:
        """Smallest level whose optimised target covers ``d`` differences."""
        for level, target in enumerate(self.target_differences, start=1):
            if d <= target:
                return level
        return self.levels

    def block_of_cell(self, index: int) -> int:
        """Which block a flat cell index belongs to."""
        acc = 0
        for j, size in enumerate(self.block_sizes):
            acc += size
            if index < acc:
                return j
        raise IndexError(index)


# Calibrated default: optimised for d ∈ {10, 50, 250, 1250, 6250}; see the
# calibration test in tests/test_met_iblt.py which checks ≥95% decode
# success at each target.
DEFAULT_MET_CONFIG = MetConfig(
    block_sizes=(24, 90, 520, 2700, 14500),
    edges_per_block=(3, 2, 1, 1, 1),
    target_differences=(10, 50, 250, 1250, 6250),
)


class MetIBLT:
    """A MET-IBLT of a set, decodable at any block-aligned prefix."""

    def __init__(
        self, codec: SymbolCodec, config: MetConfig = DEFAULT_MET_CONFIG
    ) -> None:
        self.codec = codec
        self.config = config
        self.num_cells = config.cumulative_cells(config.levels)
        self.cells = [CodedSymbol() for _ in range(self.num_cells)]

    # -- geometry -----------------------------------------------------------

    def _positions_in_block(self, checksum: int, block: int) -> list[int]:
        """Distinct cells of ``block`` an item occupies."""
        size = self.config.block_sizes[block]
        base = self.config.cumulative_cells(block)
        edges = self.config.edges_per_block[block]
        positions: list[int] = []
        attempt = 0
        while len(positions) < min(edges, size):
            h = mix64((checksum + (block * 131 + attempt) * _BLOCK_SALT) & _MASK)
            pos = base + h % size
            attempt += 1
            if pos not in positions:
                positions.append(pos)
        return positions

    def _positions(self, checksum: int, levels: int) -> list[int]:
        positions: list[int] = []
        for block in range(levels):
            positions.extend(self._positions_in_block(checksum, block))
        return positions

    # -- construction ---------------------------------------------------------

    def insert(self, data: bytes) -> None:
        self.insert_value(self.codec.to_int(data))

    def insert_value(self, value: int) -> None:
        checksum = self.codec.checksum_int(value)
        for pos in self._positions(checksum, self.config.levels):
            self.cells[pos].apply(value, checksum, 1)

    def delete(self, data: bytes) -> None:
        """Remove one item (XOR is self-inverse)."""
        self.delete_value(self.codec.to_int(data))

    def delete_value(self, value: int) -> None:
        """Remove one item given in integer form."""
        checksum = self.codec.checksum_int(value)
        for pos in self._positions(checksum, self.config.levels):
            self.cells[pos].apply(value, checksum, -1)

    @classmethod
    def from_items(
        cls,
        items: Iterable[bytes],
        codec: SymbolCodec,
        config: MetConfig = DEFAULT_MET_CONFIG,
    ) -> "MetIBLT":
        """Build a table from a batch of items.

        Large batches of narrow symbols ride the vectorised ingestion
        pipeline: one batch keyed-hash call, then per block the first
        ``edges`` candidate positions as ``mix64`` lane arithmetic.  The
        few items whose candidates collide inside a block (rejection
        resampling is data-dependent) drop back to the per-item walk, so
        the table is bit-identical to the reference loop.
        """
        table = cls(codec, config)
        datas = items if isinstance(items, list) else list(items)
        if (
            len(datas) >= NUMPY_MIN_JOBS
            and numpy_lane_eligible(codec)
            and all(
                e < s for e, s in zip(config.edges_per_block, config.block_sizes)
            )
        ):
            table._fill_batch(datas)
            return table
        for item in datas:
            table.insert(item)
        return table

    def _fill_batch(self, datas: list[bytes]) -> None:
        """NumPy engine behind :meth:`from_items`."""
        import numpy as np

        from repro.hashing.prng import mix64_lanes

        codec = self.codec
        config = self.config
        values = np.array(codec.to_int_batch(datas), dtype=np.uint64)
        checksums = np.array(codec.checksum_batch(datas), dtype=np.uint64)
        sums = np.zeros(self.num_cells, dtype=np.uint64)
        cell_checksums = np.zeros(self.num_cells, dtype=np.uint64)
        counts = np.zeros(self.num_cells, dtype=np.int64)
        with np.errstate(over="ignore"):
            for block in range(config.levels):
                size = np.uint64(config.block_sizes[block])
                base = np.int64(config.cumulative_cells(block))
                edges = config.edges_per_block[block]
                cols = []
                for attempt in range(edges):
                    salt = np.uint64(
                        ((block * 131 + attempt) * _BLOCK_SALT) & _MASK
                    )
                    cols.append(
                        base
                        + (mix64_lanes(checksums + salt) % size).astype(np.int64)
                    )
                # Rows whose first `edges` candidates are all distinct took
                # no resampling detour and scatter as lanes; the rest
                # replay this block's scalar walk on the same lanes.
                clean = np.ones(len(datas), dtype=bool)
                for a in range(edges):
                    for b in range(a + 1, edges):
                        clean &= cols[a] != cols[b]
                for pos in cols:
                    np.bitwise_xor.at(sums, pos[clean], values[clean])
                    np.bitwise_xor.at(cell_checksums, pos[clean], checksums[clean])
                    np.add.at(counts, pos[clean], 1)
                for row in np.nonzero(~clean)[0].tolist():
                    checksum = int(checksums[row])
                    value = np.uint64(values[row])
                    for pos in self._positions_in_block(checksum, block):
                        sums[pos] ^= value
                        cell_checksums[pos] ^= np.uint64(checksum)
                        counts[pos] += 1
        self.cells = [
            CodedSymbol(s, k, c)
            for s, k, c in zip(
                sums.tolist(), cell_checksums.tolist(), counts.tolist()
            )
        ]

    # -- linearity ---------------------------------------------------------------

    def subtract(self, other: "MetIBLT") -> "MetIBLT":
        if self.config != other.config or not self.codec.compatible_with(other.codec):
            raise ValueError("MET-IBLTs have different geometry")
        out = MetIBLT(self.codec, self.config)
        out.cells = [a.subtract(b) for a, b in zip(self.cells, other.cells)]
        return out

    # -- decoding -----------------------------------------------------------------

    def decode(self, levels: int | None = None) -> DecodeResult:
        """Peel using the first ``levels`` blocks (default: all)."""
        if levels is None:
            levels = self.config.levels
        if not 1 <= levels <= self.config.levels:
            raise ValueError(f"levels must be in 1..{self.config.levels}")
        limit = self.config.cumulative_cells(levels)
        cells = [cell.copy() for cell in self.cells[:limit]]
        codec = self.codec
        queue = deque(idx for idx, cell in enumerate(cells) if cell.count in (1, -1))
        remote: list[int] = []
        local: list[int] = []
        seen: set[int] = set()
        while queue:
            idx = queue.popleft()
            cell = cells[idx]
            direction = cell.count
            if direction != 1 and direction != -1:
                continue
            checksum = cell.checksum
            if codec.checksum_int(cell.sum) != checksum:
                continue
            if checksum in seen:
                continue
            value = cell.sum
            seen.add(checksum)
            if direction == 1:
                remote.append(value)
            else:
                local.append(value)
            for pos in self._positions(checksum, levels):
                target = cells[pos]
                target.apply(value, checksum, -direction)
                if target.count in (1, -1):
                    queue.append(pos)
        success = all(cell.is_zero() for cell in cells)
        return DecodeResult(
            success=success,
            remote=[codec.to_bytes(v) for v in remote],
            local=[codec.to_bytes(v) for v in local],
            symbols_used=limit,
        )

    def decode_smallest_prefix(self) -> tuple[DecodeResult, int]:
        """Decode with the fewest blocks that succeed (rate-compatible use).

        Returns ``(result, cells_consumed)`` — the communication actually
        spent when the sender ships blocks one at a time.
        """
        for levels in range(1, self.config.levels + 1):
            result = self.decode(levels)
            if result.success:
                return result, self.config.cumulative_cells(levels)
        return result, self.config.cumulative_cells(self.config.levels)

    def wire_size(self, levels: int | None = None) -> int:
        """Bytes on the wire for a ``levels``-block prefix."""
        if levels is None:
            levels = self.config.levels
        cells = self.config.cumulative_cells(levels)
        return cells * (self.codec.symbol_size + CELL_OVERHEAD_BYTES)
