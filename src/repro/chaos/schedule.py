"""Deterministic fault schedules for the chaos proxy.

A schedule is a seed plus an ordered list of :class:`FaultSpec`
entries.  The proxy assigns spec ``i % len(specs)`` to the ``i``-th
accepted connection, and every random decision (jitter draws, which
byte to corrupt) comes from a :class:`random.Random` derived from
``(seed, connection index, direction)`` — so a soak run is exactly
reproducible from its ``(seed, specs)`` pair, regardless of how the
asyncio scheduler interleaves the connections themselves.

Schedules round-trip through JSON (:meth:`FaultSchedule.to_json` /
:meth:`FaultSchedule.from_json`) so a failing run's schedule can be
committed next to the bug report and replayed verbatim.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import Tuple


class ChaosError(ValueError):
    """An invalid fault specification or schedule document."""


@dataclass(frozen=True)
class FaultSpec:
    """One connection's worth of injected misbehaviour.

    All fields default to "off"; the zero spec is a clean passthrough.
    Rates and windows compose: a spec may both jitter and reset.
    """

    latency_s: float = 0.0
    """Fixed one-way delay added to every forwarded chunk."""
    jitter_s: float = 0.0
    """Uniform extra delay in ``[0, jitter_s]`` per chunk (seeded)."""
    bandwidth_bps: int = 0
    """Throttle: forwarding sleeps ``len(chunk) / bandwidth_bps``; 0 = off."""
    chunk_bytes: int = 0
    """Partial writes: forward in slices of at most this many bytes
    (each drained separately); 0 = forward chunks as received."""
    corrupt_prob: float = 0.0
    """Per-chunk probability of flipping one random byte (seeded)."""
    reset_after_bytes: int = 0
    """Hard-reset the connection after forwarding this many bytes in
    one direction — a mid-frame cut, not a graceful close; 0 = off."""
    blackhole_s: float = 0.0
    """Accept, then forward nothing for this long and drop; 0 = off."""
    drop: bool = False
    """Abort the connection immediately on accept."""

    def __post_init__(self) -> None:
        for name in ("latency_s", "jitter_s", "blackhole_s"):
            if getattr(self, name) < 0:
                raise ChaosError(f"{name} must be >= 0")
        for name in ("bandwidth_bps", "chunk_bytes", "reset_after_bytes"):
            if getattr(self, name) < 0:
                raise ChaosError(f"{name} must be >= 0")
        if not 0.0 <= self.corrupt_prob <= 1.0:
            raise ChaosError("corrupt_prob must be in [0, 1]")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSpec":
        known = cls.__dataclass_fields__
        bad = set(doc) - set(known)
        if bad:
            raise ChaosError(f"unknown FaultSpec fields: {sorted(bad)}")
        return cls(**doc)


@dataclass(frozen=True)
class FaultSchedule:
    """A seedable, cyclic assignment of :class:`FaultSpec` to connections."""

    specs: Tuple[FaultSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.specs:
            raise ChaosError("a schedule needs at least one FaultSpec")
        object.__setattr__(self, "specs", tuple(self.specs))

    def spec_for(self, conn_index: int) -> FaultSpec:
        """The spec governing the ``conn_index``-th accepted connection."""
        return self.specs[conn_index % len(self.specs)]

    def rng_for(self, conn_index: int, lane: int) -> random.Random:
        """The RNG for one connection direction (lane 0 = client->server,
        1 = server->client); independent of accept interleaving."""
        return random.Random(self.seed * 1000003 + conn_index * 2 + lane)

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]},
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosError(f"bad schedule JSON: {exc}") from None
        if not isinstance(doc, dict) or "specs" not in doc:
            raise ChaosError("schedule JSON must be {'seed': ..., 'specs': [...]}")
        specs = [FaultSpec.from_dict(entry) for entry in doc["specs"]]
        return cls(specs=tuple(specs), seed=int(doc.get("seed", 0)))


def default_schedule(seed: int = 0) -> FaultSchedule:
    """The soak benchmark's fault mix: clean, jittery, and mid-frame
    resets — every fault a well-configured retry policy must survive.

    Deliberately excludes corruption/blackhole/drop: those need
    ``retry_frame_errors`` or larger budgets and are exercised by the
    targeted tests instead of the throughput soak.
    """
    return FaultSchedule(
        seed=seed,
        specs=(
            FaultSpec(),
            FaultSpec(latency_s=0.002, jitter_s=0.004),
            FaultSpec(reset_after_bytes=2048),
            FaultSpec(jitter_s=0.003, chunk_bytes=512),
            FaultSpec(reset_after_bytes=16384, latency_s=0.001),
            FaultSpec(),
        ),
    )


__all__ = [
    "ChaosError",
    "FaultSpec",
    "FaultSchedule",
    "default_schedule",
]
