"""A real-socket fault-injection TCP proxy (asyncio).

:class:`ChaosProxy` listens on one address and forwards every accepted
connection to a fixed upstream target, applying the
:class:`~repro.chaos.schedule.FaultSpec` its
:class:`~repro.chaos.schedule.FaultSchedule` assigns to that
connection: added latency and seeded jitter, bandwidth throttling,
partial writes, seeded single-byte corruption, hard mid-stream resets,
blackholes, and outright drops.

Faults are applied per *direction* with independent seeded RNGs, so
the client→server and server→client lanes of one connection degrade
independently and reproducibly.  A reset is a real ``transport.abort``
— the peer sees ECONNRESET mid-frame, exactly the failure the service
layer's typed errors and retry policies must absorb.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Set

from repro.chaos.schedule import FaultSchedule, FaultSpec

_CHUNK = 1 << 16


@dataclass
class ProxyStats:
    """What the proxy did to traffic (all lifetime totals)."""

    connections: int = 0
    dropped: int = 0
    resets: int = 0
    blackholed: int = 0
    corrupted_bytes: int = 0
    bytes_forwarded: int = 0

    def snapshot(self) -> dict:
        return {
            "connections": self.connections,
            "dropped": self.dropped,
            "resets": self.resets,
            "blackholed": self.blackholed,
            "corrupted_bytes": self.corrupted_bytes,
            "bytes_forwarded": self.bytes_forwarded,
        }


class ChaosProxy:
    """Forward ``(listen) -> (target_host, target_port)`` with faults."""

    def __init__(
        self,
        target_host: str,
        target_port: int,
        schedule: FaultSchedule,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.schedule = schedule
        self.stats = ProxyStats()
        self.host: str = ""
        self.port: int = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: Set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Listen and return the ``(host, port)`` clients should dial."""
        if self._server is not None:
            raise RuntimeError("proxy already started")
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return (self.host, self.port)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conns):
            task.cancel()
        for task in list(self._conns):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._conns.clear()

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    @property
    def active_connections(self) -> int:
        """Connections currently being proxied (accepted, not yet done)."""
        return len(self._conns)

    async def wait_connections(self, count: int, timeout: float = 30.0) -> None:
        """Block until the proxy has accepted ``count`` connections."""
        deadline = asyncio.get_running_loop().time() + timeout
        while self.stats.connections < count:
            if asyncio.get_running_loop().time() >= deadline:
                raise asyncio.TimeoutError(
                    f"proxy saw {self.stats.connections}/{count} connections"
                )
            await asyncio.sleep(0.02)

    # -- per-connection ----------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
        try:
            await self._handle(reader, writer)
        except asyncio.CancelledError:
            pass  # proxy.close() tears down live connections
        finally:
            if task is not None:
                self._conns.discard(task)
            _abort(writer)

    async def _handle(self, reader, writer) -> None:
        index = self.stats.connections
        self.stats.connections += 1
        spec = self.schedule.spec_for(index)
        if spec.drop:
            self.stats.dropped += 1
            return
        if spec.blackhole_s > 0:
            self.stats.blackholed += 1
            await asyncio.sleep(spec.blackhole_s)
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except (ConnectionError, OSError):
            return
        try:
            await asyncio.gather(
                self._pump(reader, up_writer, spec, index, lane=0),
                self._pump(up_reader, writer, spec, index, lane=1),
            )
        except _Reset:
            self.stats.resets += 1
            _abort(writer)
            _abort(up_writer)
        except (ConnectionError, OSError):
            pass
        finally:
            _abort(up_writer)

    async def _pump(self, reader, writer, spec: FaultSpec, index: int,
                    lane: int) -> None:
        """One direction: read upstream chunks, degrade, forward."""
        rng = self.schedule.rng_for(index, lane)
        forwarded = 0
        while True:
            chunk = await reader.read(_CHUNK)
            if not chunk:
                # Graceful half-close: propagate EOF so the peer's
                # read loop terminates instead of hanging.
                try:
                    writer.write_eof()
                except (ConnectionError, OSError, RuntimeError):
                    pass
                return
            if spec.latency_s or spec.jitter_s:
                await asyncio.sleep(
                    spec.latency_s + rng.uniform(0.0, spec.jitter_s)
                )
            if spec.bandwidth_bps:
                await asyncio.sleep(len(chunk) / spec.bandwidth_bps)
            if spec.corrupt_prob and rng.random() < spec.corrupt_prob:
                pos = rng.randrange(len(chunk))
                flipped = chunk[pos] ^ (1 + rng.randrange(255))
                chunk = chunk[:pos] + bytes([flipped]) + chunk[pos + 1:]
                self.stats.corrupted_bytes += 1
            if spec.reset_after_bytes:
                budget = spec.reset_after_bytes - forwarded
                if budget <= len(chunk):
                    # Forward exactly up to the threshold (a mid-frame
                    # cut needs the partial bytes on the wire), then cut.
                    head = chunk[:max(0, budget)]
                    if head:
                        writer.write(head)
                        try:
                            await writer.drain()
                        except (ConnectionError, OSError):
                            pass
                        forwarded += len(head)
                        self.stats.bytes_forwarded += len(head)
                    raise _Reset()
            for piece in _slices(chunk, spec.chunk_bytes):
                writer.write(piece)
                await writer.drain()
                forwarded += len(piece)
                self.stats.bytes_forwarded += len(piece)


class _Reset(Exception):
    """Internal pump signal: this connection hit its reset threshold."""


def _slices(chunk: bytes, size: int):
    if size <= 0 or size >= len(chunk):
        yield chunk
        return
    for start in range(0, len(chunk), size):
        yield chunk[start:start + size]


def _abort(writer) -> None:
    """Hard-close a writer's transport, ignoring already-dead sockets."""
    try:
        transport = writer.transport
        if transport is not None:
            transport.abort()
    except (ConnectionError, OSError, RuntimeError):
        pass


__all__ = ["ChaosProxy", "ProxyStats"]
