"""``repro.chaos`` — deterministic real-socket fault injection.

The robustness claims of the service layer (typed failures, retryable
sheds, bounded hangs) are only as good as the faults they were tested
against.  This package makes those faults first-class and
reproducible:

:mod:`repro.chaos.schedule`
    Seedable :class:`FaultSchedule` documents — which connection gets
    which :class:`FaultSpec` (latency, jitter, throttling, partial
    writes, corruption, mid-frame resets, blackholes, drops) — with
    JSON round-tripping for replay.
:mod:`repro.chaos.proxy`
    :class:`ChaosProxy`, an asyncio TCP proxy that applies a schedule
    to live traffic, per connection and per direction.
:mod:`repro.chaos.orchestrator`
    :class:`ChaosOrchestrator`, a proxied
    :class:`~repro.cluster.ClusterSupervisor` pool where every
    client hop crosses a proxy and worker kills compose with wire
    faults.

The soak benchmark (``benchmarks/bench_chaos_soak.py``) drives a
client fleet through this stack and requires 100% completion — the
number the CI chaos-smoke job gates on.
"""

from repro.chaos.orchestrator import ChaosOrchestrator
from repro.chaos.proxy import ChaosProxy, ProxyStats
from repro.chaos.schedule import (
    ChaosError,
    FaultSchedule,
    FaultSpec,
    default_schedule,
)

__all__ = [
    "ChaosError",
    "ChaosOrchestrator",
    "ChaosProxy",
    "FaultSchedule",
    "FaultSpec",
    "ProxyStats",
    "default_schedule",
]
