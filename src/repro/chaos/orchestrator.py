"""Compose proxy faults with cluster process faults.

:class:`ChaosOrchestrator` stands up a full
:class:`~repro.cluster.ClusterSupervisor` pool and interposes one
:class:`~repro.chaos.proxy.ChaosProxy` per worker: workers bind their
real private ports, but the WELCOME routing tail advertises the proxy
ports (``ClusterConfig.advertise_ports``), so *every* leg of a
client's fan-out — the entry dial and each sibling dial — crosses a
fault-injecting proxy.  Process faults (:meth:`kill_worker`) then
compose with wire faults: a SIGKILL mid-session surfaces to clients as
a mid-frame cut through the proxy, and the supervisor's restart brings
the worker back behind the same advertised port.

Requires the per-worker-port fallback (``reuse_port=False``): with a
shared ``SO_REUSEPORT`` entry socket the kernel would route around the
proxies.
"""

from __future__ import annotations

import dataclasses
import signal
from typing import Iterable, List, Optional

from repro.chaos.proxy import ChaosProxy
from repro.chaos.schedule import FaultSchedule, default_schedule
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor, _free_port


class ChaosOrchestrator:
    """A proxied cluster pool: wire faults on every hop, kills on demand.

    Accepts the same seeding arguments as
    :class:`~repro.cluster.ClusterSupervisor`; the supplied
    ``ClusterConfig`` is copied with ``reuse_port=False``,
    ``entry_port=0`` and ``advertise_ports`` pointing at the proxies.
    """

    def __init__(
        self,
        items: Iterable[bytes] = (),
        *,
        schedule: Optional[FaultSchedule] = None,
        config: Optional[ClusterConfig] = None,
        **supervisor_kwargs: object,
    ) -> None:
        self.schedule = schedule or default_schedule()
        base = config or ClusterConfig()
        host = base.host
        self._proxy_ports: List[int] = [
            _free_port(host) for _ in range(base.num_workers)
        ]
        self.config = dataclasses.replace(
            base,
            reuse_port=False,
            entry_port=0,
            advertise_ports=list(self._proxy_ports),
        )
        self.supervisor = ClusterSupervisor(
            items, config=self.config, **supervisor_kwargs
        )
        self.proxies: List[ChaosProxy] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple:
        """Boot workers, then proxies; returns the proxied entry address."""
        if self._started:
            raise RuntimeError("orchestrator already started")
        self._started = True
        await self.supervisor.start()
        host = self.config.host
        for index, real_port in enumerate(self.supervisor.ports):
            proxy = ChaosProxy(host, real_port, self.schedule)
            await proxy.start(host, self._proxy_ports[index])
            self.proxies.append(proxy)
        return self.entry_address

    async def close(self) -> None:
        for proxy in self.proxies:
            await proxy.close()
        self.proxies = []
        await self.supervisor.close()

    async def __aenter__(self) -> "ChaosOrchestrator":
        try:
            await self.start()
        except BaseException:
            await self.close()
            raise
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- faults ------------------------------------------------------------

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """SIGKILL (by default) worker ``index``; the supervisor restarts
        it behind the same proxy port.  Returns the dead pid."""
        return self.supervisor.kill_worker(index, sig)

    # -- observability -----------------------------------------------------

    @property
    def entry_address(self) -> tuple:
        """The ``(host, port)`` clients dial — proxy 0, never a worker."""
        return (self.config.host, self._proxy_ports[0])

    @property
    def restart_counts(self) -> tuple:
        return self.supervisor.restart_counts

    def proxy_stats(self) -> dict:
        """Summed :class:`~repro.chaos.proxy.ProxyStats` across workers."""
        total: dict = {}
        for proxy in self.proxies:
            for key, value in proxy.stats.snapshot().items():
                total[key] = total.get(key, 0) + value
        return total


__all__ = ["ChaosOrchestrator"]
