"""Point-to-point links with bandwidth serialisation and propagation delay.

Each direction models a single FIFO bottleneck: a message of ``size``
bytes occupies the transmitter for ``size·8/bandwidth`` seconds starting
no earlier than the previous message finished, then arrives after the
one-way propagation delay — the same fluid model Dummynet implements for
the paper's testbed (50 ms delay, 10-100 Mbps caps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace


@dataclass
class Message:
    """Bytes in flight with an opaque payload for the receiver."""

    size: int
    payload: Any
    sent_at: float = 0.0
    delivered_at: float = 0.0


class _Direction:
    """One direction of a duplex link (its own bottleneck queue)."""

    # "Unlimited" bandwidth is modelled as 100 Gbps so that serialisation
    # times stay positive and event chains make progress.
    MAX_BANDWIDTH_BPS = 1e11

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay_s: float,
        trace: Optional[BandwidthTrace] = None,
    ) -> None:
        self.sim = sim
        self.bandwidth_bps = min(bandwidth_bps, self.MAX_BANDWIDTH_BPS)
        self.delay_s = delay_s
        self.trace = trace
        self._free_at = 0.0
        self.bytes_sent = 0

    def send(self, message: Message, deliver: Callable[[Message], None]) -> float:
        """Enqueue a message; returns its delivery time."""
        sim = self.sim
        start = max(sim.now, self._free_at)
        serialisation = message.size * 8.0 / self.bandwidth_bps
        self._free_at = start + serialisation
        delivery_time = self._free_at + self.delay_s
        message.sent_at = sim.now
        message.delivered_at = delivery_time
        self.bytes_sent += message.size
        if self.trace is not None:
            self.trace.record(delivery_time, message.size)
        sim.schedule_at(delivery_time, lambda: deliver(message))
        return delivery_time

    @property
    def busy_until(self) -> float:
        """When the transmitter frees up."""
        return self._free_at


class Link:
    """A duplex link between two endpoints, "a" and "b"."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay_s: float,
        trace_to_b: Optional[BandwidthTrace] = None,
        trace_to_a: Optional[BandwidthTrace] = None,
    ) -> None:
        self.sim = sim
        self.a_to_b = _Direction(sim, bandwidth_bps, delay_s, trace_to_b)
        self.b_to_a = _Direction(sim, bandwidth_bps, delay_s, trace_to_a)

    @property
    def rtt(self) -> float:
        """Round-trip propagation time (no serialisation)."""
        return self.a_to_b.delay_s + self.b_to_a.delay_s

    def send_to_b(
        self, size: int, payload: Any, deliver: Callable[[Message], None]
    ) -> float:
        return self.a_to_b.send(Message(size, payload), deliver)

    def send_to_a(
        self, size: int, payload: Any, deliver: Callable[[Message], None]
    ) -> float:
        return self.b_to_a.send(Message(size, payload), deliver)
