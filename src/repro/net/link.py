"""Point-to-point links with bandwidth serialisation and propagation delay.

Each direction models a single FIFO bottleneck: a message of ``size``
bytes occupies the transmitter for ``size·8/bandwidth`` seconds starting
no earlier than the previous message finished, then arrives after the
one-way propagation delay — the same fluid model Dummynet implements for
the paper's testbed (50 ms delay, 10-100 Mbps caps).

Loss (``loss_rate`` > 0 with an ``rng``) models a *reliable transport
over a lossy path*, the setting every framed protocol in this repo
assumes: a lost transmission is retransmitted after a retransmission
timeout, so the message still arrives, in order, but late — and the
wasted copies are charged to ``bytes_sent`` and occupy the transmitter.
Delivery therefore stays FIFO and loss shows up exactly where TCP users
feel it: added latency and extra bytes, never holes in the stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace


@dataclass
class Message:
    """Bytes in flight with an opaque payload for the receiver."""

    size: int
    payload: Any
    sent_at: float = 0.0
    delivered_at: float = 0.0


class _Direction:
    """One direction of a duplex link (its own bottleneck queue)."""

    # "Unlimited" bandwidth is modelled as 100 Gbps so that serialisation
    # times stay positive and event chains make progress.
    MAX_BANDWIDTH_BPS = 1e11

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay_s: float,
        trace: Optional[BandwidthTrace] = None,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        rto_s: Optional[float] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate and rng is None:
            # Never let a requested loss rate silently model zero loss:
            # default to a fixed-seed stream (reproducible runs).
            rng = random.Random(0)
        self.sim = sim
        self.bandwidth_bps = min(bandwidth_bps, self.MAX_BANDWIDTH_BPS)
        self.delay_s = delay_s
        self.trace = trace
        self.loss_rate = loss_rate
        self.rng = rng
        # Conventional minimum RTO shape: one RTT plus a little slack.
        self.rto_s = rto_s if rto_s is not None else 2.0 * delay_s + 0.01
        self._free_at = 0.0
        self._last_delivery = 0.0
        self.bytes_sent = 0
        self.retransmissions = 0

    def send(self, message: Message, deliver: Callable[[Message], None]) -> float:
        """Enqueue a message; returns its delivery time."""
        sim = self.sim
        attempts = 1
        if self.loss_rate and self.rng is not None:
            while self.rng.random() < self.loss_rate:
                attempts += 1
        start = max(sim.now, self._free_at)
        serialisation = message.size * 8.0 / self.bandwidth_bps
        # Every lost copy occupied the transmitter and burned its bytes;
        # the surviving copy leaves one RTO after each loss.
        self._free_at = start + serialisation * attempts
        delivery_time = self._free_at + self.delay_s + (attempts - 1) * self.rto_s
        # A reliable transport delivers in order: a frame whose
        # predecessor is stuck in retransmission waits for it.
        delivery_time = max(delivery_time, self._last_delivery)
        self._last_delivery = delivery_time
        message.sent_at = sim.now
        message.delivered_at = delivery_time
        self.bytes_sent += message.size * attempts
        self.retransmissions += attempts - 1
        if self.trace is not None:
            self.trace.record(delivery_time, message.size * attempts)
        sim.schedule_at(delivery_time, lambda: deliver(message))
        return delivery_time

    @property
    def busy_until(self) -> float:
        """When the transmitter frees up."""
        return self._free_at


class Link:
    """A duplex link between two endpoints, "a" and "b"."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay_s: float,
        trace_to_b: Optional[BandwidthTrace] = None,
        trace_to_a: Optional[BandwidthTrace] = None,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        rto_s: Optional[float] = None,
    ) -> None:
        self.sim = sim
        if loss_rate and rng is None:
            rng = random.Random(0)  # one shared stream for both directions
        self.a_to_b = _Direction(
            sim, bandwidth_bps, delay_s, trace_to_b, loss_rate, rng, rto_s
        )
        self.b_to_a = _Direction(
            sim, bandwidth_bps, delay_s, trace_to_a, loss_rate, rng, rto_s
        )

    @property
    def rtt(self) -> float:
        """Round-trip propagation time (no serialisation)."""
        return self.a_to_b.delay_s + self.b_to_a.delay_s

    def send_to_b(
        self, size: int, payload: Any, deliver: Callable[[Message], None]
    ) -> float:
        return self.a_to_b.send(Message(size, payload), deliver)

    def send_to_a(
        self, size: int, payload: Any, deliver: Callable[[Message], None]
    ) -> float:
        return self.b_to_a.send(Message(size, payload), deliver)
