"""Discrete-event network simulation substrate (replaces the paper's
FreeBSD + Dummynet testbed; a documented substitution).

``simulator``  — the event loop.
``link``       — duplex links with propagation delay and a serialising
                 bandwidth bottleneck per direction.
``trace``      — per-interval received-byte traces (Fig 13).
``protocols``  — Rateless-IBLT streaming sync and state-heal replays.
"""

from repro.net.link import Link, Message
from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace

__all__ = ["BandwidthTrace", "Link", "Message", "Simulator"]
