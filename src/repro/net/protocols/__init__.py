"""Synchronisation protocols over the simulated network (§7.3).

``riblt_sync``  — Alice streams Rateless IBLT coded symbols at line rate;
                  Bob decodes incrementally and signals stop (half a round
                  trip of interactivity).
``heal_sync``   — lock-step replay of a state-heal transcript with a
                  per-node compute model at Bob (reproducing the
                  compute-bound plateau of Fig 14).
``scheme_sync`` — the registry face: ``simulate_scheme_sync(a, b,
                  scheme=...)`` dispatches any registered scheme onto the
                  right protocol shape (streaming, heal, or lock-step
                  sketch exchange).
``machine_sync``— the protocol-engine face: the same sans-io
                  ``ReconcilerMachine`` pair every other transport
                  drives, frame by frame through a bandwidth/latency/
                  loss link — any registered scheme over a lossy link.
"""

from repro.net.protocols.heal_sync import HealSyncOutcome, simulate_state_heal
from repro.net.protocols.machine_sync import simulate_machine_sync
from repro.net.protocols.riblt_sync import RatelessSyncOutcome, simulate_riblt_sync
from repro.net.protocols.scheme_sync import (
    SchemeSyncOutcome,
    measure_sync_plan,
    simulate_scheme_sync,
)

__all__ = [
    "HealSyncOutcome",
    "RatelessSyncOutcome",
    "SchemeSyncOutcome",
    "measure_sync_plan",
    "simulate_machine_sync",
    "simulate_riblt_sync",
    "simulate_scheme_sync",
    "simulate_state_heal",
]
