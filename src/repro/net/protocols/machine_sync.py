"""The simulated-link transport for the sans-io protocol engine.

:func:`simulate_machine_sync` runs the *same*
:class:`~repro.protocol.InitiatorMachine` /
:class:`~repro.protocol.ResponderMachine` pair the in-memory pump and
the asyncio TCP service drive — but every frame travels a
:class:`~repro.net.link.Link` with bandwidth serialisation, propagation
delay, and (new) loss-induced retransmission.  That makes "any
registered scheme over a lossy 20 Mbps / 50 ms link" a one-liner for
the first time: streaming schemes saturate the pipe exactly like the
Fig 13 model (the responder produces a block whenever its transmitter
frees up), sketch schemes pay their lock-step round trips, and the
estimator composition pays its extra exchange.

Only schemes that can neither stream nor serialize (Merkle's
interactive heal) cannot be framed; use
:func:`~repro.net.protocols.heal_sync.simulate_state_heal` /
:func:`~repro.net.protocols.scheme_sync.simulate_scheme_sync` for those.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.api.base import ReconcileResult
from repro.api.registry import get_scheme
from repro.net.link import Link
from repro.net.protocols.scheme_sync import SchemeSyncOutcome
from repro.net.simulator import Simulator
from repro.protocol import InitiatorMachine, memory_responder
from repro.service.errors import ProtocolError


def simulate_machine_sync(
    alice_items: Iterable[bytes],
    bob_items: Iterable[bytes],
    scheme: str = "riblt",
    *,
    bandwidth_bps: float,
    delay_s: float,
    loss_rate: float = 0.0,
    seed: int = 0,
    block_symbols: int = 64,
    difference_bound: int = 0,
    max_rounds: int = 4,
    max_symbols: Optional[int] = None,
    use_estimator: Optional[bool] = None,
    **params: object,
) -> SchemeSyncOutcome:
    """Synchronise Bob to Alice through the engine, under a link model.

    Alice (the responder) sits at endpoint "a", Bob (the initiator) at
    endpoint "b"; ``completion_time`` is the moment Bob's last shard
    decodes.  ``use_estimator`` defaults to "whenever a fixed-capacity
    scheme has no explicit ``difference_bound``" — the same policy as
    :func:`repro.api.reconcile`.
    """
    handle = get_scheme(scheme, **params)
    a = list(dict.fromkeys(alice_items))
    b = list(dict.fromkeys(bob_items))
    if handle.params.symbol_size is None:
        probe = a[0] if a else (b[0] if b else None)
        if probe is None:
            raise ValueError("simulating empty sets needs an explicit symbol_size")
        handle = handle.with_params(symbol_size=len(probe))
    caps = handle.capabilities
    if not caps.streaming and not caps.serializable:
        raise ValueError(
            f"scheme {handle.name!r} cannot be framed by the protocol engine; "
            "use simulate_scheme_sync for its interactive transcript"
        )
    fixed = caps.fixed_capacity
    if use_estimator is None:
        use_estimator = fixed and (caps.needs_estimator or not difference_bound)
    bound = max(1, difference_bound) if fixed and difference_bound else 0

    initiator = InitiatorMachine(
        handle,
        b,
        difference_bound=bound,
        max_rounds=max_rounds,
        max_symbols=max_symbols,
        use_estimator=bool(use_estimator),
    )
    responder = memory_responder(
        handle,
        a,
        block_size=block_symbols,
        slow_start=True,
        use_estimator=bool(use_estimator),
    )

    sim = Simulator()
    link = Link(
        sim,
        bandwidth_bps,
        delay_s,
        loss_rate=loss_rate,
        rng=random.Random(seed) if loss_rate else None,
    )
    state = {"decoded_at": None, "production_scheduled": False}

    def flush_responder() -> None:
        out = responder.take_output()
        if out:
            link.send_to_b(len(out), out, deliver_to_initiator)
        schedule_production()

    def flush_initiator() -> None:
        out = initiator.take_output()
        if out:
            link.send_to_a(len(out), out, deliver_to_responder)
        if initiator.decoded and state["decoded_at"] is None:
            state["decoded_at"] = sim.now

    def schedule_production() -> None:
        """Keep Alice's transmitter exactly saturated (the Fig 13 shape)."""
        if state["production_scheduled"] or not responder.wants_tick:
            return
        state["production_scheduled"] = True
        sim.schedule_at(max(sim.now, link.a_to_b.busy_until), produce)

    def produce() -> None:
        state["production_scheduled"] = False
        if initiator.finished or not responder.wants_tick:
            return
        responder.tick(sim.now)
        flush_responder()

    def deliver_to_initiator(message) -> None:
        if initiator.finished:
            return
        initiator.bytes_received(message.payload)
        flush_initiator()

    def deliver_to_responder(message) -> None:
        if responder.finished:
            return
        responder.bytes_received(message.payload)
        flush_responder()

    initiator.start()
    responder.start()
    flush_initiator()
    schedule_production()
    sim.run(max_events=50_000_000)

    if initiator.failed is not None:
        error = initiator.failed
        if responder.failed is not None and type(error) is ProtocolError:
            error = responder.failed  # the Alice-side root cause
        raise error
    report = initiator.report
    if report is None:
        # The event heap drained with Bob still waiting — Alice died
        # without an ERROR frame (e.g. a representation-limit ValueError
        # while building a sketch).  Surface her root cause.
        if responder.failed is not None:
            raise responder.failed
        raise ProtocolError("simulated sync never completed (machines wedged)")
    result = ReconcileResult(
        only_in_a=set(report.only_in_remote),
        only_in_b=set(report.only_in_local),
        bytes_on_wire=report.accounted_bytes,
        symbols_used=report.symbols,
        scheme=report.scheme,
        rounds=report.rounds,
        symbol_size=report.symbol_size,
    )
    completed_at = state["decoded_at"] if state["decoded_at"] is not None else sim.now
    return SchemeSyncOutcome(
        scheme=report.scheme,
        completion_time=completed_at,
        bytes_down=link.a_to_b.bytes_sent,
        bytes_up=link.b_to_a.bytes_sent,
        rounds=report.rounds,
        result=result,
    )
