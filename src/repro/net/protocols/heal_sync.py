"""State heal over a simulated link: lock-step rounds + compute model.

Replays a :class:`~repro.baselines.merkle.heal.HealReport` transcript.
Round ``k``'s request can only leave once Bob has *processed* round
``k−1``'s nodes (their children define the next frontier), which is the
lock-step descent the paper highlights.  Bob's per-node processing cost
models hashing/verification/database writes; when the link outpaces the
CPU the protocol becomes compute-bound and stops benefiting from extra
bandwidth — the Fig 14 plateau.

The default per-node cost is calibrated so the plateau falls at ≈20 Mbps
for our node-size mix, matching the paper's observation for Geth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.merkle.heal import HealReport
from repro.net.link import Link, Message
from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace

# Seconds of CPU Bob spends per received trie node (hash check + decode +
# store write).  Calibrated against the ≈20 Mbps compute-bound plateau the
# paper reports for Geth's state heal.
DEFAULT_NODE_PROCESS_SECONDS = 8.0e-5


@dataclass
class HealSyncOutcome:
    """Timing and byte accounting of one simulated state heal."""

    completion_time: float
    bytes_down: int
    bytes_up: int
    round_trips: int
    nodes_fetched: int
    trace: Optional[BandwidthTrace] = field(default=None, repr=False)


def simulate_state_heal(
    report: HealReport,
    bandwidth_bps: float,
    delay_s: float,
    node_process_seconds: float = DEFAULT_NODE_PROCESS_SECONDS,
    trace_bin_seconds: float = 0.1,
) -> HealSyncOutcome:
    """Replay a heal transcript under a bandwidth/latency/compute model."""
    sim = Simulator()
    trace = BandwidthTrace(trace_bin_seconds)
    link = Link(sim, bandwidth_bps, delay_s, trace_to_b=trace)

    state = {
        "round": 0,
        "bob_busy_until": 0.0,
        "completed_at": 0.0,
    }
    rounds = report.rounds

    def bob_send_next_request() -> None:
        if state["round"] >= len(rounds):
            state["completed_at"] = sim.now
            return
        plan = rounds[state["round"]]
        link.send_to_a(plan.request_bytes, plan, alice_receive_request)

    def alice_receive_request(message: Message) -> None:
        plan = message.payload
        link.send_to_b(plan.response_bytes, plan, bob_receive_response)

    def bob_receive_response(message: Message) -> None:
        plan = message.payload
        start = max(sim.now, state["bob_busy_until"])
        done = start + plan.nodes_delivered * node_process_seconds
        state["bob_busy_until"] = done
        state["round"] += 1
        # The next frontier exists only after processing; request then.
        sim.schedule_at(done, bob_send_next_request)

    if rounds:
        bob_send_next_request()
        sim.run(max_events=10_000_000)
        state["completed_at"] = max(state["completed_at"], state["bob_busy_until"])

    return HealSyncOutcome(
        completion_time=state["completed_at"],
        bytes_down=link.a_to_b.bytes_sent,
        bytes_up=link.b_to_a.bytes_sent,
        round_trips=len(rounds),
        nodes_fetched=report.nodes_fetched,
        trace=trace,
    )
