"""Scheme-generic synchronisation over the simulated link.

The §7.3 protocol simulations used to be hand-wired to one scheme each
(``riblt_sync`` for the rateless stream, ``heal_sync`` for Merkle).
This module fronts both — and every other registry entry — with one
call::

    outcome = simulate_scheme_sync(a, b, scheme="riblt",
                                   bandwidth_bps=20e6, delay_s=0.05)

Dispatch by capability:

* **streaming** schemes are measured with the real codec
  (:func:`measure_sync_plan`, generalising
  ``repro.ledger.workload.measure_riblt_plan``) and replayed by
  :func:`~repro.net.protocols.riblt_sync.simulate_riblt_sync`;
* **merkle** runs the real heal transcript through
  :func:`~repro.net.protocols.heal_sync.simulate_state_heal`;
* fixed-capacity / rate-compatible schemes exchange sketch blobs in
  lock-step rounds: one half round trip to request, then each round's
  bytes at line rate plus a full round trip between rounds.

The measured plans themselves now come out of the sans-io protocol
engine (:mod:`repro.api.session` is an engine pump), and
:func:`~repro.net.protocols.machine_sync.simulate_machine_sync` goes
further: it drives the engine's actual frames through the link model,
including loss — prefer it when you want the wire protocol, not just
its timing envelope.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.api import ReconcileResult, Session, get_scheme
from repro.api import reconcile as api_reconcile
from repro.net.protocols.heal_sync import simulate_state_heal
from repro.net.protocols.riblt_sync import (
    REQUEST_BYTES,
    SyncPlan,
    simulate_riblt_sync,
)


@dataclass
class SchemeSyncOutcome:
    """Unified timing/byte accounting of one simulated sync."""

    scheme: str
    completion_time: float
    bytes_down: int
    bytes_up: int
    rounds: int
    result: Optional[ReconcileResult] = None


def measure_sync_plan(
    alice_items: Iterable[bytes],
    bob_items: Iterable[bytes],
    scheme: str = "riblt",
    *,
    chunk_symbols: int = 256,
    block_symbols: int = 1,
    calibrated_line_rate_bps: Optional[float] = None,
    **params: object,
) -> tuple[SyncPlan, ReconcileResult]:
    """Run any streaming scheme for real; return the replayable plan.

    ``block_symbols > 1`` moves coded units in blocks (the bank-backed
    fast path) — the measured plan then includes up to
    ``block_symbols − 1`` symbols of overshoot past the decode point,
    exactly as a block-granular deployment would ship.
    ``calibrated_line_rate_bps`` substitutes the paper's measured
    line-rate decode cost for the Python-interpreter one, as
    ``measure_riblt_plan`` documents.
    """
    session = Session(alice_items, bob_items, scheme, **params)
    t0 = time.perf_counter()
    while not session.decoded:
        if block_symbols > 1:
            session.step_block(block_symbols)
        else:
            session.step()
    stream_seconds = time.perf_counter() - t0
    result = session.run()  # already decoded: assembles the outcome
    bytes_per_symbol = session.bytes_sent / session.steps
    if calibrated_line_rate_bps is not None:
        decode_per_symbol = bytes_per_symbol * 8.0 / calibrated_line_rate_bps
    else:
        decode_per_symbol = stream_seconds / session.steps
    plan = SyncPlan(
        symbols_needed=session.steps,
        bytes_per_symbol=bytes_per_symbol,
        decode_seconds_per_symbol=decode_per_symbol,
        chunk_symbols=chunk_symbols,
    )
    return plan, result


def _simulate_round_exchange(
    result: ReconcileResult, bandwidth_bps: float, delay_s: float
) -> SchemeSyncOutcome:
    """Lock-step sketch exchange: rounds × RTT + bytes at line rate."""
    rtt = 2.0 * delay_s
    completion = delay_s + result.bytes_on_wire * 8.0 / bandwidth_bps
    completion += (result.rounds - 1) * rtt + 0.5 * rtt  # request legs
    return SchemeSyncOutcome(
        scheme=result.scheme,
        completion_time=completion,
        bytes_down=result.bytes_on_wire,
        bytes_up=result.rounds * REQUEST_BYTES,
        rounds=result.rounds,
        result=result,
    )


def simulate_scheme_sync(
    alice_items: Iterable[bytes],
    bob_items: Iterable[bytes],
    scheme: str = "riblt",
    *,
    bandwidth_bps: float,
    delay_s: float,
    block_symbols: int = 1,
    calibrated_line_rate_bps: Optional[float] = None,
    **params: object,
) -> SchemeSyncOutcome:
    """Synchronise Bob to Alice with any registered scheme, under a link model.

    ``block_symbols`` batches streaming schemes' coded units per payload
    (see :func:`measure_sync_plan`); non-streaming schemes ignore it.
    """
    handle = get_scheme(scheme, **params)
    if handle.capabilities.streaming:
        plan, result = measure_sync_plan(
            alice_items,
            bob_items,
            scheme,
            block_symbols=block_symbols,
            calibrated_line_rate_bps=calibrated_line_rate_bps,
            **params,
        )
        sim = simulate_riblt_sync(plan, bandwidth_bps, delay_s)
        return SchemeSyncOutcome(
            scheme=handle.name,
            completion_time=sim.completion_time,
            bytes_down=sim.bytes_down_total,
            bytes_up=sim.bytes_up,
            rounds=1,
            result=result,
        )
    if handle.name == "merkle":
        alice = handle.new(alice_items)
        bob = handle.new(bob_items)
        diff = alice.subtract(bob)
        decode = diff.decode()
        report = diff.heal_report  # transcript of the heal just run
        assert report is not None
        sim = simulate_state_heal(report, bandwidth_bps, delay_s)
        result = ReconcileResult(
            only_in_a=set(decode.remote),
            only_in_b=set(decode.local),
            bytes_on_wire=diff.decode_wire_bytes(decode),
            symbols_used=decode.symbols_used,
            scheme=handle.name,
        )
        return SchemeSyncOutcome(
            scheme=handle.name,
            completion_time=sim.completion_time,
            bytes_down=sim.bytes_down,
            bytes_up=sim.bytes_up,
            rounds=sim.round_trips,
            result=result,
        )
    result = api_reconcile(alice_items, bob_items, scheme, **params)
    return _simulate_round_exchange(result, bandwidth_bps, delay_s)
