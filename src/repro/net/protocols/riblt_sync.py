"""Rateless IBLT synchronisation over a simulated link (§7.3).

Timeline (matching the paper's Fig 13 narrative):

* ``t = 0``       — Bob's request leaves (the TCP-open half round trip);
* ``t = 0.5·RTT`` — Alice starts streaming coded symbols in chunks,
  keeping her transmitter exactly saturated (line-rate streaming);
* Bob decodes each chunk as it arrives (modelled per-symbol CPU cost);
  the moment every received cell zeroises he sends a stop message;
* Alice keeps the pipe full until the stop arrives — the overshoot is
  charged to the transfer, as a real TCP stream would be.

The caller supplies a :class:`SyncPlan` — how many symbols decoding needs
and what they cost — typically measured by running the real codec on the
workload (see ``repro.ledger.workload``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.link import Link, Message
from repro.net.simulator import Simulator
from repro.net.trace import BandwidthTrace

REQUEST_BYTES = 96
STOP_BYTES = 64
CHUNK_HEADER_BYTES = 16


@dataclass
class SyncPlan:
    """What the codec run determined about this reconciliation."""

    symbols_needed: int
    bytes_per_symbol: float
    decode_seconds_per_symbol: float = 0.0
    encode_seconds_per_symbol: float = 0.0  # charged when Alice encodes live
    chunk_symbols: int = 256


@dataclass
class RatelessSyncOutcome:
    """Timing and byte accounting of one simulated sync."""

    completion_time: float
    bytes_down_at_decode: int
    bytes_down_total: int
    bytes_up: int
    symbols_delivered: int
    trace: Optional[BandwidthTrace] = field(default=None, repr=False)


def simulate_riblt_sync(
    plan: SyncPlan,
    bandwidth_bps: float,
    delay_s: float,
    trace_bin_seconds: float = 0.1,
) -> RatelessSyncOutcome:
    """Run the streaming protocol on a fresh simulator; see module docs."""
    if plan.symbols_needed < 1:
        raise ValueError("need at least one symbol")
    sim = Simulator()
    trace = BandwidthTrace(trace_bin_seconds)
    link = Link(sim, bandwidth_bps, delay_s, trace_to_b=trace)

    chunk_payload = int(round(plan.chunk_symbols * plan.bytes_per_symbol))
    chunk_size = CHUNK_HEADER_BYTES + chunk_payload

    state = {
        "symbols_received": 0,
        "bob_busy_until": 0.0,
        "encode_ready_at": 0.0,
        "decoded_at": None,
        "bytes_at_decode": None,
        "stop_received": False,
    }

    def alice_send_chunk() -> None:
        """Put one chunk on the wire, then schedule the next for the moment
        the transmitter frees up (keeps the pipe exactly saturated)."""
        if state["stop_received"]:
            return
        if plan.encode_seconds_per_symbol:
            # Live encoding: a chunk cannot enter the pipe before the
            # encoder has produced it.
            ready = (
                max(sim.now, state["encode_ready_at"])
                + plan.chunk_symbols * plan.encode_seconds_per_symbol
            )
            state["encode_ready_at"] = ready
            if ready > sim.now:
                sim.schedule_at(ready, _transmit_chunk)
                return
        _transmit_chunk()

    def _transmit_chunk() -> None:
        if state["stop_received"]:
            return
        link.send_to_b(chunk_size, plan.chunk_symbols, bob_receive_chunk)
        sim.schedule_at(link.a_to_b.busy_until, alice_send_chunk)

    def bob_receive_chunk(message: Message) -> None:
        if state["decoded_at"] is not None:
            return  # residual in-flight chunks are overshoot
        n = message.payload
        start = max(sim.now, state["bob_busy_until"])
        done = start + n * plan.decode_seconds_per_symbol
        state["bob_busy_until"] = done
        state["symbols_received"] += n
        if state["symbols_received"] >= plan.symbols_needed:
            state["decoded_at"] = done
            state["bytes_at_decode"] = link.a_to_b.bytes_sent
            sim.schedule_at(done, bob_send_stop)

    def bob_send_stop() -> None:
        link.send_to_a(STOP_BYTES, "stop", alice_receive_stop)

    def alice_receive_stop(message: Message) -> None:
        state["stop_received"] = True

    def alice_receive_request(message: Message) -> None:
        alice_send_chunk()

    link.send_to_a(REQUEST_BYTES, "sync-request", alice_receive_request)
    sim.run(max_events=50_000_000)

    assert state["decoded_at"] is not None, "stream never decoded"
    return RatelessSyncOutcome(
        completion_time=state["decoded_at"],
        bytes_down_at_decode=state["bytes_at_decode"],
        bytes_down_total=link.a_to_b.bytes_sent,
        bytes_up=link.b_to_a.bytes_sent,
        symbols_delivered=state["symbols_received"],
        trace=trace,
    )
