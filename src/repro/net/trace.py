"""Received-bandwidth traces, binned into fixed intervals (Fig 13)."""

from __future__ import annotations

from collections import defaultdict


class BandwidthTrace:
    """Accumulates (delivery_time, bytes) and reports Mbps per bin."""

    def __init__(self, bin_seconds: float = 0.1) -> None:
        if bin_seconds <= 0:
            raise ValueError("bin width must be positive")
        self.bin_seconds = bin_seconds
        self._bins: dict[int, int] = defaultdict(int)

    def record(self, time_s: float, size_bytes: int) -> None:
        self._bins[int(time_s / self.bin_seconds)] += size_bytes

    def series(self, until_s: float | None = None) -> list[tuple[float, float]]:
        """[(bin_start_seconds, Mbps)] including empty bins up to the end."""
        if not self._bins:
            return []
        last = max(self._bins)
        if until_s is not None:
            last = max(last, int(until_s / self.bin_seconds))
        out = []
        for i in range(last + 1):
            mbps = self._bins.get(i, 0) * 8.0 / self.bin_seconds / 1e6
            out.append((i * self.bin_seconds, mbps))
        return out

    @property
    def total_bytes(self) -> int:
        return sum(self._bins.values())
