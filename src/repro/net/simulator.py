"""A minimal discrete-event simulator: a clock and an event heap."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Optional


class Simulator:
    """Priority-queue event loop with a float clock in seconds.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = count()
        self._cancelled: set[int] = set()

    def schedule(self, delay: float, action: Callable[[], None]) -> int:
        """Run ``action`` ``delay`` seconds from now; returns an event id."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event_id = next(self._seq)
        heapq.heappush(self._heap, (self.now + delay, event_id, action))
        return event_id

    def schedule_at(self, when: float, action: Callable[[], None]) -> int:
        """Run ``action`` at absolute time ``when`` (≥ now).

        ``when`` is used verbatim — NOT round-tripped through a relative
        delay.  ``now + (when - now)`` can differ from ``when`` by a ULP
        (it depends on ``now``), which breaks callers that rely on equal
        absolute times staying equal: a link's in-order delivery clamp
        assigns many frames the same delivery instant from *different*
        current times, and a one-ULP scramble would reorder them.
        """
        if when < self.now:
            raise ValueError("cannot schedule into the past")
        event_id = next(self._seq)
        heapq.heappush(self._heap, (when, event_id, action))
        return event_id

    def cancel(self, event_id: int) -> None:
        """Drop a scheduled event (lazy removal)."""
        self._cancelled.add(event_id)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Process events in time order until the heap drains (or limits)."""
        processed = 0
        while self._heap:
            when, event_id, action = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self.now = when
            action()
            processed += 1
            if processed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")

    @property
    def pending_events(self) -> int:
        return len(self._heap) - len(self._cancelled)
