"""Command-line interface: reconcile files of fixed-width items.

Commands
--------

``repro sketch INPUT -o OUT --symbols M``
    Encode INPUT's items into the first M coded symbols (§6 wire format).
``repro decode SKETCH LOCAL``
    Bob's side: subtract LOCAL's items from a received sketch stream and
    peel; prints the differences.
``repro reconcile FILE_A FILE_B [--scheme NAME]``
    Reconcile two local files with any registered scheme (default:
    the streaming Rateless IBLT) and report the difference plus
    communication statistics.
``repro estimate FILE_A FILE_B``
    Strata-estimate the difference size (what a regular-IBLT deployment
    would do first).
``repro schemes``
    List every scheme in the registry with its capability flags.
``repro serve INPUT --port P --shards N [--workers W]``
    Expose INPUT's items as an asyncio reconciliation service: warm
    per-shard encoders, any number of concurrent clients.  With
    ``--workers W`` (> 1) a supervised pool of W worker processes
    splits the shards across cores (``repro.cluster``); clients route
    transparently and results are byte-identical to ``--workers 1``.
``repro sync INPUT --port P [--push] [-o OUT]``
    Reconcile INPUT's items against a running ``serve`` instance; with
    ``--push`` the server also learns this side's exclusive items.
``repro chaos INPUT --workers W [--schedule FILE] [--seed S]``
    Serve INPUT through a fault-injecting chaos pool: a supervised
    W-worker cluster where every client connection crosses a
    deterministic fault proxy (``repro.chaos``) — latency, jitter,
    partial writes, mid-frame resets — driven by a seeded schedule
    (optionally loaded from a JSON file).  For drills and soak tests.
``repro sync INPUT --transport {tcp,sim,memory} [--peer FILE]``
    Same reconciliation, any transport: ``tcp`` (the default) talks to a
    ``serve`` instance, while ``sim`` and ``memory`` run the peer from
    ``--peer FILE`` in-process — ``sim`` through the discrete-event link
    model (``--bandwidth/--delay/--loss``), ``memory`` through the
    lock-step pump.  All three drive the same sans-io protocol engine
    (``repro.protocol``), so scheme behaviour and wire framing are
    identical across transports.

Item files are either raw binary (fixed-width records, ``--item-size``)
or newline-delimited hex (``--format hex``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import fields
from pathlib import Path
from typing import Iterable, Sequence

from repro.api import ReconcileError, available_schemes, scheme_info
from repro.api import reconcile as api_reconcile
from repro.baselines.strata import StrataEstimator
from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.core.wire import decode_stream, encode_stream
from repro.hashing.keyed import make_hasher


class CliError(Exception):
    """User-facing failure (bad input file, mismatched sizes, ...)."""


def read_items(path: Path, item_size: int | None, file_format: str) -> list[bytes]:
    """Load a file of items; infers the item size for hex input."""
    if not path.exists():
        raise CliError(f"no such file: {path}")
    if file_format == "hex":
        items = []
        for line_no, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                items.append(bytes.fromhex(line))
            except ValueError as exc:
                raise CliError(f"{path}:{line_no}: invalid hex: {exc}") from exc
        if not items:
            raise CliError(f"{path}: no items")
        sizes = {len(item) for item in items}
        if len(sizes) != 1:
            raise CliError(f"{path}: items have mixed sizes {sorted(sizes)}")
        actual = sizes.pop()
        if item_size is not None and actual != item_size:
            raise CliError(
                f"{path}: items are {actual} bytes, expected {item_size}"
            )
        return items
    # raw binary, fixed-width records
    if item_size is None:
        raise CliError("--item-size is required for binary files")
    blob = path.read_bytes()
    if not blob:
        raise CliError(f"{path}: no items")
    if len(blob) % item_size:
        raise CliError(
            f"{path}: size {len(blob)} is not a multiple of {item_size}"
        )
    return [blob[i : i + item_size] for i in range(0, len(blob), item_size)]


def build_codec(items: Sequence[bytes], args: argparse.Namespace) -> SymbolCodec:
    hasher = make_hasher(args.hasher, bytes.fromhex(args.key))
    return SymbolCodec(len(items[0]), hasher, checksum_size=args.checksum_size)


def check_unique(items: Iterable[bytes], label: str) -> set[bytes]:
    items = list(items)
    unique = set(items)
    if len(unique) != len(items):
        raise CliError(f"{label}: duplicate items (sets must be duplicate-free)")
    return unique


def cmd_sketch(args: argparse.Namespace) -> int:
    items = read_items(Path(args.input), args.item_size, args.format)
    unique = check_unique(items, args.input)
    codec = build_codec(items, args)
    encoder = RatelessEncoder(codec, unique)
    cells = [encoder.produce_next().copy() for _ in range(args.symbols)]
    blob = encode_stream(codec, len(unique), cells)
    Path(args.output).write_bytes(blob)
    print(
        f"wrote {args.symbols} coded symbols ({len(blob)} bytes) for "
        f"{len(unique)} items to {args.output}"
    )
    return 0


def cmd_decode(args: argparse.Namespace) -> int:
    local_items = read_items(Path(args.local), args.item_size, args.format)
    local = check_unique(local_items, args.local)
    codec = build_codec(local_items, args)
    cells, remote_size = decode_stream(codec, Path(args.sketch).read_bytes())
    bob = RatelessEncoder(codec, local)
    decoder = RatelessDecoder(codec)
    for cell in cells:
        decoder.add_subtracted(cell, bob.produce_next())
        if decoder.decoded:
            break
    result = decoder.result()
    print(f"remote set size : {remote_size}")
    print(f"symbols used    : {result.symbols_used} of {len(cells)}")
    verdict = "yes" if result.success else "NO (need a longer sketch)"
    print(f"decoded         : {verdict}")
    if result.success:
        print(f"missing locally : {len(result.remote)}")
        print(f"extra locally   : {len(result.local)}")
        if args.show_items:
            for item in sorted(result.remote):
                print(f"  + {item.hex()}")
            for item in sorted(result.local):
                print(f"  - {item.hex()}")
    return 0 if result.success else 3


def scheme_params_from_args(args: argparse.Namespace, item_size: int) -> dict:
    """The CLI's codec knobs, narrowed to what the scheme accepts."""
    candidates = {
        "symbol_size": item_size,
        "hasher": args.hasher,
        "key": bytes.fromhex(args.key),
        "checksum_size": args.checksum_size,
    }
    accepted = {f.name for f in fields(scheme_info(args.scheme).param_class)}
    return {k: v for k, v in candidates.items() if k in accepted}


def cmd_reconcile(args: argparse.Namespace) -> int:
    items_a = read_items(Path(args.file_a), args.item_size, args.format)
    items_b = read_items(Path(args.file_b), args.item_size, args.format)
    if len(items_a[0]) != len(items_b[0]):
        raise CliError("the two files hold items of different sizes")
    set_a = check_unique(items_a, args.file_a)
    set_b = check_unique(items_b, args.file_b)
    try:
        result = api_reconcile(
            set_a,
            set_b,
            scheme=args.scheme,
            difference_bound=args.difference_bound,
            max_symbols=args.max_symbols,
            **scheme_params_from_args(args, len(items_a[0])),
        )
    except (ReconcileError, ValueError) as exc:
        # scheme representation limits (item too wide for the field, bad
        # bound, ...) and convergence failures are user-facing errors
        raise CliError(str(exc)) from exc
    print(f"scheme          : {result.scheme}")
    print(f"|A| = {len(set_a)}, |B| = {len(set_b)}")
    print(f"difference      : {result.difference_size}")
    print(f"coded symbols   : {result.symbols_used} "
          f"(overhead {result.overhead:.2f})")
    print(f"bytes on wire   : {result.bytes_on_wire}")
    if result.rounds > 1:
        print(f"rounds          : {result.rounds}")
    if args.show_items:
        for item in sorted(result.only_in_a):
            print(f"  A-only {item.hex()}")
        for item in sorted(result.only_in_b):
            print(f"  B-only {item.hex()}")
    return 0


def cmd_schemes(args: argparse.Namespace) -> int:
    print(f"{'scheme':22s} {'flags':28s} summary")
    for name in available_schemes():
        info = scheme_info(name)
        caps = info.capabilities
        flags = ",".join(
            label
            for label, on in (
                ("streaming", caps.streaming),
                ("fixed-capacity", caps.fixed_capacity),
                ("estimator", caps.needs_estimator),
                ("incremental", caps.incremental),
            )
            if on
        ) or "-"
        print(f"{name:22s} {flags:28s} {info.summary}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ReconciliationServer, ServerConfig

    if args.input is None and args.data_dir is None:
        raise CliError("serve needs an INPUT file, a --data-dir, or both")
    if args.input is not None:
        items = read_items(Path(args.input), args.item_size, args.format)
        unique = check_unique(items, args.input)
        params = scheme_params_from_args(args, len(items[0]))
    else:
        # Warm start: everything (items, scheme params, shard count)
        # comes back from the durable data dir's manifest + journal.
        unique = set()
        params = {}
    config = ServerConfig(
        block_size=args.block_size,
        max_symbols_per_shard=args.max_symbols,
        max_sessions=args.max_sessions,
        max_concurrent_sessions=args.max_clients,
    )
    durable = None
    if args.data_dir is not None and args.checkpoint_every is not None:
        from repro.durable import DurableConfig

        durable = DurableConfig(checkpoint_every=args.checkpoint_every or None)

    if args.workers > 1:
        return _serve_cluster(args, sorted(unique), params, durable)

    async def run_server() -> None:
        try:
            server = ReconciliationServer(
                sorted(unique),
                scheme=args.scheme,
                num_shards=args.shards,
                config=config,
                data_dir=args.data_dir,
                durable=durable,
                **params,
            )
        except ValueError as exc:
            # e.g. a scheme that can neither stream nor ship a sketch
            raise CliError(str(exc)) from exc
        served = len(server.backend.sharded)
        host, port = await server.start(args.host, args.port)
        durability = f", durable in {args.data_dir}" if args.data_dir else ""
        print(
            f"serving {served} items ({args.scheme}, "
            f"{server.num_shards} shards{durability}) on {host}:{port}",
            flush=True,
        )
        try:
            await server.wait_finished()
        finally:
            await server.close()
        stats = server.stats
        print(
            f"served {stats.sessions_completed} sessions "
            f"({stats.sessions_dropped} dropped), "
            f"{stats.symbols_sent} symbols / {stats.bytes_sent} bytes, "
            f"{stats.items_pushed} items pushed"
        )

    try:
        asyncio.run(run_server())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    return 0


def _serve_cluster(
    args: argparse.Namespace, items: list, params: dict, durable
) -> int:
    """``repro serve --workers N``: the multi-process pool path."""
    import asyncio

    from repro.cluster import ClusterConfig, ClusterError, ClusterSupervisor

    if args.scheme != "riblt":
        raise CliError(
            "--workers > 1 needs the durable warm-riblt backend "
            f"(scheme {args.scheme!r} is not supported)"
        )
    if args.max_sessions is not None:
        raise CliError("--max-sessions does not apply to a worker pool")
    config = ClusterConfig(
        num_workers=args.workers,
        host=args.host,
        entry_port=args.port,
        block_size=args.block_size,
        max_symbols_per_shard=args.max_symbols,
        max_concurrent_sessions=args.max_clients,
    )

    async def run_cluster() -> None:
        sup = ClusterSupervisor(
            items,
            data_dir=args.data_dir,
            scheme=args.scheme,
            num_shards=args.shards,
            config=config,
            durable=durable,
            **params,
        )
        try:
            host, port = await sup.start()
        except ClusterError as exc:
            await sup.close()
            raise CliError(str(exc)) from exc
        mode = (
            "SO_REUSEPORT" if sup.reuse_port_active else "per-worker ports"
        )
        durability = f", durable in {args.data_dir}" if args.data_dir else ""
        print(
            f"serving {sup.total_shards} shards across {args.workers} "
            f"workers ({mode}{durability}) on {host}:{port}",
            flush=True,
        )
        try:
            await sup.wait()
        finally:
            await sup.close()

    try:
        asyncio.run(run_cluster())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: a fault-proxied worker pool for resilience drills."""
    import asyncio

    from repro.chaos import ChaosError, ChaosOrchestrator, FaultSchedule, default_schedule
    from repro.cluster import ClusterConfig, ClusterError

    items = read_items(Path(args.input), args.item_size, args.format)
    unique = check_unique(items, args.input)
    params = scheme_params_from_args(args, len(items[0]))
    if args.schedule is not None:
        path = Path(args.schedule)
        if not path.exists():
            raise CliError(f"no such schedule file: {path}")
        try:
            schedule = FaultSchedule.from_json(path.read_text())
        except ChaosError as exc:
            raise CliError(f"{path}: {exc}") from exc
    else:
        schedule = default_schedule(args.seed)
    config = ClusterConfig(
        num_workers=args.workers,
        host=args.host,
        block_size=args.block_size,
        max_symbols_per_shard=args.max_symbols,
        max_concurrent_sessions=args.max_clients,
    )

    async def run_chaos() -> None:
        orch = ChaosOrchestrator(
            sorted(unique),
            schedule=schedule,
            config=config,
            num_shards=args.shards,
            **params,
        )
        try:
            host, port = await orch.start()
        except ClusterError as exc:
            await orch.close()
            raise CliError(str(exc)) from exc
        print(
            f"chaos: serving {len(unique)} items via {args.workers} "
            f"fault-proxied workers ({len(schedule.specs)} fault specs, "
            f"seed {schedule.seed}) on {host}:{port}",
            flush=True,
        )
        try:
            if args.max_conns:
                total = 0
                while total < args.max_conns:
                    await asyncio.sleep(0.05)
                    total = sum(p.stats.connections for p in orch.proxies)
                while any(p.active_connections for p in orch.proxies):
                    await asyncio.sleep(0.05)
            else:
                await orch.supervisor.wait()
        finally:
            stats = orch.proxy_stats()
            await orch.close()
            print(
                f"chaos: {stats.get('connections', 0)} connections proxied, "
                f"{stats.get('resets', 0)} reset, "
                f"{stats.get('dropped', 0)} dropped, "
                f"{stats.get('bytes_forwarded', 0)} bytes forwarded, "
                f"restarts {tuple(orch.restart_counts)}"
            )

    try:
        asyncio.run(run_chaos())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    return 0


def cmd_sync(args: argparse.Namespace) -> int:
    if args.transport != "tcp":
        return _sync_local_transport(args)
    from repro.api import SymbolBudgetExceeded
    from repro.service import ServiceError, sync_once

    if args.port is None:
        raise CliError("--port is required for --transport tcp")
    items = read_items(Path(args.input), args.item_size, args.format)
    unique = check_unique(items, args.input)
    try:
        result = sync_once(
            args.host,
            args.port,
            sorted(unique),
            scheme=args.scheme,
            push=args.push,
            max_symbols=args.max_symbols,
            **scheme_params_from_args(args, len(items[0])),
        )
    except SymbolBudgetExceeded as exc:
        raise CliError(f"symbol budget exhausted: {exc}") from exc
    except (ServiceError, ValueError, ConnectionError, OSError) as exc:
        raise CliError(f"sync failed: {exc}") from exc
    print(f"scheme          : {result.scheme} ({result.num_shards} shards)")
    print(f"missing locally : {len(result.only_in_server)}")
    print(f"extra locally   : {len(result.only_in_client)}")
    print(f"coded symbols   : {result.symbols}")
    print(f"bytes received  : {result.bytes_received}")
    if args.push:
        print(f"items pushed    : {result.pushed}")
    if args.show_items:
        for item in sorted(result.only_in_server):
            print(f"  + {item.hex()}")
        for item in sorted(result.only_in_client):
            print(f"  - {item.hex()}")
    if args.output:
        _write_merged(args, unique | result.only_in_server)
    return 0


def _write_merged(args: argparse.Namespace, merged_items) -> None:
    merged = sorted(merged_items)
    if args.format == "hex":
        Path(args.output).write_text(
            "".join(f"{item.hex()}\n" for item in merged)
        )
    else:
        Path(args.output).write_bytes(b"".join(merged))
    print(f"wrote {len(merged)} reconciled items to {args.output}")


def _sync_local_transport(args: argparse.Namespace) -> int:
    """``repro sync --transport {sim,memory}``: the peer is a local file."""
    from repro.api import ReconcileError

    if not args.peer:
        raise CliError(f"--transport {args.transport} needs --peer FILE")
    if args.push:
        raise CliError(
            f"--push is not supported on --transport {args.transport}: the "
            "in-process peer is read-only (use -o to merge locally)"
        )
    local = read_items(Path(args.input), args.item_size, args.format)
    peer = read_items(Path(args.peer), args.item_size, args.format)
    if len(local[0]) != len(peer[0]):
        raise CliError("the two files hold items of different sizes")
    local_set = check_unique(local, args.input)
    peer_set = check_unique(peer, args.peer)
    params = scheme_params_from_args(args, len(local[0]))
    outcome = None
    try:
        if args.transport == "sim":
            if args.scheme == "merkle":
                # The interactive heal cannot be framed; replay its
                # transcript through the same link model instead.
                from repro.net.protocols.scheme_sync import simulate_scheme_sync

                outcome = simulate_scheme_sync(
                    sorted(peer_set),
                    sorted(local_set),
                    args.scheme,
                    bandwidth_bps=args.bandwidth,
                    delay_s=args.delay,
                    **params,
                )
            else:
                from repro.net.protocols.machine_sync import simulate_machine_sync

                outcome = simulate_machine_sync(
                    sorted(peer_set),
                    sorted(local_set),
                    args.scheme,
                    bandwidth_bps=args.bandwidth,
                    delay_s=args.delay,
                    loss_rate=args.loss,
                    seed=args.seed,
                    difference_bound=args.difference_bound or 0,
                    max_symbols=args.max_symbols,
                    **params,
                )
            result = outcome.result
        else:  # memory: the in-process pump behind repro.api.reconcile
            result = api_reconcile(
                sorted(peer_set),
                sorted(local_set),
                scheme=args.scheme,
                difference_bound=args.difference_bound,
                max_symbols=args.max_symbols,
                **params,
            )
    except (ReconcileError, ValueError) as exc:
        raise CliError(str(exc)) from exc
    print(f"scheme          : {result.scheme} ({args.transport} transport)")
    print(f"missing locally : {len(result.only_in_a)}")
    print(f"extra locally   : {len(result.only_in_b)}")
    print(f"coded symbols   : {result.symbols_used}")
    print(f"bytes on wire   : {result.bytes_on_wire}")
    if result.rounds > 1:
        print(f"rounds          : {result.rounds}")
    if outcome is not None:
        # The merkle fallback replays a heal transcript: its link model
        # has no loss, so never claim one was simulated.
        loss = f"loss {args.loss:g}" if args.scheme != "merkle" else "loss n/a"
        print(f"completion time : {outcome.completion_time * 1e3:.1f} ms "
              f"(bw {args.bandwidth / 1e6:g} Mbps, delay {args.delay * 1e3:g} ms, "
              f"{loss})")
        print(f"bytes down/up   : {outcome.bytes_down} / {outcome.bytes_up}")
    if args.show_items:
        for item in sorted(result.only_in_a):
            print(f"  + {item.hex()}")
        for item in sorted(result.only_in_b):
            print(f"  - {item.hex()}")
    if args.output:
        _write_merged(args, local_set | result.only_in_a)
    return 0


def cmd_gossip(args: argparse.Namespace) -> int:
    """Run a synthetic N-node anti-entropy mesh and report convergence."""
    import math
    import random

    from repro.gossip import GossipConfig, GossipMesh, make_nodes, simulate_flooding
    from repro.gossip.mesh import select_pairs

    if args.nodes < 2:
        raise CliError("--nodes must be at least 2")
    if not 0.0 < args.diff < 1.0:
        raise CliError("--diff must be in (0, 1)")
    item_size = args.item_size or 32
    rng = random.Random(args.seed)
    base = sorted({rng.randbytes(item_size) for _ in range(args.set_size)})
    per_node = max(1, round(args.diff * len(base)))
    node_sets = []
    for _ in range(args.nodes):
        missing = set(rng.sample(base, min(per_node, len(base))))
        extras = [rng.randbytes(item_size) for _ in range(per_node)]
        node_sets.append([x for x in base if x not in missing] + extras)

    config = GossipConfig(
        transport=args.transport,
        bandwidth_bps=args.bandwidth,
        delay_s=args.delay,
        loss_rate=args.loss,
        seed=args.seed,
    )
    mesh = GossipMesh(
        make_nodes(node_sets),
        topology=args.topology,
        degree=args.degree,
        fanout=args.fanout,
        seed=args.seed,
        config=config,
    )
    try:
        report = mesh.run_until_converged(max_rounds=args.max_rounds)
    except ValueError as exc:
        raise CliError(str(exc)) from exc

    print(
        f"{args.nodes} nodes, {args.topology} topology, fanout {args.fanout}, "
        f"{args.transport} transport, ~{per_node * 2} diff items/node"
    )
    print(f"{'round':>5} {'full':>5} {'digest':>7} {'clock':>6} "
          f"{'bytes':>10} {'items':>6}")
    for stats in report.per_round:
        print(
            f"{stats.round_no:>5} {stats.full_syncs:>5} "
            f"{stats.digest_skips:>7} {stats.clock_skips:>6} "
            f"{stats.wire_bytes:>10} {stats.items_moved:>6}"
        )
    verdict = "converged" if report.converged else "NOT converged"
    bound = math.ceil(math.log2(args.nodes)) + 2
    print(f"{verdict} in {report.rounds} rounds "
          f"(log2(N)+2 bound: {bound}), {report.wire_bytes} bytes total")

    flooding = simulate_flooding(
        node_sets,
        item_size,
        lambda round_no, frng: select_pairs(mesh.neighbors, args.fanout, frng),
        random.Random(args.seed),
        args.max_rounds,
    )
    ratio = report.wire_bytes / flooding.total_bytes if flooding.total_bytes else 0.0
    print(
        f"flooding baseline: {flooding.total_bytes} bytes over "
        f"{flooding.rounds} rounds -> gossip/flooding = {ratio:.4f}"
    )
    return 0 if report.converged else 3


def cmd_estimate(args: argparse.Namespace) -> int:
    items_a = read_items(Path(args.file_a), args.item_size, args.format)
    items_b = read_items(Path(args.file_b), args.item_size, args.format)
    estimator_a = StrataEstimator.from_items(items_a)
    estimator_b = StrataEstimator.from_items(items_b)
    estimate = estimator_a.estimate(estimator_b)
    true_d = len(set(items_a) ^ set(items_b))
    print(f"estimated difference : {estimate}")
    print(f"true difference      : {true_d}")
    print(f"estimator wire size  : {estimator_a.wire_size()} bytes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rateless IBLT set reconciliation (SIGCOMM 2024 reproduction)",
    )
    parser.add_argument(
        "--item-size", type=int, default=None,
        help="record width in bytes (required for binary files)",
    )
    parser.add_argument(
        "--format", choices=("bin", "hex"), default="bin",
        help="input file format (default: bin)",
    )
    parser.add_argument(
        "--hasher", choices=("blake2b", "siphash"), default="blake2b",
        help="keyed checksum hash family",
    )
    parser.add_argument(
        "--key", default="000102030405060708090a0b0c0d0e0f",
        help="16-byte hash key, hex (share it with the peer)",
    )
    parser.add_argument(
        "--checksum-size", type=int, default=8,
        help="checksum bytes per cell, 1-8 (default 8)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sketch = sub.add_parser("sketch", help="encode a file into coded symbols")
    p_sketch.add_argument("input")
    p_sketch.add_argument("-o", "--output", required=True)
    p_sketch.add_argument("--symbols", type=int, required=True)
    p_sketch.set_defaults(func=cmd_sketch)

    p_decode = sub.add_parser(
        "decode", help="decode a received sketch against a local file"
    )
    p_decode.add_argument("sketch")
    p_decode.add_argument("local")
    p_decode.add_argument("--show-items", action="store_true")
    p_decode.set_defaults(func=cmd_decode)

    p_rec = sub.add_parser("reconcile", help="reconcile two local files")
    p_rec.add_argument("file_a")
    p_rec.add_argument("file_b")
    p_rec.add_argument(
        "--scheme", default="riblt", choices=available_schemes(),
        help="reconciliation scheme from the registry (default: riblt)",
    )
    p_rec.add_argument(
        "--difference-bound", type=int, default=None,
        help="pre-size fixed-capacity schemes for this many differences "
             "(default: run a strata-estimator exchange)",
    )
    p_rec.add_argument("--max-symbols", type=int, default=None)
    p_rec.add_argument("--show-items", action="store_true")
    p_rec.set_defaults(func=cmd_reconcile)

    p_serve = sub.add_parser("serve", help="serve reconciliation sessions over TCP")
    p_serve.add_argument(
        "input", nargs="?", default=None,
        help="items file (optional when --data-dir holds a previous run)",
    )
    p_serve.add_argument(
        "--data-dir", default=None,
        help="persist shard state here (crash-safe snapshots + churn "
             "journal); an existing dir warm-restarts from disk",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="snapshot after this many journaled mutations "
             "(default 4096; 0 disables auto-checkpointing)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0: pick a free one and print it)")
    p_serve.add_argument(
        "--shards", type=int, default=4,
        help="hash-partition the set into this many parallel streams (default 4)",
    )
    p_serve.add_argument(
        "--scheme", default="riblt", choices=available_schemes(),
        help="scheme backing each shard (default: riblt, warm encoders)",
    )
    p_serve.add_argument("--block-size", type=int, default=64,
                         help="coded symbols per frame (default 64)")
    p_serve.add_argument(
        "--max-symbols", type=int, default=1 << 17,
        help="per-shard symbol budget before a session is dropped",
    )
    p_serve.add_argument(
        "--max-sessions", type=int, default=None,
        help="exit after serving this many sessions (default: run forever)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharing the shards (default 1: in-process "
             "server; >1 spawns a supervised pool, one core each)",
    )
    p_serve.add_argument(
        "--max-clients", type=int, default=None,
        help="concurrent-session admission cap (per worker with "
             "--workers > 1); excess connections get a typed BUSY shed "
             "with a retry-after hint instead of queueing",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_chaos = sub.add_parser(
        "chaos", help="serve through a deterministic fault-injection proxy pool"
    )
    p_chaos.add_argument("input", help="items file to serve")
    p_chaos.add_argument("--host", default="127.0.0.1")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="worker processes behind the proxies (default 2)")
    p_chaos.add_argument(
        "--shards", type=int, default=0,
        help="shard count (default 0: one per worker)",
    )
    p_chaos.add_argument("--block-size", type=int, default=64)
    p_chaos.add_argument("--max-symbols", type=int, default=1 << 17)
    p_chaos.add_argument(
        "--max-clients", type=int, default=None,
        help="per-worker admission cap (BUSY sheds past it)",
    )
    p_chaos.add_argument(
        "--schedule", default=None,
        help="fault schedule JSON file (default: the built-in mix of "
             "latency, jitter, partial writes, and mid-frame resets)",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="seed for the built-in schedule (default 0)")
    p_chaos.add_argument(
        "--max-conns", type=int, default=None,
        help="exit once this many proxied connections have completed "
             "(default: serve until interrupted)",
    )
    p_chaos.set_defaults(func=cmd_chaos, scheme="riblt")

    p_sync = sub.add_parser(
        "sync", help="reconcile a local file against a peer, over any transport"
    )
    p_sync.add_argument("input")
    p_sync.add_argument(
        "--transport", choices=("tcp", "sim", "memory"), default="tcp",
        help="tcp: a running `repro serve`; sim: an in-process peer over a "
             "simulated link; memory: the in-process lock-step pump "
             "(default: tcp)",
    )
    p_sync.add_argument("--host", default="127.0.0.1")
    p_sync.add_argument("--port", type=int, default=None,
                        help="server TCP port (required for --transport tcp)")
    p_sync.add_argument(
        "--peer", default=None,
        help="peer item file (required for --transport sim/memory)",
    )
    p_sync.add_argument(
        "--scheme", default="riblt", choices=available_schemes(),
        help="must match the server's scheme (default: riblt)",
    )
    p_sync.add_argument("--push", action="store_true",
                        help="send the server the items it is missing")
    p_sync.add_argument("--max-symbols", type=int, default=None,
                        help="client-side per-shard symbol budget")
    p_sync.add_argument(
        "--difference-bound", type=int, default=None,
        help="pre-size fixed-capacity schemes (sim/memory transports)",
    )
    p_sync.add_argument("--bandwidth", type=float, default=20e6,
                        help="simulated link bandwidth, bps (default 20e6)")
    p_sync.add_argument("--delay", type=float, default=0.05,
                        help="simulated one-way delay, seconds (default 0.05)")
    p_sync.add_argument("--loss", type=float, default=0.0,
                        help="simulated frame loss rate in [0,1) (default 0)")
    p_sync.add_argument("--seed", type=int, default=0,
                        help="loss-model RNG seed (default 0)")
    p_sync.add_argument("--show-items", action="store_true")
    p_sync.add_argument("-o", "--output", default=None,
                        help="write the reconciled (merged) item file here")
    p_sync.set_defaults(func=cmd_sync)

    p_gossip = sub.add_parser(
        "gossip", help="run a synthetic N-node anti-entropy gossip mesh"
    )
    p_gossip.add_argument("--nodes", type=int, default=32,
                          help="mesh size (default 32)")
    p_gossip.add_argument("--set-size", type=int, default=512,
                          help="shared base set size (default 512)")
    p_gossip.add_argument(
        "--diff", type=float, default=0.01,
        help="per-node difference fraction: each node misses and adds "
             "this fraction of the base set (default 0.01)",
    )
    p_gossip.add_argument("--topology", choices=("ring", "random", "full"),
                          default="random")
    p_gossip.add_argument("--degree", type=int, default=4,
                          help="target average degree, random topology only")
    p_gossip.add_argument("--fanout", type=int, default=2,
                          help="exchanges each node initiates per round")
    p_gossip.add_argument(
        "--transport", choices=("memory", "sim", "service"), default="memory",
        help="how full sessions run: lock-step pump, simulated links, "
             "or real asyncio TCP (default: memory)",
    )
    p_gossip.add_argument("--max-rounds", type=int, default=32)
    p_gossip.add_argument("--seed", type=int, default=0)
    p_gossip.add_argument("--bandwidth", type=float, default=20e6,
                          help="sim link bandwidth, bps (default 20e6)")
    p_gossip.add_argument("--delay", type=float, default=0.001,
                          help="sim one-way delay, seconds (default 0.001)")
    p_gossip.add_argument("--loss", type=float, default=0.0,
                          help="sim frame loss rate in [0,1) (default 0)")
    p_gossip.set_defaults(func=cmd_gossip)

    p_est = sub.add_parser("estimate", help="strata-estimate the difference size")
    p_est.add_argument("file_a")
    p_est.add_argument("file_b")
    p_est.set_defaults(func=cmd_estimate)

    p_sch = sub.add_parser("schemes", help="list registered schemes")
    p_sch.set_defaults(func=cmd_schemes)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer (head, less, ...) went away mid-print; the
        # Unix convention is a quiet exit, not a traceback.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
