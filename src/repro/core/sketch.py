"""Fixed-length sketches: any prefix of the infinite coded sequence.

A :class:`RatelessSketch` of size ``m`` is exactly the first ``m`` coded
symbols of a set.  Sketches of equal size under compatible codecs can be
subtracted cell-wise; by linearity (§4.1) the result is the sketch of the
symmetric difference, which decodes with the standard peeling decoder.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.cellbank import (
    NUMPY_MIN_JOBS,
    CodedSymbolBank,
    numpy_lane_eligible,
    scatter_walk_arrays,
)
from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult, RatelessDecoder
from repro.core.symbols import SymbolCodec


class RatelessSketch:
    """The first ``m`` coded symbols of a set, with linear subtraction."""

    __slots__ = ("codec", "cells", "set_size")

    def __init__(
        self,
        codec: SymbolCodec,
        cells: Sequence[CodedSymbol],
        set_size: int = 0,
    ) -> None:
        self.codec = codec
        self.cells = list(cells)
        self.set_size = set_size

    @classmethod
    def from_items(
        cls, items: Iterable[bytes], size: int, codec: SymbolCodec
    ) -> "RatelessSketch":
        """Encode ``items`` into the first ``size`` coded symbols.

        One-shot builds walk each symbol's mapped indices directly — no
        heap needed because the prefix length is known up front.  Big
        batches of narrow regular symbols ride the vectorised ingestion
        pipeline (batch keyed hashing + one fused scatter); the per-item
        loop is the reference engine and emits a bit-identical sketch.
        """
        datas = items if isinstance(items, list) else list(items)
        if (
            size > 0
            and len(datas) >= NUMPY_MIN_JOBS
            and numpy_lane_eligible(codec)
        ):
            import numpy as np

            values = codec.to_int_batch(datas)
            checksums = codec.checksum_batch(datas)
            sums = np.zeros(size, dtype=np.uint64)
            cell_checksums = np.zeros(size, dtype=np.uint64)
            counts = np.zeros(size, dtype=np.int64)
            csums = np.array(checksums, dtype=np.uint64)
            scatter_walk_arrays(
                sums,
                cell_checksums,
                counts,
                np.zeros(len(datas), dtype=np.int64),
                csums.copy(),
                np.array(values, dtype=np.uint64),
                csums,
                np.ones(len(datas), dtype=np.int64),
                size,
            )
            cells = [
                CodedSymbol(s, k, c)
                for s, k, c in zip(
                    sums.tolist(), cell_checksums.tolist(), counts.tolist()
                )
            ]
            return cls(codec, cells, set_size=len(datas))
        cells = [CodedSymbol() for _ in range(size)]
        count = 0
        for data in datas:
            count += 1
            value = codec.to_int(data)
            checksum = codec.checksum_int(value)
            for idx in codec.new_mapping(checksum).indices_below(size):
                cells[idx].apply(value, checksum, 1)
        return cls(codec, cells, set_size=count)

    @classmethod
    def zero(cls, size: int, codec: SymbolCodec) -> "RatelessSketch":
        """The sketch of the empty set."""
        return cls(codec, [CodedSymbol() for _ in range(size)], set_size=0)

    # -- linear algebra ----------------------------------------------------

    def subtract(self, other: "RatelessSketch") -> "RatelessSketch":
        """Cell-wise ``self ⊖ other`` → sketch of the symmetric difference."""
        if not self.codec.compatible_with(other.codec):
            raise ValueError("sketches built with incompatible codecs")
        if len(self.cells) != len(other.cells):
            raise ValueError(
                f"sketch sizes differ: {len(self.cells)} vs {len(other.cells)}"
            )
        cells = [a.subtract(b) for a, b in zip(self.cells, other.cells)]
        return RatelessSketch(self.codec, cells, set_size=0)

    def add_item(self, data: bytes) -> None:
        """Fold one more item into this sketch in place (linearity)."""
        value = self.codec.to_int(data)
        checksum = self.codec.checksum_int(value)
        for idx in self.codec.new_mapping(checksum).indices_below(len(self.cells)):
            self.cells[idx].apply(value, checksum, 1)
        self.set_size += 1

    def remove_item(self, data: bytes) -> None:
        """Peel one item back out of this sketch in place."""
        value = self.codec.to_int(data)
        checksum = self.codec.checksum_int(value)
        for idx in self.codec.new_mapping(checksum).indices_below(len(self.cells)):
            self.cells[idx].apply(value, checksum, -1)
        self.set_size -= 1

    def truncated(self, size: int) -> "RatelessSketch":
        """A shorter prefix of this sketch (prefixes nest, Fig 3)."""
        if size > len(self.cells):
            raise ValueError("cannot truncate to a longer size")
        return RatelessSketch(
            self.codec,
            [cell.copy() for cell in self.cells[:size]],
            set_size=self.set_size,
        )

    # -- decoding ------------------------------------------------------------

    def decode(self) -> DecodeResult:
        """Peel this (already subtracted) sketch; cells are not mutated.

        Cell-exact early stop (``chunk=1``), so ``symbols_used`` reports
        the same consumed prefix as per-cell feeding.
        """
        decoder = RatelessDecoder(self.codec)
        decoder.add_coded_block(
            CodedSymbolBank.from_cells(self.cells), stop_when_decoded=True, chunk=1
        )
        return decoder.result()

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CodedSymbol]:
        return iter(self.cells)

    def __getitem__(self, index: int) -> CodedSymbol:
        return self.cells[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RatelessSketch):
            return NotImplemented
        return self.cells == other.cells

    def __repr__(self) -> str:
        return f"RatelessSketch(size={len(self.cells)}, set_size={self.set_size})"
