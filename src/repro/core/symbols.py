"""Symbol codec: fixed-length byte items, checksums, and mapping seeds.

A *source symbol* is an ℓ-byte string.  Internally the codec stores sums as
Python integers (bitwise XOR is then a single C-level operation regardless
of ℓ), converting back to bytes only for hashing and the wire format.

The codec also owns the keyed checksum hash (§4.3) and builds the
per-symbol :class:`~repro.core.mapping.IndexGenerator`, honouring an
optional :class:`~repro.core.irregular.IrregularConfig` (§8).

Checksum width is configurable (default 8 bytes).  §7.1 notes that 4-byte
checksums reliably reconcile differences in the tens of thousands, shaving
per-cell overhead when items are short; the truncation happens here so the
decoder's purity test and the wire format stay consistent automatically.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Sequence

try:  # pragma: no cover - exercised implicitly by the lane dispatch tests
    import numpy as _batch_np
except ImportError:  # pragma: no cover
    _batch_np = None
if os.environ.get("REPRO_NO_NUMPY", "") == "1":  # pragma: no cover
    _batch_np = None

from repro.core.mapping import IndexGenerator
from repro.core.params import CHECKSUM_BYTES, DEFAULT_ALPHA
from repro.hashing.keyed import Blake2bHasher, KeyedHasher

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.irregular import IrregularConfig


class SymbolCodec:
    """Converts ℓ-byte items to the integer/checksum form the codec uses.

    Parameters
    ----------
    symbol_size:
        ℓ, the fixed byte length of every set item.
    hasher:
        Keyed 64-bit hash for checksums; defaults to keyed BLAKE2b
        (SipHash is the interchangeable keyed alternative).
    irregular:
        Optional §8 configuration.  When given, each symbol's subset — and
        hence its mapping parameter α — is chosen by its checksum hash.
    checksum_size:
        Checksum width on the wire and in the purity test, in bytes (1-8).
    """

    __slots__ = (
        "symbol_size",
        "hasher",
        "_hash64",
        "irregular",
        "checksum_size",
        "_checksum_mask",
        "_inv_mask_span",
    )

    def __init__(
        self,
        symbol_size: int,
        hasher: Optional[KeyedHasher] = None,
        irregular: "Optional[IrregularConfig]" = None,
        checksum_size: int = CHECKSUM_BYTES,
    ) -> None:
        if symbol_size < 1:
            raise ValueError("symbol_size must be at least 1 byte")
        if not 1 <= checksum_size <= 8:
            raise ValueError("checksum_size must be between 1 and 8 bytes")
        self.symbol_size = symbol_size
        self.hasher = hasher if hasher is not None else Blake2bHasher()
        self._hash64 = self.hasher.hash64
        self.irregular = irregular
        self.checksum_size = checksum_size
        self._checksum_mask = (1 << (8 * checksum_size)) - 1
        self._inv_mask_span = 1.0 / float(1 << (8 * checksum_size))

    # -- byte/int conversions -------------------------------------------

    def to_int(self, data: bytes) -> int:
        """Pack an ℓ-byte item into an integer (little-endian)."""
        if len(data) != self.symbol_size:
            raise ValueError(
                f"item must be exactly {self.symbol_size} bytes, got {len(data)}"
            )
        return int.from_bytes(data, "little")

    def to_int_batch(self, datas: "Sequence[bytes]") -> list[int]:
        """Pack many ℓ-byte items into integers, in order.

        Items of at most 8 bytes ride a single ``frombuffer`` view under
        NumPy; anything else (wide items, ragged input, no NumPy) takes
        the per-item ``int.from_bytes`` loop with its per-item error.
        """
        size = self.symbol_size
        n = len(datas)
        if _batch_np is not None and size <= 8 and n >= 32:
            lengths = set(map(len, datas))
            if lengths and lengths != {size}:
                bad = next(len(d) for d in datas if len(d) != size)
                raise ValueError(
                    f"item must be exactly {size} bytes, got {bad}"
                )
            joined = b"".join(datas)
            if size == 8:
                return _batch_np.frombuffer(joined, dtype="<u8").tolist()
            mat = _batch_np.zeros((n, 8), dtype=_batch_np.uint8)
            mat[:, :size] = _batch_np.frombuffer(
                joined, dtype=_batch_np.uint8
            ).reshape(n, size)
            return mat.view("<u8").ravel().tolist()
        from_bytes = int.from_bytes
        out = []
        for data in datas:
            if len(data) != size:
                raise ValueError(
                    f"item must be exactly {size} bytes, got {len(data)}"
                )
            out.append(from_bytes(data, "little"))
        return out

    def to_bytes(self, value: int) -> bytes:
        """Unpack an integer sum back into ℓ bytes."""
        return value.to_bytes(self.symbol_size, "little")

    # -- hashing ----------------------------------------------------------

    def checksum_data(self, data: bytes) -> int:
        """Keyed checksum of a raw item, truncated to ``checksum_size``."""
        return self._hash64(data) & self._checksum_mask

    def checksum_int(self, value: int) -> int:
        """Keyed checksum of an item given in integer form."""
        data = value.to_bytes(self.symbol_size, "little")
        return self._hash64(data) & self._checksum_mask

    def checksum_batch(self, datas: "Sequence[bytes]") -> list[int]:
        """Keyed checksums of many raw items at once, in order.

        Element-for-element identical to :meth:`checksum_data`; routed
        through the hasher's batch face so SipHash runs its rounds as
        uint64 lane arithmetic (the ingestion pipeline's hashing stage).
        """
        batch = getattr(self.hasher, "hash64_batch", None)
        if batch is not None:
            hashes = batch(datas)
        else:  # pre-batch custom hasher: same results, one call at a time
            hash64 = self._hash64
            hashes = [hash64(data) for data in datas]
        mask = self._checksum_mask
        if mask == 0xFFFFFFFFFFFFFFFF:
            return hashes
        return [h & mask for h in hashes]

    def checksums_from_hash64(self, hashes: "Sequence[int]") -> list[int]:
        """Checksums from precomputed keyed 64-bit hashes, in order.

        ``checksums_from_hash64([hash64(d) for d in datas])`` is
        element-for-element identical to ``checksum_batch(datas)`` —
        the masking step split out so a caller that already hashed the
        items (e.g. for shard placement) does not hash them again.
        """
        mask = self._checksum_mask
        if mask == 0xFFFFFFFFFFFFFFFF:
            return list(hashes)
        return [h & mask for h in hashes]

    def checksum_int_batch(self, values: "Sequence[int]") -> list[int]:
        """Keyed checksums of many integer-form items at once, in order.

        Element-for-element identical to :meth:`checksum_int` — the batch
        face the decoder's peel-round verification rides (one lane-
        parallel SipHash call per round instead of one hash call per
        pure-cell candidate).
        """
        size = self.symbol_size
        if size <= 8:
            batch = getattr(self.hasher, "hash64_int_batch", None)
            if batch is not None:
                hashes = batch(values, size)
                mask = self._checksum_mask
                if mask == 0xFFFFFFFFFFFFFFFF:
                    return hashes
                return [h & mask for h in hashes]
        return self.checksum_batch([v.to_bytes(size, "little") for v in values])

    # -- mapping ----------------------------------------------------------

    def alpha_for(self, checksum: int) -> float:
        """Mapping parameter α of the subset this symbol belongs to (§8)."""
        if self.irregular is None:
            return DEFAULT_ALPHA
        return self.irregular.alpha_for(checksum * self._inv_mask_span)

    def new_mapping(self, checksum: int) -> IndexGenerator:
        """Fresh index generator for the symbol with this checksum hash."""
        return IndexGenerator(checksum, self.alpha_for(checksum))

    # -- equality of configuration ---------------------------------------

    def compatible_with(self, other: "SymbolCodec") -> bool:
        """True when two codecs produce interoperable coded symbols."""
        return (
            self.symbol_size == other.symbol_size
            and type(self.hasher) is type(other.hasher)
            and self.hasher.key == other.hasher.key
            and self.irregular == other.irregular
            and self.checksum_size == other.checksum_size
        )

    def __repr__(self) -> str:
        mode = "irregular" if self.irregular is not None else "regular"
        return (
            f"SymbolCodec(symbol_size={self.symbol_size}, "
            f"hasher={type(self.hasher).__name__}, mode={mode}, "
            f"checksum_size={self.checksum_size})"
        )
