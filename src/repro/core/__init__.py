"""Rateless IBLT — the paper's primary contribution (§4, §6, §8).

Module map:

``params``    — shared constants (α = 0.5, checksum width).
``varint``    — LEB128/zigzag integers for the compressed ``count`` field.
``symbols``   — :class:`SymbolCodec`: fixed-length byte items ↔ integers,
                keyed checksums, mapping-generator construction.
``mapping``   — the §4.2 index generator realising ρ(i) = 1/(1+αi).
``coded``     — the (sum, checksum, count) coded-symbol cell.
``cellbank``  — array-backed coded-symbol banks + batch scatter samplers.
``encoder``   — incremental heap-based encoder (§6) with block fast path.
``decoder``   — incremental peeling decoder (§3, §4) with block fast path.
``sketch``    — fixed-length prefixes ("sketches") with linear subtraction.
``wire``      — §6 wire format with var-int compressed counts.
``session``   — in-memory reconciliation protocol driver.
``irregular`` — §8 Irregular Rateless IBLT configuration.
"""

from repro.core.cellbank import CodedSymbolBank
from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult, RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.irregular import IrregularConfig, PAPER_IRREGULAR
from repro.core.mapping import IndexGenerator, RandomMapping
from repro.core.session import ReconciliationSession, reconcile
from repro.core.sketch import RatelessSketch
from repro.core.symbols import SymbolCodec

__all__ = [
    "CodedSymbol",
    "CodedSymbolBank",
    "DecodeResult",
    "IndexGenerator",
    "IrregularConfig",
    "PAPER_IRREGULAR",
    "RandomMapping",
    "RatelessDecoder",
    "RatelessEncoder",
    "RatelessSketch",
    "ReconciliationSession",
    "SymbolCodec",
    "reconcile",
]
