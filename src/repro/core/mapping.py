"""The §4.2 mapping rule: which coded indices does a source symbol touch?

A source symbol is mapped to coded index ``i`` with probability
``ρ(i) = 1/(1+αi)``.  Rolling a die per index would cost O(m) per symbol;
instead we sample the *gap* to the next mapped index directly from the
closed-form inverse CDF (paper Eq. 2 and §B), giving O(log m) total work
for the first ``m`` indices.

For α = 0.5 the CDF is ``C(x) = x(2i+x+3) / ((i+x+1)(i+x+2))`` whose exact
inverse needs one square root (solve the quadratic in ``x``):

    x = −(2i+3)/2 + sqrt( (2i+3)²/4 + r·(i+1)(i+2)/(1−r) )

For generic α we use the paper's Stirling approximation
``C⁻¹(r) ≈ (i+1)·((1−r)^(−α) − 1)``.

Randomness comes from a splitmix64 stream seeded by the symbol's keyed
checksum hash, so encoder and decoder independently derive the same
infinite index sequence for any symbol.
"""

from __future__ import annotations

import math

from repro.core.params import DEFAULT_ALPHA, MAX_INDEX
from repro.hashing.prng import GAMMA, INV_2_53, MASK64, MIX1, MIX2


class IndexGenerator:
    """Iterates the strictly increasing coded-symbol indices of one symbol.

    ``current`` starts at 0 because ρ(0) = 1: *every* source symbol maps to
    the first coded symbol — the property that gives Bob his termination
    signal (§4.1.2).

    The splitmix64 stream is held inline (``state``) rather than behind a
    :class:`~repro.hashing.prng.Splitmix64` object: ``next_index`` sits on
    the per-edge hot path of the encoder and decoder, and the batch
    samplers in :mod:`repro.core.cellbank` check the (``state``,
    ``current``) pair out, advance it with identical arithmetic, and check
    it back in.

    >>> gen = IndexGenerator(seed=1234)
    >>> gen.current
    0
    >>> first_gap = gen.next_index()
    >>> first_gap >= 1
    True
    """

    __slots__ = ("state", "current", "alpha")

    def __init__(self, seed: int, alpha: float = DEFAULT_ALPHA) -> None:
        if alpha <= 0.0:
            raise ValueError("alpha must be positive")
        self.state = seed & MASK64
        self.current = 0
        self.alpha = alpha

    @classmethod
    def restore(cls, state: int, current: int, alpha: float) -> "IndexGenerator":
        """Re-park a generator at a ``(state, current)`` pair checked out
        by a batch sampler (see :mod:`repro.core.cellbank`)."""
        gen = cls.__new__(cls)
        gen.state = state
        gen.current = current
        gen.alpha = alpha
        return gen

    def next_index(self) -> int:
        """Advance to — and return — the next mapped coded index."""
        i = self.current
        # Inlined Splitmix64.next_float() (bit-identical; see class doc).
        state = (self.state + GAMMA) & MASK64
        self.state = state
        z = (state ^ (state >> 30)) * MIX1 & MASK64
        z = (z ^ (z >> 27)) * MIX2 & MASK64
        r = ((z ^ (z >> 31)) >> 11) * INV_2_53
        if self.alpha == DEFAULT_ALPHA:
            # Exact inverse CDF for α = 0.5 (one sqrt; see module docstring).
            half = i + 1.5
            gap = math.sqrt(half * half + r * (i + 1.0) * (i + 2.0) / (1.0 - r)) - half
        else:
            # Stirling approximation for generic α (paper §4.2).
            gap = (i + 1.0) * ((1.0 - r) ** -self.alpha - 1.0)
        step = math.ceil(gap)
        if step < 1:
            step = 1
        nxt = i + step
        if nxt > MAX_INDEX:
            # Far beyond any practical prefix; degrade to unit steps so the
            # sequence stays strictly increasing without float blowups.
            nxt = i + 1
        self.current = nxt
        return nxt

    def indices_below(self, bound: int) -> list[int]:
        """Return all mapped indices ``< bound`` from the current position,
        advancing the generator past them (its ``current`` ends ≥ bound)."""
        out = []
        idx = self.current
        while idx < bound:
            out.append(idx)
            idx = self.next_index()
        return out


class RandomMapping:
    """Stateless view of a symbol's full mapping, for inspection and tests.

    Wraps :class:`IndexGenerator` with conveniences that re-derive the
    sequence from scratch each call (the hot paths use the generator
    directly).
    """

    __slots__ = ("seed", "alpha")

    def __init__(self, seed: int, alpha: float = DEFAULT_ALPHA) -> None:
        self.seed = seed
        self.alpha = alpha

    def generator(self) -> IndexGenerator:
        """Return a fresh generator positioned at index 0."""
        return IndexGenerator(self.seed, self.alpha)

    def indices_below(self, bound: int) -> list[int]:
        """All coded indices ``< bound`` this symbol maps to."""
        return self.generator().indices_below(bound)

    def degree_below(self, bound: int) -> int:
        """Number of coded indices ``< bound`` this symbol maps to.

        Its expectation is ``Σ_{i<bound} ρ(i) ≈ (1/α)·ln(1+α·bound)``.
        """
        return len(self.indices_below(bound))


def mapping_probability(index: int, alpha: float = DEFAULT_ALPHA) -> float:
    """ρ(i) = 1/(1+αi), the probability a random symbol maps to ``index``."""
    if index < 0:
        raise ValueError("index must be non-negative")
    return 1.0 / (1.0 + alpha * index)


def expected_degree(bound: int, alpha: float = DEFAULT_ALPHA) -> float:
    """Expected number of mapped indices among the first ``bound``:
    ``Σ_{i<bound} ρ(i)``, i.e. the encoding cost per symbol (§4.1.2)."""
    return sum(mapping_probability(i, alpha) for i in range(bound))
