"""The coded-symbol cell: (sum, checksum, count) — paper §3, Fig 1.

``sum``       XOR of the source symbols mapped here (stored as an int).
``checksum``  XOR of their keyed 64-bit hashes.
``count``     signed number of mapped symbols; in a subtracted stream a
              count of +1 (−1) marks a symbol exclusive to Alice (Bob).
"""

from __future__ import annotations


class CodedSymbol:
    """One cell of a Rateless IBLT.

    Mutable by design — the decoder peels symbols out of cells in place —
    with value-semantics helpers (:meth:`copy`, :meth:`subtract`) where the
    caller needs a fresh cell.
    """

    __slots__ = ("sum", "checksum", "count")

    def __init__(self, sum: int = 0, checksum: int = 0, count: int = 0) -> None:
        self.sum = sum
        self.checksum = checksum
        self.count = count

    def apply(self, value: int, checksum: int, direction: int) -> None:
        """XOR one source symbol in (``direction=+1``) or out (``-1``).

        XOR is its own inverse, so "in" and "out" differ only in the count
        bookkeeping.
        """
        self.sum ^= value
        self.checksum ^= checksum
        self.count += direction

    def subtract(self, other: "CodedSymbol") -> "CodedSymbol":
        """Return ``self ⊖ other`` (paper §3: pairwise sketch subtraction)."""
        return CodedSymbol(
            self.sum ^ other.sum,
            self.checksum ^ other.checksum,
            self.count - other.count,
        )

    def subtract_in_place(self, other: "CodedSymbol") -> None:
        """In-place version of :meth:`subtract`."""
        self.sum ^= other.sum
        self.checksum ^= other.checksum
        self.count -= other.count

    def is_zero(self) -> bool:
        """True when no symbol remains in this cell."""
        return self.count == 0 and self.sum == 0 and self.checksum == 0

    def copy(self) -> "CodedSymbol":
        """Value copy of this cell."""
        return CodedSymbol(self.sum, self.checksum, self.count)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CodedSymbol):
            return NotImplemented
        return (
            self.sum == other.sum
            and self.checksum == other.checksum
            and self.count == other.count
        )

    def __hash__(self) -> int:
        return hash((self.sum, self.checksum, self.count))

    def __repr__(self) -> str:
        return (
            f"CodedSymbol(sum={self.sum:#x}, checksum={self.checksum:#x}, "
            f"count={self.count})"
        )
