"""Concurrent multi-peer synchronisation (paper §1 and §2).

Because coded symbols are *universal*, a node can reconcile with several
peers at once: each peer streams its own universal sequence, the node
runs one subtract-and-peel decoder per peer against its own encoder, and
folds every newly learned item back into its set.  The paper motivates
this for blockchain nodes recovering the union of overlapping peer
states; full multi-party reconciliation is listed as future work — this
module implements the concurrent pairwise construction the paper
describes, with round-robin scheduling and per-peer accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec


@dataclass
class PeerStats:
    """Per-peer accounting of a union synchronisation."""

    symbols_used: int = 0
    learned: Set[bytes] = field(default_factory=set)
    pushed: Set[bytes] = field(default_factory=set)
    decoded: bool = False


class UnionSynchronizer:
    """Pulls the union of several peers' sets into a local set.

    The local node keeps **one** encoder; every peer session decodes the
    stream ``peer_i ⊖ local`` independently.  Peers finish at different
    times (each when its own difference is fully peeled).  Items learned
    from one peer are *not* retroactively folded into other in-flight
    sessions — each pairwise difference stays well-defined — but are
    merged into the final result, so the node ends holding
    ``local ∪ peer_1 ∪ … ∪ peer_k``.
    """

    def __init__(
        self,
        codec: SymbolCodec,
        local_items: Iterable[bytes],
        peers: Dict[str, Iterable[bytes]],
    ) -> None:
        if not peers:
            raise ValueError("need at least one peer")
        self.codec = codec
        self.local_set: Set[bytes] = set(local_items)
        self._local_encoders = {
            name: RatelessEncoder(codec, self.local_set) for name in peers
        }
        self._peer_encoders = {
            name: RatelessEncoder(codec, items) for name, items in peers.items()
        }
        self._decoders = {name: RatelessDecoder(codec) for name in peers}
        self.stats = {name: PeerStats() for name in peers}

    @property
    def all_decoded(self) -> bool:
        return all(stats.decoded for stats in self.stats.values())

    def step(self) -> bool:
        """One round-robin pass: move one symbol per unfinished peer.

        Returns True when every peer session has completed.
        """
        for name, decoder in self._decoders.items():
            stats = self.stats[name]
            if stats.decoded:
                continue
            remote = self._peer_encoders[name].produce_next()
            local = self._local_encoders[name].produce_next()
            decoder.add_subtracted(remote, local)
            stats.symbols_used += 1
            if decoder.decoded:
                stats.decoded = True
                stats.learned = set(decoder.remote_items())
                stats.pushed = set(decoder.local_items())
        return self.all_decoded

    def run(self, max_symbols_per_peer: int = 1_000_000) -> Set[bytes]:
        """Drive every session to completion; returns the union set."""
        rounds = 0
        while not self.step():
            rounds += 1
            if rounds > max_symbols_per_peer:
                unfinished = [
                    name for name, s in self.stats.items() if not s.decoded
                ]
                raise RuntimeError(f"peers did not converge: {unfinished}")
        union = set(self.local_set)
        for stats in self.stats.values():
            union |= stats.learned
        return union


def synchronize_union(
    local_items: Iterable[bytes],
    peers: Dict[str, Iterable[bytes]],
    symbol_size: int,
    codec: SymbolCodec | None = None,
) -> tuple[Set[bytes], Dict[str, PeerStats]]:
    """Convenience wrapper: returns (union set, per-peer stats)."""
    if codec is None:
        codec = SymbolCodec(symbol_size)
    sync = UnionSynchronizer(codec, local_items, peers)
    union = sync.run()
    return union, sync.stats
