"""Incremental Rateless IBLT encoder (paper §4 design, §6 optimisations).

The encoder owns a set of source symbols and materialises the infinite
coded-symbol sequence into an array-backed
:class:`~repro.core.cellbank.CodedSymbolBank` prefix.  Two production
paths exist:

* :meth:`RatelessEncoder.produce_next` — the reference path.  Following
  §6, the symbols whose *next* mapped index is smallest sit at the head
  of a binary heap, so producing coded symbol ``i`` touches exactly the
  symbols mapped to ``i`` — O(k·log n) rather than a full scan.
* :meth:`RatelessEncoder.produce_block` — the batch fast path.  One
  linear sweep over the heap collects every symbol mapped into
  ``[frontier, frontier+m)``; their walks are then replayed by the
  :mod:`~repro.core.cellbank` scatter samplers (inlined splitmix64 +
  inverse-CDF arithmetic, vectorised under NumPy when eligible) and the
  heap is rebuilt once with ``heapify``.  The emitted prefix is
  bit-identical to ``m`` reference calls — the golden-equivalence suite
  asserts it.

Linearity (§4.1) makes the produced prefix *updatable*: adding or
removing a source symbol after ``m`` cells were produced simply XORs
that symbol into the affected cells of the cached bank, which is how a
node maintains one universal stream while its set churns (§7.3: 11 ms to
patch 50M cached symbols per Ethereum block, amortised).

Produced cells are returned as value snapshots; the live, continuously
patched state is the internal bank (read it through :meth:`cached` /
:meth:`cached_block`, which snapshot at call time).
"""

from __future__ import annotations

import heapq
from itertools import count as _counter
from typing import Iterable, Optional

from repro.core.cellbank import (
    NUMPY_MIN_JOBS,
    NUMPY_MIN_SPAN,
    CodedSymbolBank,
    numpy_lane_eligible,
    scatter_walk_numpy,
    scatter_walk_scalar,
)
from repro.core.coded import CodedSymbol
from repro.core.symbols import SymbolCodec

# Below this block size the per-call sweep/heapify overhead of the batch
# path exceeds the per-cell heap cost; fall back to produce_next.  (The
# sweep is O(live entries) regardless of m, but so is one produce_next
# call whenever the head of the heap is dense — which it is for any
# young prefix — so the crossover sits low.)
_MIN_BATCH_BLOCK = 4


class _SourceEntry:
    """A source symbol plus its live position in the index stream."""

    __slots__ = ("value", "checksum", "gen", "alive")

    def __init__(self, value: int, checksum: int, gen) -> None:
        self.value = value
        self.checksum = checksum
        self.gen = gen
        self.alive = True


class RatelessEncoder:
    """Streams the coded-symbol sequence of a mutable set.

    >>> from repro.core.symbols import SymbolCodec
    >>> enc = RatelessEncoder(SymbolCodec(8))
    >>> enc.add_item(b"01234567")
    >>> cell = enc.produce_next()
    >>> cell.count
    1
    """

    def __init__(
        self, codec: SymbolCodec, items: Optional[Iterable[bytes]] = None
    ) -> None:
        self.codec = codec
        self._entries: dict[int, _SourceEntry] = {}
        self._heap: list[tuple[int, int, _SourceEntry]] = []
        self._seq = _counter()
        self._bank = CodedSymbolBank()
        if items is not None:
            self.add_items(items)

    # -- set mutation ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def set_size(self) -> int:
        """Number of source symbols currently encoded."""
        return len(self._entries)

    @property
    def produced_count(self) -> int:
        """Length of the cached coded-symbol prefix."""
        return len(self._bank)

    def __contains__(self, data: bytes) -> bool:
        return self.codec.to_int(data) in self._entries

    def add_item(self, data: bytes) -> None:
        """Add an ℓ-byte item to the set being encoded."""
        self.add_value(self.codec.to_int(data))

    def add_items(self, items: Iterable[bytes]) -> None:
        """Add many items at once.

        Before anything has been produced this skips the per-item heap
        push entirely: every new entry's next index is 0 (ρ(0) = 1), and
        a run of equal keys appended with increasing sequence numbers is
        already a valid min-heap.  Checksum hashing is batched through
        local bindings (one C-level hash call per item, no attribute
        walks).  With a produced prefix the items fall back to
        :meth:`add_value`, which patches the cached bank per item.
        """
        if len(self._bank):
            for data in items:
                self.add_value(self.codec.to_int(data))
            return
        codec = self.codec
        to_int = codec.to_int
        checksum_data = codec.checksum_data
        new_mapping = codec.new_mapping
        entries = self._entries
        heap = self._heap
        seq = self._seq
        for data in items:
            value = to_int(data)
            if value in entries:
                raise KeyError(f"duplicate item: {value:#x}")
            checksum = checksum_data(data)
            entry = _SourceEntry(value, checksum, new_mapping(checksum))
            entries[value] = entry
            heap.append((0, next(seq), entry))

    def add_value(self, value: int) -> None:
        """Add an item already packed into integer form."""
        if value in self._entries:
            raise KeyError(f"duplicate item: {value:#x}")
        checksum = self.codec.checksum_int(value)
        gen = self.codec.new_mapping(checksum)
        entry = _SourceEntry(value, checksum, gen)
        self._entries[value] = entry
        frontier = len(self._bank)
        if frontier:
            # Patch the already-produced prefix (linearity, §4.1): XOR the
            # symbol into every cached cell it maps to.
            self._bank.apply_batch(value, checksum, 1, gen.indices_below(frontier))
        heapq.heappush(self._heap, (gen.current, next(self._seq), entry))

    def remove_item(self, data: bytes) -> None:
        """Remove an item; the cached prefix is patched in place."""
        self.remove_value(self.codec.to_int(data))

    def remove_value(self, value: int) -> None:
        """Remove an item given in integer form."""
        entry = self._entries.pop(value, None)
        if entry is None:
            raise KeyError(f"item not in set: {value:#x}")
        entry.alive = False  # lazily dropped from the heap
        frontier = len(self._bank)
        if frontier:
            # XOR is self-inverse: replay the mapping to peel the symbol
            # back out of the cached prefix.
            gen = self.codec.new_mapping(entry.checksum)
            self._bank.apply_batch(
                value, entry.checksum, -1, gen.indices_below(frontier)
            )

    # -- coded symbol production -----------------------------------------

    def produce_next(self) -> CodedSymbol:
        """Produce (and cache) the next coded symbol in the sequence.

        Returns a value snapshot; the cached state (which later set
        mutations patch — universal-stream semantics) lives in the
        internal bank and is re-read by :meth:`cached`.
        """
        bank = self._bank
        index = len(bank.sums)
        cell_sum = 0
        cell_checksum = 0
        cell_count = 0
        heap = self._heap
        seq = self._seq
        while heap and heap[0][0] == index:
            _, _, entry = heapq.heappop(heap)
            if not entry.alive:
                continue
            cell_sum ^= entry.value
            cell_checksum ^= entry.checksum
            cell_count += 1
            heapq.heappush(heap, (entry.gen.next_index(), next(seq), entry))
        bank.append(cell_sum, cell_checksum, cell_count)
        return CodedSymbol(cell_sum, cell_checksum, cell_count)

    def produce_block(self, m: int) -> CodedSymbolBank:
        """Materialise coded symbols ``[frontier, frontier+m)`` in one pass.

        Returns a value-copy bank of the produced region.  Bit-identical
        to ``m`` :meth:`produce_next` calls, at a fraction of the cost:
        one heap sweep + heapify instead of per-edge heap traffic, and
        the mapped-index walks run through the batch scatter samplers.
        """
        if m <= 0:
            return CodedSymbolBank()
        lo = len(self._bank)
        hi = lo + m
        if m < _MIN_BATCH_BLOCK and lo > 0:
            # Tiny extension of an existing prefix: the per-cell heap path
            # is cheaper than a full sweep.  (The first block always takes
            # the batch path — at frontier 0 every entry is due at once.)
            for _ in range(m):
                self.produce_next()
            return self._bank.slice(lo, hi)
        # Sweep: every live entry whose next index lands inside the block
        # becomes a walk job; the rest keep their heap tuples unchanged.
        keep: list[tuple[int, int, _SourceEntry]] = []
        job_indices: list[int] = []
        job_states: list[int] = []
        job_values: list[int] = []
        job_checksums: list[int] = []
        job_entries: list[tuple[int, _SourceEntry]] = []
        job_alphas: list[float] = []
        for key, seq, entry in self._heap:
            if not entry.alive:
                continue
            if key < hi:
                gen = entry.gen
                job_indices.append(key)  # invariant: key == gen.current
                job_states.append(gen.state)
                job_values.append(entry.value)
                job_checksums.append(entry.checksum)
                job_alphas.append(gen.alpha)
                job_entries.append((seq, entry))
            else:
                keep.append((key, seq, entry))
        bank = self._bank
        njobs = len(job_indices)
        if (
            njobs >= NUMPY_MIN_JOBS
            and (m >= NUMPY_MIN_SPAN or njobs >= 256)
            and numpy_lane_eligible(self.codec)
        ):
            import numpy as np

            sums = np.zeros(m, dtype=np.uint64)
            checksums = np.zeros(m, dtype=np.uint64)
            counts = np.zeros(m, dtype=np.int64)
            scatter_walk_numpy(
                sums,
                checksums,
                counts,
                job_indices,
                job_states,
                job_values,
                job_checksums,
                [1] * njobs,
                hi,
                base=lo,
            )
            bank.sums.extend(sums.tolist())
            bank.checksums.extend(checksums.tolist())
            bank.counts.extend(counts.tolist())
        else:
            bank.extend_zeros(m)
            scatter_walk_scalar(
                bank.sums,
                bank.checksums,
                bank.counts,
                job_indices,
                job_states,
                job_values,
                job_checksums,
                [1] * njobs,
                job_alphas,
                hi,
            )
        # Check the walked (state, current) pairs back into the generators
        # and rebuild the heap in one O(n) heapify.
        for j, (seq, entry) in enumerate(job_entries):
            gen = entry.gen
            gen.current = job_indices[j]
            gen.state = job_states[j]
            keep.append((job_indices[j], seq, entry))
        heapq.heapify(keep)
        self._heap = keep
        return bank.slice(lo, hi)

    def produce(self, n: int) -> list[CodedSymbol]:
        """Produce the next ``n`` coded symbols (value snapshots)."""
        return self.produce_block(n).cells()

    def prefix(self, m: int) -> list[CodedSymbol]:
        """Frozen copies of coded symbols ``0..m-1``, producing as needed."""
        produced = len(self._bank)
        if produced < m:
            self.produce_block(m - produced)
        return self._bank.slice(0, m).cells()

    def cached(self, index: int) -> CodedSymbol:
        """Snapshot of the cached cell at ``index`` (must be produced)."""
        return self._bank.cell_at(index)

    def cached_block(self, lo: int, hi: int) -> CodedSymbolBank:
        """Value-copy bank of cached cells ``[lo, hi)``, producing on demand."""
        produced = len(self._bank)
        if produced < hi:
            self.produce_block(hi - produced)
        return self._bank.slice(lo, hi)
