"""Incremental Rateless IBLT encoder (paper §4 design, §6 optimisations).

The encoder owns a set of source symbols and materialises the infinite
coded-symbol sequence into an array-backed
:class:`~repro.core.cellbank.CodedSymbolBank` prefix.  Two production
paths exist:

* :meth:`RatelessEncoder.produce_next` — the reference path.  Following
  §6, the symbols whose *next* mapped index is smallest sit at the head
  of a binary heap, so producing coded symbol ``i`` touches exactly the
  symbols mapped to ``i`` — O(k·log n) rather than a full scan.
* :meth:`RatelessEncoder.produce_block` — the batch fast path.  One
  linear sweep over the heap collects every symbol mapped into
  ``[frontier, frontier+m)``; their walks are then replayed by the
  :mod:`~repro.core.cellbank` scatter samplers (inlined splitmix64 +
  inverse-CDF arithmetic, vectorised under NumPy when eligible) and the
  heap is rebuilt once with ``heapify``.  The emitted prefix is
  bit-identical to ``m`` reference calls — the golden-equivalence suite
  asserts it.

Set ingestion (the §7 workloads: 10^5–10^6 items per shard) is batched
end to end.  :meth:`RatelessEncoder.add_items` hashes the whole batch
through the codec's keyed batch face (lane-parallel SipHash under
NumPy), then *stages* the symbols in a column pool — parallel
``values/checksums/state/current`` arrays — instead of building one
``_SourceEntry`` + heap tuple per item.  ``produce_block`` feeds staged
rows straight into the vectorised scatter kernel (their walk states park
in the pool's arrays, never touching Python objects), and the pool is
materialised into heap entries only when a per-cell path needs them
(``produce_next``, or the NumPy lane going away).  Under
``REPRO_NO_NUMPY=1`` the pool never forms and the per-item reference
engine runs instead; both produce bit-identical banks.

Linearity (§4.1) makes the produced prefix *updatable*: adding or
removing a source symbol after ``m`` cells were produced simply XORs
that symbol into the affected cells of the cached bank, which is how a
node maintains one universal stream while its set churns (§7.3: 11 ms to
patch 50M cached symbols per Ethereum block, amortised).  Churn is
batched too: :meth:`add_items` / :meth:`remove_items` patch the cached
prefix with one fused scatter per batch (removals replay each symbol's
mapping from its seed — the checksum — reusing the parked α instead of
re-deriving the mapping per call).

Produced cells are returned as value snapshots; the live, continuously
patched state is the internal bank (read it through :meth:`cached` /
:meth:`cached_block`, which snapshot at call time).
"""

from __future__ import annotations

import heapq
from itertools import count as _counter
from typing import Iterable, Optional, Sequence

from repro.core.cellbank import (
    NUMPY_MIN_JOBS,
    NUMPY_MIN_SPAN,
    CodedSymbolBank,
    numpy_block_eligible,
    numpy_lane_eligible,
    scatter_walk_arrays,
    scatter_walk_scalar,
)
from repro.hashing.prng import MASK64
from repro.core.coded import CodedSymbol
from repro.core.mapping import IndexGenerator
from repro.core.params import DEFAULT_ALPHA
from repro.core.symbols import SymbolCodec

# Below this block size the per-call sweep/heapify overhead of the batch
# path exceeds the per-cell heap cost; fall back to produce_next.  (The
# sweep is O(live entries) regardless of m, but so is one produce_next
# call whenever the head of the heap is dense — which it is for any
# young prefix — so the crossover sits low.)
_MIN_BATCH_BLOCK = 4

# Patching a produced prefix through the NumPy lane costs one list→array
# →list round trip of the whole bank; below ~1 batch item per 64 cached
# cells the scalar per-edge patch is cheaper (measured crossover sits
# near 1/90 at both 10^4 and 10^5 cells).
_PATCH_CELLS_PER_ITEM = 64


class _SourceEntry:
    """A source symbol plus its live position in the index stream."""

    __slots__ = ("value", "checksum", "gen", "alive")

    def __init__(self, value: int, checksum: int, gen) -> None:
        self.value = value
        self.checksum = checksum
        self.gen = gen
        self.alive = True


class _StagedPool:
    """Bulk-ingested source symbols as a column store (NumPy engine).

    Parallel arrays instead of per-item objects: ``values``/``checksums``
    are the symbols, ``idx``/``state`` the parked ``(current, splitmix64
    state)`` walk positions the batch samplers check out and back in.
    ``rows`` maps a symbol's integer value to its row; removal kills the
    row in place (``alive`` mask) so array offsets stay stable.
    """

    __slots__ = ("values", "checksums", "idx", "state", "alive", "rows", "live")

    def __init__(self, values, checksums, idx, state, alive) -> None:
        self.values = values
        self.checksums = checksums
        self.idx = idx
        self.state = state
        self.alive = alive
        self.rows: dict[int, int] = {}
        self.live = 0


class RatelessEncoder:
    """Streams the coded-symbol sequence of a mutable set.

    >>> from repro.core.symbols import SymbolCodec
    >>> enc = RatelessEncoder(SymbolCodec(8))
    >>> enc.add_item(b"01234567")
    >>> cell = enc.produce_next()
    >>> cell.count
    1
    """

    def __init__(
        self,
        codec: SymbolCodec,
        items: Optional[Iterable[bytes]] = None,
        *,
        item_hashes: Optional[Sequence[int]] = None,
    ) -> None:
        self.codec = codec
        self._entries: dict[int, _SourceEntry] = {}
        self._heap: list[tuple[int, int, _SourceEntry]] = []
        self._seq = _counter()
        self._bank = CodedSymbolBank()
        self._pool: Optional[_StagedPool] = None
        if items is not None:
            self.add_items(items, item_hashes=item_hashes)

    # -- set mutation ----------------------------------------------------

    def __len__(self) -> int:
        pool = self._pool
        return len(self._entries) + (pool.live if pool is not None else 0)

    @property
    def set_size(self) -> int:
        """Number of source symbols currently encoded."""
        return len(self)

    @property
    def produced_count(self) -> int:
        """Length of the cached coded-symbol prefix."""
        return len(self._bank)

    def __contains__(self, data: bytes) -> bool:
        value = self.codec.to_int(data)
        pool = self._pool
        return value in self._entries or (
            pool is not None and value in pool.rows
        )

    def add_item(self, data: bytes) -> None:
        """Add an ℓ-byte item to the set being encoded."""
        self.add_value(self.codec.to_int(data))

    def add_items(
        self,
        items: Iterable[bytes],
        *,
        item_hashes: Optional[Sequence[int]] = None,
    ) -> None:
        """Add many items at once (the batch ingestion pipeline).

        The whole batch is hashed through the codec's keyed batch face,
        then staged in the column pool (NumPy lane) or inserted through
        the per-item reference engine (``REPRO_NO_NUMPY``, wide symbols,
        irregular mappings, tiny batches).  With a produced prefix the
        batch patches the cached bank in one fused scatter.  Duplicates
        anywhere — the set, the pool, or the batch itself — raise
        ``KeyError`` before anything is inserted.

        ``item_hashes``, when given, must be the codec hasher's keyed
        64-bit hash of each item, in order (e.g. the values shard
        placement already computed); checksums are then masked from
        them instead of hashing the items a second time.
        """
        datas = items if isinstance(items, list) else list(items)
        if not datas:
            return
        codec = self.codec
        values = codec.to_int_batch(datas)
        if item_hashes is not None:
            if len(item_hashes) != len(datas):
                raise ValueError(
                    f"{len(datas)} items but {len(item_hashes)} hashes"
                )
            checksums = codec.checksums_from_hash64(item_hashes)
        else:
            checksums = codec.checksum_batch(datas)
        entries = self._entries
        pool = self._pool
        pool_rows = pool.rows if pool is not None else {}
        # One C-speed sweep (set build + keys-view disjointness) replaces
        # the per-item membership loop; the loop only reruns to name the
        # offending item when a duplicate is present.
        unique = set(values)
        if (
            len(unique) != len(values)
            or (entries and not unique.isdisjoint(entries.keys()))
            or (pool_rows and not unique.isdisjoint(pool_rows.keys()))
        ):
            seen: set[int] = set()
            for value in values:
                if value in entries or value in pool_rows or value in seen:
                    raise KeyError(f"duplicate item: {value:#x}")
                seen.add(value)
        if len(values) >= NUMPY_MIN_JOBS and numpy_lane_eligible(codec):
            self._ingest_pooled(values, checksums)
            return
        frontier = len(self._bank)
        new_mapping = codec.new_mapping
        heap = self._heap
        seq = self._seq
        if frontier == 0:
            # Nothing produced yet: every new entry's next index is 0
            # (ρ(0) = 1), and a run of equal keys appended with increasing
            # sequence numbers is already a valid min-heap.
            for value, checksum in zip(values, checksums):
                entry = _SourceEntry(value, checksum, new_mapping(checksum))
                entries[value] = entry
                heap.append((0, next(seq), entry))
            return
        bank = self._bank
        for value, checksum in zip(values, checksums):
            # Patch the already-produced prefix (linearity, §4.1): XOR the
            # symbol into every cached cell it maps to.
            gen = new_mapping(checksum)
            entry = _SourceEntry(value, checksum, gen)
            entries[value] = entry
            bank.apply_batch(value, checksum, 1, gen.indices_below(frontier))
            heapq.heappush(heap, (gen.current, next(seq), entry))

    def _patch_prefix_batch(
        self,
        values: list[int],
        checksums: list[int],
        direction: int,
        alphas: list[float],
        frontier: int,
    ):
        """Replay a batch of symbols from their seeds across the produced
        prefix ``[0, frontier)`` — direction +1 folds them in, −1 peels
        them out.  Picks the fused NumPy scatter when the batch amortises
        the lane round trip (the ``_PATCH_CELLS_PER_ITEM`` crossover),
        the in-place scalar walk otherwise.  Returns the parked
        ``(current, state)`` pair per symbol as NumPy arrays when the
        NumPy lane ran, as lists otherwise.
        """
        n = len(values)
        bank = self._bank
        if (
            n >= NUMPY_MIN_JOBS
            and n * _PATCH_CELLS_PER_ITEM >= frontier
            and numpy_block_eligible(self.codec)
        ):
            import numpy as np

            wide = self.codec.symbol_size > 8
            if wide:
                sums = np.array([s & MASK64 for s in bank.sums], dtype=np.uint64)
                sums_hi = np.array([s >> 64 for s in bank.sums], dtype=np.uint64)
                vals = np.array([v & MASK64 for v in values], dtype=np.uint64)
                vals_hi = np.array([v >> 64 for v in values], dtype=np.uint64)
            else:
                sums = np.array(bank.sums, dtype=np.uint64)
                sums_hi = vals_hi = None
                vals = np.array(values, dtype=np.uint64)
            bank_checksums = np.array(bank.checksums, dtype=np.uint64)
            counts = np.array(bank.counts, dtype=np.int64)
            idx, state = scatter_walk_arrays(
                sums,
                bank_checksums,
                counts,
                np.zeros(n, dtype=np.int64),
                np.array(checksums, dtype=np.uint64),
                vals,
                np.array(checksums, dtype=np.uint64),
                np.full(n, direction, dtype=np.int64),
                frontier,
                alphas=(
                    np.array(alphas, dtype=np.float64)
                    if self.codec.irregular is not None
                    else None
                ),
                sums_hi=sums_hi,
                vals_hi=vals_hi,
            )
            if wide:
                bank.sums[:] = [
                    lo | (hi << 64)
                    for lo, hi in zip(sums.tolist(), sums_hi.tolist())
                ]
            else:
                bank.sums[:] = sums.tolist()
            bank.checksums[:] = bank_checksums.tolist()
            bank.counts[:] = counts.tolist()
            return idx, state
        indices = [0] * n
        states = list(checksums)
        scatter_walk_scalar(
            bank.sums,
            bank.checksums,
            bank.counts,
            indices,
            states,
            values,
            checksums,
            [direction] * n,
            alphas,
            frontier,
        )
        return indices, states

    def _ingest_pooled(self, values: list[int], checksums: list[int]) -> None:
        """Stage a validated batch in the column pool, patching any
        produced prefix with one fused scatter."""
        import numpy as np

        n = len(values)
        vals = np.array(values, dtype=np.uint64)
        csums = np.array(checksums, dtype=np.uint64)
        # The §4.2 mapping walk starts at index 0 (ρ(0) = 1) with the
        # splitmix64 stream seeded by the keyed checksum.
        idx = np.zeros(n, dtype=np.int64)
        state = csums.copy()
        frontier = len(self._bank)
        if frontier:
            idx, state = self._patch_prefix_batch(
                values, checksums, 1, [DEFAULT_ALPHA] * n, frontier
            )
            idx = np.asarray(idx, dtype=np.int64)
            state = np.asarray(state, dtype=np.uint64)
        pool = self._pool
        if pool is None:
            pool = self._pool = _StagedPool(
                vals, csums, idx, state, np.ones(n, dtype=bool)
            )
            base = 0
        else:
            base = pool.values.shape[0]
            pool.values = np.concatenate([pool.values, vals])
            pool.checksums = np.concatenate([pool.checksums, csums])
            pool.idx = np.concatenate([pool.idx, idx])
            pool.state = np.concatenate([pool.state, state])
            pool.alive = np.concatenate([pool.alive, np.ones(n, dtype=bool)])
        rows = pool.rows
        for offset, value in enumerate(values):
            rows[value] = base + offset
        pool.live += n

    def _materialize_pool(self) -> None:
        """Turn staged pool rows into heap entries (the per-cell paths
        need per-symbol generators; the arrays already hold their parked
        walk states, so this is pure bookkeeping)."""
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        if not pool.live:
            return
        entries = self._entries
        heap = self._heap
        seq = self._seq
        idx_list = pool.idx.tolist()
        state_list = pool.state.tolist()
        checksum_list = pool.checksums.tolist()
        restore = IndexGenerator.restore
        for value, row in pool.rows.items():
            gen = restore(state_list[row], idx_list[row], DEFAULT_ALPHA)
            entry = _SourceEntry(value, checksum_list[row], gen)
            entries[value] = entry
            heap.append((gen.current, next(seq), entry))
        heapq.heapify(heap)

    def add_value(self, value: int) -> None:
        """Add an item already packed into integer form."""
        pool = self._pool
        if value in self._entries or (pool is not None and value in pool.rows):
            raise KeyError(f"duplicate item: {value:#x}")
        checksum = self.codec.checksum_int(value)
        gen = self.codec.new_mapping(checksum)
        entry = _SourceEntry(value, checksum, gen)
        self._entries[value] = entry
        frontier = len(self._bank)
        if frontier:
            # Patch the already-produced prefix (linearity, §4.1): XOR the
            # symbol into every cached cell it maps to.
            self._bank.apply_batch(value, checksum, 1, gen.indices_below(frontier))
        heapq.heappush(self._heap, (gen.current, next(self._seq), entry))

    def remove_item(self, data: bytes) -> None:
        """Remove an item; the cached prefix is patched in place."""
        self.remove_value(self.codec.to_int(data))

    def remove_items(self, items: Iterable[bytes]) -> None:
        """Remove many items at once, patching the prefix in one scatter.

        XOR is self-inverse, so each removal replays the symbol's mapping
        from its seed (the stored checksum — no re-hash, and the parked α
        is reused instead of re-deriving the mapping per item); the whole
        batch then lands in one fused scatter.  Items missing from the
        set raise ``KeyError`` before anything is removed.
        """
        datas = items if isinstance(items, list) else list(items)
        if not datas:
            return
        codec = self.codec
        values = codec.to_int_batch(datas)
        entries = self._entries
        pool = self._pool
        pool_rows = pool.rows if pool is not None else {}
        checksums: list[int] = []
        alphas: list[float] = []
        seen: set[int] = set()
        for value in values:
            if value in seen:
                raise KeyError(f"item not in set: {value:#x}")
            seen.add(value)
            entry = entries.get(value)
            if entry is not None:
                checksums.append(entry.checksum)
                alphas.append(entry.gen.alpha)
            elif value in pool_rows:
                checksums.append(int(pool.checksums[pool_rows[value]]))
                alphas.append(DEFAULT_ALPHA)
            else:
                raise KeyError(f"item not in set: {value:#x}")
        for value in values:
            entry = entries.pop(value, None)
            if entry is not None:
                entry.alive = False  # lazily dropped from the heap
            else:
                row = pool_rows.pop(value)
                pool.alive[row] = False
                pool.live -= 1
        frontier = len(self._bank)
        if not frontier:
            return
        # Parked (current, state) pairs are discarded: removed symbols
        # have no future in the stream.
        self._patch_prefix_batch(values, checksums, -1, alphas, frontier)

    def remove_value(self, value: int) -> None:
        """Remove an item given in integer form."""
        entry = self._entries.pop(value, None)
        pool = self._pool
        if entry is not None:
            entry.alive = False  # lazily dropped from the heap
            checksum = entry.checksum
            alpha = entry.gen.alpha
        elif pool is not None and value in pool.rows:
            row = pool.rows.pop(value)
            pool.alive[row] = False
            pool.live -= 1
            checksum = int(pool.checksums[row])
            alpha = DEFAULT_ALPHA
        else:
            raise KeyError(f"item not in set: {value:#x}")
        frontier = len(self._bank)
        if frontier:
            # XOR is self-inverse: replay the mapping to peel the symbol
            # back out of the cached prefix.  The walk restarts from the
            # seed (= checksum) with the entry's parked α — no re-derive.
            gen = IndexGenerator.restore(checksum, 0, alpha)
            self._bank.apply_batch(
                value, checksum, -1, gen.indices_below(frontier)
            )

    # -- persistence hooks -------------------------------------------------

    @property
    def bank(self) -> CodedSymbolBank:
        """The live cached-prefix bank (the durable store packs it verbatim)."""
        return self._bank

    def export_rows(self) -> tuple[list[int], list[int], list[int], list[int]]:
        """Parallel ``(values, checksums, currents, states)`` source rows.

        One row per live source symbol, carrying its parked §4.2 walk
        position — the first mapped index at or past the produced
        frontier, plus the splitmix64 state that resumes the walk
        there.  Together with :attr:`bank` this is the encoder's whole
        state: :meth:`restore` rebuilds a bit-identical stream from it
        with no hashing and no index walking.
        """
        values: list[int] = []
        checksums: list[int] = []
        currents: list[int] = []
        states: list[int] = []
        for value, entry in self._entries.items():
            gen = entry.gen
            values.append(value)
            checksums.append(entry.checksum)
            currents.append(gen.current)
            states.append(gen.state)
        pool = self._pool
        if pool is not None and pool.rows:
            idx_list = pool.idx.tolist()
            state_list = pool.state.tolist()
            checksum_list = pool.checksums.tolist()
            for value, row in pool.rows.items():
                values.append(value)
                checksums.append(checksum_list[row])
                currents.append(idx_list[row])
                states.append(state_list[row])
        return values, checksums, currents, states

    @classmethod
    def restore(
        cls,
        codec: SymbolCodec,
        values,
        checksums,
        currents,
        states,
        bank: CodedSymbolBank,
    ) -> "RatelessEncoder":
        """Rebuild an encoder from :meth:`export_rows` output + its bank.

        Adopts ``bank`` as the produced prefix and re-parks every source
        symbol exactly where it was exported, so the restored encoder's
        future output is bit-identical to the original's.  Rows land in
        the column pool when the NumPy lane is eligible (restore stays
        array-to-array), in reference heap entries otherwise — both
        engines produce the same cells, as everywhere else.
        """
        encoder = cls(codec)
        encoder._bank = bank
        n = len(values)
        if n >= NUMPY_MIN_JOBS and numpy_lane_eligible(codec):
            import numpy as np

            pool = _StagedPool(
                np.asarray(values, dtype=np.uint64),
                np.asarray(checksums, dtype=np.uint64),
                np.asarray(currents, dtype=np.int64),
                np.asarray(states, dtype=np.uint64),
                np.ones(n, dtype=bool),
            )
            # tolist() materialises python ints in C — much faster than
            # per-element int() casts on a 100k-row restore.
            pool.rows = dict(zip(pool.values.tolist(), range(n)))
            pool.live = n
            encoder._pool = pool
            return encoder
        entries = encoder._entries
        heap = encoder._heap
        seq = encoder._seq
        restore_gen = IndexGenerator.restore
        alpha_for = codec.alpha_for
        for value, checksum, current, state in zip(values, checksums, currents, states):
            value = int(value)
            checksum = int(checksum)
            gen = restore_gen(int(state), int(current), alpha_for(checksum))
            entry = _SourceEntry(value, checksum, gen)
            entries[value] = entry
            heap.append((gen.current, next(seq), entry))
        heapq.heapify(heap)
        return encoder

    # -- coded symbol production -----------------------------------------

    def produce_next(self) -> CodedSymbol:
        """Produce (and cache) the next coded symbol in the sequence.

        Returns a value snapshot; the cached state (which later set
        mutations patch — universal-stream semantics) lives in the
        internal bank and is re-read by :meth:`cached`.
        """
        if self._pool is not None:
            self._materialize_pool()
        bank = self._bank
        index = len(bank.sums)
        cell_sum = 0
        cell_checksum = 0
        cell_count = 0
        heap = self._heap
        seq = self._seq
        while heap and heap[0][0] == index:
            _, _, entry = heapq.heappop(heap)
            if not entry.alive:
                continue
            cell_sum ^= entry.value
            cell_checksum ^= entry.checksum
            cell_count += 1
            heapq.heappush(heap, (entry.gen.next_index(), next(seq), entry))
        bank.append(cell_sum, cell_checksum, cell_count)
        return CodedSymbol(cell_sum, cell_checksum, cell_count)

    def produce_block(self, m: int) -> CodedSymbolBank:
        """Materialise coded symbols ``[frontier, frontier+m)`` in one pass.

        Returns a value-copy bank of the produced region.  Bit-identical
        to ``m`` :meth:`produce_next` calls, at a fraction of the cost:
        one heap sweep + heapify instead of per-edge heap traffic, the
        mapped-index walks run through the batch scatter samplers, and
        pool-staged symbols feed the kernel straight from their arrays.
        """
        if m <= 0:
            return CodedSymbolBank()
        pool = self._pool
        if pool is not None and not numpy_lane_eligible(self.codec):
            # The NumPy lane went away (kill switch mid-life); fall back
            # to the reference engine for everything staged.
            self._materialize_pool()
            pool = None
        lo = len(self._bank)
        hi = lo + m
        if m < _MIN_BATCH_BLOCK and lo > 0 and pool is None:
            # Tiny extension of an existing prefix: the per-cell heap path
            # is cheaper than a full sweep.  (The first block always takes
            # the batch path — at frontier 0 every entry is due at once.)
            for _ in range(m):
                self.produce_next()
            return self._bank.slice(lo, hi)
        # Sweep: every live entry whose next index lands inside the block
        # becomes a walk job; the rest keep their heap tuples unchanged.
        keep: list[tuple[int, int, _SourceEntry]] = []
        job_indices: list[int] = []
        job_states: list[int] = []
        job_values: list[int] = []
        job_checksums: list[int] = []
        job_entries: list[tuple[int, _SourceEntry]] = []
        job_alphas: list[float] = []
        for key, seq, entry in self._heap:
            if not entry.alive:
                continue
            if key < hi:
                gen = entry.gen
                job_indices.append(key)  # invariant: key == gen.current
                job_states.append(gen.state)
                job_values.append(entry.value)
                job_checksums.append(entry.checksum)
                job_alphas.append(gen.alpha)
                job_entries.append((seq, entry))
            else:
                keep.append((key, seq, entry))
        bank = self._bank
        njobs = len(job_indices)
        pool_jobs = None
        if pool is not None:
            import numpy as np

            pool_jobs = np.nonzero(pool.alive & (pool.idx < hi))[0]
        if pool_jobs is not None and pool_jobs.size == 0:
            pool_jobs = None
        if pool_jobs is not None or (
            njobs >= NUMPY_MIN_JOBS
            and (m >= NUMPY_MIN_SPAN or njobs >= 256)
            and numpy_block_eligible(self.codec)
        ):
            import numpy as np

            # Pool rows only exist for strictly-eligible codecs (≤8-byte
            # symbols, regular mapping), so the wide/irregular lanes below
            # never coincide with a pool concat.
            wide = self.codec.symbol_size > 8
            sums = np.zeros(m, dtype=np.uint64)
            checksums = np.zeros(m, dtype=np.uint64)
            counts = np.zeros(m, dtype=np.int64)
            idx = np.array(job_indices, dtype=np.int64)
            state = np.array(job_states, dtype=np.uint64)
            if wide:
                vals = np.array([v & MASK64 for v in job_values], dtype=np.uint64)
                vals_hi = np.array([v >> 64 for v in job_values], dtype=np.uint64)
                sums_hi = np.zeros(m, dtype=np.uint64)
            else:
                vals = np.array(job_values, dtype=np.uint64)
                vals_hi = sums_hi = None
            csums = np.array(job_checksums, dtype=np.uint64)
            alphas = (
                np.array(job_alphas, dtype=np.float64)
                if self.codec.irregular is not None
                else None
            )
            if pool_jobs is not None:
                idx = np.concatenate([idx, pool.idx[pool_jobs]])
                state = np.concatenate([state, pool.state[pool_jobs]])
                vals = np.concatenate([vals, pool.values[pool_jobs]])
                csums = np.concatenate([csums, pool.checksums[pool_jobs]])
            idx, state = scatter_walk_arrays(
                sums,
                checksums,
                counts,
                idx,
                state,
                vals,
                csums,
                np.ones(idx.shape[0], dtype=np.int64),
                hi,
                base=lo,
                alphas=alphas,
                sums_hi=sums_hi,
                vals_hi=vals_hi,
            )
            if pool_jobs is not None:
                pool.idx[pool_jobs] = idx[njobs:]
                pool.state[pool_jobs] = state[njobs:]
            job_indices[:] = idx[:njobs].tolist()
            job_states[:] = state[:njobs].tolist()
            if wide:
                bank.sums.extend(
                    lo_ | (hi_ << 64)
                    for lo_, hi_ in zip(sums.tolist(), sums_hi.tolist())
                )
            else:
                bank.sums.extend(sums.tolist())
            bank.checksums.extend(checksums.tolist())
            bank.counts.extend(counts.tolist())
        else:
            bank.extend_zeros(m)
            scatter_walk_scalar(
                bank.sums,
                bank.checksums,
                bank.counts,
                job_indices,
                job_states,
                job_values,
                job_checksums,
                [1] * njobs,
                job_alphas,
                hi,
            )
        # Check the walked (state, current) pairs back into the generators
        # and rebuild the heap in one O(n) heapify.
        for j, (seq, entry) in enumerate(job_entries):
            gen = entry.gen
            gen.current = job_indices[j]
            gen.state = job_states[j]
            keep.append((job_indices[j], seq, entry))
        heapq.heapify(keep)
        self._heap = keep
        return bank.slice(lo, hi)

    def produce(self, n: int) -> list[CodedSymbol]:
        """Produce the next ``n`` coded symbols (value snapshots)."""
        return self.produce_block(n).cells()

    def prefix(self, m: int) -> list[CodedSymbol]:
        """Frozen copies of coded symbols ``0..m-1``, producing as needed."""
        produced = len(self._bank)
        if produced < m:
            self.produce_block(m - produced)
        return self._bank.slice(0, m).cells()

    def cached(self, index: int) -> CodedSymbol:
        """Snapshot of the cached cell at ``index`` (must be produced)."""
        return self._bank.cell_at(index)

    def cached_block(self, lo: int, hi: int) -> CodedSymbolBank:
        """Value-copy bank of cached cells ``[lo, hi)``, producing on demand."""
        produced = len(self._bank)
        if produced < hi:
            self.produce_block(hi - produced)
        return self._bank.slice(lo, hi)
