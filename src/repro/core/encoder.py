"""Incremental Rateless IBLT encoder (paper §4 design, §6 optimisations).

The encoder owns a set of source symbols and lazily materialises the
infinite coded-symbol sequence one prefix cell at a time.  Following §6,
the symbols whose *next* mapped index is smallest sit at the head of a
binary heap, so producing coded symbol ``i`` touches exactly the symbols
mapped to ``i`` — O(k·log n) rather than a full scan.

Linearity (§4.1) makes the produced prefix *updatable*: adding or removing
a source symbol after ``m`` cells were produced simply XORs that symbol
into the affected cells of the cached prefix, which is how a node
maintains one universal stream while its set churns (§7.3: 11 ms to patch
50M cached symbols per Ethereum block, amortised).
"""

from __future__ import annotations

import heapq
from itertools import count as _counter
from typing import Iterable, Optional

from repro.core.coded import CodedSymbol
from repro.core.mapping import IndexGenerator
from repro.core.symbols import SymbolCodec


class _SourceEntry:
    """A source symbol plus its live position in the index stream."""

    __slots__ = ("value", "checksum", "gen", "alive")

    def __init__(self, value: int, checksum: int, gen: IndexGenerator) -> None:
        self.value = value
        self.checksum = checksum
        self.gen = gen
        self.alive = True


class RatelessEncoder:
    """Streams the coded-symbol sequence of a mutable set.

    >>> from repro.core.symbols import SymbolCodec
    >>> enc = RatelessEncoder(SymbolCodec(8))
    >>> enc.add_item(b"01234567")
    >>> cell = enc.produce_next()
    >>> cell.count
    1
    """

    def __init__(self, codec: SymbolCodec, items: Optional[Iterable[bytes]] = None) -> None:
        self.codec = codec
        self._entries: dict[int, _SourceEntry] = {}
        self._heap: list[tuple[int, int, _SourceEntry]] = []
        self._seq = _counter()
        self._produced: list[CodedSymbol] = []
        if items is not None:
            for item in items:
                self.add_item(item)

    # -- set mutation ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def set_size(self) -> int:
        """Number of source symbols currently encoded."""
        return len(self._entries)

    @property
    def produced_count(self) -> int:
        """Length of the cached coded-symbol prefix."""
        return len(self._produced)

    def __contains__(self, data: bytes) -> bool:
        return self.codec.to_int(data) in self._entries

    def add_item(self, data: bytes) -> None:
        """Add an ℓ-byte item to the set being encoded."""
        self.add_value(self.codec.to_int(data))

    def add_value(self, value: int) -> None:
        """Add an item already packed into integer form."""
        if value in self._entries:
            raise KeyError(f"duplicate item: {value:#x}")
        checksum = self.codec.checksum_int(value)
        gen = self.codec.new_mapping(checksum)
        entry = _SourceEntry(value, checksum, gen)
        self._entries[value] = entry
        frontier = len(self._produced)
        if frontier:
            # Patch the already-produced prefix (linearity, §4.1): walk the
            # symbol's mapped indices below the frontier, XOR-ing it in.
            idx = 0
            produced = self._produced
            while idx < frontier:
                produced[idx].apply(value, checksum, 1)
                idx = gen.next_index()
        heapq.heappush(self._heap, (gen.current, next(self._seq), entry))

    def remove_item(self, data: bytes) -> None:
        """Remove an item; the cached prefix is patched in place."""
        self.remove_value(self.codec.to_int(data))

    def remove_value(self, value: int) -> None:
        """Remove an item given in integer form."""
        entry = self._entries.pop(value, None)
        if entry is None:
            raise KeyError(f"item not in set: {value:#x}")
        entry.alive = False  # lazily dropped from the heap
        frontier = len(self._produced)
        if frontier:
            # XOR is self-inverse: replay the mapping to peel the symbol
            # back out of the cached prefix.
            gen = self.codec.new_mapping(entry.checksum)
            idx = 0
            produced = self._produced
            while idx < frontier:
                produced[idx].apply(value, entry.checksum, -1)
                idx = gen.next_index()

    # -- coded symbol production -----------------------------------------

    def produce_next(self) -> CodedSymbol:
        """Produce (and cache) the next coded symbol in the sequence.

        Returns the *internal* cell: it stays live so later set mutations
        patch it (universal-stream semantics).  Copy it if you need a
        frozen snapshot.
        """
        index = len(self._produced)
        cell = CodedSymbol()
        heap = self._heap
        while heap and heap[0][0] == index:
            _, _, entry = heapq.heappop(heap)
            if not entry.alive:
                continue
            cell.apply(entry.value, entry.checksum, 1)
            heapq.heappush(heap, (entry.gen.next_index(), next(self._seq), entry))
        self._produced.append(cell)
        return cell

    def produce(self, n: int) -> list[CodedSymbol]:
        """Produce the next ``n`` coded symbols (internal cells)."""
        return [self.produce_next() for _ in range(n)]

    def prefix(self, m: int) -> list[CodedSymbol]:
        """Frozen copies of coded symbols ``0..m-1``, producing as needed."""
        while len(self._produced) < m:
            self.produce_next()
        return [cell.copy() for cell in self._produced[:m]]

    def cached(self, index: int) -> CodedSymbol:
        """The live cached cell at ``index`` (must be produced already)."""
        return self._produced[index]
