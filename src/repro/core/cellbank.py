"""Array-backed coded-symbol banks and the batch scatter-walk samplers.

The per-cell :class:`~repro.core.coded.CodedSymbol` object is the right
unit for the protocol definition, but the wrong unit for throughput: one
Python object, one method call, and one heap operation per cell/edge
drown the paper's computational claims (§7, Figs 8–10) in interpreter
constant factors.  A :class:`CodedSymbolBank` stores a coded-symbol
prefix as three parallel lanes — ``sums``, ``checksums``, ``counts`` —
and the hot loops operate on the lanes directly.

Lane representation
-------------------
Lanes are plain Python lists of ints.  We measured ``array('Q')`` at
~1.4× *slower* than a list for the read-modify-write inner loop (every
``array`` access boxes/unboxes a fresh int object, while a list hands
back the stored object), and lists additionally handle symbols wider
than 8 bytes with the same code path.  ``array``/``bytearray`` appear at
the serialisation boundary (:meth:`CodedSymbolBank.pack` /
:meth:`CodedSymbolBank.unpack`), and the optional NumPy lane views the
same data as ``uint64``/``int64`` vectors for batch scatters.

Batch sampling (the §4.2 mapping, many symbols at once)
-------------------------------------------------------
:func:`scatter_walk` XORs a batch of source symbols into every lane index
they map to inside ``[·, hi)``, advancing each symbol's splitmix64 state
exactly as :class:`~repro.core.mapping.IndexGenerator.next_index` would.
Two interchangeable engines exist:

* :func:`scatter_walk_scalar` — the splitmix64 step and the α = 0.5
  inverse CDF inlined as local-variable arithmetic (no function calls on
  the per-edge path); handles any symbol width and per-symbol α (§8).
* :func:`scatter_walk_arrays` — vectorised across symbols, arrays in and
  out (the set-ingestion pipeline's mapping + scatter stage: "map these
  n source items below this frontier").  Splitmix64's state is an
  additive counter, so a whole batch advances in lock-step rounds of
  uint64 vector arithmetic plus ``np.bitwise_xor.at`` scatters, with the
  working set compacted as symbols retire.  Guarded: requires NumPy,
  sums/checksums that fit in 64 bits, and the regular α = 0.5 mapping.
  :func:`scatter_walk_numpy` is its list-in/list-out face for callers
  (decoder replay, heap check-in) holding Python-int state.

Both engines are bit-identical to the reference per-cell path (IEEE-754
double arithmetic is performed in the same order), which the
golden-equivalence suite asserts.  ``REPRO_NO_NUMPY=1`` forces the
scalar engine everywhere at import time; at runtime this module's
``NUMPY_LANE`` governs only the scatter/walk engines here — the batch
hashing stage has its own ``repro.hashing.siphash.NUMPY_LANE`` (same
env default), so a full-pipeline engine flip must set both (see
``scalar_engine`` in ``benchmarks/bench_ingest.py``).
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from repro.core.coded import CodedSymbol
from repro.core.params import DEFAULT_ALPHA, MAX_INDEX
from repro.hashing.prng import GAMMA, INV_2_53, MASK64, MIX1, MIX2

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.symbols import SymbolCodec

try:  # pragma: no cover - exercised implicitly by the lane dispatch tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

# Flip to False (or set REPRO_NO_NUMPY=1) to force the scalar engine;
# the golden-equivalence tests toggle this to cover both lanes.
NUMPY_LANE = _np is not None and os.environ.get("REPRO_NO_NUMPY", "") != "1"

# Below these sizes the NumPy call overhead outweighs the vector win.
NUMPY_MIN_JOBS = 8
NUMPY_MIN_SPAN = 32


class CodedSymbolBank:
    """A coded-symbol prefix stored as three parallel lanes.

    Semantically a ``list[CodedSymbol]``; physically three lists of ints
    that the batch producers/consumers address directly.  All mutating
    bank-level operations are linear (XOR on sums/checksums, ± on
    counts), mirroring :class:`~repro.core.coded.CodedSymbol`.
    """

    __slots__ = ("sums", "checksums", "counts")

    def __init__(
        self,
        sums: Optional[list[int]] = None,
        checksums: Optional[list[int]] = None,
        counts: Optional[list[int]] = None,
    ) -> None:
        self.sums: list[int] = sums if sums is not None else []
        self.checksums: list[int] = checksums if checksums is not None else []
        self.counts: list[int] = counts if counts is not None else []
        if not (len(self.sums) == len(self.checksums) == len(self.counts)):
            raise ValueError("bank lanes must have equal length")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_cells(cls, cells: Iterable[CodedSymbol]) -> "CodedSymbolBank":
        """Bank holding a value copy of ``cells``."""
        sums: list[int] = []
        checksums: list[int] = []
        counts: list[int] = []
        for cell in cells:
            sums.append(cell.sum)
            checksums.append(cell.checksum)
            counts.append(cell.count)
        return cls(sums, checksums, counts)

    @classmethod
    def zeros(cls, size: int) -> "CodedSymbolBank":
        """Bank of ``size`` zero cells (the sketch of the empty set)."""
        return cls([0] * size, [0] * size, [0] * size)

    def copy(self) -> "CodedSymbolBank":
        """Value copy of this bank."""
        return CodedSymbolBank(list(self.sums), list(self.checksums), list(self.counts))

    def slice(self, lo: int, hi: int) -> "CodedSymbolBank":
        """Value copy of cells ``[lo, hi)``."""
        return CodedSymbolBank(
            self.sums[lo:hi], self.checksums[lo:hi], self.counts[lo:hi]
        )

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.sums)

    def __iter__(self) -> Iterator[CodedSymbol]:
        for s, k, c in zip(self.sums, self.checksums, self.counts):
            yield CodedSymbol(s, k, c)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CodedSymbolBank):
            return NotImplemented
        return (
            self.sums == other.sums
            and self.checksums == other.checksums
            and self.counts == other.counts
        )

    def __repr__(self) -> str:
        return f"CodedSymbolBank(size={len(self.sums)})"

    def cell_at(self, index: int) -> CodedSymbol:
        """Value snapshot of cell ``index``."""
        return CodedSymbol(self.sums[index], self.checksums[index], self.counts[index])

    def cells(self) -> list[CodedSymbol]:
        """Value snapshots of every cell."""
        return list(self)

    def append(self, sum_: int, checksum: int, count: int) -> None:
        """Append one cell given as a lane triple."""
        self.sums.append(sum_)
        self.checksums.append(checksum)
        self.counts.append(count)

    def append_cell(self, cell: CodedSymbol) -> None:
        """Append a value copy of ``cell``."""
        self.append(cell.sum, cell.checksum, cell.count)

    def extend_zeros(self, size: int) -> None:
        """Grow the bank by ``size`` zero cells."""
        self.sums.extend([0] * size)
        self.checksums.extend([0] * size)
        self.counts.extend([0] * size)

    def extend(self, other: "CodedSymbolBank") -> None:
        """Append a value copy of every cell of ``other``."""
        self.sums.extend(other.sums)
        self.checksums.extend(other.checksums)
        self.counts.extend(other.counts)

    # -- linear algebra ---------------------------------------------------

    def apply_batch(
        self, value: int, checksum: int, direction: int, indices: Sequence[int]
    ) -> None:
        """XOR one source symbol into many cells at once.

        ``direction`` is +1 to add, −1 to remove — the count bookkeeping,
        exactly as :meth:`CodedSymbol.apply` per index.
        """
        sums = self.sums
        checksums = self.checksums
        counts = self.counts
        for idx in indices:
            sums[idx] ^= value
            checksums[idx] ^= checksum
            counts[idx] += direction

    def subtract(self, other: "CodedSymbolBank") -> "CodedSymbolBank":
        """Cell-wise ``self ⊖ other`` (paper §3 sketch subtraction)."""
        if len(other) != len(self):
            raise ValueError(
                f"bank sizes differ: {len(self)} vs {len(other)}"
            )
        return CodedSymbolBank(
            [a ^ b for a, b in zip(self.sums, other.sums)],
            [a ^ b for a, b in zip(self.checksums, other.checksums)],
            [a - b for a, b in zip(self.counts, other.counts)],
        )

    def subtract_in_place(self, other: "CodedSymbolBank") -> None:
        """In-place version of :meth:`subtract`."""
        if len(other) != len(self):
            raise ValueError(
                f"bank sizes differ: {len(self)} vs {len(other)}"
            )
        sums = self.sums
        checksums = self.checksums
        counts = self.counts
        for i, (s, k, c) in enumerate(zip(other.sums, other.checksums, other.counts)):
            sums[i] ^= s
            checksums[i] ^= k
            counts[i] -= c

    def is_all_zero(self) -> bool:
        """True when every cell has been reduced to zero."""
        return (
            not any(self.counts) and not any(self.sums) and not any(self.checksums)
        )

    # -- wire format ------------------------------------------------------
    #
    # The bank's own wire format is the flat fixed-width cell layout also
    # used by the table-based schemes (see ``repro.api.adapters.cellpack``):
    # ℓ-byte sum | checksum_size-byte checksum | 8-byte signed count, all
    # little-endian.  The §6 compressed-count stream framing lives in
    # ``repro.core.wire`` (``SymbolStreamWriter.write_block`` /
    # ``SymbolStreamReader.feed_into``) and builds on the same lanes.

    COUNT_BYTES = 8

    def pack(self, codec: "SymbolCodec") -> bytes:
        """Serialise the lanes into one contiguous byte string."""
        ssize = codec.symbol_size
        csize = codec.checksum_size
        stride = ssize + csize + self.COUNT_BYTES
        blob = bytearray(stride * len(self.sums))
        offset = 0
        for s, k, c in zip(self.sums, self.checksums, self.counts):
            blob[offset : offset + ssize] = s.to_bytes(ssize, "little")
            offset += ssize
            blob[offset : offset + csize] = k.to_bytes(csize, "little")
            offset += csize
            blob[offset : offset + 8] = c.to_bytes(8, "little", signed=True)
            offset += 8
        return bytes(blob)

    @classmethod
    def unpack(cls, blob: bytes, codec: "SymbolCodec") -> "CodedSymbolBank":
        """Parse a :meth:`pack`-format byte string back into a bank."""
        ssize = codec.symbol_size
        csize = codec.checksum_size
        stride = ssize + csize + cls.COUNT_BYTES
        if len(blob) % stride:
            raise ValueError(
                f"bank blob of {len(blob)} bytes is not a multiple of the "
                f"{stride}-byte cell stride"
            )
        view = memoryview(blob)
        sums: list[int] = []
        checksums: list[int] = []
        counts: list[int] = []
        from_bytes = int.from_bytes
        for offset in range(0, len(blob), stride):
            sums.append(from_bytes(view[offset : offset + ssize], "little"))
            offset += ssize
            checksums.append(from_bytes(view[offset : offset + csize], "little"))
            offset += csize
            counts.append(from_bytes(view[offset : offset + 8], "little", signed=True))
        return cls(sums, checksums, counts)


# -- batch scatter-walk samplers ------------------------------------------


def numpy_lane_eligible(codec: "SymbolCodec") -> bool:
    """True when ``codec``'s symbols can ride the vectorised lane.

    Requires NumPy, sums and checksums that fit in uint64, and the
    regular α = 0.5 mapping (the §8 irregular power-step falls back to
    the scalar engine).
    """
    return (
        NUMPY_LANE
        and _np is not None
        and codec.symbol_size <= 8
        and codec.checksum_size <= 8
        and codec.irregular is None
    )


def scatter_walk_scalar(
    sums: list[int],
    checksums: list[int],
    counts: list[int],
    indices: list[int],
    states: list[int],
    values: Sequence[int],
    symbol_checksums: Sequence[int],
    directions: Sequence[int],
    alphas: Sequence[float],
    hi: int,
    touched: Optional[list[int]] = None,
) -> None:
    """Walk each symbol ``j`` from ``indices[j]`` to its first index ≥ ``hi``,
    XOR-ing it into every lane index it maps to along the way.

    ``indices``/``states`` are the symbols' (``current``, splitmix64
    ``state``) pairs checked out of their
    :class:`~repro.core.mapping.IndexGenerator`; both lists are updated
    in place so the caller can check them back in.  ``touched``, when
    given, collects every lane index written (with multiplicity).

    The splitmix64 step and the α = 0.5 inverse CDF are inlined as
    local-variable arithmetic — this loop IS the encoder/decoder per-edge
    hot path, bit-identical to ``IndexGenerator.next_index``.
    """
    sqrt = math.sqrt
    default_alpha = DEFAULT_ALPHA
    collect = touched.append if touched is not None else None
    for j in range(len(indices)):
        idx = indices[j]
        if idx >= hi:
            continue
        state = states[j]
        value = values[j]
        checksum = symbol_checksums[j]
        direction = directions[j]
        alpha = alphas[j]
        if alpha == default_alpha:
            while idx < hi:
                sums[idx] ^= value
                checksums[idx] ^= checksum
                counts[idx] += direction
                if collect is not None:
                    collect(idx)
                state = (state + GAMMA) & MASK64
                z = (state ^ (state >> 30)) * MIX1 & MASK64
                z = (z ^ (z >> 27)) * MIX2 & MASK64
                r = ((z ^ (z >> 31)) >> 11) * INV_2_53
                half = idx + 1.5
                gap = (
                    sqrt(half * half + r * (idx + 1.0) * (idx + 2.0) / (1.0 - r))
                    - half
                )
                step = int(gap)
                if step < gap:
                    step += 1
                if step < 1:
                    step = 1
                nxt = idx + step
                if nxt > MAX_INDEX:
                    nxt = idx + 1
                idx = nxt
        else:
            neg_alpha = -alpha
            while idx < hi:
                sums[idx] ^= value
                checksums[idx] ^= checksum
                counts[idx] += direction
                if collect is not None:
                    collect(idx)
                state = (state + GAMMA) & MASK64
                z = (state ^ (state >> 30)) * MIX1 & MASK64
                z = (z ^ (z >> 27)) * MIX2 & MASK64
                r = ((z ^ (z >> 31)) >> 11) * INV_2_53
                gap = (idx + 1.0) * ((1.0 - r) ** neg_alpha - 1.0)
                step = int(gap)
                if step < gap:
                    step += 1
                if step < 1:
                    step = 1
                nxt = idx + step
                if nxt > MAX_INDEX:
                    nxt = idx + 1
                idx = nxt
        indices[j] = idx
        states[j] = state


def scatter_walk_arrays(
    sums,  # np.ndarray[uint64]
    checksums,  # np.ndarray[uint64]
    counts,  # np.ndarray[int64]
    idx,  # np.ndarray[int64], consumed
    state,  # np.ndarray[uint64], consumed
    vals,  # np.ndarray[uint64]
    csums,  # np.ndarray[uint64]
    dirs,  # np.ndarray[int64]
    hi: int,
    base: int = 0,
    touched: Optional[list] = None,
):
    """Array-native scatter walk (α = 0.5, ≤64-bit lanes).

    The kernel under :func:`scatter_walk_numpy`, and the batch mapping
    stage of the set-ingestion pipeline: walk every symbol ``j`` from
    ``idx[j]`` to its first index ≥ ``hi``, XOR-ing it into the lane
    arrays (which cover absolute indices ``[base, base + len)``), and
    return the final ``(idx, state)`` arrays.

    Each lock-step round scatters one edge per still-active symbol with
    ``np.bitwise_xor.at`` / ``np.add.at`` (unbuffered, so colliding
    indices accumulate correctly), then advances every active state with
    uint64 vector arithmetic.  Rounds operate on *compacted* copies —
    retired symbols are dropped from the working arrays instead of being
    re-gathered through an index mask every round.  Bit-identical to the
    scalar engine: the float64 expression tree is evaluated in the same
    order, and IEEE-754 makes each elementwise op exactly reproducible.

    ``touched``, when given, collects per-round absolute-index arrays.
    """
    np = _np
    out_idx = idx
    out_state = state
    u30, u27, u31, u11 = (np.uint64(b) for b in (30, 27, 31, 11))
    gamma = np.uint64(GAMMA)
    mix1 = np.uint64(MIX1)
    mix2 = np.uint64(MIX2)
    with np.errstate(over="ignore"):
        rows = np.nonzero(idx < hi)[0]
        ia = idx[rows]
        st = state[rows]
        va = vals[rows]
        ca = csums[rows]
        da = dirs[rows]
        while rows.size:
            slot = ia - base
            np.bitwise_xor.at(sums, slot, va)
            np.bitwise_xor.at(checksums, slot, ca)
            np.add.at(counts, slot, da)
            if touched is not None:
                touched.append(ia)
            st = st + gamma
            z = (st ^ (st >> u30)) * mix1
            z = (z ^ (z >> u27)) * mix2
            z = z ^ (z >> u31)
            r = (z >> u11).astype(np.float64) * INV_2_53
            fi = ia.astype(np.float64)
            half = fi + 1.5
            t = r * (fi + 1.0)
            t = t * (fi + 2.0)
            t = t / (1.0 - r)
            gap = np.sqrt(half * half + t) - half
            step = np.ceil(gap)
            # Cap before the int64 cast: a far-tail draw (r → 1) can push
            # ceil(gap) past 2^63.  Any step this large already exceeds
            # MAX_INDEX, so the clamp below fires either way — the cap
            # only keeps the cast defined.
            np.minimum(step, 1e18, out=step)
            stepi = step.astype(np.int64)
            np.maximum(stepi, 1, out=stepi)
            nxt = ia + stepi
            nxt = np.where(nxt > MAX_INDEX, ia + 1, nxt)
            live = nxt < hi
            if live.all():
                ia = nxt
                continue
            done = ~live
            retired = rows[done]
            out_idx[retired] = nxt[done]
            out_state[retired] = st[done]
            rows = rows[live]
            ia = nxt[live]
            st = st[live]
            va = va[live]
            ca = ca[live]
            da = da[live]
    return out_idx, out_state


def scatter_walk_numpy(
    sums,  # np.ndarray[uint64]
    checksums,  # np.ndarray[uint64]
    counts,  # np.ndarray[int64]
    indices: list[int],
    states: list[int],
    values: Sequence[int],
    symbol_checksums: Sequence[int],
    directions: Sequence[int],
    hi: int,
    base: int = 0,
    touched: Optional[list] = None,
) -> None:
    """Vectorised :func:`scatter_walk_scalar`: list-in/list-out face of
    :func:`scatter_walk_arrays` for callers holding Python-int state."""
    np = _np
    idx, state = scatter_walk_arrays(
        sums,
        checksums,
        counts,
        np.array(indices, dtype=np.int64),
        np.array(states, dtype=np.uint64),
        np.array(values, dtype=np.uint64),
        np.array(symbol_checksums, dtype=np.uint64),
        np.array(directions, dtype=np.int64),
        hi,
        base=base,
        touched=touched,
    )
    indices[:] = idx.tolist()
    states[:] = state.tolist()
