"""Array-backed coded-symbol banks and the batch scatter-walk samplers.

The per-cell :class:`~repro.core.coded.CodedSymbol` object is the right
unit for the protocol definition, but the wrong unit for throughput: one
Python object, one method call, and one heap operation per cell/edge
drown the paper's computational claims (§7, Figs 8–10) in interpreter
constant factors.  A :class:`CodedSymbolBank` stores a coded-symbol
prefix as three parallel lanes — ``sums``, ``checksums``, ``counts`` —
and the hot loops operate on the lanes directly.

Lane representation
-------------------
Lanes are plain Python lists of ints.  We measured ``array('Q')`` at
~1.4× *slower* than a list for the read-modify-write inner loop (every
``array`` access boxes/unboxes a fresh int object, while a list hands
back the stored object), and lists additionally handle symbols wider
than 8 bytes with the same code path.  ``array``/``bytearray`` appear at
the serialisation boundary (:meth:`CodedSymbolBank.pack` /
:meth:`CodedSymbolBank.unpack`), and the optional NumPy lane views the
same data as ``uint64``/``int64`` vectors for batch scatters.

Batch sampling (the §4.2 mapping, many symbols at once)
-------------------------------------------------------
:func:`scatter_walk` XORs a batch of source symbols into every lane index
they map to inside ``[·, hi)``, advancing each symbol's splitmix64 state
exactly as :class:`~repro.core.mapping.IndexGenerator.next_index` would.
Two interchangeable engines exist:

* :func:`scatter_walk_scalar` — the splitmix64 step and the α = 0.5
  inverse CDF inlined as local-variable arithmetic (no function calls on
  the per-edge path); handles any symbol width and per-symbol α (§8).
* :func:`scatter_walk_arrays` — vectorised across symbols, arrays in and
  out (the set-ingestion pipeline's mapping + scatter stage: "map these
  n source items below this frontier").  Splitmix64's state is an
  additive counter, so a whole batch advances in lock-step rounds of
  uint64 vector arithmetic; colliding slots are combined with a
  radix-sorted ``np.bitwise_xor.reduceat`` segment reduction (XOR is
  commutative/associative, so reduction order cannot change the lanes)
  and the working set compacts as symbols retire.  Guarded: requires NumPy,
  sums/checksums that fit in 64 bits, and the regular α = 0.5 mapping.
  :func:`scatter_walk_numpy` is its list-in/list-out face for callers
  (decoder replay, heap check-in) holding Python-int state.

Both engines are bit-identical to the reference per-cell path (IEEE-754
double arithmetic is performed in the same order), which the
golden-equivalence suite asserts.  ``REPRO_NO_NUMPY=1`` forces the
scalar engine everywhere at import time; at runtime this module's
``NUMPY_LANE`` governs only the scatter/walk engines here — the batch
hashing stage has its own ``repro.hashing.siphash.NUMPY_LANE`` (same
env default), so a full-pipeline engine flip must set both (see
``scalar_engine`` in ``benchmarks/bench_ingest.py``).
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from repro.core.coded import CodedSymbol
from repro.core.params import DEFAULT_ALPHA, MAX_INDEX
from repro.hashing.prng import GAMMA, INV_2_53, MASK64, MIX1, MIX2

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.symbols import SymbolCodec

try:  # pragma: no cover - exercised implicitly by the lane dispatch tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

# Flip to False (or set REPRO_NO_NUMPY=1) to force the scalar engine;
# the golden-equivalence tests toggle this to cover both lanes.
NUMPY_LANE = _np is not None and os.environ.get("REPRO_NO_NUMPY", "") != "1"

# Below these sizes the NumPy call overhead outweighs the vector win.
NUMPY_MIN_JOBS = 8
NUMPY_MIN_SPAN = 32

# Live-row count below which a scatter walk finishes its stragglers
# per-edge (see _walk_tail_scalar): a lock-step round costs ~20 small
# NumPy calls however few symbols remain, a scalar edge ~1.5 µs.
NUMPY_TAIL_JOBS = 32

# Largest lane size the tail finisher round-trips through Python lists;
# beyond this the full-lane copy costs more than the leftover edges.
_TAIL_LIST_MAX = 4096

# Below this many cells the (n, stride) matrix set-up of the vectorised
# pack/unpack costs more than the per-cell ``to_bytes`` loop.
PACK_MIN_CELLS = 16


class CodedSymbolBank:
    """A coded-symbol prefix stored as three parallel lanes.

    Semantically a ``list[CodedSymbol]``; physically three lists of ints
    that the batch producers/consumers address directly.  All mutating
    bank-level operations are linear (XOR on sums/checksums, ± on
    counts), mirroring :class:`~repro.core.coded.CodedSymbol`.
    """

    __slots__ = ("sums", "checksums", "counts")

    def __init__(
        self,
        sums: Optional[list[int]] = None,
        checksums: Optional[list[int]] = None,
        counts: Optional[list[int]] = None,
    ) -> None:
        self.sums: list[int] = sums if sums is not None else []
        self.checksums: list[int] = checksums if checksums is not None else []
        self.counts: list[int] = counts if counts is not None else []
        if not (len(self.sums) == len(self.checksums) == len(self.counts)):
            raise ValueError("bank lanes must have equal length")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_cells(cls, cells: Iterable[CodedSymbol]) -> "CodedSymbolBank":
        """Bank holding a value copy of ``cells``."""
        sums: list[int] = []
        checksums: list[int] = []
        counts: list[int] = []
        for cell in cells:
            sums.append(cell.sum)
            checksums.append(cell.checksum)
            counts.append(cell.count)
        return cls(sums, checksums, counts)

    @classmethod
    def zeros(cls, size: int) -> "CodedSymbolBank":
        """Bank of ``size`` zero cells (the sketch of the empty set)."""
        return cls([0] * size, [0] * size, [0] * size)

    def copy(self) -> "CodedSymbolBank":
        """Value copy of this bank."""
        return CodedSymbolBank(list(self.sums), list(self.checksums), list(self.counts))

    def slice(self, lo: int, hi: int) -> "CodedSymbolBank":
        """Value copy of cells ``[lo, hi)``."""
        return CodedSymbolBank(
            self.sums[lo:hi], self.checksums[lo:hi], self.counts[lo:hi]
        )

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.sums)

    def __iter__(self) -> Iterator[CodedSymbol]:
        for s, k, c in zip(self.sums, self.checksums, self.counts):
            yield CodedSymbol(s, k, c)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CodedSymbolBank):
            return NotImplemented
        return (
            self.sums == other.sums
            and self.checksums == other.checksums
            and self.counts == other.counts
        )

    def __repr__(self) -> str:
        return f"CodedSymbolBank(size={len(self.sums)})"

    def cell_at(self, index: int) -> CodedSymbol:
        """Value snapshot of cell ``index``."""
        return CodedSymbol(self.sums[index], self.checksums[index], self.counts[index])

    def cells(self) -> list[CodedSymbol]:
        """Value snapshots of every cell."""
        return list(self)

    def append(self, sum_: int, checksum: int, count: int) -> None:
        """Append one cell given as a lane triple."""
        self.sums.append(sum_)
        self.checksums.append(checksum)
        self.counts.append(count)

    def append_cell(self, cell: CodedSymbol) -> None:
        """Append a value copy of ``cell``."""
        self.append(cell.sum, cell.checksum, cell.count)

    def extend_zeros(self, size: int) -> None:
        """Grow the bank by ``size`` zero cells."""
        self.sums.extend([0] * size)
        self.checksums.extend([0] * size)
        self.counts.extend([0] * size)

    def extend(self, other: "CodedSymbolBank") -> None:
        """Append a value copy of every cell of ``other``."""
        self.sums.extend(other.sums)
        self.checksums.extend(other.checksums)
        self.counts.extend(other.counts)

    # -- linear algebra ---------------------------------------------------

    def apply_batch(
        self, value: int, checksum: int, direction: int, indices: Sequence[int]
    ) -> None:
        """XOR one source symbol into many cells at once.

        ``direction`` is +1 to add, −1 to remove — the count bookkeeping,
        exactly as :meth:`CodedSymbol.apply` per index.
        """
        sums = self.sums
        checksums = self.checksums
        counts = self.counts
        for idx in indices:
            sums[idx] ^= value
            checksums[idx] ^= checksum
            counts[idx] += direction

    def subtract(self, other: "CodedSymbolBank") -> "CodedSymbolBank":
        """Cell-wise ``self ⊖ other`` (paper §3 sketch subtraction)."""
        if len(other) != len(self):
            raise ValueError(
                f"bank sizes differ: {len(self)} vs {len(other)}"
            )
        return CodedSymbolBank(
            [a ^ b for a, b in zip(self.sums, other.sums)],
            [a ^ b for a, b in zip(self.checksums, other.checksums)],
            [a - b for a, b in zip(self.counts, other.counts)],
        )

    def subtract_in_place(self, other: "CodedSymbolBank") -> None:
        """In-place version of :meth:`subtract`."""
        if len(other) != len(self):
            raise ValueError(
                f"bank sizes differ: {len(self)} vs {len(other)}"
            )
        sums = self.sums
        checksums = self.checksums
        counts = self.counts
        for i, (s, k, c) in enumerate(zip(other.sums, other.checksums, other.counts)):
            sums[i] ^= s
            checksums[i] ^= k
            counts[i] -= c

    def is_all_zero(self) -> bool:
        """True when every cell has been reduced to zero."""
        return (
            not any(self.counts) and not any(self.sums) and not any(self.checksums)
        )

    # -- wire format ------------------------------------------------------
    #
    # The bank's own wire format is the flat fixed-width cell layout also
    # used by the table-based schemes (see ``repro.api.adapters.cellpack``):
    # ℓ-byte sum | checksum_size-byte checksum | 8-byte signed count, all
    # little-endian.  The §6 compressed-count stream framing lives in
    # ``repro.core.wire`` (``SymbolStreamWriter.write_block`` /
    # ``SymbolStreamReader.feed_into``) and builds on the same lanes.

    COUNT_BYTES = 8

    def pack(self, codec: "SymbolCodec") -> bytes:
        """Serialise the lanes into one contiguous byte string.

        This is the normative packed-bank encoding (``docs/wire-format.md``):
        cells in index order, each occupying exactly ``stride = ℓ +
        checksum_size + 8`` bytes laid out as

        * ``sum`` — ℓ bytes, unsigned little-endian;
        * ``checksum`` — ``checksum_size`` bytes, unsigned little-endian;
        * ``count`` — 8 bytes, **signed** little-endian (two's complement).

        Two engines produce it: a per-cell ``int.to_bytes`` reference
        loop, and a vectorised lane dump (one ``(n, stride)`` uint8
        matrix filled by column views, emitted with a single
        ``ndarray.tobytes``) used under NumPy for banks of at least
        ``PACK_MIN_CELLS`` cells.  Both emit byte-identical blobs — the
        golden-equivalence suite asserts it — and symbols up to 16 bytes
        ride the vector path via a low/high uint64 lane split.
        """
        ssize = codec.symbol_size
        csize = codec.checksum_size
        stride = ssize + csize + self.COUNT_BYTES
        if NUMPY_LANE and _np is not None and len(self.sums) >= PACK_MIN_CELLS:
            blob = self._pack_numpy(ssize, csize, stride)
            if blob is not None:
                return blob
        return self._pack_scalar(ssize, csize, stride)

    def _pack_scalar(self, ssize: int, csize: int, stride: int) -> bytes:
        """Reference per-cell :meth:`pack` engine (also the fallback that
        raises the canonical ``OverflowError`` for out-of-range lanes)."""
        blob = bytearray(stride * len(self.sums))
        offset = 0
        for s, k, c in zip(self.sums, self.checksums, self.counts):
            blob[offset : offset + ssize] = s.to_bytes(ssize, "little")
            offset += ssize
            blob[offset : offset + csize] = k.to_bytes(csize, "little")
            offset += csize
            blob[offset : offset + 8] = c.to_bytes(8, "little", signed=True)
            offset += 8
        return bytes(blob)

    def _pack_numpy(self, ssize: int, csize: int, stride: int) -> Optional[bytes]:
        """Vectorised :meth:`pack`: fill an ``(n, stride)`` uint8 matrix by
        column views, dump it with one ``tobytes``.  Returns ``None`` when
        a lane value does not fit its field (the scalar engine then raises
        the same error per-cell ``to_bytes`` always raised) or the symbol
        is wider than the two uint64 lanes cover."""
        np = _np
        n = len(self.sums)
        out = np.zeros((n, stride), dtype=np.uint8)

        def byte_columns(values: list, width: int):
            # Little-endian byte matrix of a uint64-per-row lane; None
            # when a row needs more than `width` bytes.
            arr = np.array(values, dtype=np.uint64)
            if width < 8 and int(arr.max(initial=0)) >> (8 * width):
                return None
            return arr.astype("<u8").view(np.uint8).reshape(n, 8)[:, :width]

        try:
            if ssize <= 8:
                cols = byte_columns(self.sums, ssize)
                if cols is None:
                    return None
                out[:, :ssize] = cols
            elif ssize <= 16:
                mask = MASK64
                lo = byte_columns([s & mask for s in self.sums], 8)
                hi = byte_columns([s >> 64 for s in self.sums], ssize - 8)
                if lo is None or hi is None:
                    return None
                out[:, :8] = lo
                out[:, 8:ssize] = hi
            else:
                return None
            cols = byte_columns(self.checksums, csize)
            if cols is None:
                return None
            out[:, ssize : ssize + csize] = cols
            counts = np.array(self.counts, dtype=np.int64)
        except OverflowError:
            return None  # negative sum / oversized count: scalar raises
        out[:, ssize + csize :] = counts.astype("<i8").view(np.uint8).reshape(n, 8)
        return out.tobytes()

    @classmethod
    def unpack(cls, blob: bytes, codec: "SymbolCodec") -> "CodedSymbolBank":
        """Parse a :meth:`pack`-format byte string back into a bank.

        The exact inverse of :meth:`pack` (see there for the normative
        byte layout).  Mirrors its two engines: a per-cell
        ``int.from_bytes`` reference loop, and a zero-copy
        ``np.frombuffer`` view reshaped to ``(n, stride)`` whose column
        slices become the lanes.  Both parse to identical lane values.
        """
        ssize = codec.symbol_size
        csize = codec.checksum_size
        stride = ssize + csize + cls.COUNT_BYTES
        if len(blob) % stride:
            raise ValueError(
                f"bank blob of {len(blob)} bytes is not a multiple of the "
                f"{stride}-byte cell stride"
            )
        if (
            NUMPY_LANE
            and _np is not None
            and len(blob) >= stride * PACK_MIN_CELLS
            and ssize <= 16
        ):
            return cls._unpack_numpy(blob, ssize, csize, stride)
        view = memoryview(blob)
        sums: list[int] = []
        checksums: list[int] = []
        counts: list[int] = []
        from_bytes = int.from_bytes
        for offset in range(0, len(blob), stride):
            sums.append(from_bytes(view[offset : offset + ssize], "little"))
            offset += ssize
            checksums.append(from_bytes(view[offset : offset + csize], "little"))
            offset += csize
            counts.append(from_bytes(view[offset : offset + 8], "little", signed=True))
        return cls(sums, checksums, counts)

    @classmethod
    def _unpack_numpy(
        cls, blob: bytes, ssize: int, csize: int, stride: int
    ) -> "CodedSymbolBank":
        """Vectorised :meth:`unpack` engine (≤16-byte symbols)."""
        np = _np
        n = len(blob) // stride
        mat = np.frombuffer(blob, dtype=np.uint8).reshape(n, stride)

        def lane(col: int, width: int) -> list:
            pad = np.zeros((n, 8), dtype=np.uint8)
            pad[:, :width] = mat[:, col : col + width]
            return pad.view("<u8").ravel().tolist()

        if ssize <= 8:
            sums = lane(0, ssize)
        else:
            sums = [
                lo | (hi << 64)
                for lo, hi in zip(lane(0, 8), lane(8, ssize - 8))
            ]
        checksums = lane(ssize, csize)
        counts = (
            mat[:, ssize + csize :].copy().view("<i8").ravel().tolist()
        )
        return cls(sums, checksums, counts)


# -- batch scatter-walk samplers ------------------------------------------


def numpy_lane_eligible(codec: "SymbolCodec") -> bool:
    """True when ``codec``'s symbols can ride the single-lane vector path.

    Requires NumPy, sums and checksums that fit in uint64, and the
    regular α = 0.5 mapping.  This is the gate for the column-store
    ingestion pool (one uint64 value lane, one α for all rows); block
    producers/consumers use the wider :func:`numpy_block_eligible`.
    """
    return (
        NUMPY_LANE
        and _np is not None
        and codec.symbol_size <= 8
        and codec.checksum_size <= 8
        and codec.irregular is None
    )


def numpy_block_eligible(codec: "SymbolCodec") -> bool:
    """True when ``codec``'s blocks can ride the batch pipeline at all.

    Wider than :func:`numpy_lane_eligible`: symbols up to 16 bytes run on
    a low/high pair of uint64 sum lanes, and §8 irregular mappings run
    with a per-symbol α vector (:func:`scatter_walk_arrays` keeps the
    generic-α inverse-CDF power step element-wise, because NumPy's SIMD
    ``pow`` is not bit-identical to scalar libm ``pow`` — everything
    around it is vectorised).
    """
    return (
        NUMPY_LANE
        and _np is not None
        and codec.symbol_size <= 16
        and codec.checksum_size <= 8
    )


def scatter_walk_scalar(
    sums: list[int],
    checksums: list[int],
    counts: list[int],
    indices: list[int],
    states: list[int],
    values: Sequence[int],
    symbol_checksums: Sequence[int],
    directions: Sequence[int],
    alphas: Sequence[float],
    hi: int,
    touched: Optional[list[int]] = None,
) -> None:
    """Walk each symbol ``j`` from ``indices[j]`` to its first index ≥ ``hi``,
    XOR-ing it into every lane index it maps to along the way.

    ``indices``/``states`` are the symbols' (``current``, splitmix64
    ``state``) pairs checked out of their
    :class:`~repro.core.mapping.IndexGenerator`; both lists are updated
    in place so the caller can check them back in.  ``touched``, when
    given, collects every lane index written (with multiplicity).

    The splitmix64 step and the α = 0.5 inverse CDF are inlined as
    local-variable arithmetic — this loop IS the encoder/decoder per-edge
    hot path, bit-identical to ``IndexGenerator.next_index``.
    """
    sqrt = math.sqrt
    default_alpha = DEFAULT_ALPHA
    collect = touched.append if touched is not None else None
    for j in range(len(indices)):
        idx = indices[j]
        if idx >= hi:
            continue
        state = states[j]
        value = values[j]
        checksum = symbol_checksums[j]
        direction = directions[j]
        alpha = alphas[j]
        if alpha == default_alpha:
            while idx < hi:
                sums[idx] ^= value
                checksums[idx] ^= checksum
                counts[idx] += direction
                if collect is not None:
                    collect(idx)
                state = (state + GAMMA) & MASK64
                z = (state ^ (state >> 30)) * MIX1 & MASK64
                z = (z ^ (z >> 27)) * MIX2 & MASK64
                r = ((z ^ (z >> 31)) >> 11) * INV_2_53
                half = idx + 1.5
                gap = (
                    sqrt(half * half + r * (idx + 1.0) * (idx + 2.0) / (1.0 - r))
                    - half
                )
                step = int(gap)
                if step < gap:
                    step += 1
                if step < 1:
                    step = 1
                nxt = idx + step
                if nxt > MAX_INDEX:
                    nxt = idx + 1
                idx = nxt
        else:
            neg_alpha = -alpha
            while idx < hi:
                sums[idx] ^= value
                checksums[idx] ^= checksum
                counts[idx] += direction
                if collect is not None:
                    collect(idx)
                state = (state + GAMMA) & MASK64
                z = (state ^ (state >> 30)) * MIX1 & MASK64
                z = (z ^ (z >> 27)) * MIX2 & MASK64
                r = ((z ^ (z >> 31)) >> 11) * INV_2_53
                gap = (idx + 1.0) * ((1.0 - r) ** neg_alpha - 1.0)
                step = int(gap)
                if step < gap:
                    step += 1
                if step < 1:
                    step = 1
                nxt = idx + step
                if nxt > MAX_INDEX:
                    nxt = idx + 1
                idx = nxt
        indices[j] = idx
        states[j] = state


def scatter_walk_arrays(
    sums,  # np.ndarray[uint64]
    checksums,  # np.ndarray[uint64]
    counts,  # np.ndarray[int64]
    idx,  # np.ndarray[int64], consumed
    state,  # np.ndarray[uint64], consumed
    vals,  # np.ndarray[uint64]
    csums,  # np.ndarray[uint64]
    dirs,  # np.ndarray[int64]
    hi: int,
    base: int = 0,
    touched: Optional[list] = None,
    alphas=None,  # np.ndarray[float64] | None — per-symbol α (§8)
    sums_hi=None,  # np.ndarray[uint64] | None — high 64 bits of wide sums
    vals_hi=None,  # np.ndarray[uint64] | None — high 64 bits of wide values
):
    """Array-native scatter walk.

    The kernel under :func:`scatter_walk_numpy`, and the batch mapping
    stage of the set-ingestion pipeline: walk every symbol ``j`` from
    ``idx[j]`` to its first index ≥ ``hi``, XOR-ing it into the lane
    arrays (which cover absolute indices ``[base, base + len)``), and
    return the final ``(idx, state)`` arrays.

    Each lock-step round scatters one edge per still-active symbol with
    ``np.bitwise_xor.at`` / ``np.add.at`` (unbuffered, so colliding
    indices accumulate correctly), then advances every active state with
    uint64 vector arithmetic.  Rounds operate on *compacted* copies —
    retired symbols are dropped from the working arrays instead of being
    re-gathered through an index mask every round.  Bit-identical to the
    scalar engine: the float64 expression tree is evaluated in the same
    order, and IEEE-754 makes each elementwise op exactly reproducible.

    Two optional extensions let wide symbols and §8 irregular mappings
    ride the same kernel:

    * ``sums_hi``/``vals_hi`` — a second uint64 lane holding bits 64+ of
      sums/values, scattered to the same slots (symbols up to 16 bytes).
    * ``alphas`` — per-symbol mapping parameter.  α = 0.5 rows keep the
      closed-form vectorised inverse CDF; generic-α rows compute
      ``(i+1)·((1−r)^{−α} − 1)`` element-wise in Python floats, because
      NumPy's SIMD array ``pow`` is **not** bit-identical to the scalar
      libm ``pow`` the reference engine uses (measured: ~4 % of draws
      differ in the last ulp).  Everything else in the round — the
      splitmix64 advance, the scatters, ceil/clamp — stays vectorised.

    ``touched``, when given, collects per-round absolute-index arrays.

    Lock-step rounds cost ~20 small-array NumPy calls each, so once the
    live set shrinks below :data:`NUMPY_MIN_JOBS` the remaining
    stragglers are finished per-edge by :func:`_walk_tail_scalar` (the
    same arithmetic on the same arrays — per-symbol walks are
    independent, so the hand-off point cannot change the result).
    """
    np = _np
    out_idx = idx
    out_state = state
    u30, u27, u31, u11 = (np.uint64(b) for b in (30, 27, 31, 11))
    gamma = np.uint64(GAMMA)
    mix1 = np.uint64(MIX1)
    mix2 = np.uint64(MIX2)
    default_alpha = DEFAULT_ALPHA
    with np.errstate(over="ignore"):
        rows = np.nonzero(idx < hi)[0]
        ia = idx[rows]
        st = state[rows]
        va = vals[rows]
        ca = csums[rows]
        da = dirs[rows]
        al = alphas[rows] if alphas is not None else None
        if al is not None and not (al != default_alpha).any():
            al = None  # all-regular batch: keep the closed-form fast path
        vh = vals_hi[rows] if vals_hi is not None else None
        while rows.size:
            if rows.size < NUMPY_TAIL_JOBS:
                _walk_tail_scalar(
                    sums, checksums, counts, out_idx, out_state,
                    rows, ia, st, va, ca, da, al, vh,
                    hi, base, touched, sums_hi,
                )
                break
            slot = ia - base
            # Buffered fancy indexing drops colliding slots, so rounds
            # with duplicates segment-reduce instead: group equal slots
            # (stable radix argsort) and fold each group with reduceat —
            # XOR and integer add are commutative, so the fold order
            # inside a group cannot change the result.  All three forms
            # below are exact; ufunc.at would be too, but runs an order
            # of magnitude slower than any of them.
            smin = int(slot.min())
            smax = int(slot.max())
            if smin == smax:
                # One shared cell (always round 0 of a fresh walk, where
                # every symbol maps to index 0): fold the whole batch.
                sums[smin] ^= np.bitwise_xor.reduce(va)
                if vh is not None:
                    sums_hi[smin] ^= np.bitwise_xor.reduce(vh)
                checksums[smin] ^= np.bitwise_xor.reduce(ca)
                counts[smin] += da.sum()
            else:
                # NumPy's radix sort only engages for ≤16-bit ints; bank
                # spans almost always fit, and radix is ~10x faster than
                # comparison-sorting int64 slots.
                key = slot.astype(np.int16) if smax < 0x8000 else slot
                perm = np.argsort(key, kind="stable")
                ss = key[perm]
                first = np.empty(ss.size, dtype=bool)
                first[0] = True
                np.not_equal(ss[1:], ss[:-1], out=first[1:])
                if first.all():
                    sums[slot] ^= va
                    if vh is not None:
                        sums_hi[slot] ^= vh
                    checksums[slot] ^= ca
                    counts[slot] += da
                else:
                    seg = np.flatnonzero(first)
                    uniq = ss[seg]
                    sums[uniq] ^= np.bitwise_xor.reduceat(va[perm], seg)
                    if vh is not None:
                        sums_hi[uniq] ^= np.bitwise_xor.reduceat(vh[perm], seg)
                    checksums[uniq] ^= np.bitwise_xor.reduceat(ca[perm], seg)
                    counts[uniq] += np.add.reduceat(da[perm], seg)
            if touched is not None:
                touched.append(ia)
            st = st + gamma
            z = (st ^ (st >> u30)) * mix1
            z = (z ^ (z >> u27)) * mix2
            z = z ^ (z >> u31)
            r = (z >> u11).astype(np.float64) * INV_2_53
            fi = ia.astype(np.float64)
            if al is None:
                half = fi + 1.5
                t = r * (fi + 1.0)
                t = t * (fi + 2.0)
                t = t / (1.0 - r)
                gap = np.sqrt(half * half + t) - half
            else:
                gap = np.empty_like(r)
                half_rows = al == default_alpha
                if half_rows.any():
                    rh = r[half_rows]
                    fih = fi[half_rows]
                    half = fih + 1.5
                    t = rh * (fih + 1.0)
                    t = t * (fih + 2.0)
                    t = t / (1.0 - rh)
                    gap[half_rows] = np.sqrt(half * half + t) - half
                pow_rows = np.nonzero(~half_rows)[0]
                if pow_rows.size:
                    # Element-wise on purpose — see the docstring: array
                    # pow would drift from the scalar reference by an ulp.
                    gap[pow_rows] = [
                        (f + 1.0) * ((1.0 - rv) ** -a - 1.0)
                        for rv, f, a in zip(
                            r[pow_rows].tolist(),
                            fi[pow_rows].tolist(),
                            al[pow_rows].tolist(),
                        )
                    ]
            step = np.ceil(gap)
            # Cap before the int64 cast: a far-tail draw (r → 1) can push
            # ceil(gap) past 2^63.  Any step this large already exceeds
            # MAX_INDEX, so the clamp below fires either way — the cap
            # only keeps the cast defined.
            np.minimum(step, 1e18, out=step)
            stepi = step.astype(np.int64)
            np.maximum(stepi, 1, out=stepi)
            nxt = ia + stepi
            nxt = np.where(nxt > MAX_INDEX, ia + 1, nxt)
            live = nxt < hi
            if live.all():
                ia = nxt
                continue
            done = ~live
            retired = rows[done]
            out_idx[retired] = nxt[done]
            out_state[retired] = st[done]
            rows = rows[live]
            ia = nxt[live]
            st = st[live]
            va = va[live]
            ca = ca[live]
            da = da[live]
            if al is not None:
                al = al[live]
            if vh is not None:
                vh = vh[live]
    return out_idx, out_state


def _walk_tail_scalar(
    sums, checksums, counts, out_idx, out_state,
    rows, ia, st, va, ca, da, al, vh,
    hi: int, base: int, touched: Optional[list], sums_hi,
) -> None:
    """Per-edge finisher for :func:`scatter_walk_arrays` stragglers.

    Walks each remaining symbol to its first index ≥ ``hi`` with the
    exact :func:`scatter_walk_scalar` arithmetic — cheaper than
    lock-step rounds once only a handful of symbols are still live.
    Small lane arrays are round-tripped through Python lists for the
    loop (scalar list indexing runs an order of magnitude faster than
    scalar ndarray indexing); large banks are written in place, since a
    full-lane copy would dwarf the few edges left to scatter.  Either
    way the arithmetic is the reference engine's, on exact integers.
    """
    np = _np
    sqrt = math.sqrt
    default_alpha = DEFAULT_ALPHA
    collect: Optional[list[int]] = [] if touched is not None else None
    listify = len(sums) <= _TAIL_LIST_MAX
    if listify:
        lane_sums = sums.tolist()
        lane_checksums = checksums.tolist()
        lane_counts = counts.tolist()
        lane_sums_hi = sums_hi.tolist() if sums_hi is not None else None
    else:
        lane_sums = sums
        lane_checksums = checksums
        lane_counts = counts
        lane_sums_hi = sums_hi
    rows_l = rows.tolist()
    ia_l = ia.tolist()
    st_l = st.tolist()
    va_l = va.tolist()
    ca_l = ca.tolist()
    da_l = da.tolist()
    al_l = al.tolist() if al is not None else None
    vh_l = vh.tolist() if vh is not None else None
    for j, row in enumerate(rows_l):
        idx = ia_l[j]
        state = st_l[j]
        value = va_l[j]
        checksum = ca_l[j]
        direction = da_l[j]
        alpha = al_l[j] if al_l is not None else default_alpha
        value_hi = vh_l[j] if vh_l is not None else None
        if alpha == default_alpha:
            while idx < hi:
                slot = idx - base
                lane_sums[slot] ^= value
                if value_hi is not None:
                    lane_sums_hi[slot] ^= value_hi
                lane_checksums[slot] ^= checksum
                lane_counts[slot] += direction
                if collect is not None:
                    collect.append(idx)
                state = (state + GAMMA) & MASK64
                z = (state ^ (state >> 30)) * MIX1 & MASK64
                z = (z ^ (z >> 27)) * MIX2 & MASK64
                r = ((z ^ (z >> 31)) >> 11) * INV_2_53
                half = idx + 1.5
                gap = (
                    sqrt(half * half + r * (idx + 1.0) * (idx + 2.0) / (1.0 - r))
                    - half
                )
                step = int(gap)
                if step < gap:
                    step += 1
                if step < 1:
                    step = 1
                nxt = idx + step
                if nxt > MAX_INDEX:
                    nxt = idx + 1
                idx = nxt
        else:
            neg_alpha = -alpha
            while idx < hi:
                slot = idx - base
                lane_sums[slot] ^= value
                if value_hi is not None:
                    lane_sums_hi[slot] ^= value_hi
                lane_checksums[slot] ^= checksum
                lane_counts[slot] += direction
                if collect is not None:
                    collect.append(idx)
                state = (state + GAMMA) & MASK64
                z = (state ^ (state >> 30)) * MIX1 & MASK64
                z = (z ^ (z >> 27)) * MIX2 & MASK64
                r = ((z ^ (z >> 31)) >> 11) * INV_2_53
                gap = (idx + 1.0) * ((1.0 - r) ** neg_alpha - 1.0)
                step = int(gap)
                if step < gap:
                    step += 1
                if step < 1:
                    step = 1
                nxt = idx + step
                if nxt > MAX_INDEX:
                    nxt = idx + 1
                idx = nxt
        out_idx[row] = idx
        out_state[row] = state
    if listify:
        sums[:] = lane_sums
        checksums[:] = lane_checksums
        counts[:] = lane_counts
        if sums_hi is not None:
            sums_hi[:] = lane_sums_hi
    if collect is not None:
        touched.append(np.array(collect, dtype=np.int64))


def scatter_walk_numpy(
    sums,  # np.ndarray[uint64]
    checksums,  # np.ndarray[uint64]
    counts,  # np.ndarray[int64]
    indices: list[int],
    states: list[int],
    values: Sequence[int],
    symbol_checksums: Sequence[int],
    directions: Sequence[int],
    hi: int,
    base: int = 0,
    touched: Optional[list] = None,
    alphas: Optional[Sequence[float]] = None,
    sums_hi=None,  # np.ndarray[uint64] | None — high 64 bits of wide sums
) -> None:
    """Vectorised :func:`scatter_walk_scalar`: list-in/list-out face of
    :func:`scatter_walk_arrays` for callers holding Python-int state.

    ``alphas`` (per-symbol mapping parameters) and ``sums_hi`` (the
    second bank lane for >8-byte symbols; ``values`` may then exceed 64
    bits — they are split into low/high uint64 lanes here) extend the
    face to §8 irregular mappings and wide symbols.
    """
    np = _np
    if sums_hi is not None:
        vals = np.array([v & MASK64 for v in values], dtype=np.uint64)
        vals_hi = np.array([v >> 64 for v in values], dtype=np.uint64)
    else:
        vals = np.array(values, dtype=np.uint64)
        vals_hi = None
    idx, state = scatter_walk_arrays(
        sums,
        checksums,
        counts,
        np.array(indices, dtype=np.int64),
        np.array(states, dtype=np.uint64),
        vals,
        np.array(symbol_checksums, dtype=np.uint64),
        np.array(directions, dtype=np.int64),
        hi,
        base=base,
        touched=touched,
        alphas=np.array(alphas, dtype=np.float64) if alphas is not None else None,
        sums_hi=sums_hi,
        vals_hi=vals_hi,
    )
    indices[:] = idx.tolist()
    states[:] = state.tolist()
