"""Incremental peeling decoder (paper §3, extended to rateless streams).

The decoder consumes the *subtracted* stream ``a_i ⊖ b_i``, stored as an
array-backed :class:`~repro.core.cellbank.CodedSymbolBank` rather than a
list of per-cell objects.  A cell is *pure* when it holds exactly one
source symbol: ``count ∈ {+1, −1}`` and ``checksum == H(sum)``.
Recovering a pure cell's symbol lets us peel it out of every other cell
it maps to, possibly exposing new pure cells — classic sparse-graph
peeling.

Ratelessness adds one twist: a recovered symbol also maps to coded
indices the decoder has not received yet.  Each recovered symbol
therefore parks its index generator in a heap keyed by its next index ≥
the current frontier; when that cell eventually arrives, the symbol is
peeled out of it before the cell is even examined (cost O(1) amortised
per edge).

Two ingestion paths exist:

* :meth:`RatelessDecoder.add_coded_symbol` — the reference per-cell
  path (peel depth-first via a work queue).
* :meth:`RatelessDecoder.add_coded_block` — the batch fast path: a whole
  bank is appended at once, pending symbols are replayed across the new
  region by the :mod:`~repro.core.cellbank` scatter samplers, and
  peeling proceeds in breadth-first *rounds* — verify every pure
  candidate, then batch-subtract all of the round's recoveries in one
  vectorised scatter.  Peeling is confluent (the recoverable set is
  determined by the cell contents, not the peel order), so the fast path
  reaches the same fixed point — same recovered symbols, same final
  lanes — as per-cell ingestion; the golden-equivalence suite asserts
  this.

Termination: the stream is fully decoded exactly when every received
cell has been reduced to zero.  Because ρ(0) = 1, cell 0 participates in
every source symbol and zeroises last, matching §4.1's observation that
the first coded symbol is the completion signal.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from itertools import count as _counter
from typing import Iterable, Optional

from repro.core.cellbank import CodedSymbolBank, numpy_block_eligible, scatter_walk_numpy
from repro.core.coded import CodedSymbol
from repro.core.symbols import SymbolCodec

# Early-stop granularity of the batch path: the block is ingested in
# sub-blocks of this many cells, checking for completion between them.
# 2048 keeps the overshoot past the decode point under ~10% at d = 10^4
# while amortising the per-sub-block replay/scan overhead.
DEFAULT_STOP_CHUNK = 2048

# Below this bank size the NumPy block path costs more than it saves.
_MIN_NUMPY_BLOCK = 64


class _RecoveredEntry:
    """A recovered source symbol waiting to be peeled from future cells."""

    __slots__ = ("value", "checksum", "direction", "gen")

    def __init__(self, value: int, checksum: int, direction: int, gen) -> None:
        self.value = value
        self.checksum = checksum
        self.direction = direction
        self.gen = gen


@dataclass
class DecodeResult:
    """Outcome of decoding a coded-symbol stream.

    ``remote`` holds items exclusive to the sender (count +1, i.e. A \\ B);
    ``local`` holds items exclusive to the receiver (count −1, B \\ A).
    """

    success: bool
    remote: list[bytes] = field(default_factory=list)
    local: list[bytes] = field(default_factory=list)
    symbols_used: int = 0

    @property
    def difference_size(self) -> int:
        """|A △ B| as recovered."""
        return len(self.remote) + len(self.local)

    @property
    def overhead(self) -> float:
        """Coded symbols consumed per recovered difference.

        When the sets were already equal there is nothing to normalise
        by, so the convention is ``0.0`` — matching
        :class:`repro.core.session.ReconcileOutcome` and
        ``repro.api.base.ReconcileResult`` (the symbols spent on the
        termination signal remain visible in ``symbols_used``).
        """
        if self.difference_size == 0:
            return 0.0
        return self.symbols_used / self.difference_size


class RatelessDecoder:
    """Peels source symbols out of an incrementally arriving coded stream.

    Feed subtracted cells (``a_i ⊖ b_i``) in stream order via
    :meth:`add_coded_symbol` / :meth:`add_coded_block`; read progress
    from :attr:`decoded` and :meth:`result` at any point.  Internally
    the received prefix lives in a three-lane
    :class:`~repro.core.cellbank.CodedSymbolBank`, recovered symbols
    are re-peeled from later cells as they arrive (a heap of parked
    §4.2 walks), and a *pure* cell (count ±1, checksum matching its
    sum) triggers breadth-first peeling.  Two ingestion engines — the
    scalar reference and a batched NumPy path that verifies each peel
    round's candidates with one keyed-hash batch call — reach the same
    fixed point with identical lane state; peeling is confluent, so
    engine choice never changes what is recovered.
    """

    def __init__(self, codec: SymbolCodec) -> None:
        self.codec = codec
        self._bank = CodedSymbolBank()
        self._pending: list[tuple[int, int, _RecoveredEntry]] = []
        self._seq = _counter()
        self._queue: deque[int] = deque()
        self._remote: list[int] = []
        self._local: list[int] = []
        self._seen: set[int] = set()
        self._nonzero = 0

    # -- stream ingestion --------------------------------------------------

    @property
    def symbols_received(self) -> int:
        """Number of coded symbols consumed so far."""
        return len(self._bank)

    @property
    def decoded(self) -> bool:
        """True when at least one cell arrived and all cells are zeroised."""
        return len(self._bank.sums) > 0 and self._nonzero == 0

    def add_coded_symbol(self, cell: CodedSymbol) -> None:
        """Consume the next subtracted cell ``a_i ⊖ b_i`` (by value)."""
        self._consume(cell.sum, cell.checksum, cell.count)

    def _consume(self, cell_sum: int, cell_checksum: int, cell_count: int) -> None:
        """Reference per-cell ingestion, operating on the lane triple."""
        bank = self._bank
        index = len(bank.sums)
        pending = self._pending
        # Symbols recovered earlier may map to this new index: peel them out
        # before the cell is examined.
        while pending and pending[0][0] == index:
            _, seq, rec = heapq.heappop(pending)
            cell_sum ^= rec.value
            cell_checksum ^= rec.checksum
            cell_count -= rec.direction
            heapq.heappush(pending, (rec.gen.next_index(), seq, rec))
        bank.append(cell_sum, cell_checksum, cell_count)
        if cell_sum or cell_checksum or cell_count:
            self._nonzero += 1
        if cell_count == 1 or cell_count == -1:
            self._queue.append(index)
            self._peel()

    def add_subtracted(self, remote_cell: CodedSymbol, local_cell: CodedSymbol) -> None:
        """Convenience: consume ``remote ⊖ local`` without mutating inputs."""
        self._consume(
            remote_cell.sum ^ local_cell.sum,
            remote_cell.checksum ^ local_cell.checksum,
            remote_cell.count - local_cell.count,
        )

    def add_stream(
        self, cells: Iterable[CodedSymbol], stop_when_decoded: bool = True
    ) -> int:
        """Consume cells until the stream is exhausted or decoding completes.

        Returns the number of cells consumed from ``cells``.
        """
        used = 0
        for cell in cells:
            self.add_coded_symbol(cell)
            used += 1
            if stop_when_decoded and self.decoded:
                break
        return used

    def add_coded_block(
        self,
        bank: CodedSymbolBank,
        stop_when_decoded: bool = False,
        chunk: int = DEFAULT_STOP_CHUNK,
    ) -> int:
        """Consume a whole bank of subtracted cells; returns cells consumed.

        Reaches the same fixed point as per-cell ingestion of the same
        cells (see module docstring).  With ``stop_when_decoded`` the
        bank is ingested in ``chunk``-cell sub-blocks and ingestion stops
        at the end of the first sub-block that completes decoding — pass
        ``chunk=1`` for cell-exact early stopping (both engines honour
        the same granularity).  ``bank`` is read, never mutated.
        """
        n = len(bank)
        if n == 0:
            return 0
        if stop_when_decoded and self.decoded:
            return 0
        step = chunk if stop_when_decoded else n
        if step < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        # The NumPy engine copies the whole accumulated bank into arrays
        # and back once per call, so it only pays when the incoming block
        # is both sizeable and a meaningful fraction of what is already
        # banked — otherwise a long stream of small blocks would re-copy
        # the bank quadratically and the scalar engine wins.
        if (
            n >= _MIN_NUMPY_BLOCK
            and step >= _MIN_NUMPY_BLOCK
            and 16 * n >= len(self._bank)
            and numpy_block_eligible(self.codec)
        ):
            return self._ingest_numpy(bank, step, stop_when_decoded)
        src_sums = bank.sums
        src_checksums = bank.checksums
        src_counts = bank.counts
        consume = self._consume
        consumed = 0
        while consumed < n:
            upto = min(consumed + step, n)
            for i in range(consumed, upto):
                consume(src_sums[i], src_checksums[i], src_counts[i])
            consumed = upto
            if stop_when_decoded and self._nonzero == 0:
                break
        return consumed

    def _ingest_numpy(
        self, src: CodedSymbolBank, step: int, stop_when_decoded: bool
    ) -> int:
        """Batch engine: append + pending replay + breadth-first peeling.

        Works on uint64/int64 array lanes for the whole call and writes
        them back once; every arithmetic step is bit-identical to the
        scalar engine (see ``cellbank.scatter_walk_numpy``).  Symbols
        wider than 8 bytes run on a low/high pair of sum lanes, and §8
        irregular codecs hand the kernel a per-symbol α vector — both
        ride this path instead of falling back to per-cell ingestion.

        Each peel round gathers its pure-cell (sum, checksum) candidates
        and verifies them against :meth:`SymbolCodec.checksum_int_batch`
        in one call; the accept pass then replays the scalar loop's
        order-dependent checks (in-round ghost duplicates), so the set of
        recovered symbols is exactly the reference engine's.
        """
        import numpy as np

        bank = self._bank
        codec = self.codec
        checksum_int_batch = codec.checksum_int_batch
        new_mapping = codec.new_mapping
        alpha_for = codec.alpha_for
        irregular = codec.irregular is not None
        wide = codec.symbol_size > 8
        mask64 = 0xFFFFFFFFFFFFFFFF
        pending = self._pending
        seen = self._seen
        remote = self._remote
        local = self._local
        seq = self._seq
        old = len(bank)
        n = len(src)
        total = old + n
        sums = np.empty(total, dtype=np.uint64)
        checksums = np.empty(total, dtype=np.uint64)
        counts = np.empty(total, dtype=np.int64)
        if wide:
            sums[:old] = [s & mask64 for s in bank.sums]
            sums[old:] = [s & mask64 for s in src.sums]
            sums_hi = np.empty(total, dtype=np.uint64)
            sums_hi[:old] = [s >> 64 for s in bank.sums]
            sums_hi[old:] = [s >> 64 for s in src.sums]
        else:
            sums[:old] = bank.sums
            sums[old:] = src.sums
            sums_hi = None
        checksums[:old] = bank.checksums
        checksums[old:] = src.checksums
        counts[:old] = bank.counts
        counts[old:] = src.counts
        frontier = old
        while frontier < total:
            new_frontier = min(frontier + step, total)
            # 1. Replay parked recovered symbols across the new region.
            replayed: list[tuple[int, int, _RecoveredEntry]] = []
            job_indices: list[int] = []
            job_states: list[int] = []
            job_values: list[int] = []
            job_checksums: list[int] = []
            job_directions: list[int] = []
            job_alphas: Optional[list[float]] = [] if irregular else None
            while pending and pending[0][0] < new_frontier:
                key, sq, rec = heapq.heappop(pending)
                job_indices.append(key)
                job_states.append(rec.gen.state)
                job_values.append(rec.value)
                job_checksums.append(rec.checksum)
                job_directions.append(-rec.direction)
                if job_alphas is not None:
                    job_alphas.append(rec.gen.alpha)
                replayed.append((sq, rec))
            if job_indices:
                scatter_walk_numpy(
                    sums,
                    checksums,
                    counts,
                    job_indices,
                    job_states,
                    job_values,
                    job_checksums,
                    job_directions,
                    new_frontier,
                    alphas=job_alphas,
                    sums_hi=sums_hi,
                )
                for j, (sq, rec) in enumerate(replayed):
                    rec.gen.current = job_indices[j]
                    rec.gen.state = job_states[j]
                    heapq.heappush(pending, (job_indices[j], sq, rec))
            # 2. Breadth-first peeling rounds over [0, new_frontier).
            region = counts[frontier:new_frontier]
            candidates = np.where((region == 1) | (region == -1))[0] + frontier
            while candidates.size:
                rec_values: list[int] = []
                rec_checksums: list[int] = []
                rec_directions: list[int] = []
                cand_counts = counts[candidates].tolist()
                cand_checksums = checksums[candidates].tolist()
                if sums_hi is None:
                    cand_values = sums[candidates].tolist()
                else:
                    cand_values = [
                        lo | (hi << 64)
                        for lo, hi in zip(
                            sums[candidates].tolist(),
                            sums_hi[candidates].tolist(),
                        )
                    ]
                # Gather the round's plausible candidates, then verify
                # their checksums in ONE batch hash call.  A candidate
                # that becomes an in-round ghost (its checksum recovered
                # by an *earlier* candidate this round) is re-checked
                # against ``seen`` at accept time below — hashing it here
                # is side-effect-free, so the recovered set is exactly
                # what the scalar per-candidate loop produces.
                probe = [
                    j
                    for j in range(len(cand_counts))
                    if (cand_counts[j] == 1 or cand_counts[j] == -1)
                    and cand_checksums[j] not in seen
                ]
                hashes = checksum_int_batch([cand_values[j] for j in probe])
                for j, hashed in zip(probe, hashes):
                    checksum = cand_checksums[j]
                    if checksum in seen:
                        continue  # ghost duplicate of a recovered symbol
                    if hashed != checksum:
                        continue  # not actually pure (counts cancelled)
                    count = cand_counts[j]
                    value = cand_values[j]
                    seen.add(checksum)
                    (remote if count == 1 else local).append(value)
                    rec_values.append(value)
                    rec_checksums.append(checksum)
                    rec_directions.append(-count)
                if not rec_values:
                    break
                # Batch-subtract the round's recoveries everywhere they map.
                job_indices = [0] * len(rec_values)
                job_states = list(rec_checksums)
                touched: list = []
                scatter_walk_numpy(
                    sums,
                    checksums,
                    counts,
                    job_indices,
                    job_states,
                    rec_values,
                    rec_checksums,
                    rec_directions,
                    new_frontier,
                    touched=touched,
                    alphas=(
                        [alpha_for(c) for c in rec_checksums]
                        if irregular
                        else None
                    ),
                    sums_hi=sums_hi,
                )
                # Park each recovery for cells beyond the frontier.
                for j, checksum in enumerate(rec_checksums):
                    gen = new_mapping(checksum)
                    gen.current = job_indices[j]
                    gen.state = job_states[j]
                    rec = _RecoveredEntry(
                        rec_values[j], checksum, -rec_directions[j], gen
                    )
                    heapq.heappush(pending, (job_indices[j], next(seq), rec))
                hit = np.unique(np.concatenate(touched))
                hit_counts = counts[hit]
                candidates = hit[(hit_counts == 1) | (hit_counts == -1)]
            frontier = new_frontier
            if stop_when_decoded and not (
                counts[:frontier].any()
                or sums[:frontier].any()
                or checksums[:frontier].any()
                or (sums_hi is not None and sums_hi[:frontier].any())
            ):
                break
        if wide:
            bank.sums[:] = [
                lo | (hi << 64)
                for lo, hi in zip(
                    sums[:frontier].tolist(), sums_hi[:frontier].tolist()
                )
            ]
        else:
            bank.sums[:] = sums[:frontier].tolist()
        bank.checksums[:] = checksums[:frontier].tolist()
        bank.counts[:] = counts[:frontier].tolist()
        nonzero = (
            (sums[:frontier] != 0)
            | (checksums[:frontier] != 0)
            | (counts[:frontier] != 0)
        )
        if sums_hi is not None:
            nonzero |= sums_hi[:frontier] != 0
        self._nonzero = int(np.count_nonzero(nonzero))
        return frontier - old

    # -- peeling -----------------------------------------------------------

    def _peel(self) -> None:
        """Drain the pure-candidate queue, recovering symbols recursively."""
        queue = self._queue
        bank = self._bank
        sums = bank.sums
        checksums = bank.checksums
        counts = bank.counts
        codec = self.codec
        checksum_int = codec.checksum_int
        while queue:
            index = queue.popleft()
            direction = counts[index]
            if direction != 1 and direction != -1:
                continue
            checksum = checksums[index]
            value = sums[index]
            if checksum_int(value) != checksum:
                continue  # not actually pure (multiple symbols cancel counts)
            if checksum in self._seen:
                continue  # ghost duplicate of an already-recovered symbol
            self._seen.add(checksum)
            if direction == 1:
                self._remote.append(value)
            else:
                self._local.append(value)
            # Peel the recovered symbol out of every cell it maps to.
            gen = codec.new_mapping(checksum)
            frontier = len(sums)
            idx = 0
            while idx < frontier:
                old_sum = sums[idx]
                old_checksum = checksums[idx]
                old_count = counts[idx]
                new_sum = old_sum ^ value
                new_checksum = old_checksum ^ checksum
                new_count = old_count - direction
                sums[idx] = new_sum
                checksums[idx] = new_checksum
                counts[idx] = new_count
                if new_sum or new_checksum or new_count:
                    if not (old_sum or old_checksum or old_count):
                        self._nonzero += 1
                    if new_count == 1 or new_count == -1:
                        queue.append(idx)
                else:
                    if old_sum or old_checksum or old_count:
                        self._nonzero -= 1
                idx = gen.next_index()
            entry = _RecoveredEntry(value, checksum, direction, gen)
            heapq.heappush(self._pending, (idx, next(self._seq), entry))

    # -- results -----------------------------------------------------------

    def remote_values(self) -> list[int]:
        """Recovered items exclusive to the sender, in integer form."""
        return list(self._remote)

    def local_values(self) -> list[int]:
        """Recovered items exclusive to the receiver, in integer form."""
        return list(self._local)

    def remote_items(self) -> list[bytes]:
        """Recovered items exclusive to the sender (A \\ B)."""
        return [self.codec.to_bytes(v) for v in self._remote]

    def local_items(self) -> list[bytes]:
        """Recovered items exclusive to the receiver (B \\ A)."""
        return [self.codec.to_bytes(v) for v in self._local]

    def cells(self) -> list[CodedSymbol]:
        """Value snapshots of the (partially peeled) received cells."""
        return self._bank.cells()

    def result(self) -> DecodeResult:
        """Snapshot the current decoding outcome.

        Safe to call at any point mid-stream: ``success`` mirrors
        :attr:`decoded`, and the item lists hold whatever has been
        recovered so far (possibly a strict subset of the difference).
        """
        return DecodeResult(
            success=self.decoded,
            remote=self.remote_items(),
            local=self.local_items(),
            symbols_used=len(self._bank),
        )


def decode_sketch_cells(
    cells: Iterable[CodedSymbol],
    codec: SymbolCodec,
    copy: bool = True,
) -> DecodeResult:
    """Decode a complete (already subtracted) list of cells in one call.

    Input cells are never mutated (the decoder banks their values);
    ``copy`` is retained for interface compatibility.
    """
    decoder = RatelessDecoder(codec)
    decoder.add_coded_block(CodedSymbolBank.from_cells(cells))
    return decoder.result()


def peel_until_decoded(
    decoder: RatelessDecoder,
    stream: Iterable[CodedSymbol],
    max_symbols: Optional[int] = None,
) -> DecodeResult:
    """Feed ``stream`` into ``decoder`` until success or ``max_symbols``.

    Stops after the first cell that completes decoding, or once
    ``max_symbols`` total cells have been consumed (budget exhaustion
    is reported as ``success=False`` in the returned result, never as
    an exception).
    """
    for cell in stream:
        decoder.add_coded_symbol(cell)
        if decoder.decoded:
            break
        if max_symbols is not None and decoder.symbols_received >= max_symbols:
            break
    return decoder.result()
