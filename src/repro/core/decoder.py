"""Incremental peeling decoder (paper §3, extended to rateless streams).

The decoder consumes the *subtracted* stream ``a_i ⊖ b_i`` one cell at a
time.  A cell is *pure* when it holds exactly one source symbol:
``count ∈ {+1, −1}`` and ``checksum == H(sum)``.  Recovering a pure cell's
symbol lets us peel it out of every other cell it maps to, possibly
exposing new pure cells — classic sparse-graph peeling.

Ratelessness adds one twist: a recovered symbol also maps to coded indices
the decoder has not received yet.  Each recovered symbol therefore parks
its index generator in a heap keyed by its next index ≥ the current
frontier; when that cell eventually arrives, the symbol is peeled out of
it before the cell is even examined (cost O(1) amortised per edge).

Termination: the stream is fully decoded exactly when every received cell
has been reduced to zero.  Because ρ(0) = 1, cell 0 participates in every
source symbol and zeroises last, matching §4.1's observation that the
first coded symbol is the completion signal.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from itertools import count as _counter
from typing import Iterable, Optional

from repro.core.coded import CodedSymbol
from repro.core.mapping import IndexGenerator
from repro.core.symbols import SymbolCodec


class _RecoveredEntry:
    """A recovered source symbol waiting to be peeled from future cells."""

    __slots__ = ("value", "checksum", "direction", "gen")

    def __init__(self, value: int, checksum: int, direction: int, gen: IndexGenerator) -> None:
        self.value = value
        self.checksum = checksum
        self.direction = direction
        self.gen = gen


@dataclass
class DecodeResult:
    """Outcome of decoding a coded-symbol stream.

    ``remote`` holds items exclusive to the sender (count +1, i.e. A \\ B);
    ``local`` holds items exclusive to the receiver (count −1, B \\ A).
    """

    success: bool
    remote: list[bytes] = field(default_factory=list)
    local: list[bytes] = field(default_factory=list)
    symbols_used: int = 0

    @property
    def difference_size(self) -> int:
        """|A △ B| as recovered."""
        return len(self.remote) + len(self.local)

    @property
    def overhead(self) -> float:
        """Coded symbols consumed per recovered difference."""
        if self.difference_size == 0:
            return float(self.symbols_used)
        return self.symbols_used / self.difference_size


class RatelessDecoder:
    """Peels source symbols out of an incrementally arriving coded stream."""

    def __init__(self, codec: SymbolCodec) -> None:
        self.codec = codec
        self._cells: list[CodedSymbol] = []
        self._pending: list[tuple[int, int, _RecoveredEntry]] = []
        self._seq = _counter()
        self._queue: deque[int] = deque()
        self._remote: list[int] = []
        self._local: list[int] = []
        self._seen: set[int] = set()
        self._nonzero = 0

    # -- stream ingestion --------------------------------------------------

    @property
    def symbols_received(self) -> int:
        """Number of coded symbols consumed so far."""
        return len(self._cells)

    @property
    def decoded(self) -> bool:
        """True when at least one cell arrived and all cells are zeroised."""
        return bool(self._cells) and self._nonzero == 0

    def add_coded_symbol(self, cell: CodedSymbol) -> None:
        """Consume the next subtracted cell ``a_i ⊖ b_i`` (takes ownership)."""
        index = len(self._cells)
        pending = self._pending
        # Symbols recovered earlier may map to this new index: peel them out
        # before the cell is examined.
        while pending and pending[0][0] == index:
            _, _, rec = heapq.heappop(pending)
            cell.apply(rec.value, rec.checksum, -rec.direction)
            heapq.heappush(pending, (rec.gen.next_index(), next(self._seq), rec))
        self._cells.append(cell)
        if not cell.is_zero():
            self._nonzero += 1
        if cell.count == 1 or cell.count == -1:
            self._queue.append(index)
            self._peel()

    def add_subtracted(self, remote_cell: CodedSymbol, local_cell: CodedSymbol) -> None:
        """Convenience: consume ``remote ⊖ local`` without mutating inputs."""
        self.add_coded_symbol(remote_cell.subtract(local_cell))

    def add_stream(self, cells: Iterable[CodedSymbol], stop_when_decoded: bool = True) -> int:
        """Consume cells until the stream is exhausted or decoding completes.

        Returns the number of cells consumed from ``cells``.
        """
        used = 0
        for cell in cells:
            self.add_coded_symbol(cell)
            used += 1
            if stop_when_decoded and self.decoded:
                break
        return used

    # -- peeling -----------------------------------------------------------

    def _peel(self) -> None:
        """Drain the pure-candidate queue, recovering symbols recursively."""
        queue = self._queue
        cells = self._cells
        codec = self.codec
        while queue:
            index = queue.popleft()
            cell = cells[index]
            direction = cell.count
            if direction != 1 and direction != -1:
                continue
            checksum = cell.checksum
            if codec.checksum_int(cell.sum) != checksum:
                continue  # not actually pure (multiple symbols cancel counts)
            if checksum in self._seen:
                continue  # ghost duplicate of an already-recovered symbol
            value = cell.sum
            self._seen.add(checksum)
            if direction == 1:
                self._remote.append(value)
            else:
                self._local.append(value)
            # Peel the recovered symbol out of every cell it maps to.
            gen = codec.new_mapping(checksum)
            frontier = len(cells)
            idx = 0
            while idx < frontier:
                target = cells[idx]
                was_zero = target.is_zero()
                target.apply(value, checksum, -direction)
                if target.is_zero():
                    if not was_zero:
                        self._nonzero -= 1
                else:
                    if was_zero:
                        self._nonzero += 1
                    if target.count == 1 or target.count == -1:
                        queue.append(idx)
                idx = gen.next_index()
            entry = _RecoveredEntry(value, checksum, direction, gen)
            heapq.heappush(self._pending, (idx, next(self._seq), entry))

    # -- results -----------------------------------------------------------

    def remote_values(self) -> list[int]:
        """Recovered items exclusive to the sender, in integer form."""
        return list(self._remote)

    def local_values(self) -> list[int]:
        """Recovered items exclusive to the receiver, in integer form."""
        return list(self._local)

    def remote_items(self) -> list[bytes]:
        """Recovered items exclusive to the sender (A \\ B)."""
        return [self.codec.to_bytes(v) for v in self._remote]

    def local_items(self) -> list[bytes]:
        """Recovered items exclusive to the receiver (B \\ A)."""
        return [self.codec.to_bytes(v) for v in self._local]

    def result(self) -> DecodeResult:
        """Snapshot the current decoding outcome."""
        return DecodeResult(
            success=self.decoded,
            remote=self.remote_items(),
            local=self.local_items(),
            symbols_used=len(self._cells),
        )


def decode_sketch_cells(
    cells: Iterable[CodedSymbol],
    codec: SymbolCodec,
    copy: bool = True,
) -> DecodeResult:
    """Decode a complete (already subtracted) list of cells in one call."""
    decoder = RatelessDecoder(codec)
    for cell in cells:
        decoder.add_coded_symbol(cell.copy() if copy else cell)
    return decoder.result()


def peel_until_decoded(
    decoder: RatelessDecoder,
    stream: Iterable[CodedSymbol],
    max_symbols: Optional[int] = None,
) -> DecodeResult:
    """Feed ``stream`` into ``decoder`` until success or ``max_symbols``."""
    for cell in stream:
        decoder.add_coded_symbol(cell)
        if decoder.decoded:
            break
        if max_symbols is not None and decoder.symbols_received >= max_symbols:
            break
    return decoder.result()
