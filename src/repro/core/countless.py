"""Count-free Rateless IBLT decoding (paper §7.1, "Scalability").

The peeling decoder never *needs* the ``count`` field: a cell is pure
exactly when ``checksum == H(sum)`` (up to a negligible collision
probability), and whether a recovered item belongs to Alice or Bob can be
settled by a membership probe against Bob's own set.  Dropping ``count``
from the wire saves its ≈1 byte/cell — material when items are short.

This module provides the count-free decoder plus the slimmer wire codec
(sum ∥ checksum only).  The encoder is unchanged: cells carry counts
internally; they are simply not transmitted.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count as _counter
from typing import Callable, Iterable, Optional

from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult
from repro.core.mapping import IndexGenerator
from repro.core.symbols import SymbolCodec


class _Recovered:
    __slots__ = ("value", "checksum", "gen")

    def __init__(self, value: int, checksum: int, gen: IndexGenerator) -> None:
        self.value = value
        self.checksum = checksum
        self.gen = gen


class CountlessDecoder:
    """Peels a subtracted stream whose cells carry no ``count`` field.

    ``is_local`` decides the side of a recovered item (e.g. membership in
    Bob's set).  Purity is checked solely via the checksum; peeling XORs
    symbols out without any count bookkeeping.
    """

    def __init__(
        self, codec: SymbolCodec, is_local: Callable[[bytes], bool]
    ) -> None:
        self.codec = codec
        self.is_local = is_local
        self._cells: list[CodedSymbol] = []
        self._pending: list[tuple[int, int, _Recovered]] = []
        self._seq = _counter()
        self._queue: deque[int] = deque()
        self._remote: list[int] = []
        self._local: list[int] = []
        self._seen: set[int] = set()
        self._nonzero = 0

    @property
    def symbols_received(self) -> int:
        return len(self._cells)

    @property
    def decoded(self) -> bool:
        """All received cells zeroised (count excluded — it is unknown)."""
        return bool(self._cells) and self._nonzero == 0

    @staticmethod
    def _content_zero(cell: CodedSymbol) -> bool:
        return cell.sum == 0 and cell.checksum == 0

    def add_coded_symbol(self, cell: CodedSymbol) -> None:
        """Consume the next subtracted cell (count field ignored)."""
        index = len(self._cells)
        pending = self._pending
        while pending and pending[0][0] == index:
            _, _, rec = heapq.heappop(pending)
            cell.sum ^= rec.value
            cell.checksum ^= rec.checksum
            heapq.heappush(pending, (rec.gen.next_index(), next(self._seq), rec))
        self._cells.append(cell)
        if not self._content_zero(cell):
            self._nonzero += 1
            self._queue.append(index)
            self._peel()

    def _peel(self) -> None:
        queue = self._queue
        cells = self._cells
        codec = self.codec
        while queue:
            index = queue.popleft()
            cell = cells[index]
            if self._content_zero(cell):
                continue
            checksum = cell.checksum
            if codec.checksum_int(cell.sum) != checksum:
                continue  # not pure yet
            if checksum in self._seen:
                continue
            value = cell.sum
            self._seen.add(checksum)
            if self.is_local(codec.to_bytes(value)):
                self._local.append(value)
            else:
                self._remote.append(value)
            gen = codec.new_mapping(checksum)
            frontier = len(cells)
            idx = 0
            while idx < frontier:
                target = cells[idx]
                was_zero = self._content_zero(target)
                target.sum ^= value
                target.checksum ^= checksum
                now_zero = self._content_zero(target)
                if now_zero and not was_zero:
                    self._nonzero -= 1
                elif not now_zero:
                    if was_zero:
                        self._nonzero += 1
                    queue.append(idx)
                idx = gen.next_index()
            heapq.heappush(
                self._pending,
                (idx, next(self._seq), _Recovered(value, checksum, gen)),
            )

    def remote_items(self) -> list[bytes]:
        """Items the sender has and we lack."""
        return [self.codec.to_bytes(v) for v in self._remote]

    def local_items(self) -> list[bytes]:
        """Items we hold exclusively."""
        return [self.codec.to_bytes(v) for v in self._local]

    def result(self) -> DecodeResult:
        return DecodeResult(
            success=self.decoded,
            remote=self.remote_items(),
            local=self.local_items(),
            symbols_used=len(self._cells),
        )


# --- count-free wire codec ------------------------------------------------------


def countless_cell_bytes(codec: SymbolCodec) -> int:
    """Wire size of one count-free cell: ℓ + checksum width."""
    return codec.symbol_size + codec.checksum_size


def encode_countless(codec: SymbolCodec, cells: Iterable[CodedSymbol]) -> bytes:
    """Serialise cells without their count field."""
    parts = []
    for cell in cells:
        parts.append(cell.sum.to_bytes(codec.symbol_size, "little"))
        parts.append(cell.checksum.to_bytes(codec.checksum_size, "little"))
    return b"".join(parts)


def decode_countless(codec: SymbolCodec, data: bytes) -> list[CodedSymbol]:
    """Parse a count-free stream; counts come back as 0 (unknown)."""
    cell_size = countless_cell_bytes(codec)
    if len(data) % cell_size:
        raise ValueError(
            f"stream length {len(data)} is not a multiple of {cell_size}"
        )
    cells = []
    for offset in range(0, len(data), cell_size):
        value = int.from_bytes(
            data[offset : offset + codec.symbol_size], "little"
        )
        checksum = int.from_bytes(
            data[offset + codec.symbol_size : offset + cell_size], "little"
        )
        cells.append(CodedSymbol(value, checksum, 0))
    return cells


def reconcile_countless(
    alice_items: Iterable[bytes],
    bob_items: Iterable[bytes],
    codec: SymbolCodec,
    max_symbols: Optional[int] = None,
) -> DecodeResult:
    """Full count-free reconciliation (Bob probes his own set for sides)."""
    from repro.core.encoder import RatelessEncoder

    bob_set = set(bob_items)
    alice = RatelessEncoder(codec, alice_items)
    bob = RatelessEncoder(codec, bob_set)
    decoder = CountlessDecoder(codec, is_local=bob_set.__contains__)
    while not decoder.decoded:
        if max_symbols is not None and decoder.symbols_received >= max_symbols:
            break
        remote = alice.produce_next()
        local = bob.produce_next()
        cell = CodedSymbol(
            remote.sum ^ local.sum, remote.checksum ^ local.checksum, 0
        )
        decoder.add_coded_symbol(cell)
    return decoder.result()
