"""In-memory reconciliation sessions: the §4.1 protocol without a network.

Alice streams coded symbols; Bob subtracts his own symbols pairwise and
peels.  He stops the moment every received cell zeroises (§4.1's
termination signal).  :func:`reconcile` is the one-call convenience API.

Symbols move either one at a time (:meth:`ReconciliationSession.step`,
cell-exact accounting — the default) or as blocks
(:meth:`ReconciliationSession.step_block` / ``run(block_size=...)``),
which ride the bank-backed batch paths: both encoders extend their
cached prefix in one pass, the banks are subtracted lane-wise, and Bob
ingests the whole difference block.  A block stream is bit-identical on
the wire to the same number of single steps; the only difference is
that termination is detected at block granularity, so up to
``block_size − 1`` extra symbols may be sent after the difference was
already decodable.

For the simulated-network version used in the Ethereum experiments, see
``repro.net.protocols``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set

from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.core.wire import SymbolStreamWriter
from repro.hashing.keyed import KeyedHasher


class SymbolBudgetExceeded(RuntimeError):
    """A bounded reconciliation ran out of coded symbols before decoding.

    Raised (instead of returning a sentinel) so long-running servers can
    catch exactly this condition and drop a runaway session — a stalled
    peer, a mismatched hash key, or a difference far beyond what the
    budget provisions all surface here.  ``symbols_sent`` records how
    much was spent before giving up.
    """

    def __init__(self, message: str, symbols_sent: int, max_symbols: int) -> None:
        super().__init__(message)
        self.symbols_sent = symbols_sent
        self.max_symbols = max_symbols


@dataclass
class ReconcileOutcome:
    """Everything :func:`reconcile` learned about A △ B.

    ``overhead`` is coded symbols spent per recovered difference.  When
    the sets were already equal there is nothing to normalise by, so the
    convention is ``overhead == 0.0`` — the protocol still spends its
    one termination symbol (visible in ``symbols_used``), but reporting
    that as "overhead per difference" would be meaningless.
    """

    only_in_a: Set[bytes]
    only_in_b: Set[bytes]
    symbols_used: int
    bytes_on_wire: int
    difference_size: int = field(init=False)
    overhead: float = field(init=False)

    def __post_init__(self) -> None:
        self.difference_size = len(self.only_in_a) + len(self.only_in_b)
        if self.difference_size:
            self.overhead = self.symbols_used / self.difference_size
        else:
            self.overhead = 0.0


class ReconciliationSession:
    """Drives one Alice→Bob reconciliation symbol by symbol.

    The session owns an encoder for each side and one decoder at Bob.
    ``step()`` moves one coded symbol across; ``run()`` iterates to
    completion.  Wire-format accounting uses the §6 serialisation, so
    ``bytes_sent`` is what a real deployment would transmit.
    """

    def __init__(
        self,
        alice_items: Iterable[bytes],
        bob_items: Iterable[bytes],
        codec: SymbolCodec,
    ) -> None:
        self.codec = codec
        self.alice = RatelessEncoder(codec, alice_items)
        self.bob = RatelessEncoder(codec, bob_items)
        self.decoder = RatelessDecoder(codec)
        self._writer = SymbolStreamWriter(codec, set_size=self.alice.set_size)
        self._writer.header()
        self.symbols_sent = 0

    @property
    def decoded(self) -> bool:
        """True once Bob has recovered the whole symmetric difference."""
        return self.decoder.decoded

    @property
    def bytes_sent(self) -> int:
        """Wire bytes Alice has emitted so far (header included)."""
        return self._writer.bytes_written

    def step(self) -> bool:
        """Send one coded symbol from Alice to Bob; True when decoded."""
        remote = self.alice.produce_next()
        self._writer.write(remote)
        local = self.bob.produce_next()
        self.decoder.add_subtracted(remote, local)
        self.symbols_sent += 1
        return self.decoder.decoded

    def step_block(self, block_size: int) -> bool:
        """Send ``block_size`` coded symbols at once; True when decoded.

        Rides the batch fast paths end to end: block production at both
        encoders, lane-wise subtraction, block ingestion at the decoder.
        """
        remote = self.alice.produce_block(block_size)
        self._writer.write_block(remote)
        remote.subtract_in_place(self.bob.produce_block(block_size))
        self.decoder.add_coded_block(remote)
        self.symbols_sent += block_size
        return self.decoder.decoded

    def run(
        self, max_symbols: Optional[int] = None, block_size: int = 1
    ) -> ReconcileOutcome:
        """Stream until decoded (or until ``max_symbols``; then raises).

        ``block_size=1`` (default) keeps cell-exact termination; larger
        blocks trade up to ``block_size − 1`` extra symbols for batch
        throughput.  Budget exhaustion raises the typed
        :class:`SymbolBudgetExceeded` (a ``RuntimeError`` subclass, so
        pre-existing handlers keep working).
        """
        while not self.decoder.decoded:
            if max_symbols is not None and self.symbols_sent >= max_symbols:
                raise SymbolBudgetExceeded(
                    f"reconciliation did not converge within {max_symbols} symbols",
                    symbols_sent=self.symbols_sent,
                    max_symbols=max_symbols,
                )
            if block_size > 1:
                self.step_block(block_size)
            else:
                self.step()
        return self.outcome()

    def run_bounded(self, max_symbols: int, block_size: int = 1) -> bool:
        """Boolean wrapper over :meth:`run`: ``True`` once decoded, ``False``
        when the budget ran out (instead of raising).  On success the
        outcome is available from :meth:`outcome`.
        """
        try:
            self.run(max_symbols=max_symbols, block_size=block_size)
        except SymbolBudgetExceeded:
            return False
        return True

    def outcome(self) -> ReconcileOutcome:
        """The outcome accumulated so far (meaningful once ``decoded``)."""
        return ReconcileOutcome(
            only_in_a=set(self.decoder.remote_items()),
            only_in_b=set(self.decoder.local_items()),
            symbols_used=self.symbols_sent,
            bytes_on_wire=self.bytes_sent,
        )


def reconcile(
    alice_items: Iterable[bytes],
    bob_items: Iterable[bytes],
    symbol_size: Optional[int] = None,
    hasher: Optional[KeyedHasher] = None,
    codec: Optional[SymbolCodec] = None,
    max_symbols: Optional[int] = None,
    block_size: int = 1,
) -> ReconcileOutcome:
    """Compute A △ B with the full streaming protocol.

    Exactly one way of fixing the item width is needed: either pass
    ``symbol_size`` (a codec is built) or pass an explicit ``codec``
    (``symbol_size`` is then derived from it and, if also given, must
    agree).  ``block_size > 1`` moves symbols in batches (see
    :meth:`ReconciliationSession.run`).

    >>> a = {b"%07d" % i for i in range(50)}
    >>> b = {b"%07d" % i for i in range(2, 52)}
    >>> out = reconcile(a, b, symbol_size=7)
    >>> sorted(out.only_in_a) == [b"0000000", b"0000001"]
    True
    """
    if codec is None:
        if symbol_size is None:
            raise TypeError("reconcile() needs symbol_size or an explicit codec")
        codec = SymbolCodec(symbol_size, hasher)
    elif symbol_size is not None and symbol_size != codec.symbol_size:
        raise ValueError(
            f"symbol_size={symbol_size} contradicts codec.symbol_size="
            f"{codec.symbol_size}; pass one or the other"
        )
    session = ReconciliationSession(alice_items, bob_items, codec)
    return session.run(max_symbols=max_symbols, block_size=block_size)
