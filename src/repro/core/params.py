"""Shared constants for the Rateless IBLT codec.

The paper fixes α = 0.5 in the final design (§4.2) because the inverse CDF
then needs only a square root; §5 shows the asymptotic overhead at α = 0.5
is ≈ 1.3455, within 3% of the optimum α ≈ 0.64.
"""

# Mapping-probability parameter in ρ(i) = 1 / (1 + αi).
DEFAULT_ALPHA = 0.5

# Width of the checksum field on the wire (§4.3: a keyed 64-bit hash).
CHECKSUM_BYTES = 8

# Asymptotic overhead η* at α = 0.5 predicted by density evolution (§5).
ASYMPTOTIC_OVERHEAD = 1.35

# Safety cap on coded-symbol indices so a pathological PRNG draw (r → 1)
# cannot produce astronomically large skips. 2^48 indices is far beyond any
# practical prefix length.
MAX_INDEX = 1 << 48
