"""Variable-length integers (LEB128) and zigzag signed encoding.

§6 of the paper compresses the per-symbol ``count`` field by transmitting
the *difference* between the actual count and its expectation ``|S|·ρ(i)``
as a variable-length quantity.  The difference is signed, hence zigzag.
"""

from __future__ import annotations


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128 (7 bits per byte)."""
    if value < 0:
        raise ValueError("uvarint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 integer from ``data`` at ``offset``.

    Returns ``(value, new_offset)``.  Raises ``ValueError`` on truncation.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("uvarint too long")


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one (0,-1,1,-2,... → 0,1,2,3,...).

    Works for arbitrary-precision integers (no word-size assumption).
    """
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer: zigzag then LEB128."""
    return encode_uvarint(zigzag_encode(value))


def decode_svarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a signed integer written by :func:`encode_svarint`."""
    raw, pos = decode_uvarint(data, offset)
    return zigzag_decode(raw), pos
