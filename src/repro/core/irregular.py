"""Irregular Rateless IBLT (paper §8).

Source symbols are partitioned into ``c`` subsets by their checksum hash;
subset ``j`` (chosen with probability ``w_j``) uses mapping probability
``ρ_j(i) = 1/(1+α_j·i)``.  The paper's brute-force search found the
configuration below (c = 3) whose overhead converges to ≈1.10 — 19% below
regular Rateless IBLT — at the price of ≈1.9× slower mapping generation
(generic-α sampling needs a non-integer power instead of a square root).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class IrregularConfig:
    """Subset weights and per-subset mapping parameters.

    ``weights[j]`` is the probability a random symbol lands in subset ``j``;
    ``alphas[j]`` is that subset's α in ρ_j(i) = 1/(1+α_j·i).
    """

    weights: Tuple[float, ...]
    alphas: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.alphas):
            raise ValueError("weights and alphas must have the same length")
        if not self.weights:
            raise ValueError("need at least one subset")
        if any(w <= 0.0 for w in self.weights):
            raise ValueError("subset weights must be positive")
        if any(a <= 0.0 for a in self.alphas):
            raise ValueError("subset alphas must be positive")
        total = sum(self.weights)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"subset weights must sum to 1, got {total}")

    @property
    def subsets(self) -> int:
        """Number of subsets ``c``."""
        return len(self.weights)

    def subset_for(self, u: float) -> int:
        """Subset index for a symbol whose (uniform) hash maps to ``u``∈[0,1)."""
        acc = 0.0
        for j, w in enumerate(self.weights):
            acc += w
            if u < acc:
                return j
        return len(self.weights) - 1  # guard against rounding at u ≈ 1

    def alpha_for(self, u: float) -> float:
        """Mapping parameter α for a symbol with uniform hash ``u``."""
        return self.alphas[self.subset_for(u)]

    def mean_rho(self, index: int) -> float:
        """Subset-averaged mapping probability E_j[ρ_j(index)] — the
        expected fill of coded cell ``index`` per source symbol."""
        return sum(
            w / (1.0 + a * index) for w, a in zip(self.weights, self.alphas)
        )


# The configuration found by the paper's parameter search (§8):
#   c = 3, w = (0.18, 0.56, 0.26), α = (0.11, 0.68, 0.82), overhead → 1.10.
PAPER_IRREGULAR = IrregularConfig(
    weights=(0.18, 0.56, 0.26),
    alphas=(0.11, 0.68, 0.82),
)
