"""Wire format for coded-symbol streams (paper §6).

Layout::

    header  :=  magic "RIB1" | uvarint symbol_size | uvarint checksum_bytes
              | uvarint set_size | uvarint start_index
    cell    :=  sum (ℓ bytes, little endian)
              | checksum (checksum_bytes, little endian)
              | svarint(count − expected_count)

The §6 trick: the ``count`` of the ``i``-th coded symbol of an ``n``-item
set concentrates around ``n·ρ(i)``, so we transmit only the (small, signed)
difference from that expectation as a variable-length integer — ≈1 byte per
cell instead of a fixed 8, given that the receiver learns ``n`` from the
header and knows ``i`` from stream position.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core import varint
from repro.core.cellbank import CodedSymbolBank
from repro.core.coded import CodedSymbol
from repro.core.symbols import SymbolCodec

MAGIC = b"RIB1"

# LEB128 never legitimately needs more than 10 bytes for a 64-bit value;
# a count varint that is still "incomplete" with this many bytes buffered
# is corruption, not truncation.
_MAX_VARINT_BYTES = 10


def expected_count(codec: SymbolCodec, set_size: int, index: int) -> int:
    """E[count] of coded cell ``index`` for a ``set_size``-item set:
    ``n·ρ(i)``, subset-averaged in the irregular case (§8)."""
    if codec.irregular is None:
        rho = 1.0 / (1.0 + 0.5 * index)
    else:
        rho = codec.irregular.mean_rho(index)
    return round(set_size * rho)


class SymbolStreamWriter:
    """Serialises a coded-symbol stream incrementally."""

    def __init__(self, codec: SymbolCodec, set_size: int, start_index: int = 0) -> None:
        self.codec = codec
        self.set_size = set_size
        self.index = start_index
        self.start_index = start_index
        self.bytes_written = 0
        self.count_bytes_written = 0
        self.cells_written = 0

    def header(self) -> bytes:
        """The stream header (send once, before any cell)."""
        blob = (
            MAGIC
            + varint.encode_uvarint(self.codec.symbol_size)
            + varint.encode_uvarint(self.codec.checksum_size)
            + varint.encode_uvarint(self.set_size)
            + varint.encode_uvarint(self.start_index)
        )
        self.bytes_written += len(blob)
        return blob

    def write(self, cell: CodedSymbol) -> bytes:
        """Serialise the next cell; the index advances implicitly."""
        codec = self.codec
        count_delta = cell.count - expected_count(codec, self.set_size, self.index)
        count_blob = varint.encode_svarint(count_delta)
        blob = (
            cell.sum.to_bytes(codec.symbol_size, "little")
            + cell.checksum.to_bytes(codec.checksum_size, "little")
            + count_blob
        )
        self.index += 1
        self.cells_written += 1
        self.bytes_written += len(blob)
        self.count_bytes_written += len(count_blob)
        return blob

    def write_block(self, bank: CodedSymbolBank) -> bytes:
        """Serialise a whole bank of cells; byte-identical to per-cell
        :meth:`write` calls, without materialising cell objects."""
        codec = self.codec
        symbol_size = codec.symbol_size
        checksum_size = codec.checksum_size
        set_size = self.set_size
        encode_svarint = varint.encode_svarint
        index = self.index
        count_bytes = 0
        parts = []
        for cell_sum, cell_checksum, cell_count in zip(
            bank.sums, bank.checksums, bank.counts
        ):
            count_blob = encode_svarint(
                cell_count - expected_count(codec, set_size, index)
            )
            parts.append(cell_sum.to_bytes(symbol_size, "little"))
            parts.append(cell_checksum.to_bytes(checksum_size, "little"))
            parts.append(count_blob)
            count_bytes += len(count_blob)
            index += 1
        blob = b"".join(parts)
        self.index = index
        self.cells_written += len(bank)
        self.bytes_written += len(blob)
        self.count_bytes_written += count_bytes
        return blob

    @property
    def mean_count_bytes(self) -> float:
        """Average bytes spent on the compressed count field per cell
        (the §6 claim: ≈1.05 bytes for 10⁶ items / 10⁴ cells)."""
        if self.cells_written == 0:
            return 0.0
        return self.count_bytes_written / self.cells_written


class SymbolStreamReader:
    """Parses a byte stream produced by :class:`SymbolStreamWriter`."""

    def __init__(self, codec: SymbolCodec) -> None:
        self.codec = codec
        self._buffer = bytearray()
        self._header_parsed = False
        self.set_size: Optional[int] = None
        self.index = 0

    def feed(self, data: bytes) -> list[CodedSymbol]:
        """Append bytes; return every cell that became complete."""
        bank = CodedSymbolBank()
        self.feed_into(bank, data)
        return bank.cells()

    def feed_into(self, bank: CodedSymbolBank, data: bytes) -> int:
        """Append bytes; parse every completed cell straight into ``bank``'s
        lanes (no cell objects).  Returns the number of cells appended."""
        self._buffer.extend(data)
        if not self._header_parsed and not self._try_parse_header():
            return 0
        codec = self.codec
        symbol_size = codec.symbol_size
        fixed = symbol_size + codec.checksum_size
        decode_svarint = varint.decode_svarint
        from_bytes = int.from_bytes
        sums = bank.sums
        checksums = bank.checksums
        counts = bank.counts
        set_size = self.set_size
        assert set_size is not None
        appended = 0
        buf = bytes(self._buffer)
        pos = 0
        end = len(buf)
        while end - pos >= fixed + 1:
            try:
                delta, after = decode_svarint(buf, pos + fixed)
            except ValueError:
                # Distinguish truncation (wait for more bytes) from a
                # corrupted varint that no amount of further data can
                # complete — the latter must fail loudly, not stall the
                # stream while the buffer grows without bound.
                if end - (pos + fixed) >= _MAX_VARINT_BYTES:
                    raise ValueError(
                        f"corrupt count varint at cell {self.index}"
                    ) from None
                break  # count varint still incomplete
            sums.append(from_bytes(buf[pos : pos + symbol_size], "little"))
            checksums.append(from_bytes(buf[pos + symbol_size : pos + fixed], "little"))
            counts.append(delta + expected_count(codec, set_size, self.index))
            self.index += 1
            appended += 1
            pos = after
        if pos:
            del self._buffer[:pos]
        return appended

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete cell (or header)."""
        return len(self._buffer)

    def finish(self) -> None:
        """Assert the stream ended on a cell boundary.

        Call when the byte source is exhausted (EOF, peer disconnect): a
        stream cut mid-header or mid-cell raises ``ValueError`` instead of
        silently dropping the partial tail.
        """
        if not self._header_parsed:
            raise ValueError("truncated stream: header incomplete")
        if self._buffer:
            raise ValueError(
                f"truncated stream: {len(self._buffer)} bytes of a partial "
                f"cell after cell {self.index - 1}"
            )

    def _try_parse_header(self) -> bool:
        buf = bytes(self._buffer)
        if len(buf) < len(MAGIC):
            return False
        if buf[: len(MAGIC)] != MAGIC:
            raise ValueError("bad stream magic")
        try:
            pos = len(MAGIC)
            symbol_size, pos = varint.decode_uvarint(buf, pos)
            checksum_size, pos = varint.decode_uvarint(buf, pos)
            set_size, pos = varint.decode_uvarint(buf, pos)
            start_index, pos = varint.decode_uvarint(buf, pos)
        except ValueError:
            return False  # header still incomplete
        if symbol_size != self.codec.symbol_size:
            raise ValueError(
                f"symbol size mismatch: stream={symbol_size}, "
                f"codec={self.codec.symbol_size}"
            )
        if checksum_size != self.codec.checksum_size:
            raise ValueError(
                f"checksum size mismatch: stream={checksum_size}, "
                f"codec={self.codec.checksum_size}"
            )
        self.set_size = set_size
        self.index = start_index
        del self._buffer[:pos]
        self._header_parsed = True
        return True

def encode_stream(
    codec: SymbolCodec,
    set_size: int,
    cells: "Iterable[CodedSymbol] | CodedSymbolBank",
    start_index: int = 0,
) -> bytes:
    """One-shot serialisation: header followed by every cell.

    Accepts a :class:`CodedSymbolBank` directly (block fast path) or any
    iterable of cells.
    """
    writer = SymbolStreamWriter(codec, set_size, start_index)
    if not isinstance(cells, CodedSymbolBank):
        cells = CodedSymbolBank.from_cells(cells)
    return writer.header() + writer.write_block(cells)


def decode_stream(codec: SymbolCodec, data: bytes) -> tuple[list[CodedSymbol], int]:
    """One-shot parse; returns ``(cells, set_size)``."""
    reader = SymbolStreamReader(codec)
    cells = reader.feed(data)
    reader.finish()
    assert reader.set_size is not None
    return cells, reader.set_size


def iter_stream(codec: SymbolCodec, chunks: Iterable[bytes]) -> Iterator[CodedSymbol]:
    """Parse an iterable of byte chunks into cells, streaming."""
    reader = SymbolStreamReader(codec)
    for chunk in chunks:
        yield from reader.feed(chunk)


def cell_wire_size(codec: SymbolCodec, count_delta: int = 0) -> int:
    """Bytes one cell occupies on the wire given its count delta."""
    return (
        codec.symbol_size
        + codec.checksum_size
        + len(varint.encode_svarint(count_delta))
    )
