"""Wire format for coded-symbol streams (paper §6).

Layout::

    header  :=  magic "RIB1" | uvarint symbol_size | uvarint checksum_bytes
              | uvarint set_size | uvarint start_index
    cell    :=  sum (ℓ bytes, little endian)
              | checksum (checksum_bytes, little endian)
              | svarint(count − expected_count)

The §6 trick: the ``count`` of the ``i``-th coded symbol of an ``n``-item
set concentrates around ``n·ρ(i)``, so we transmit only the (small, signed)
difference from that expectation as a variable-length integer — ≈1 byte per
cell instead of a fixed 8, given that the receiver learns ``n`` from the
header and knows ``i`` from stream position.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core import varint
from repro.core.cellbank import (
    NUMPY_LANE,
    PACK_MIN_CELLS,
    CodedSymbolBank,
    _np,
    numpy_block_eligible,
)
from repro.core.coded import CodedSymbol
from repro.core.symbols import SymbolCodec

MAGIC = b"RIB1"

# Above this the float64 products in the vectorised expected-count
# computation could round differently from exact integer arithmetic, so
# such (absurd) set sizes stay on the scalar engine.
_MAX_VECTOR_SET_SIZE = 1 << 53

# LEB128 never legitimately needs more than 10 bytes for a 64-bit value;
# a count varint that is still "incomplete" with this many bytes buffered
# is corruption, not truncation.
_MAX_VARINT_BYTES = 10


def expected_count(codec: SymbolCodec, set_size: int, index: int) -> int:
    """E[count] of coded cell ``index`` for a ``set_size``-item set:
    ``n·ρ(i)``, subset-averaged in the irregular case (§8)."""
    if codec.irregular is None:
        rho = 1.0 / (1.0 + 0.5 * index)
    else:
        rho = codec.irregular.mean_rho(index)
    return round(set_size * rho)


def _expected_counts_vector(codec: SymbolCodec, set_size: int, start: int, n: int):
    """``expected_count`` for indices ``[start, start+n)`` as an int64 array.

    Element-for-element identical to the scalar function: the regular-codec
    branch evaluates the same ``rho`` expression per lane (``np.rint``
    matches Python ``round``'s half-to-even on these magnitudes), and the
    irregular branch simply calls the scalar function per index.
    """
    np = _np
    if codec.irregular is None:
        idx = np.arange(start, start + n, dtype=np.float64)
        rho = 1.0 / (1.0 + 0.5 * idx)
        return np.rint(float(set_size) * rho).astype(np.int64)
    return np.array(
        [expected_count(codec, set_size, start + i) for i in range(n)],
        dtype=np.int64,
    )


class SymbolStreamWriter:
    """Serialises a coded-symbol stream incrementally."""

    def __init__(self, codec: SymbolCodec, set_size: int, start_index: int = 0) -> None:
        self.codec = codec
        self.set_size = set_size
        self.index = start_index
        self.start_index = start_index
        self.bytes_written = 0
        self.count_bytes_written = 0
        self.cells_written = 0

    def header(self) -> bytes:
        """The stream header (send once, before any cell)."""
        blob = (
            MAGIC
            + varint.encode_uvarint(self.codec.symbol_size)
            + varint.encode_uvarint(self.codec.checksum_size)
            + varint.encode_uvarint(self.set_size)
            + varint.encode_uvarint(self.start_index)
        )
        self.bytes_written += len(blob)
        return blob

    def write(self, cell: CodedSymbol) -> bytes:
        """Serialise the next cell; the index advances implicitly."""
        codec = self.codec
        count_delta = cell.count - expected_count(codec, self.set_size, self.index)
        count_blob = varint.encode_svarint(count_delta)
        blob = (
            cell.sum.to_bytes(codec.symbol_size, "little")
            + cell.checksum.to_bytes(codec.checksum_size, "little")
            + count_blob
        )
        self.index += 1
        self.cells_written += 1
        self.bytes_written += len(blob)
        self.count_bytes_written += len(count_blob)
        return blob

    def write_block(self, bank: CodedSymbolBank) -> bytes:
        """Serialise a whole bank of cells; byte-identical to per-cell
        :meth:`write` calls, without materialising cell objects.

        Under NumPy, blocks whose count deltas all fit a single zigzag
        byte (the overwhelmingly common case — §6's point is that deltas
        concentrate near zero) are emitted as one ``(n, ℓ+checksum+1)``
        uint8 matrix dump; any wider delta, lane overflow, or ineligible
        codec falls back to the scalar loop for the whole block.
        """
        codec = self.codec
        if (
            NUMPY_LANE
            and _np is not None
            and len(bank) >= PACK_MIN_CELLS
            and numpy_block_eligible(codec)
            and self.set_size < _MAX_VECTOR_SET_SIZE
        ):
            blob = self._write_block_numpy(bank)
            if blob is not None:
                n = len(bank)
                self.index += n
                self.cells_written += n
                self.bytes_written += len(blob)
                self.count_bytes_written += n  # one zigzag byte per cell
                return blob
        symbol_size = codec.symbol_size
        checksum_size = codec.checksum_size
        set_size = self.set_size
        encode_svarint = varint.encode_svarint
        index = self.index
        count_bytes = 0
        parts = []
        for cell_sum, cell_checksum, cell_count in zip(
            bank.sums, bank.checksums, bank.counts
        ):
            count_blob = encode_svarint(
                cell_count - expected_count(codec, set_size, index)
            )
            parts.append(cell_sum.to_bytes(symbol_size, "little"))
            parts.append(cell_checksum.to_bytes(checksum_size, "little"))
            parts.append(count_blob)
            count_bytes += len(count_blob)
            index += 1
        blob = b"".join(parts)
        self.index = index
        self.cells_written += len(bank)
        self.bytes_written += len(blob)
        self.count_bytes_written += count_bytes
        return blob

    def _write_block_numpy(self, bank: CodedSymbolBank) -> Optional[bytes]:
        """Vectorised :meth:`write_block` engine.

        Returns ``None`` whenever the block cannot be proven to serialise
        exactly as the scalar loop would — a count delta needing a
        multibyte varint, a sum/checksum that does not fit its field
        (the scalar engine then raises the canonical ``OverflowError``),
        or non-integer lane contents.
        """
        np = _np
        codec = self.codec
        ssize = codec.symbol_size
        csize = codec.checksum_size
        n = len(bank.sums)
        expected = _expected_counts_vector(codec, self.set_size, self.index, n)
        try:
            counts = np.array(bank.counts, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            return None
        delta = counts - expected
        zigzag = np.where(delta >= 0, delta * 2, (-delta) * 2 - 1)
        if int(zigzag.max(initial=0)) >= 0x80:
            return None  # some count needs a multibyte varint
        stride = ssize + csize + 1
        out = np.zeros((n, stride), dtype=np.uint8)

        def byte_columns(values, width: int):
            # Little-endian byte matrix of a uint64-per-row lane; None if
            # any value falls outside [0, 2**(8*width)).
            try:
                arr = np.array(values, dtype=np.uint64)
            except (OverflowError, TypeError, ValueError):
                return None
            if width < 8 and int(arr.max(initial=0)) >> (8 * width):
                return None
            return arr.astype("<u8").view(np.uint8).reshape(n, 8)[:, :width]

        if ssize <= 8:
            cols = byte_columns(bank.sums, ssize)
            if cols is None:
                return None
            out[:, :ssize] = cols
        else:
            try:
                lo = [s & 0xFFFFFFFFFFFFFFFF for s in bank.sums]
                hi = [s >> 64 for s in bank.sums]
            except TypeError:
                return None
            lo_cols = byte_columns(lo, 8)
            hi_cols = byte_columns(hi, ssize - 8)
            if lo_cols is None or hi_cols is None:
                return None
            out[:, :8] = lo_cols
            out[:, 8:ssize] = hi_cols
        check_cols = byte_columns(bank.checksums, csize)
        if check_cols is None:
            return None
        out[:, ssize : ssize + csize] = check_cols
        out[:, ssize + csize] = zigzag.astype(np.uint8)
        return out.tobytes()

    @property
    def mean_count_bytes(self) -> float:
        """Average bytes spent on the compressed count field per cell
        (the §6 claim: ≈1.05 bytes for 10⁶ items / 10⁴ cells)."""
        if self.cells_written == 0:
            return 0.0
        return self.count_bytes_written / self.cells_written


class SymbolStreamReader:
    """Parses a byte stream produced by :class:`SymbolStreamWriter`."""

    def __init__(self, codec: SymbolCodec) -> None:
        self.codec = codec
        self._buffer = bytearray()
        self._header_parsed = False
        self.set_size: Optional[int] = None
        self.index = 0

    def feed(self, data: bytes) -> list[CodedSymbol]:
        """Append bytes; return every cell that became complete."""
        bank = CodedSymbolBank()
        self.feed_into(bank, data)
        return bank.cells()

    def feed_into(self, bank: CodedSymbolBank, data: bytes) -> int:
        """Append bytes; parse every completed cell straight into ``bank``'s
        lanes (no cell objects).  Returns the number of cells appended.

        Under NumPy, the maximal prefix of whole cells whose count varint
        is a single byte is parsed as one reshaped uint8 matrix (the
        mirror of :meth:`SymbolStreamWriter.write_block`'s fast path);
        the scalar loop then handles any multibyte-varint, partial, or
        corrupt tail exactly as before.
        """
        self._buffer.extend(data)
        if not self._header_parsed and not self._try_parse_header():
            return 0
        codec = self.codec
        symbol_size = codec.symbol_size
        fixed = symbol_size + codec.checksum_size
        decode_svarint = varint.decode_svarint
        from_bytes = int.from_bytes
        sums = bank.sums
        checksums = bank.checksums
        counts = bank.counts
        set_size = self.set_size
        assert set_size is not None
        appended = 0
        buf = bytes(self._buffer)
        pos = 0
        end = len(buf)
        if (
            NUMPY_LANE
            and _np is not None
            and end >= (fixed + 1) * PACK_MIN_CELLS
            and numpy_block_eligible(codec)
            and set_size < _MAX_VECTOR_SET_SIZE
        ):
            parsed, pos = self._feed_numpy(bank, buf)
            appended += parsed
        while end - pos >= fixed + 1:
            try:
                delta, after = decode_svarint(buf, pos + fixed)
            except ValueError:
                # Distinguish truncation (wait for more bytes) from a
                # corrupted varint that no amount of further data can
                # complete — the latter must fail loudly, not stall the
                # stream while the buffer grows without bound.
                if end - (pos + fixed) >= _MAX_VARINT_BYTES:
                    raise ValueError(
                        f"corrupt count varint at cell {self.index}"
                    ) from None
                break  # count varint still incomplete
            sums.append(from_bytes(buf[pos : pos + symbol_size], "little"))
            checksums.append(from_bytes(buf[pos + symbol_size : pos + fixed], "little"))
            counts.append(delta + expected_count(codec, set_size, self.index))
            self.index += 1
            appended += 1
            pos = after
        if pos:
            del self._buffer[:pos]
        return appended

    def _feed_numpy(self, bank: CodedSymbolBank, buf: bytes) -> tuple[int, int]:
        """Vector-parse the maximal aligned prefix of single-byte-varint
        cells from ``buf``.  Returns ``(cells_appended, bytes_consumed)``;
        ``(0, 0)`` when the prefix is too short to beat the scalar loop.

        Only cells up to (but not including) the first count byte with
        the continuation bit set are taken, so multibyte varints — and any
        corrupt ones — are always left to the scalar reference parser.
        """
        np = _np
        codec = self.codec
        ssize = codec.symbol_size
        csize = codec.checksum_size
        fixed = ssize + csize
        stride = fixed + 1
        nmax = len(buf) // stride
        arr = np.frombuffer(buf, dtype=np.uint8)
        count_bytes = arr[fixed::stride][:nmax]
        multibyte = np.nonzero(count_bytes & 0x80)[0]
        limit = int(multibyte[0]) if multibyte.size else nmax
        if limit < PACK_MIN_CELLS:
            return 0, 0
        mat = arr[: limit * stride].reshape(limit, stride)

        def lane(col: int, width: int):
            # Zero-padded little-endian uint64 view of one lane's bytes.
            pad = np.zeros((limit, 8), dtype=np.uint8)
            pad[:, :width] = mat[:, col : col + width]
            return pad.view("<u8").ravel()

        if ssize <= 8:
            sums = lane(0, ssize).tolist()
        else:
            hi = lane(8, ssize - 8).tolist()
            sums = [int(lo) | (h << 64) for lo, h in zip(lane(0, 8).tolist(), hi)]
        checks = lane(ssize, csize).tolist()
        zigzag = count_bytes[:limit].astype(np.int64)
        delta = np.where(zigzag & 1, -((zigzag + 1) >> 1), zigzag >> 1)
        assert self.set_size is not None
        expected = _expected_counts_vector(codec, self.set_size, self.index, limit)
        bank.sums.extend(sums)
        bank.checksums.extend(checks)
        bank.counts.extend((delta + expected).tolist())
        self.index += limit
        return limit, limit * stride

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete cell (or header)."""
        return len(self._buffer)

    def finish(self) -> None:
        """Assert the stream ended on a cell boundary.

        Call when the byte source is exhausted (EOF, peer disconnect): a
        stream cut mid-header or mid-cell raises ``ValueError`` instead of
        silently dropping the partial tail.
        """
        if not self._header_parsed:
            raise ValueError("truncated stream: header incomplete")
        if self._buffer:
            raise ValueError(
                f"truncated stream: {len(self._buffer)} bytes of a partial "
                f"cell after cell {self.index - 1}"
            )

    def _try_parse_header(self) -> bool:
        buf = bytes(self._buffer)
        if len(buf) < len(MAGIC):
            return False
        if buf[: len(MAGIC)] != MAGIC:
            raise ValueError("bad stream magic")
        try:
            pos = len(MAGIC)
            symbol_size, pos = varint.decode_uvarint(buf, pos)
            checksum_size, pos = varint.decode_uvarint(buf, pos)
            set_size, pos = varint.decode_uvarint(buf, pos)
            start_index, pos = varint.decode_uvarint(buf, pos)
        except ValueError:
            return False  # header still incomplete
        if symbol_size != self.codec.symbol_size:
            raise ValueError(
                f"symbol size mismatch: stream={symbol_size}, "
                f"codec={self.codec.symbol_size}"
            )
        if checksum_size != self.codec.checksum_size:
            raise ValueError(
                f"checksum size mismatch: stream={checksum_size}, "
                f"codec={self.codec.checksum_size}"
            )
        self.set_size = set_size
        self.index = start_index
        del self._buffer[:pos]
        self._header_parsed = True
        return True

def encode_stream(
    codec: SymbolCodec,
    set_size: int,
    cells: "Iterable[CodedSymbol] | CodedSymbolBank",
    start_index: int = 0,
) -> bytes:
    """One-shot serialisation: header followed by every cell.

    Accepts a :class:`CodedSymbolBank` directly (block fast path) or any
    iterable of cells.
    """
    writer = SymbolStreamWriter(codec, set_size, start_index)
    if not isinstance(cells, CodedSymbolBank):
        cells = CodedSymbolBank.from_cells(cells)
    return writer.header() + writer.write_block(cells)


def decode_stream(codec: SymbolCodec, data: bytes) -> tuple[list[CodedSymbol], int]:
    """One-shot parse; returns ``(cells, set_size)``."""
    reader = SymbolStreamReader(codec)
    cells = reader.feed(data)
    reader.finish()
    assert reader.set_size is not None
    return cells, reader.set_size


def iter_stream(codec: SymbolCodec, chunks: Iterable[bytes]) -> Iterator[CodedSymbol]:
    """Parse an iterable of byte chunks into cells, streaming."""
    reader = SymbolStreamReader(codec)
    for chunk in chunks:
        yield from reader.feed(chunk)


def cell_wire_size(codec: SymbolCodec, count_delta: int = 0) -> int:
    """Bytes one cell occupies on the wire given its count delta."""
    return (
        codec.symbol_size
        + codec.checksum_size
        + len(varint.encode_svarint(count_delta))
    )
