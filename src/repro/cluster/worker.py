"""Cluster worker process: one shard subset, one server, one journal.

Each worker the supervisor spawns runs this module's :func:`main`: it
opens the shared data directory restricted to its striped shard subset
(:func:`repro.cluster.topology.worker_shards`), journals its churn to a
private segment (``journal.<worker>.log``) so concurrent workers never
interleave writes in one file, and serves sessions whose WELCOME
carries the pool's :class:`~repro.protocol.ClusterInfo` routing tail.

The worker prints exactly one ``READY <port>`` line on stdout once it
is accepting — the supervisor blocks on that line rather than polling
the port — and exits on SIGTERM after a bounded graceful drain.  An
armed :class:`~repro.durable.SimulatedCrash` (``REPRO_CRASH_POINT``)
deliberately escapes the sans-io machine's guard; the session shell
turns it into an immediate ``os._exit(CRASH_EXIT_CODE)`` so fault
tests kill a *real* process mid-write, torn page and all.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from typing import Optional

from repro.cluster.topology import worker_shards
from repro.durable import DurableConfig, SimulatedCrash, open_durable
from repro.durable.store import journal_segment_name
from repro.protocol.events import ClusterInfo
from repro.service.server import ReconciliationServer, ServerConfig

CRASH_EXIT_CODE = 70
"""Exit status of a worker felled by an injected ``SimulatedCrash``
(distinct from signal deaths, so the supervisor's logs can tell fault
injection from a SIGKILL)."""


class WorkerServer(ReconciliationServer):
    """A :class:`ReconciliationServer` that dies honestly when crashed.

    ``SimulatedCrash`` is a ``BaseException`` precisely so the protocol
    machine's guard cannot swallow it — but inside an asyncio session
    task it would merely kill that task.  A real crash kills the
    *process* with the journal mid-write; ``os._exit`` reproduces that
    (no ``atexit``, no buffered flushes, no graceful close).
    """

    async def _on_connection(self, reader, writer) -> None:
        try:
            await super()._on_connection(reader, writer)
        except SimulatedCrash:
            os._exit(CRASH_EXIT_CODE)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster-worker",
        description="one worker of a repro.cluster pool (spawned by the "
        "supervisor; not intended for direct use)",
    )
    parser.add_argument("--data-dir", required=True)
    parser.add_argument("--worker", type=int, required=True)
    parser.add_argument("--num-workers", type=int, required=True)
    parser.add_argument("--total-shards", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True,
                        help="this worker's private port")
    parser.add_argument("--ports", required=True,
                        help="comma-separated private ports of all workers, "
                        "in worker order (the WELCOME routing tail)")
    parser.add_argument("--entry-port", type=int, default=0,
                        help="shared SO_REUSEPORT entry port; 0 = none "
                        "(per-worker-port fallback mode)")
    parser.add_argument("--block-size", type=int, default=64)
    parser.add_argument("--max-symbols", type=int, default=1 << 17,
                        help="per-session per-shard symbol budget; 0 = off")
    parser.add_argument("--idle-timeout", type=float, default=60.0,
                        help="session idle deadline in seconds; 0 = off")
    parser.add_argument("--max-clients", type=int, default=-1,
                        help="concurrent-session admission cap; -1 = off "
                        "(0 is legal: drain mode, shed every connection)")
    parser.add_argument("--peer-rate", type=float, default=0.0,
                        help="per-peer-host connections/second; 0 = off")
    parser.add_argument("--peer-burst", type=int, default=8,
                        help="per-peer token-bucket burst capacity")
    parser.add_argument("--max-session-bytes", type=int, default=-1,
                        help="served-byte bound per session; -1 = off")
    parser.add_argument("--busy-retry-after", type=float, default=None,
                        help="retry-after hint (seconds) in BUSY sheds")
    parser.add_argument("--no-fsync", action="store_true")
    return parser


async def run(args: argparse.Namespace) -> int:
    owned = list(
        worker_shards(args.total_shards, args.num_workers, args.worker)
    )
    backend = open_durable(
        args.data_dir,
        shard_subset=owned,
        journal_name=journal_segment_name(args.worker),
        # Workers never checkpoint (a snapshot covering only a subset
        # would corrupt the shared store); the supervisor folds
        # segments into one on the next full open.
        config=DurableConfig(checkpoint_every=None, fsync=not args.no_fsync),
    )
    config = ServerConfig(
        block_size=args.block_size,
        max_symbols_per_shard=args.max_symbols or None,
        idle_timeout=args.idle_timeout or None,
        max_concurrent_sessions=(
            None if args.max_clients < 0 else args.max_clients
        ),
        per_peer_rate=args.peer_rate or None,
        per_peer_burst=args.peer_burst,
        max_session_bytes=(
            None if args.max_session_bytes < 0 else args.max_session_bytes
        ),
    )
    if args.busy_retry_after is not None:
        config.busy_retry_after = args.busy_retry_after
    server = WorkerServer(backend=backend, config=config)
    server.cluster = ClusterInfo(
        num_workers=args.num_workers,
        worker_index=args.worker,
        total_shards=args.total_shards,
        ports=tuple(int(p) for p in args.ports.split(",")),
    )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)

    await server.start(args.host, args.port)
    if args.entry_port:
        await server.listen(args.host, args.entry_port, reuse_port=True)
    print(f"READY {server.port}", flush=True)
    try:
        await stop.wait()
    finally:
        await server.drain(timeout=5.0)
        backend.close()
    return 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(run(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
