"""The cluster supervisor: spawn, monitor, restart, drain N workers.

:class:`ClusterSupervisor` turns one durable data directory into a
multi-process reconciliation pool.  Boot is a full
:func:`~repro.durable.open_durable` — which folds any per-worker
journal segments left by a previous run — followed by an unconditional
checkpoint, so every worker's subset open starts from fresh snapshots
and an empty base journal.  Workers are then spawned as real
subprocesses (``python -m repro.cluster.worker``), each owning the
striped shard subset of :func:`~repro.cluster.topology.worker_shards`
and journalling churn to its private ``journal.<worker>.log`` segment.

Routing needs no coordinator on the data path: every worker's WELCOME
carries the same :class:`~repro.protocol.ClusterInfo` tail (worker
count, its own index, total shards, the private-port table), and
:func:`repro.service.client.sync` fans out from whichever worker
answered the entry address.  Two entry modes:

``SO_REUSEPORT`` (where available)
    All workers additionally ``listen()`` on one shared entry port;
    the kernel load-balances accepted connections across them.

per-worker-port fallback
    The entry address is worker 0's private port; clients learn the
    sibling ports from the WELCOME tail and dial them directly.

A worker that dies unexpectedly (SIGKILL, injected crash) is restarted
on the same port with bounded backoff; recovery replays only that
worker's segment, so the restart is warm and touches nothing the
surviving workers own.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import signal
import socket
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional

from repro.cluster.topology import worker_shards
from repro.durable import DurableConfig, open_durable
from repro.service.defaults import with_service_hasher

MANIFEST_NAME = "MANIFEST.json"


class ClusterError(RuntimeError):
    """Supervisor-level failure (worker never came up, bad topology)."""


def reuse_port_available() -> bool:
    """Whether this platform supports ``SO_REUSEPORT`` load balancing."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:
        return False
    return True


def _free_port(host: str) -> int:
    """An ephemeral port that was free a moment ago (bind-and-release)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


@dataclass
class ClusterConfig:
    """Pool-level knobs (per-session knobs ride along to the workers)."""

    num_workers: int = 2
    host: str = "127.0.0.1"
    entry_port: int = 0
    """The port clients dial; 0 picks an ephemeral one."""
    block_size: int = 64
    max_symbols_per_shard: Optional[int] = 1 << 17
    idle_timeout: Optional[float] = 60.0
    fsync: bool = True
    reuse_port: Optional[bool] = None
    """``None`` auto-detects; ``True`` requires ``SO_REUSEPORT``;
    ``False`` forces the per-worker-port fallback."""
    max_restarts: int = 5
    """Per-worker unexpected-death budget before the pool gives up."""
    restart_backoff: float = 0.1
    ready_timeout: float = 30.0
    drain_timeout: float = 5.0
    max_concurrent_sessions: Optional[int] = None
    """Per-worker admission cap (see
    :class:`~repro.service.server.ServerConfig`); excess HELLOs are
    answered with a ``BUSY`` shed instead of queueing."""
    per_peer_rate: Optional[float] = None
    """Per-worker per-peer-host connection rate (token bucket)."""
    per_peer_burst: int = 8
    max_session_bytes: Optional[int] = None
    """Per-worker per-session served-byte bound before a mid-stream shed."""
    busy_retry_after: Optional[float] = None
    """Retry-after hint stamped into worker ``BUSY`` frames; ``None``
    keeps :data:`~repro.service.defaults.DEFAULT_BUSY_RETRY_AFTER`."""
    advertise_ports: Optional[List[int]] = None
    """Ports published in the WELCOME routing tail *instead of* the
    workers' real bind ports — one per worker.  This is how a fault
    proxy (:mod:`repro.chaos`) interposes on cluster fan-out: workers
    bind their private ports, clients are routed through the proxies."""


class ClusterSupervisor:
    """Spawn and babysit a pool of worker processes over one data dir.

    ``items``/``scheme``/``num_shards``/``params`` seed a fresh data
    directory exactly as :class:`~repro.service.server
    .ReconciliationServer` would (service hasher default included, so a
    ``workers=N`` pool is byte-identical to a ``workers=1`` server);
    an existing directory is recovered and the seed must match it.
    ``num_shards=0`` on a fresh store defaults to one shard per worker.
    Without ``data_dir`` the pool runs on an ephemeral directory
    (removed in :meth:`close`) with ``fsync`` off unless configured.
    """

    def __init__(
        self,
        items: Iterable[bytes] = (),
        *,
        data_dir: Optional[object] = None,
        scheme: str = "riblt",
        num_shards: int = 0,
        config: Optional[ClusterConfig] = None,
        durable: Optional[DurableConfig] = None,
        **params: object,
    ) -> None:
        self.config = config or ClusterConfig()
        if self.config.num_workers < 1:
            raise ClusterError("num_workers must be >= 1")
        self._ephemeral = data_dir is None
        if self._ephemeral:
            data_dir = tempfile.mkdtemp(prefix="repro-cluster-")
            if durable is None:
                durable = DurableConfig(fsync=False)
        self.data_dir = Path(data_dir)
        self._seed_items = list(items)
        self._scheme = scheme
        self._num_shards = num_shards
        self._durable = durable
        self._params = dict(params)
        self.total_shards: int = 0
        self.ports: List[int] = []
        self.entry_port: int = 0
        self._reuse = False
        self._procs: List[Optional[asyncio.subprocess.Process]] = []
        self._monitors: List[asyncio.Task] = []
        self._restarts: List[int] = []
        self._exit_codes: List[List[int]] = []
        self._closing = False
        self._started = False
        self._failed = asyncio.Event()
        self._failure: Optional[BaseException] = None

    # -- boot --------------------------------------------------------------

    async def start(self) -> tuple:
        """Initialise the store, spawn every worker, await their READYs.

        Returns the entry ``(host, port)`` clients should dial.
        """
        if self._started:
            raise ClusterError("cluster already started")
        self._started = True
        cfg = self.config
        self.total_shards = await asyncio.to_thread(self._prepare_store)
        if self.total_shards < cfg.num_workers:
            raise ClusterError(
                f"{self.total_shards} shards cannot feed "
                f"{cfg.num_workers} workers (need >= 1 shard each)"
            )
        if cfg.reuse_port is None:
            self._reuse = reuse_port_available()
        else:
            self._reuse = cfg.reuse_port
            if self._reuse and not reuse_port_available():
                raise ClusterError("SO_REUSEPORT requested but unavailable")
        if (
            cfg.advertise_ports is not None
            and len(cfg.advertise_ports) != cfg.num_workers
        ):
            raise ClusterError(
                f"advertise_ports has {len(cfg.advertise_ports)} entries "
                f"for {cfg.num_workers} workers"
            )
        self.ports = [_free_port(cfg.host) for _ in range(cfg.num_workers)]
        if self._reuse:
            self.entry_port = cfg.entry_port or _free_port(cfg.host)
        else:
            if cfg.entry_port:
                # Fallback mode has no separate entry socket: the entry
                # address IS worker 0's private port.
                self.ports[0] = cfg.entry_port
            self.entry_port = self.ports[0]
        self._procs = [None] * cfg.num_workers
        self._restarts = [0] * cfg.num_workers
        self._exit_codes = [[] for _ in range(cfg.num_workers)]
        for index in range(cfg.num_workers):
            self._procs[index] = await self._spawn(index)
        for index in range(cfg.num_workers):
            await self._wait_ready(index)
        self._monitors = [
            asyncio.ensure_future(self._monitor(index))
            for index in range(cfg.num_workers)
        ]
        return (cfg.host, self.entry_port)

    def _prepare_store(self) -> int:
        """Full open (folds stale segments), checkpoint, report shards."""
        fresh = not (self.data_dir / MANIFEST_NAME).exists()
        params = dict(self._params)
        if fresh:
            params = with_service_hasher(self._scheme, params)
        num_shards = self._num_shards
        if fresh and num_shards == 0:
            num_shards = self.config.num_workers
        backend = open_durable(
            self.data_dir,
            self._seed_items,
            scheme=self._scheme,
            num_shards=num_shards,
            config=self._durable,
            **params,
        )
        try:
            # Unconditional: subset opens replay only their own segment,
            # so the base journal must be empty when workers start.
            backend.checkpoint()
            return backend.num_shards
        finally:
            backend.close()

    async def _spawn(self, index: int) -> asyncio.subprocess.Process:
        cfg = self.config
        advertised = cfg.advertise_ports or self.ports
        argv = [
            sys.executable,
            "-m",
            "repro.cluster.worker",
            "--data-dir", str(self.data_dir),
            "--worker", str(index),
            "--num-workers", str(cfg.num_workers),
            "--total-shards", str(self.total_shards),
            "--host", cfg.host,
            "--port", str(self.ports[index]),
            "--ports", ",".join(str(p) for p in advertised),
            "--entry-port", str(self.entry_port if self._reuse else 0),
            "--block-size", str(cfg.block_size),
            "--max-symbols", str(cfg.max_symbols_per_shard or 0),
            "--idle-timeout", str(cfg.idle_timeout or 0),
            # -1 = unlimited: a cap of 0 is legal (drain mode, shed all).
            "--max-clients", str(
                -1 if cfg.max_concurrent_sessions is None
                else cfg.max_concurrent_sessions
            ),
            "--peer-rate", str(cfg.per_peer_rate or 0),
            "--peer-burst", str(cfg.per_peer_burst),
            "--max-session-bytes", str(
                -1 if cfg.max_session_bytes is None else cfg.max_session_bytes
            ),
        ]
        if cfg.busy_retry_after is not None:
            argv += ["--busy-retry-after", str(cfg.busy_retry_after)]
        fsync = cfg.fsync and (
            self._durable.fsync if self._durable is not None else True
        )
        if not fsync:
            argv.append("--no-fsync")
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        return await asyncio.create_subprocess_exec(
            *argv, stdout=asyncio.subprocess.PIPE, env=env
        )

    async def _wait_ready(self, index: int) -> None:
        proc = self._procs[index]
        assert proc is not None and proc.stdout is not None
        try:
            line = await asyncio.wait_for(
                proc.stdout.readline(), timeout=self.config.ready_timeout
            )
        except asyncio.TimeoutError:
            line = b""
        text = line.decode("ascii", "replace").strip()
        if not text.startswith("READY "):
            proc.kill()
            await proc.wait()
            raise ClusterError(
                f"worker {index} never reported READY "
                f"(got {text!r}, exit {proc.returncode})"
            )
        port = int(text.split()[1])
        if port != self.ports[index]:
            proc.kill()
            await proc.wait()
            raise ClusterError(
                f"worker {index} bound port {port}, expected "
                f"{self.ports[index]}"
            )

    # -- supervision -------------------------------------------------------

    async def _monitor(self, index: int) -> None:
        """Restart worker ``index`` whenever it dies unexpectedly."""
        cfg = self.config
        while not self._closing:
            proc = self._procs[index]
            assert proc is not None
            code = await proc.wait()
            if self._closing:
                return
            self._exit_codes[index].append(code)
            self._restarts[index] += 1
            if self._restarts[index] > cfg.max_restarts:
                self._fail(
                    ClusterError(
                        f"worker {index} died {self._restarts[index]} times "
                        f"(last exit {code}); giving up"
                    )
                )
                return
            await asyncio.sleep(cfg.restart_backoff * self._restarts[index])
            if self._closing:
                return
            try:
                self._procs[index] = await self._spawn(index)
                await self._wait_ready(index)
            except ClusterError as exc:
                self._fail(exc)
                return

    def _fail(self, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc
        self._failed.set()

    async def wait(self) -> None:
        """Block until the pool gives up on a worker (or forever)."""
        await self._failed.wait()
        if self._failure is not None:
            raise self._failure

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Send ``sig`` to worker ``index`` (fault testing); returns its pid."""
        proc = self._procs[index]
        if proc is None or proc.returncode is not None:
            raise ClusterError(f"worker {index} is not running")
        proc.send_signal(sig)
        return proc.pid

    @property
    def entry_address(self) -> tuple:
        return (self.config.host, self.entry_port)

    @property
    def reuse_port_active(self) -> bool:
        """Whether the pool shares one ``SO_REUSEPORT`` entry socket
        (``False`` = per-worker-port fallback, entry = worker 0)."""
        return self._reuse

    @property
    def restart_counts(self) -> tuple:
        """How many times each worker has been restarted so far."""
        return tuple(self._restarts)

    @property
    def unexpected_exits(self) -> tuple:
        """Per worker, the exit codes of its unexpected deaths (fault
        tests assert a :data:`~repro.cluster.worker.CRASH_EXIT_CODE`
        here to prove an injected crash really killed the process)."""
        return tuple(tuple(codes) for codes in self._exit_codes)

    # -- shutdown ----------------------------------------------------------

    async def close(self) -> None:
        """Graceful drain: SIGTERM every worker, bounded wait, SIGKILL."""
        if self._closing:
            return
        self._closing = True
        for task in self._monitors:
            task.cancel()
        for task in self._monitors:
            try:
                await task
            except (asyncio.CancelledError, ClusterError):
                pass
        live = [
            proc
            for proc in self._procs
            if proc is not None and proc.returncode is None
        ]
        for proc in live:
            try:
                proc.terminate()
            except ProcessLookupError:
                pass
        if live:
            waits = [asyncio.ensure_future(p.wait()) for p in live]
            done, pending = await asyncio.wait(
                waits, timeout=self.config.drain_timeout
            )
            if pending:
                for proc in live:
                    if proc.returncode is None:
                        try:
                            proc.kill()
                        except ProcessLookupError:
                            pass
                await asyncio.gather(*pending)
        if self._ephemeral:
            await asyncio.to_thread(
                shutil.rmtree, self.data_dir, ignore_errors=True
            )

    async def __aenter__(self) -> "ClusterSupervisor":
        try:
            await self.start()
        except BaseException:
            await self.close()
            raise
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- introspection -----------------------------------------------------

    def shards_of(self, worker: int) -> range:
        """Global shards worker ``worker`` owns (striped topology)."""
        return worker_shards(
            self.total_shards, self.config.num_workers, worker
        )
