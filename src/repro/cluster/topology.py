"""Shard-to-worker assignment: the striped topology every peer derives.

Worker ``w`` of ``N`` owns exactly the global shards
``{g : g % N == w}`` — a pure function of ``(total_shards,
num_workers)``, so the supervisor, every worker, and every client
compute identical assignments from the three integers a cluster
WELCOME tail carries (:class:`repro.protocol.ClusterInfo`); no routing
table crosses the wire.  Striping (rather than contiguous ranges)
keeps worker loads balanced whatever ``total_shards % num_workers``
is, and a worker's *local* shard index is simply ``g // N`` — the
dense order :func:`worker_shards` yields them in.
"""

from __future__ import annotations


def worker_shards(total_shards: int, num_workers: int, worker: int) -> range:
    """The global shards worker ``worker`` owns, in local-index order."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if not 0 <= worker < num_workers:
        raise ValueError(f"worker {worker} outside [0, {num_workers})")
    if total_shards < num_workers:
        raise ValueError(
            f"{total_shards} shards cannot cover {num_workers} workers"
        )
    return range(worker, total_shards, num_workers)


def worker_of_shard(shard: int, num_workers: int) -> int:
    """The worker owning global shard ``shard``."""
    return shard % num_workers
