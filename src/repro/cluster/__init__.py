"""``repro.cluster`` — a multi-process worker pool serving shards across cores.

One :class:`ClusterSupervisor` spawns N real worker processes, each a
:class:`~repro.service.server.ReconciliationServer` over the striped
shard subset ``{g : g % N == w}`` (:mod:`repro.cluster.topology`),
all sharing one durable data directory: workers journal churn to
private ``journal.<worker>.log`` segments and a crashed worker is
restarted warm from *its* segment alone.  Clients need no new API —
:func:`repro.service.client.sync` reads the pool's routing tail from
whichever worker answers the entry address and fans out to the
siblings transparently, merging per-worker results into one
:class:`~repro.service.client.SyncResult` that is byte-identical to a
single-process server over the same set.
"""

from repro.cluster.supervisor import (
    ClusterConfig,
    ClusterError,
    ClusterSupervisor,
    reuse_port_available,
)
from repro.cluster.topology import worker_of_shard, worker_shards

# repro.cluster.worker (WorkerServer, CRASH_EXIT_CODE) is deliberately
# NOT imported here: worker processes run `python -m
# repro.cluster.worker`, and a package-level import would load that
# module twice (runpy's double-import warning).

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterSupervisor",
    "reuse_port_available",
    "worker_of_shard",
    "worker_shards",
]
