"""repro — a from-scratch reproduction of *Practical Rateless Set
Reconciliation* (Yang, Gilad, Alizadeh; ACM SIGCOMM 2024).

Module map (one sub-package per system):

``repro.api``
    The unified scheme interface: a ``SetReconciler`` abstraction, a
    string-keyed registry of every scheme below, and the generic
    ``reconcile(a, b, scheme=...)`` driver.  Start here.
``repro.core``
    The paper's primary contribution: the Rateless IBLT codec
    (encoder, decoder, sketches, wire format, reconciliation sessions)
    plus the Irregular variant of §8.
``repro.hashing``
    Keyed 64-bit hashing (SipHash-2-4, BLAKE2b) and deterministic PRNGs.
``repro.baselines``
    Every scheme the paper compares against: regular IBLT, the strata
    estimator, MET-IBLT, PinSketch (BCH), CPI, and Merkle-trie state heal.
``repro.net``
    A discrete-event network simulator and the synchronization protocols
    of the Ethereum experiments (§7.3), scheme-generic via the registry.
``repro.ledger``
    A synthetic Ethereum-like ledger used as the §7.3 workload.
``repro.analysis``
    Density evolution (§5) and Monte Carlo harnesses for Figs 4-6 and 15.

Quickstart — any scheme, one call::

    from repro.api import available_schemes, reconcile

    alice = {b"item-%03d" % i for i in range(100)}
    bob = {b"item-%03d" % i for i in range(5, 105)}

    result = reconcile(alice, bob)                  # Rateless IBLT
    result = reconcile(alice, bob, scheme="pinsketch")
    print(available_schemes())

``repro.reconcile`` (below) remains the rateless-only fast path with
explicit codec control; ``repro.api.reconcile`` is the scheme-generic
front door.
"""

from repro import api
from repro.core.cellbank import CodedSymbolBank
from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult, RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.irregular import IrregularConfig, PAPER_IRREGULAR
from repro.core.mapping import IndexGenerator, RandomMapping
from repro.core.session import ReconciliationSession, reconcile
from repro.core.sketch import RatelessSketch

__version__ = "1.1.0"

__all__ = [
    "CodedSymbol",
    "CodedSymbolBank",
    "DecodeResult",
    "IndexGenerator",
    "IrregularConfig",
    "PAPER_IRREGULAR",
    "RandomMapping",
    "RatelessDecoder",
    "RatelessEncoder",
    "RatelessSketch",
    "ReconciliationSession",
    "api",
    "reconcile",
    "__version__",
]
