"""repro — a from-scratch reproduction of *Practical Rateless Set
Reconciliation* (Yang, Gilad, Alizadeh; ACM SIGCOMM 2024).

The package is organised as one sub-package per system described in
DESIGN.md:

``repro.core``
    The paper's primary contribution: the Rateless IBLT codec
    (encoder, decoder, sketches, wire format, reconciliation sessions)
    plus the Irregular variant of §8.
``repro.hashing``
    Keyed 64-bit hashing (SipHash-2-4, BLAKE2b) and deterministic PRNGs.
``repro.baselines``
    Every scheme the paper compares against: regular IBLT, the strata
    estimator, MET-IBLT, PinSketch (BCH), CPI, and Merkle-trie state heal.
``repro.net``
    A discrete-event network simulator and the two synchronization
    protocols used in the Ethereum experiments (§7.3).
``repro.ledger``
    A synthetic Ethereum-like ledger used as the §7.3 workload.
``repro.analysis``
    Density evolution (§5) and Monte Carlo harnesses for Figs 4-6 and 15.

Quickstart::

    from repro import reconcile

    alice = {b"item-%03d" % i for i in range(100)}
    bob = {b"item-%03d" % i for i in range(5, 105)}
    result = reconcile(alice, bob, symbol_size=8)
"""

from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult, RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.irregular import IrregularConfig, PAPER_IRREGULAR
from repro.core.mapping import IndexGenerator, RandomMapping
from repro.core.session import ReconciliationSession, reconcile
from repro.core.sketch import RatelessSketch

__version__ = "1.0.0"

__all__ = [
    "CodedSymbol",
    "DecodeResult",
    "IndexGenerator",
    "IrregularConfig",
    "PAPER_IRREGULAR",
    "RandomMapping",
    "RatelessDecoder",
    "RatelessEncoder",
    "RatelessSketch",
    "ReconciliationSession",
    "reconcile",
    "__version__",
]
