"""Typed failures of the durable shard store.

Every way the on-disk state can be unusable gets its own exception, so
recovery code (and tests) can distinguish "repairable torn tail" from
"this data would serve wrong symbols".  The contract is strict: a
complete journal record or snapshot whose CRC does not match its bytes
is *corruption* and always raises — it is never truncated away or
silently skipped, because serving a bank rebuilt from mangled bytes
would violate the bit-identical stream guarantee the whole subsystem
exists to provide.
"""

from __future__ import annotations


class DurabilityError(Exception):
    """Base class for durable-store failures."""


class CorruptManifest(DurabilityError):
    """The manifest file exists but cannot be parsed or validated."""


class CorruptSnapshot(DurabilityError):
    """A shard snapshot's framing or CRC check failed."""


class CorruptJournal(DurabilityError):
    """A *complete* journal record failed its CRC or structural checks.

    Torn tails (a record whose bytes simply end early — the signature of
    a crash mid-append) are not corruption; recovery truncates them.
    This exception means bytes that claim to be whole do not hash to
    what they say they are.
    """


class DataDirMismatch(DurabilityError):
    """The store on disk was created with incompatible parameters."""
