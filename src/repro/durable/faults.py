"""Fault injection for the durable store: named crash points + I/O errors.

The durable layer's contract is "kill -9 at any instant, restart, serve
correct symbols".  That claim is only worth anything if the failure
paths are actually executed, the same way the net simulator exercises
lossy links.  This module is the in-process stand-in for the kill:
every write/fsync/rename in :mod:`repro.durable` is routed through the
singleton :data:`INJECTOR`, which can be armed to

* **crash** at a named point — raising :class:`SimulatedCrash`, a
  ``BaseException`` subclass so no ``except Exception`` recovery path
  can accidentally absorb it.  A crash armed on a *write* point fires
  mid-write: half the bytes are written and flushed first, simulating a
  torn page despite Python's buffered files.
* **fail** at a named point with an injected :class:`OSError`
  (``ENOSPC``-style), checking that callers leave in-memory state
  unchanged and the store recoverable.

Arming is programmatic (:meth:`FaultInjector.arm_crash` /
:meth:`FaultInjector.arm_io_error`) or via the ``REPRO_CRASH_POINT``
environment variable (``point`` or ``point:skip``), which lets a test
drive a *real* subprocess to a crash point and kill it there.
"""

from __future__ import annotations

import errno
import os
from typing import Dict, Optional, Tuple

#: Environment variable arming a crash point at interpreter start.
ENV_CRASH_POINT = "REPRO_CRASH_POINT"

#: Every named point a store operation passes through, in the order a
#: checkpoint visits them.  The crash-sweep test iterates this tuple, so
#: adding a point here automatically adds it to the recovery proof.
CRASH_POINTS = (
    "snapshot.write",
    "snapshot.fsync",
    "snapshot.rename",
    "manifest.write",
    "manifest.fsync",
    "manifest.rename",
    "journal.reset",
    "journal.append",
    "journal.fsync",
)


class SimulatedCrash(BaseException):
    """Process death at a named crash point.

    Deliberately a ``BaseException``: recovery code catches ``OSError``
    and friends, and none of those handlers may run when the "process"
    dies — the exception must unwind straight out of the store call,
    leaving files exactly as a real kill would.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


def _check_point(point: str) -> None:
    """A typo'd point would arm a fault that can never fire — a test
    that silently proves nothing.  Fail loudly instead."""
    if point not in CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {point!r} (want one of {CRASH_POINTS})"
        )


class FaultInjector:
    """Armable crash/IO-error points threaded through the durable store.

    ``after=N`` skips the first N hits of the point before firing, so a
    sweep can crash the *second* shard snapshot write, not just the
    first.  Every armed fault fires exactly once, then disarms.
    """

    def __init__(self, env: Optional[dict] = None) -> None:
        self._crashes: Dict[str, int] = {}
        self._errors: Dict[str, Tuple[int, OSError]] = {}
        spec = (os.environ if env is None else env).get(ENV_CRASH_POINT, "")
        if spec:
            point, _, skip = spec.partition(":")
            self.arm_crash(point.strip(), after=int(skip) if skip else 0)

    # -- arming ------------------------------------------------------------

    def arm_crash(self, point: str, *, after: int = 0) -> None:
        """Arm a :class:`SimulatedCrash` at ``point`` (after ``after`` hits)."""
        _check_point(point)
        self._crashes[point] = after

    def arm_io_error(
        self, point: str, *, after: int = 0, error: Optional[OSError] = None
    ) -> None:
        """Arm an injected ``OSError`` at ``point`` (default: ENOSPC)."""
        _check_point(point)
        if error is None:
            error = OSError(errno.ENOSPC, f"injected: no space left ({point})")
        self._errors[point] = (after, error)

    def reset(self) -> None:
        """Disarm everything (test teardown)."""
        self._crashes.clear()
        self._errors.clear()

    def _take_crash(self, point: str) -> bool:
        remaining = self._crashes.get(point)
        if remaining is None:
            return False
        if remaining > 0:
            self._crashes[point] = remaining - 1
            return False
        del self._crashes[point]
        return True

    def _check_error(self, point: str) -> None:
        armed = self._errors.get(point)
        if armed is None:
            return
        remaining, error = armed
        if remaining > 0:
            self._errors[point] = (remaining - 1, error)
            return
        del self._errors[point]
        raise error

    # -- instrumented I/O primitives ----------------------------------------

    def crash(self, point: str) -> None:
        """A pure crash point (no I/O of its own), e.g. between two steps."""
        if self._take_crash(point):
            raise SimulatedCrash(point)

    def write(self, fileobj, data: bytes, point: str) -> None:
        """Write ``data``, honouring an armed fault at ``point``.

        An armed crash writes (and flushes) only the first half of the
        bytes before dying, so the file really holds a torn prefix —
        Python's buffered close would otherwise flush the rest during
        interpreter teardown and hide the tear.
        """
        self._check_error(point)
        if self._take_crash(point):
            fileobj.write(data[: len(data) // 2])
            fileobj.flush()
            raise SimulatedCrash(point)
        fileobj.write(data)

    def fsync(self, fileobj, point: str, *, enabled: bool = True) -> None:
        """Flush + fsync ``fileobj``, honouring an armed fault at ``point``."""
        self._check_error(point)
        if self._take_crash(point):
            fileobj.flush()
            raise SimulatedCrash(point)
        fileobj.flush()
        if enabled:
            os.fsync(fileobj.fileno())


#: Module singleton the store routes all I/O through.  Reads
#: ``REPRO_CRASH_POINT`` once at import, so a subprocess launched with
#: the variable set crashes at the named point with zero test plumbing.
INJECTOR = FaultInjector()
