"""The durable shard store: snapshots + churn journal + recovery.

``repro.durable`` makes the warm shard state the paper's linearity
(§4.1) earns — one continuously patched coded-symbol bank per shard —
survive process death.  A data dir holds::

    data_dir/
      MANIFEST.json          # commit point: which generation is live
      journal.log            # CRC-framed churn since that generation
      shard-0000.g3.snap     # per-shard encoder snapshots, generation-tagged

**Checkpoint** writes every shard's snapshot (write-temp + fsync +
rename) under a *new* generation number, commits by atomically renaming
the manifest, then resets the journal.  Because snapshot files are
generation-tagged, a crash anywhere in that sequence leaves either the
old generation fully intact (manifest not yet renamed: stray new-gen
files are orphans, deleted on recovery) or the new one fully committed
(journal records now at-or-below the manifest's sequence number are
skipped on replay).  There is no instant at which a reader can observe
half a checkpoint.

**Mutation** is write-ahead through :class:`DurableBackend`: validate
against the live set (mirroring ``ShardedSet``'s all-or-nothing
semantics), append to the journal, *then* patch the warm banks.  An
``OSError`` on the append therefore leaves memory and disk both
unchanged, and a replayed journal can never fail validation.

**Recovery** (:func:`open_durable` on an existing dir) parses the
manifest, rebuilds each shard's :class:`~repro.core.encoder.
RatelessEncoder` from its snapshot (exact parked walk states — no
hashing, no re-encoding), replays journal records past the manifest's
sequence through the batch ``add_many``/``remove_many`` patch path, and
truncates any torn tail.  The restored banks are bit-identical to fresh
ingest of the final set — the durability suite proves it under a sweep
of every named crash point in :mod:`repro.durable.faults`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.api.registry import Scheme, get_scheme
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.core.varint import decode_uvarint, encode_uvarint
from repro.durable.errors import (
    CorruptJournal,
    CorruptManifest,
    CorruptSnapshot,
    DataDirMismatch,
)
from repro.durable.faults import INJECTOR, FaultInjector
from repro.durable.journal import Journal, read_journal
from repro.durable.snapshot import (
    ShardSnapshot,
    pack_shard,
    snapshot_members,
    unpack_shard,
)
from repro.protocol.machine import codec_of, hash64_of
from repro.service.backends import ShardBackend, WarmRibltBackend
from repro.service.framing import SyncMode
from repro.service.shard import ShardedSet

MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.log"
MANIFEST_FORMAT = 1

OP_ADD = 1
OP_REMOVE = 2


@dataclass
class DurableConfig:
    """Persistence knobs."""

    checkpoint_every: Optional[int] = 4096
    """Auto-checkpoint after this many journaled items (bounds both the
    journal size and recovery replay time); ``None`` = manual only."""

    fsync: bool = True
    """Durability vs speed: tests on tmpfs can turn the fsyncs off."""


# -- journal payloads -------------------------------------------------------


def encode_op(op: int, seq: int, items: List[bytes]) -> bytes:
    """One churn batch: op byte | seq | count | count fixed-width items."""
    return (
        bytes([op])
        + encode_uvarint(seq)
        + encode_uvarint(len(items))
        + b"".join(items)
    )


def decode_op(payload: bytes, symbol_size: int) -> Tuple[int, int, List[bytes]]:
    """Parse a churn record; structural violations raise CorruptJournal."""
    try:
        op = payload[0]
        seq, offset = decode_uvarint(payload, 1)
        count, offset = decode_uvarint(payload, offset)
    except (IndexError, ValueError) as exc:
        raise CorruptJournal("journal record header is malformed") from exc
    if op not in (OP_ADD, OP_REMOVE):
        raise CorruptJournal(f"unknown journal op {op}")
    if len(payload) - offset != count * symbol_size:
        raise CorruptJournal(
            f"journal record body holds {len(payload) - offset} bytes, "
            f"expected {count} x {symbol_size}"
        )
    items = [
        payload[start : start + symbol_size]
        for start in range(offset, len(payload), symbol_size)
    ]
    return op, seq, items


# -- atomic file writes ------------------------------------------------------


def _fsync_dir(path: Path) -> None:
    """Make a rename durable (best-effort where dirs can't be fsynced)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(
    path: Path,
    data: bytes,
    *,
    kind: str,
    fsync: bool,
    injector: FaultInjector,
) -> None:
    """write-temp + fsync + rename, instrumented at ``kind``.* points."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        injector.write(handle, data, f"{kind}.write")
        injector.fsync(handle, f"{kind}.fsync", enabled=fsync)
    injector.crash(f"{kind}.rename")
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(path.parent)


# -- the store ---------------------------------------------------------------


class DurableShardStore:
    """The on-disk side of one durable backend (checkpoint + journal)."""

    def __init__(
        self,
        data_dir: Path,
        handle: Scheme,
        codec: SymbolCodec,
        *,
        gen: int,
        seq: int,
        config: DurableConfig,
        injector: FaultInjector,
    ) -> None:
        self.data_dir = data_dir
        self.handle = handle
        self.codec = codec
        self.gen = gen
        self.seq = seq
        self.config = config
        self.injector = injector
        self.journal = Journal(
            data_dir / JOURNAL_NAME, fsync=config.fsync, injector=injector
        )
        self.churned_since_checkpoint = 0

    # -- journalling -------------------------------------------------------

    def journal_op(self, op: int, items: List[bytes]) -> None:
        """Durably record one churn batch (write-ahead of the apply)."""
        seq = self.seq + 1
        self.journal.append(encode_op(op, seq, items))
        self.seq = seq

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, inner: WarmRibltBackend) -> None:
        """Freeze every shard's encoder to a new snapshot generation.

        Crash-safe at every instant: the manifest rename is the single
        commit point, snapshots are generation-tagged so an aborted
        checkpoint never mixes with the live one, and the journal is
        reset only after the commit (a crash in between just means the
        next recovery skips records the new manifest already covers).
        """
        gen = self.gen + 1
        codec = self.codec
        entries = []
        for shard, encoder in enumerate(inner.encoders):
            values, checksums, currents, states = encoder.export_rows()
            snapshot = ShardSnapshot(
                shard,
                inner.sharded.versions[shard],
                values,
                checksums,
                currents,
                states,
                encoder.bank,
            )
            name = _snap_name(shard, gen)
            _atomic_write(
                self.data_dir / name,
                pack_shard(snapshot, codec),
                kind="snapshot",
                fsync=self.config.fsync,
                injector=self.injector,
            )
            entries.append(
                {
                    "file": name,
                    "version": inner.sharded.versions[shard],
                    "count": len(encoder),
                    "cells": encoder.produced_count,
                }
            )
        params = self.handle.params
        manifest = {
            "format": MANIFEST_FORMAT,
            "scheme": self.handle.name,
            "symbol_size": codec.symbol_size,
            "checksum_size": codec.checksum_size,
            "hasher": params.hasher,
            "key": params.key.hex(),
            "num_shards": inner.num_shards,
            "gen": gen,
            "seq": self.seq,
            "shards": entries,
        }
        _atomic_write(
            self.data_dir / MANIFEST_NAME,
            json.dumps(manifest, indent=1).encode(),
            kind="manifest",
            fsync=self.config.fsync,
            injector=self.injector,
        )
        self.gen = gen
        self.injector.crash("journal.reset")
        self.journal.reset()
        self.churned_since_checkpoint = 0
        self._sweep_stale_files(keep_gen=gen)

    def note_churn(self, count: int, inner: WarmRibltBackend) -> None:
        """Auto-checkpoint once enough churn accumulated in the journal."""
        self.churned_since_checkpoint += count
        threshold = self.config.checkpoint_every
        if threshold is not None and self.churned_since_checkpoint >= threshold:
            self.checkpoint(inner)

    def _sweep_stale_files(self, keep_gen: int) -> None:
        """Drop snapshots of other generations and orphaned temp files.

        Best-effort by design: these files are dead weight, never state —
        a failed unlink costs disk, not correctness.
        """
        for path in self.data_dir.glob("shard-*.snap"):
            if _snap_gen(path.name) != keep_gen:
                try:
                    path.unlink()
                except OSError:
                    pass
        for path in self.data_dir.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass

    def close(self) -> None:
        self.journal.close()


def _snap_name(shard: int, gen: int) -> str:
    return f"shard-{shard:04d}.g{gen}.snap"


def _snap_gen(name: str) -> Optional[int]:
    try:
        return int(name.rsplit(".", 2)[-2].lstrip("g"))
    except (IndexError, ValueError):
        return None


# -- the durable backend -----------------------------------------------------


class DurableBackend(ShardBackend):
    """A :class:`WarmRibltBackend` whose churn is write-ahead journalled.

    Streaming and sketches delegate straight to the inner warm backend
    (both share the same :class:`ShardedSet`, so stream-version staleness
    semantics are untouched); every mutation is validated, journalled,
    then applied — see the module docstring for the ordering contract.
    """

    mode = SyncMode.STREAM

    def __init__(self, inner: WarmRibltBackend, store: DurableShardStore) -> None:
        super().__init__(inner.handle, inner.sharded)
        self.inner = inner
        self.store = store

    @property
    def codec(self) -> SymbolCodec:
        return self.inner.codec

    @property
    def encoders(self) -> list[RatelessEncoder]:
        return self.inner.encoders

    def cached_symbols(self, shard: int) -> int:
        return self.inner.cached_symbols(shard)

    def open_stream(self, shard: int):
        return self.inner.open_stream(shard)

    def build_sketch(self, shard: int, bound: int) -> bytes:
        return self.inner.build_sketch(shard, bound)

    # -- write-ahead mutation ----------------------------------------------

    def _mutate(self, items: List[bytes], op: int) -> list[int]:
        # Validate first (mirroring ShardedSet's all-or-nothing checks) so
        # a record that reaches the journal can never fail to replay.
        sharded = self.inner.sharded
        seen: set = set()
        for item in items:
            present = item in sharded
            dup = item in seen
            if op == OP_ADD and (present or dup):
                raise KeyError(f"duplicate item: {item.hex()}")
            if op == OP_REMOVE and (not present or dup):
                raise KeyError(f"item not in set: {item.hex()}")
            seen.add(item)
        self.store.journal_op(op, items)
        if op == OP_ADD:
            placed = self.inner.add_many(items)
        else:
            placed = self.inner.remove_many(items)
        self.store.note_churn(len(items), self.inner)
        return placed

    def add(self, item: bytes) -> int:
        return self._mutate([item], OP_ADD)[0]

    def remove(self, item: bytes) -> int:
        return self._mutate([item], OP_REMOVE)[0]

    def add_many(self, items: Iterable[bytes]) -> list[int]:
        items = items if isinstance(items, list) else list(items)
        return self._mutate(items, OP_ADD) if items else []

    def remove_many(self, items: Iterable[bytes]) -> list[int]:
        items = items if isinstance(items, list) else list(items)
        return self._mutate(items, OP_REMOVE) if items else []

    # -- lifecycle -----------------------------------------------------------

    def checkpoint(self) -> None:
        """Force a snapshot generation now (also runs on churn threshold)."""
        self.store.checkpoint(self.inner)

    def close(self) -> None:
        self.store.close()


# -- open / recover ------------------------------------------------------------


def open_durable(
    data_dir,
    items: Iterable[bytes] = (),
    *,
    scheme: str = "riblt",
    num_shards: int = 0,
    config: Optional[DurableConfig] = None,
    injector: FaultInjector = INJECTOR,
    **params: object,
) -> DurableBackend:
    """Open (or initialise) a durable warm backend at ``data_dir``.

    Fresh directory: builds the warm backend from ``items`` (parameters
    exactly as :class:`~repro.service.server.ReconciliationServer`
    takes them; ``num_shards`` defaults to 1) and writes generation 1.

    Existing directory: recovers — snapshots parsed, journal replayed,
    torn tail truncated — and every explicit parameter is validated
    against the manifest (:class:`DataDirMismatch` on disagreement;
    ``num_shards=0`` and omitted params mean "adopt the store's").
    ``items``, when given alongside an existing store, must equal the
    recovered set exactly: passing the same input file across restarts
    is idempotent, passing a different one is an error, never a merge.
    """
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    config = config or DurableConfig()
    materialised = items if isinstance(items, list) else list(items)
    if (data_dir / MANIFEST_NAME).exists():
        backend = _recover(data_dir, config, injector)
        _validate_reopen(backend, materialised, scheme, num_shards, params)
        return backend
    return _initialise(
        data_dir, materialised, scheme, num_shards or 1, config, injector, params
    )


def _initialise(
    data_dir: Path,
    materialised: List[bytes],
    scheme: str,
    num_shards: int,
    config: DurableConfig,
    injector: FaultInjector,
    params: dict,
) -> DurableBackend:
    handle = get_scheme(scheme, **params)
    if handle.params.symbol_size is None:
        if not materialised:
            raise ValueError(
                "initialising an empty durable store needs an explicit symbol_size"
            )
        handle = handle.with_params(symbol_size=len(materialised[0]))
    codec = codec_of(handle)
    if handle.name != "riblt" or codec is None:
        raise ValueError(
            f"the durable store persists warm riblt banks; scheme "
            f"{handle.name!r} is not supported"
        )
    sharded = ShardedSet(hash64_of(handle, codec), num_shards, materialised)
    inner = WarmRibltBackend(handle, sharded, codec)
    store = DurableShardStore(
        data_dir, handle, codec, gen=0, seq=0, config=config, injector=injector
    )
    store.journal.open()
    store.checkpoint(inner)  # generation 1: the store is born consistent
    return DurableBackend(inner, store)


def _recover(
    data_dir: Path, config: DurableConfig, injector: FaultInjector
) -> DurableBackend:
    manifest_path = data_dir / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
        fmt = manifest["format"]
        scheme = manifest["scheme"]
        handle = get_scheme(
            scheme,
            symbol_size=manifest["symbol_size"],
            checksum_size=manifest["checksum_size"],
            hasher=manifest["hasher"],
            key=bytes.fromhex(manifest["key"]),
        )
        num_shards = manifest["num_shards"]
        gen = manifest["gen"]
        seq = manifest["seq"]
        shard_entries = manifest["shards"]
    except (ValueError, KeyError, TypeError) as exc:
        raise CorruptManifest(f"{manifest_path}: {exc}") from exc
    if fmt != MANIFEST_FORMAT:
        raise CorruptManifest(f"{manifest_path}: unknown format {fmt}")
    if len(shard_entries) != num_shards:
        raise CorruptManifest(
            f"{manifest_path}: {len(shard_entries)} shard entries for "
            f"{num_shards} shards"
        )
    codec = codec_of(handle)
    assert codec is not None
    sharded = ShardedSet(hash64_of(handle, codec), num_shards)
    encoders: List[RatelessEncoder] = []
    for shard, entry in enumerate(shard_entries):
        snap_path = data_dir / entry["file"]
        try:
            blob = snap_path.read_bytes()
        except FileNotFoundError as exc:
            raise CorruptSnapshot(f"{snap_path}: missing snapshot file") from exc
        snapshot = unpack_shard(blob, codec, name=entry["file"])
        if (
            snapshot.shard != shard
            or snapshot.version != entry["version"]
            or len(snapshot.values) != entry["count"]
            or len(snapshot.bank) != entry["cells"]
        ):
            raise CorruptSnapshot(
                f"{snap_path}: snapshot disagrees with the manifest entry"
            )
        sharded.shards[shard] = snapshot_members(snapshot, codec)
        sharded.versions[shard] = snapshot.version
        encoders.append(
            RatelessEncoder.restore(
                codec,
                snapshot.values,
                snapshot.checksums,
                snapshot.currents,
                snapshot.states,
                snapshot.bank,
            )
        )
    inner = WarmRibltBackend(handle, sharded, codec, encoders=encoders)
    # Replay churn the last checkpoint had not absorbed, oldest first.
    # Records at or below the manifest's seq were written before a
    # checkpoint whose journal reset did not complete — skip them.
    journal_path = data_dir / JOURNAL_NAME
    payloads, valid, total = read_journal(journal_path)
    replayed = 0
    last_seq = seq
    for payload in payloads:
        op, rec_seq, rec_items = decode_op(payload, codec.symbol_size)
        if rec_seq <= seq:
            continue
        if rec_seq != last_seq + 1:
            raise CorruptJournal(
                f"{journal_path}: sequence jumped {last_seq} -> {rec_seq}"
            )
        if op == OP_ADD:
            inner.add_many(rec_items)
        else:
            inner.remove_many(rec_items)
        last_seq = rec_seq
        replayed += len(rec_items)
    store = DurableShardStore(
        data_dir, handle, codec, gen=gen, seq=last_seq, config=config, injector=injector
    )
    store.journal.open()
    if total > valid:
        store.journal.truncate_to(valid)  # torn tail from a crash mid-append
    store.churned_since_checkpoint = replayed
    store._sweep_stale_files(keep_gen=gen)
    backend = DurableBackend(inner, store)
    # Fold a long journal back into snapshots so replay work is bounded
    # across repeated restarts.
    threshold = config.checkpoint_every
    if threshold is not None and replayed >= threshold:
        store.checkpoint(inner)
    return backend


def _validate_reopen(
    backend: DurableBackend,
    materialised: List[bytes],
    scheme: str,
    num_shards: int,
    params: dict,
) -> None:
    handle = backend.handle
    if scheme != handle.name:
        raise DataDirMismatch(
            f"store holds scheme {handle.name!r}, caller asked for {scheme!r}"
        )
    if num_shards not in (0, backend.num_shards):
        raise DataDirMismatch(
            f"store holds {backend.num_shards} shards, caller asked for {num_shards}"
        )
    stored = backend.handle.params
    for name, value in params.items():
        if name == "key" and isinstance(value, str):
            value = bytes.fromhex(value)
        if getattr(stored, name, value) != value:
            raise DataDirMismatch(
                f"store was created with {name}={getattr(stored, name)!r}, "
                f"caller asked for {name}={value!r}"
            )
    if materialised and set(materialised) != set(backend.sharded):
        raise DataDirMismatch(
            "items passed to an existing durable store must equal the "
            "recovered set (same input is idempotent; merging is not implied)"
        )
