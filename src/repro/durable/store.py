"""The durable shard store: snapshots + churn journal + recovery.

``repro.durable`` makes the warm shard state the paper's linearity
(§4.1) earns — one continuously patched coded-symbol bank per shard —
survive process death.  A data dir holds::

    data_dir/
      MANIFEST.json          # commit point: which generation is live
      journal.log            # CRC-framed churn since that generation
      shard-0000.g3.snap     # per-shard encoder snapshots, generation-tagged

**Checkpoint** writes every shard's snapshot (write-temp + fsync +
rename) under a *new* generation number, commits by atomically renaming
the manifest, then resets the journal.  Because snapshot files are
generation-tagged, a crash anywhere in that sequence leaves either the
old generation fully intact (manifest not yet renamed: stray new-gen
files are orphans, deleted on recovery) or the new one fully committed
(journal records now at-or-below the manifest's sequence number are
skipped on replay).  There is no instant at which a reader can observe
half a checkpoint.

**Mutation** is write-ahead through :class:`DurableBackend`: validate
against the live set (mirroring ``ShardedSet``'s all-or-nothing
semantics), append to the journal, *then* patch the warm banks.  An
``OSError`` on the append therefore leaves memory and disk both
unchanged, and a replayed journal can never fail validation.

**Recovery** (:func:`open_durable` on an existing dir) parses the
manifest, rebuilds each shard's :class:`~repro.core.encoder.
RatelessEncoder` from its snapshot (exact parked walk states — no
hashing, no re-encoding), replays journal records past the manifest's
sequence through the batch ``add_many``/``remove_many`` patch path, and
truncates any torn tail.  The restored banks are bit-identical to fresh
ingest of the final set — the durability suite proves it under a sweep
of every named crash point in :mod:`repro.durable.faults`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.api.registry import Scheme, get_scheme
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.core.varint import decode_uvarint, encode_uvarint
from repro.durable.errors import (
    CorruptJournal,
    CorruptManifest,
    CorruptSnapshot,
    DataDirMismatch,
)
from repro.durable.faults import INJECTOR, FaultInjector
from repro.durable.journal import Journal, read_journal
from repro.durable.snapshot import (
    ShardSnapshot,
    pack_shard,
    snapshot_members,
    unpack_shard,
)
from repro.protocol.machine import codec_of, hash64_of
from repro.service.backends import ShardBackend, WarmRibltBackend
from repro.service.framing import SyncMode
from repro.service.shard import ShardedSet, ShardSubsetSet

MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.log"
MANIFEST_FORMAT = 1

# Cluster workers journal into per-worker segments so N processes can
# share one data dir without a write lock.  Segments use the same
# record framing as journal.log; "journal.log" itself has a single dot
# and never matches the glob.
JOURNAL_SEGMENT_GLOB = "journal.*.log"

OP_ADD = 1
OP_REMOVE = 2


def journal_segment_name(worker: int) -> str:
    """The journal segment of cluster worker ``worker``: journal.<worker>.log"""
    return f"journal.{worker}.log"


def _segment_worker(name: str) -> Optional[int]:
    """Parse a segment file name back to its worker index (None = not one)."""
    parts = name.split(".")
    if len(parts) != 3 or parts[0] != "journal" or parts[2] != "log":
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


@dataclass
class DurableConfig:
    """Persistence knobs."""

    checkpoint_every: Optional[int] = 4096
    """Auto-checkpoint after this many journaled items (bounds both the
    journal size and recovery replay time); ``None`` = manual only."""

    fsync: bool = True
    """Durability vs speed: tests on tmpfs can turn the fsyncs off."""


# -- journal payloads -------------------------------------------------------


def encode_op(op: int, seq: int, items: List[bytes]) -> bytes:
    """One churn batch: op byte | seq | count | count fixed-width items."""
    return (
        bytes([op])
        + encode_uvarint(seq)
        + encode_uvarint(len(items))
        + b"".join(items)
    )


def decode_op(payload: bytes, symbol_size: int) -> Tuple[int, int, List[bytes]]:
    """Parse a churn record; structural violations raise CorruptJournal."""
    try:
        op = payload[0]
        seq, offset = decode_uvarint(payload, 1)
        count, offset = decode_uvarint(payload, offset)
    except (IndexError, ValueError) as exc:
        raise CorruptJournal("journal record header is malformed") from exc
    if op not in (OP_ADD, OP_REMOVE):
        raise CorruptJournal(f"unknown journal op {op}")
    if len(payload) - offset != count * symbol_size:
        raise CorruptJournal(
            f"journal record body holds {len(payload) - offset} bytes, "
            f"expected {count} x {symbol_size}"
        )
    items = [
        payload[start : start + symbol_size]
        for start in range(offset, len(payload), symbol_size)
    ]
    return op, seq, items


# -- atomic file writes ------------------------------------------------------


def _fsync_dir(path: Path) -> None:
    """Make a rename durable (best-effort where dirs can't be fsynced)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(
    path: Path,
    data: bytes,
    *,
    kind: str,
    fsync: bool,
    injector: FaultInjector,
) -> None:
    """write-temp + fsync + rename, instrumented at ``kind``.* points."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        injector.write(handle, data, f"{kind}.write")
        injector.fsync(handle, f"{kind}.fsync", enabled=fsync)
    injector.crash(f"{kind}.rename")
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(path.parent)


# -- the store ---------------------------------------------------------------


class DurableShardStore:
    """The on-disk side of one durable backend (checkpoint + journal)."""

    def __init__(
        self,
        data_dir: Path,
        handle: Scheme,
        codec: SymbolCodec,
        *,
        gen: int,
        seq: int,
        config: DurableConfig,
        injector: FaultInjector,
        journal_name: str = JOURNAL_NAME,
        shard_subset: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.data_dir = data_dir
        self.handle = handle
        self.codec = codec
        self.gen = gen
        self.seq = seq
        self.config = config
        self.injector = injector
        self.journal_name = journal_name
        self.shard_subset = shard_subset
        self.journal = Journal(
            data_dir / journal_name, fsync=config.fsync, injector=injector
        )
        self.churned_since_checkpoint = 0

    # -- journalling -------------------------------------------------------

    def journal_op(self, op: int, items: List[bytes]) -> None:
        """Durably record one churn batch (write-ahead of the apply)."""
        seq = self.seq + 1
        self.journal.append(encode_op(op, seq, items))
        self.seq = seq

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, inner: WarmRibltBackend) -> None:
        """Freeze every shard's encoder to a new snapshot generation.

        Crash-safe at every instant: the manifest rename is the single
        commit point, snapshots are generation-tagged so an aborted
        checkpoint never mixes with the live one, and the journal is
        reset only after the commit (a crash in between just means the
        next recovery skips records the new manifest already covers).

        A shard-subset store (cluster worker) must not checkpoint: it
        would write a manifest claiming only its own shards.  The
        supervisor folds worker segments into a full checkpoint on the
        next full open instead.
        """
        if self.shard_subset is not None:
            raise RuntimeError(
                "a shard-subset store cannot checkpoint; the supervisor "
                "folds worker segments on the next full open"
            )
        gen = self.gen + 1
        codec = self.codec
        entries = []
        for shard, encoder in enumerate(inner.encoders):
            values, checksums, currents, states = encoder.export_rows()
            snapshot = ShardSnapshot(
                shard,
                inner.sharded.versions[shard],
                values,
                checksums,
                currents,
                states,
                encoder.bank,
            )
            name = _snap_name(shard, gen)
            _atomic_write(
                self.data_dir / name,
                pack_shard(snapshot, codec),
                kind="snapshot",
                fsync=self.config.fsync,
                injector=self.injector,
            )
            entries.append(
                {
                    "file": name,
                    "version": inner.sharded.versions[shard],
                    "count": len(encoder),
                    "cells": encoder.produced_count,
                }
            )
        params = self.handle.params
        manifest = {
            "format": MANIFEST_FORMAT,
            "scheme": self.handle.name,
            "symbol_size": codec.symbol_size,
            "checksum_size": codec.checksum_size,
            "hasher": params.hasher,
            "key": params.key.hex(),
            "num_shards": inner.num_shards,
            "gen": gen,
            "seq": self.seq,
            "shards": entries,
        }
        _atomic_write(
            self.data_dir / MANIFEST_NAME,
            json.dumps(manifest, indent=1).encode(),
            kind="manifest",
            fsync=self.config.fsync,
            injector=self.injector,
        )
        self.gen = gen
        self.injector.crash("journal.reset")
        self.journal.reset()
        self.churned_since_checkpoint = 0
        self._sweep_stale_files(keep_gen=gen, drop_segments=True)

    def note_churn(self, count: int, inner: WarmRibltBackend) -> None:
        """Auto-checkpoint once enough churn accumulated in the journal."""
        self.churned_since_checkpoint += count
        if self.shard_subset is not None:
            return  # workers never checkpoint (see checkpoint's docstring)
        threshold = self.config.checkpoint_every
        if threshold is not None and self.churned_since_checkpoint >= threshold:
            self.checkpoint(inner)

    def _sweep_stale_files(self, keep_gen: int, drop_segments: bool = False) -> None:
        """Drop snapshots of other generations and orphaned temp files.

        Best-effort by design: these files are dead weight, never state —
        a failed unlink costs disk, not correctness.  ``drop_segments``
        (set only by a full checkpoint, which has just folded every
        worker segment into the new generation) also removes the
        ``journal.<worker>.log`` files.
        """
        for path in self.data_dir.glob("shard-*.snap"):
            if _snap_gen(path.name) != keep_gen:
                try:
                    path.unlink()
                except OSError:
                    pass
        if drop_segments:
            for path in self.data_dir.glob(JOURNAL_SEGMENT_GLOB):
                if _segment_worker(path.name) is None:
                    continue
                try:
                    path.unlink()
                except OSError:
                    pass
        for path in self.data_dir.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass

    def close(self) -> None:
        self.journal.close()


def _snap_name(shard: int, gen: int) -> str:
    return f"shard-{shard:04d}.g{gen}.snap"


def _snap_gen(name: str) -> Optional[int]:
    try:
        return int(name.rsplit(".", 2)[-2].lstrip("g"))
    except (IndexError, ValueError):
        return None


# -- the durable backend -----------------------------------------------------


class DurableBackend(ShardBackend):
    """A :class:`WarmRibltBackend` whose churn is write-ahead journalled.

    Streaming and sketches delegate straight to the inner warm backend
    (both share the same :class:`ShardedSet`, so stream-version staleness
    semantics are untouched); every mutation is validated, journalled,
    then applied — see the module docstring for the ordering contract.
    """

    mode = SyncMode.STREAM

    def __init__(self, inner: WarmRibltBackend, store: DurableShardStore) -> None:
        super().__init__(inner.handle, inner.sharded)
        self.inner = inner
        self.store = store

    @property
    def codec(self) -> SymbolCodec:
        return self.inner.codec

    @property
    def encoders(self) -> list[RatelessEncoder]:
        return self.inner.encoders

    def cached_symbols(self, shard: int) -> int:
        return self.inner.cached_symbols(shard)

    def open_stream(self, shard: int):
        return self.inner.open_stream(shard)

    def build_sketch(self, shard: int, bound: int) -> bytes:
        return self.inner.build_sketch(shard, bound)

    # -- write-ahead mutation ----------------------------------------------

    def _mutate(self, items: List[bytes], op: int) -> list[int]:
        # Validate first (mirroring ShardedSet's all-or-nothing checks) so
        # a record that reaches the journal can never fail to replay.
        sharded = self.inner.sharded
        seen: set = set()
        for item in items:
            present = item in sharded
            dup = item in seen
            if op == OP_ADD and (present or dup):
                raise KeyError(f"duplicate item: {item.hex()}")
            if op == OP_REMOVE and (not present or dup):
                raise KeyError(f"item not in set: {item.hex()}")
            seen.add(item)
        if isinstance(sharded, ShardSubsetSet):
            # An unowned item is not "present", so the membership sweep
            # passes — but apply would raise.  Fail placement *before*
            # the journal write or the record could never replay.
            sharded.place_many(items)
        self.store.journal_op(op, items)
        if op == OP_ADD:
            placed = self.inner.add_many(items)
        else:
            placed = self.inner.remove_many(items)
        self.store.note_churn(len(items), self.inner)
        return placed

    def add(self, item: bytes) -> int:
        return self._mutate([item], OP_ADD)[0]

    def remove(self, item: bytes) -> int:
        return self._mutate([item], OP_REMOVE)[0]

    def add_many(self, items: Iterable[bytes]) -> list[int]:
        items = items if isinstance(items, list) else list(items)
        return self._mutate(items, OP_ADD) if items else []

    def remove_many(self, items: Iterable[bytes]) -> list[int]:
        items = items if isinstance(items, list) else list(items)
        return self._mutate(items, OP_REMOVE) if items else []

    # -- lifecycle -----------------------------------------------------------

    def checkpoint(self) -> None:
        """Force a snapshot generation now (also runs on churn threshold)."""
        self.store.checkpoint(self.inner)

    def close(self) -> None:
        self.store.close()


# -- open / recover ------------------------------------------------------------


def open_durable(
    data_dir,
    items: Iterable[bytes] = (),
    *,
    scheme: str = "riblt",
    num_shards: int = 0,
    config: Optional[DurableConfig] = None,
    injector: FaultInjector = INJECTOR,
    shard_subset: Optional[Iterable[int]] = None,
    journal_name: Optional[str] = None,
    **params: object,
) -> DurableBackend:
    """Open (or initialise) a durable warm backend at ``data_dir``.

    Fresh directory: builds the warm backend from ``items`` (parameters
    exactly as :class:`~repro.service.server.ReconciliationServer`
    takes them; ``num_shards`` defaults to 1) and writes generation 1.

    Existing directory: recovers — snapshots parsed, journal replayed,
    torn tail truncated — and every explicit parameter is validated
    against the manifest (:class:`DataDirMismatch` on disagreement;
    ``num_shards=0`` and omitted params mean "adopt the store's").
    ``items``, when given alongside an existing store, must equal the
    recovered set exactly: passing the same input file across restarts
    is idempotent, passing a different one is an error, never a merge.

    ``shard_subset`` opens a cluster worker's view: only those global
    shards are restored, churn goes to ``journal_name`` (a per-worker
    segment, see :func:`journal_segment_name`), and the store never
    checkpoints.  Requires an existing, checkpointed data dir.  A later
    *full* open folds every segment back into a fresh checkpoint.
    """
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    config = config or DurableConfig()
    materialised = items if isinstance(items, list) else list(items)
    if shard_subset is not None:
        if journal_name is None:
            raise ValueError(
                "a shard-subset open needs its own journal segment "
                "(journal_name=journal_segment_name(worker))"
            )
        if not (data_dir / MANIFEST_NAME).exists():
            raise DataDirMismatch(
                f"{data_dir}: a shard-subset open needs an initialised "
                "store (the supervisor checkpoints before spawning workers)"
            )
        backend = _recover(
            data_dir,
            config,
            injector,
            shard_subset=tuple(shard_subset),
            journal_name=journal_name,
        )
        total = backend.sharded.total_shards
        if num_shards not in (0, total):
            raise DataDirMismatch(
                f"store holds {total} shards, caller asked for {num_shards}"
            )
        _validate_reopen(backend, materialised, scheme, 0, params)
        return backend
    if (data_dir / MANIFEST_NAME).exists():
        backend = _recover(data_dir, config, injector)
        _validate_reopen(backend, materialised, scheme, num_shards, params)
        return backend
    return _initialise(
        data_dir, materialised, scheme, num_shards or 1, config, injector, params
    )


def _initialise(
    data_dir: Path,
    materialised: List[bytes],
    scheme: str,
    num_shards: int,
    config: DurableConfig,
    injector: FaultInjector,
    params: dict,
) -> DurableBackend:
    handle = get_scheme(scheme, **params)
    if handle.params.symbol_size is None:
        if not materialised:
            raise ValueError(
                "initialising an empty durable store needs an explicit symbol_size"
            )
        handle = handle.with_params(symbol_size=len(materialised[0]))
    codec = codec_of(handle)
    if handle.name != "riblt" or codec is None:
        raise ValueError(
            f"the durable store persists warm riblt banks; scheme "
            f"{handle.name!r} is not supported"
        )
    sharded = ShardedSet(hash64_of(handle, codec), num_shards, materialised)
    inner = WarmRibltBackend(handle, sharded, codec)
    store = DurableShardStore(
        data_dir, handle, codec, gen=0, seq=0, config=config, injector=injector
    )
    store.journal.open()
    store.checkpoint(inner)  # generation 1: the store is born consistent
    return DurableBackend(inner, store)


def _restore_shard(
    data_dir: Path, entry: dict, shard: int, codec: SymbolCodec
) -> ShardSnapshot:
    """Parse and cross-check one manifest entry's snapshot file."""
    snap_path = data_dir / entry["file"]
    try:
        blob = snap_path.read_bytes()
    except FileNotFoundError as exc:
        raise CorruptSnapshot(f"{snap_path}: missing snapshot file") from exc
    snapshot = unpack_shard(blob, codec, name=entry["file"])
    if (
        snapshot.shard != shard
        or snapshot.version != entry["version"]
        or len(snapshot.values) != entry["count"]
        or len(snapshot.bank) != entry["cells"]
    ):
        raise CorruptSnapshot(
            f"{snap_path}: snapshot disagrees with the manifest entry"
        )
    return snapshot


def _replay_segment(
    path: Path, base_seq: int, symbol_size: int
) -> List[Tuple[int, int, List[bytes]]]:
    """Decode one journal segment's records past ``base_seq``, in order.

    Each segment is independently contiguous from the manifest's seq
    (workers initialise their counters from the same checkpoint); a gap
    *within* a segment is corruption.  A torn tail is silently dropped
    (``read_journal`` yields only CRC-valid frames) — those bytes were
    never acknowledged.
    """
    payloads, _valid, _total = read_journal(path)
    records: List[Tuple[int, int, List[bytes]]] = []
    last_seq = base_seq
    for payload in payloads:
        op, rec_seq, rec_items = decode_op(payload, symbol_size)
        if rec_seq <= base_seq:
            continue
        if rec_seq != last_seq + 1:
            raise CorruptJournal(
                f"{path}: sequence jumped {last_seq} -> {rec_seq}"
            )
        last_seq = rec_seq
        records.append((rec_seq, op, rec_items))
    return records


def _recover(
    data_dir: Path,
    config: DurableConfig,
    injector: FaultInjector,
    *,
    shard_subset: Optional[Tuple[int, ...]] = None,
    journal_name: str = JOURNAL_NAME,
) -> DurableBackend:
    manifest_path = data_dir / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
        fmt = manifest["format"]
        scheme = manifest["scheme"]
        handle = get_scheme(
            scheme,
            symbol_size=manifest["symbol_size"],
            checksum_size=manifest["checksum_size"],
            hasher=manifest["hasher"],
            key=bytes.fromhex(manifest["key"]),
        )
        num_shards = manifest["num_shards"]
        gen = manifest["gen"]
        seq = manifest["seq"]
        shard_entries = manifest["shards"]
    except (ValueError, KeyError, TypeError) as exc:
        raise CorruptManifest(f"{manifest_path}: {exc}") from exc
    if fmt != MANIFEST_FORMAT:
        raise CorruptManifest(f"{manifest_path}: unknown format {fmt}")
    if len(shard_entries) != num_shards:
        raise CorruptManifest(
            f"{manifest_path}: {len(shard_entries)} shard entries for "
            f"{num_shards} shards"
        )
    codec = codec_of(handle)
    assert codec is not None
    if shard_subset is not None:
        for g in shard_subset:
            if not 0 <= g < num_shards:
                raise DataDirMismatch(
                    f"shard subset names shard {g}, store holds {num_shards}"
                )
        sharded: ShardedSet = ShardSubsetSet(
            hash64_of(handle, codec), num_shards, shard_subset
        )
        restored = [
            (local, g, shard_entries[g]) for local, g in enumerate(shard_subset)
        ]
    else:
        sharded = ShardedSet(hash64_of(handle, codec), num_shards)
        restored = [
            (shard, shard, entry) for shard, entry in enumerate(shard_entries)
        ]
    encoders: List[RatelessEncoder] = []
    for local, g, entry in restored:
        snapshot = _restore_shard(data_dir, entry, g, codec)
        sharded.shards[local] = snapshot_members(snapshot, codec)
        sharded.versions[local] = snapshot.version
        encoders.append(
            RatelessEncoder.restore(
                codec,
                snapshot.values,
                snapshot.checksums,
                snapshot.currents,
                snapshot.states,
                snapshot.bank,
            )
        )
    inner = WarmRibltBackend(handle, sharded, codec, encoders=encoders)
    # Replay churn the last checkpoint had not absorbed, oldest first.
    # Records at or below the manifest's seq were written before a
    # checkpoint whose journal reset did not complete — skip them.
    # A subset open replays only its *own* segment; a full open replays
    # the base journal, then folds every worker segment (merged by
    # (seq, worker) — workers touch disjoint shards, so the order
    # across segments only needs to be deterministic).
    journal_path = data_dir / journal_name
    payloads, valid, total = read_journal(journal_path)
    replayed = 0
    last_seq = seq
    for payload in payloads:
        op, rec_seq, rec_items = decode_op(payload, codec.symbol_size)
        if rec_seq <= seq:
            continue
        if rec_seq != last_seq + 1:
            raise CorruptJournal(
                f"{journal_path}: sequence jumped {last_seq} -> {rec_seq}"
            )
        if op == OP_ADD:
            inner.add_many(rec_items)
        else:
            inner.remove_many(rec_items)
        last_seq = rec_seq
        replayed += len(rec_items)
    segments_folded = False
    if shard_subset is None:
        merged: List[Tuple[int, int, int, List[bytes]]] = []
        for seg_path in sorted(data_dir.glob(JOURNAL_SEGMENT_GLOB)):
            worker = _segment_worker(seg_path.name)
            if worker is None:
                continue
            segments_folded = True
            for rec_seq, op, rec_items in _replay_segment(
                seg_path, seq, codec.symbol_size
            ):
                merged.append((rec_seq, worker, op, rec_items))
        merged.sort(key=lambda rec: (rec[0], rec[1]))
        for rec_seq, _worker, op, rec_items in merged:
            if op == OP_ADD:
                inner.add_many(rec_items)
            else:
                inner.remove_many(rec_items)
            last_seq = max(last_seq, rec_seq)
            replayed += len(rec_items)
    store = DurableShardStore(
        data_dir,
        handle,
        codec,
        gen=gen,
        seq=last_seq,
        config=config,
        injector=injector,
        journal_name=journal_name,
        shard_subset=shard_subset,
    )
    store.journal.open()
    if total > valid:
        store.journal.truncate_to(valid)  # torn tail from a crash mid-append
    store.churned_since_checkpoint = replayed
    backend = DurableBackend(inner, store)
    if shard_subset is not None:
        # Workers neither sweep (other generations may be mid-fold) nor
        # checkpoint; their state is bounded by the supervisor's fold.
        return backend
    store._sweep_stale_files(keep_gen=gen)
    # Fold a long journal back into snapshots so replay work is bounded
    # across repeated restarts; worker segments *must* fold (their seq
    # numbers overlap per-segment, so they cannot stay behind a stale
    # manifest seq) — the checkpoint's sweep then deletes them.
    threshold = config.checkpoint_every
    if segments_folded or (threshold is not None and replayed >= threshold):
        store.checkpoint(inner)
    return backend


def _validate_reopen(
    backend: DurableBackend,
    materialised: List[bytes],
    scheme: str,
    num_shards: int,
    params: dict,
) -> None:
    handle = backend.handle
    if scheme != handle.name:
        raise DataDirMismatch(
            f"store holds scheme {handle.name!r}, caller asked for {scheme!r}"
        )
    if num_shards not in (0, backend.num_shards):
        raise DataDirMismatch(
            f"store holds {backend.num_shards} shards, caller asked for {num_shards}"
        )
    stored = backend.handle.params
    for name, value in params.items():
        if name == "key" and isinstance(value, str):
            value = bytes.fromhex(value)
        if getattr(stored, name, value) != value:
            raise DataDirMismatch(
                f"store was created with {name}={getattr(stored, name)!r}, "
                f"caller asked for {name}={value!r}"
            )
    if materialised and set(materialised) != set(backend.sharded):
        raise DataDirMismatch(
            "items passed to an existing durable store must equal the "
            "recovered set (same input is idempotent; merging is not implied)"
        )
