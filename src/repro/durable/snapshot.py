"""Atomic per-shard snapshot files: encoder state frozen to bytes.

A snapshot captures *everything* a warm shard encoder is: the source
rows (value, keyed checksum, and the parked ``(current, splitmix64
state)`` §4.2 walk position of each symbol) plus the produced
:class:`~repro.core.cellbank.CodedSymbolBank` prefix verbatim.  Because
the walk positions are persisted exactly, restore does no hashing and
no index walking — it is pure parsing — and the restored bank is
bit-identical to the one that was saved, which the recovery suite then
proves equal to fresh ingest.

Layout (all integers little-endian)::

    magic "RPSNAP1\\n"
    uvarints: format=1, shard, version, n_rows, n_cells,
              symbol_size, checksum_size
    n_rows   x ( value[ssize] | checksum[csize] | current[8] | state[8] )
    n_cells  x ( sum[ssize] | checksum[csize] | count[8 signed] )
    crc32 of everything above, 4 bytes

Parsing rides the NumPy structured-dtype lane when available (one
``frombuffer`` per section — this is what makes warm restart beat cold
re-ingest by the benched margin); the scalar fallback produces
bit-identical state, and the no-numpy CI leg runs the whole durability
suite through it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.cellbank import NUMPY_LANE, CodedSymbolBank
from repro.core.symbols import SymbolCodec
from repro.core.varint import decode_uvarint, encode_uvarint
from repro.durable.errors import CorruptSnapshot, DataDirMismatch

MAGIC = b"RPSNAP1\n"
FORMAT = 1
_CRC_BYTES = 4
_WALK_BYTES = 8  # current and state are 8 bytes each

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_NP_WIDTHS = (1, 2, 4, 8)


@dataclass
class ShardSnapshot:
    """One shard's frozen encoder state (see module docstring)."""

    shard: int
    version: int
    values: Sequence[int]
    checksums: Sequence[int]
    currents: Sequence[int]
    states: Sequence[int]
    bank: CodedSymbolBank


def pack_shard(snapshot: ShardSnapshot, codec: SymbolCodec) -> bytes:
    """Serialise one shard's state into the snapshot format."""
    ssize = codec.symbol_size
    csize = codec.checksum_size
    rows = len(snapshot.values)
    head = bytearray(MAGIC)
    for field in (
        FORMAT,
        snapshot.shard,
        snapshot.version,
        rows,
        len(snapshot.bank),
        ssize,
        csize,
    ):
        head += encode_uvarint(field)
    body = bytearray(rows * (ssize + csize + 2 * _WALK_BYTES))
    offset = 0
    for value, checksum, current, state in zip(
        snapshot.values, snapshot.checksums, snapshot.currents, snapshot.states
    ):
        body[offset : offset + ssize] = int(value).to_bytes(ssize, "little")
        offset += ssize
        body[offset : offset + csize] = int(checksum).to_bytes(csize, "little")
        offset += csize
        body[offset : offset + 8] = int(current).to_bytes(8, "little")
        offset += 8
        body[offset : offset + 8] = int(state).to_bytes(8, "little")
        offset += 8
    blob = bytes(head) + bytes(body) + snapshot.bank.pack(codec)
    crc = zlib.crc32(blob) & 0xFFFFFFFF
    return blob + crc.to_bytes(_CRC_BYTES, "little")


def unpack_shard(blob: bytes, codec: SymbolCodec, name: str = "snapshot") -> ShardSnapshot:
    """Parse and CRC-verify a snapshot blob back into shard state.

    Any framing violation — short file, bad magic, wrong CRC, truncated
    sections — raises :class:`CorruptSnapshot`; a codec that disagrees
    with the persisted widths raises :class:`DataDirMismatch`.
    """
    if len(blob) < len(MAGIC) + _CRC_BYTES or blob[: len(MAGIC)] != MAGIC:
        raise CorruptSnapshot(f"{name}: bad snapshot magic")
    stored = int.from_bytes(blob[-_CRC_BYTES:], "little")
    payload = blob[:-_CRC_BYTES]
    if (zlib.crc32(payload) & 0xFFFFFFFF) != stored:
        raise CorruptSnapshot(f"{name}: CRC mismatch")
    try:
        offset = len(MAGIC)
        fmt, offset = decode_uvarint(payload, offset)
        shard, offset = decode_uvarint(payload, offset)
        version, offset = decode_uvarint(payload, offset)
        n_rows, offset = decode_uvarint(payload, offset)
        n_cells, offset = decode_uvarint(payload, offset)
        ssize, offset = decode_uvarint(payload, offset)
        csize, offset = decode_uvarint(payload, offset)
    except ValueError as exc:
        raise CorruptSnapshot(f"{name}: truncated header") from exc
    if fmt != FORMAT:
        raise CorruptSnapshot(f"{name}: unknown snapshot format {fmt}")
    if ssize != codec.symbol_size or csize != codec.checksum_size:
        raise DataDirMismatch(
            f"{name}: snapshot holds {ssize}/{csize}-byte symbols/checksums, "
            f"codec expects {codec.symbol_size}/{codec.checksum_size}"
        )
    row_stride = ssize + csize + 2 * _WALK_BYTES
    cell_stride = ssize + csize + CodedSymbolBank.COUNT_BYTES
    rows_end = offset + n_rows * row_stride
    cells_end = rows_end + n_cells * cell_stride
    if cells_end != len(payload):
        raise CorruptSnapshot(f"{name}: body length does not match header")
    rows_blob = payload[offset:rows_end]
    cells_blob = payload[rows_end:cells_end]
    if (
        _np is not None
        and NUMPY_LANE
        and ssize in _NP_WIDTHS
        and csize in _NP_WIDTHS
    ):
        values, checksums, currents, states = _parse_rows_numpy(
            rows_blob, ssize, csize
        )
        bank = _parse_bank_numpy(cells_blob, ssize, csize)
    else:
        values, checksums, currents, states = _parse_rows_scalar(
            rows_blob, ssize, csize
        )
        bank = CodedSymbolBank.unpack(cells_blob, codec)
    return ShardSnapshot(shard, version, values, checksums, currents, states, bank)


def snapshot_members(snapshot: ShardSnapshot, codec: SymbolCodec) -> set:
    """Rebuild the shard's member-bytes set from the snapshot's values.

    Values round-trip through one vectorised ``astype``/``tobytes`` on
    the NumPy lane; the scalar path converts one at a time.  Either way
    the result is exactly the items that were ingested (values are the
    little-endian integer form of the fixed-width items).
    """
    ssize = codec.symbol_size
    values = snapshot.values
    if _np is not None and isinstance(values, _np.ndarray) and ssize in _NP_WIDTHS:
        blob = values.astype(f"<u{ssize}").tobytes()
        return {blob[o : o + ssize] for o in range(0, len(blob), ssize)}
    to_bytes = codec.to_bytes
    return {to_bytes(int(value)) for value in values}


def _parse_rows_numpy(blob: bytes, ssize: int, csize: int):
    dtype = _np.dtype(
        [
            ("value", f"<u{ssize}"),
            ("checksum", f"<u{csize}"),
            ("current", "<u8"),
            ("state", "<u8"),
        ]
    )
    rows = _np.frombuffer(blob, dtype=dtype)
    return (
        rows["value"].astype(_np.uint64),
        rows["checksum"].astype(_np.uint64),
        rows["current"].astype(_np.int64),
        rows["state"].astype(_np.uint64),
    )


def _parse_bank_numpy(blob: bytes, ssize: int, csize: int) -> CodedSymbolBank:
    dtype = _np.dtype(
        [("sum", f"<u{ssize}"), ("checksum", f"<u{csize}"), ("count", "<i8")]
    )
    cells = _np.frombuffer(blob, dtype=dtype)
    return CodedSymbolBank(
        cells["sum"].tolist(), cells["checksum"].tolist(), cells["count"].tolist()
    )


def _parse_rows_scalar(blob: bytes, ssize: int, csize: int):
    values: List[int] = []
    checksums: List[int] = []
    currents: List[int] = []
    states: List[int] = []
    view = memoryview(blob)
    from_bytes = int.from_bytes
    stride = ssize + csize + 2 * _WALK_BYTES
    for offset in range(0, len(blob), stride):
        values.append(from_bytes(view[offset : offset + ssize], "little"))
        offset += ssize
        checksums.append(from_bytes(view[offset : offset + csize], "little"))
        offset += csize
        currents.append(from_bytes(view[offset : offset + 8], "little"))
        offset += 8
        states.append(from_bytes(view[offset : offset + 8], "little"))
    return values, checksums, currents, states
