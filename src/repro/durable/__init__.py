"""``repro.durable`` — crash-safe persistence for warm shard state.

The paper's incremental maintainability (§4.1 linearity: churn patches
a produced coded-symbol prefix in place) makes warm shard banks *state
worth keeping*, not cache to rebuild.  This package persists them:

:mod:`repro.durable.snapshot`
    Atomic per-shard snapshot files — source rows with their exact
    parked §4.2 walk positions, plus the produced bank verbatim — so a
    restore does no hashing and no encoding.
:mod:`repro.durable.journal`
    An append-only CRC-framed churn journal covering mutations since
    the last checkpoint; torn tails truncate, corrupt records raise.
:mod:`repro.durable.store`
    :func:`open_durable` / :class:`DurableBackend`: the write-ahead
    wrapper around :class:`~repro.service.backends.WarmRibltBackend`
    with generation-tagged checkpoints and journal-replay recovery.
:mod:`repro.durable.faults`
    The fault-injection harness (named crash points, injected
    ``OSError``\\ s) that the recovery suite drives, so the crash-safety
    contract is tested under the failures it claims to survive.

Contract: kill the process at any instant, reopen the data dir, and the
served symbol stream is bit-identical to a fresh node holding the same
final set.
"""

from repro.durable.errors import (
    CorruptJournal,
    CorruptManifest,
    CorruptSnapshot,
    DataDirMismatch,
    DurabilityError,
)
from repro.durable.faults import (
    CRASH_POINTS,
    ENV_CRASH_POINT,
    INJECTOR,
    FaultInjector,
    SimulatedCrash,
)
from repro.durable.store import (
    DurableBackend,
    DurableConfig,
    DurableShardStore,
    open_durable,
)

__all__ = [
    "CRASH_POINTS",
    "ENV_CRASH_POINT",
    "INJECTOR",
    "CorruptJournal",
    "CorruptManifest",
    "CorruptSnapshot",
    "DataDirMismatch",
    "DurabilityError",
    "DurableBackend",
    "DurableConfig",
    "DurableShardStore",
    "FaultInjector",
    "SimulatedCrash",
    "open_durable",
]
