"""Append-only CRC-framed churn journal.

Between checkpoints, every mutation batch that touches a durable
backend is appended here *before* it is applied in memory (write-ahead:
if the append raises, the set is unchanged and nothing was promised).
Each record is framed

    ``uvarint(len(payload)) | payload | crc32(payload) as 4 bytes LE``

and written with a single ``write()`` call, so a crash can only ever
leave a *prefix* of a record on disk.  Recovery distinguishes the two
failure shapes sharply:

* **torn tail** — the final record's bytes simply end early.  That is
  the expected signature of a crash mid-append; the tail is truncated
  and everything before it replayed.
* **CRC mismatch on a complete record** — bytes that claim to be whole
  but do not hash right.  That is corruption, and it raises
  :class:`~repro.durable.errors.CorruptJournal` unconditionally;
  serving symbols rebuilt from mangled churn would silently break the
  bit-identical stream guarantee.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import List, Tuple

from repro.core.varint import decode_uvarint, encode_uvarint
from repro.durable.errors import CorruptJournal
from repro.durable.faults import INJECTOR, FaultInjector

MAGIC = b"RPJRNL1\n"
_CRC_BYTES = 4


def frame_record(payload: bytes) -> bytes:
    """Frame one journal payload: length varint | payload | crc32."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return encode_uvarint(len(payload)) + payload + crc.to_bytes(4, "little")


def read_journal(path: Path) -> Tuple[List[bytes], int, int]:
    """Scan a journal file, validating every frame.

    Returns ``(payloads, valid_length, file_length)`` where
    ``valid_length`` is the byte offset of the last frame boundary —
    recovery truncates the file back to it when a torn tail follows.
    A missing file reads as empty.  Complete-but-wrong frames raise
    :class:`CorruptJournal`.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0, 0
    if len(data) < len(MAGIC):
        # A crash while writing the 8-byte header itself: torn, not corrupt.
        if MAGIC.startswith(data):
            return [], 0, len(data)
        raise CorruptJournal(f"{path.name}: bad journal magic")
    if data[: len(MAGIC)] != MAGIC:
        raise CorruptJournal(f"{path.name}: bad journal magic")
    payloads: List[bytes] = []
    offset = len(MAGIC)
    valid = offset
    total = len(data)
    while offset < total:
        start = offset
        try:
            length, offset = decode_uvarint(data, offset)
        except ValueError:
            break  # torn length prefix
        end = offset + length + _CRC_BYTES
        if end > total:
            break  # torn payload/CRC
        payload = data[offset : offset + length]
        stored = int.from_bytes(data[offset + length : end], "little")
        if (zlib.crc32(payload) & 0xFFFFFFFF) != stored:
            raise CorruptJournal(
                f"{path.name}: CRC mismatch in record at offset {start}"
            )
        payloads.append(payload)
        offset = valid = end
    return payloads, valid, total


class Journal:
    """The append side of the churn journal.

    Opened on an existing, already-validated file (recovery runs
    :func:`read_journal` first and repairs any torn tail), or creates a
    fresh file with just the magic header.
    """

    def __init__(
        self,
        path: Path,
        *,
        fsync: bool = True,
        injector: FaultInjector = INJECTOR,
    ) -> None:
        self.path = path
        self.fsync_enabled = fsync
        self.injector = injector
        self._file = None
        self._broken = False

    def open(self) -> "Journal":
        fresh = not self.path.exists()
        self._file = open(self.path, "ab" if fresh else "r+b")
        if fresh:
            self._file.write(MAGIC)
            self.injector.fsync(self._file, "journal.fsync", enabled=self.fsync_enabled)
        else:
            self._file.seek(0, os.SEEK_END)
        return self

    def truncate_to(self, length: int) -> None:
        """Cut a torn tail back to the last valid frame boundary."""
        self._file.seek(max(length, len(MAGIC)))
        self._file.truncate()
        self.injector.fsync(self._file, "journal.fsync", enabled=self.fsync_enabled)

    def append(self, payload: bytes) -> None:
        """Durably append one framed record.

        On an injected/real ``OSError`` the partial frame is truncated
        away so later appends start at a clean boundary; if even the
        repair fails the journal is marked broken and every further
        append raises (the caller's in-memory state was never mutated,
        so nothing is lost — the store just stops accepting churn).
        """
        if self._broken:
            raise OSError("journal is broken after a failed append")
        file = self._file
        pos = file.tell()
        try:
            self.injector.write(file, frame_record(payload), "journal.append")
            self.injector.fsync(file, "journal.fsync", enabled=self.fsync_enabled)
        except OSError:
            try:
                file.seek(pos)
                file.truncate()
            except OSError:
                self._broken = True
            raise

    def reset(self) -> None:
        """Drop every record (a checkpoint just absorbed them)."""
        self._file.seek(len(MAGIC))
        self._file.truncate()
        self.injector.fsync(self._file, "journal.fsync", enabled=self.fsync_enabled)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
